"""Tests for the ellipsoid-method LMI solver (repro.sdp.generic)."""

import numpy as np
import pytest

from repro.sdp import LmiBlock, LmiInfeasibleError, solve_lmi_ellipsoid


def diag_block(f0_diag, coeff_diags, margin=0.0, name=""):
    return LmiBlock(
        np.diag(np.asarray(f0_diag, dtype=float)),
        [np.diag(np.asarray(d, dtype=float)) for d in coeff_diags],
        margin=margin,
        name=name,
    )


class TestLmiBlock:
    def test_evaluate(self):
        block = diag_block([1, 1], [[1, 0], [0, 1]])
        m = block.evaluate(np.array([2.0, -3.0]))
        assert np.allclose(m, np.diag([3.0, -2.0]))

    def test_violation_sign(self):
        block = diag_block([1, 1], [[1, 0]], margin=0.0)
        violated, vector = block.violation(np.array([-2.0]))
        assert violated > 0  # min eig = -1 < 0
        assert np.allclose(np.abs(vector), [1.0, 0.0])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LmiBlock(np.eye(2), [np.eye(3)])


class TestEllipsoid:
    def test_simple_feasibility(self):
        # Find x with x*I - I/2 > 0, i.e. x > 1/2, and 2I - x*I > 0 (x < 2).
        blocks = [
            diag_block([-0.5, -0.5], [[1, 1]], name="lower"),
            diag_block([2, 2], [[-1, -1]], name="upper"),
        ]
        result = solve_lmi_ellipsoid(blocks, dimension=1)
        assert result.feasible
        assert 0.5 < result.x[0] < 2.0

    def test_two_dimensional(self):
        # [[x, y], [y, 1]] > 0 and x < 3: feasible, e.g. x=1, y=0.
        f0 = np.array([[0.0, 0.0], [0.0, 1.0]])
        fx = np.array([[1.0, 0.0], [0.0, 0.0]])
        fy = np.array([[0.0, 1.0], [1.0, 0.0]])
        cap = LmiBlock(np.array([[3.0]]), [np.array([[-1.0]]), np.array([[0.0]])])
        result = solve_lmi_ellipsoid(
            [LmiBlock(f0, [fx, fy], margin=0.1), cap], dimension=2
        )
        assert result.feasible
        x, y = result.x
        m = f0 + x * fx + y * fy
        assert np.linalg.eigvalsh(m).min() >= 0.1
        assert x < 3

    def test_infeasible_raises_or_exhausts(self):
        # x >= 1 and x <= -1 simultaneously: empty.
        blocks = [
            diag_block([-1], [[1]], name="lower"),
            diag_block([-1], [[-1]], name="upper"),
        ]
        with pytest.raises(LmiInfeasibleError):
            solve_lmi_ellipsoid(blocks, dimension=1, initial_radius=100.0)

    def test_budget_exhaustion_returns_best(self):
        blocks = [diag_block([-0.5], [[1]])]
        result = solve_lmi_ellipsoid(blocks, dimension=1, max_iterations=1)
        # One iteration from x=0 cannot reach feasibility (x must be > 1/2)
        assert not result.feasible
        assert result.worst_violation > 0

    def test_lyapunov_via_ellipsoid(self):
        """Cross-check against the dedicated solvers on a small system."""
        from repro.sdp import svec_basis

        a = np.array([[-1.0, 2.0], [0.0, -3.0]])
        basis = svec_basis(2)
        dim = len(basis)
        pd_block = LmiBlock(
            np.zeros((2, 2)), [e.copy() for e in basis], margin=0.05, name="P>0"
        )
        decay_block = LmiBlock(
            np.zeros((2, 2)),
            [-(a.T @ e + e @ a) for e in basis],
            margin=0.05,
            name="lyap",
        )
        bound_block = LmiBlock(
            10.0 * np.eye(2), [-e.copy() for e in basis], name="P<10I"
        )
        result = solve_lmi_ellipsoid(
            [pd_block, decay_block, bound_block], dimension=dim
        )
        assert result.feasible
        p = sum(x * e for x, e in zip(result.x, basis))
        assert np.linalg.eigvalsh(p).min() > 0
        assert np.linalg.eigvalsh(a.T @ p + p @ a).max() < 0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            solve_lmi_ellipsoid([], dimension=0)
        with pytest.raises(ValueError):
            solve_lmi_ellipsoid([diag_block([1], [[1]])], dimension=2)

    def test_history_recorded(self):
        blocks = [diag_block([-0.5], [[1]])]
        result = solve_lmi_ellipsoid(
            blocks, dimension=1, record_history=True
        )
        assert result.feasible
        assert len(result.history) == result.iterations
