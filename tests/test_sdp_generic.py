"""Tests for the ellipsoid-method LMI solver (repro.sdp.generic)."""

import numpy as np
import pytest

from repro.sdp import (
    CompiledLmiSystem,
    LmiBlock,
    LmiInfeasibleError,
    solve_lmi_ellipsoid,
)


def diag_block(f0_diag, coeff_diags, margin=0.0, name=""):
    return LmiBlock(
        np.diag(np.asarray(f0_diag, dtype=float)),
        [np.diag(np.asarray(d, dtype=float)) for d in coeff_diags],
        margin=margin,
        name=name,
    )


class TestLmiBlock:
    def test_evaluate(self):
        block = diag_block([1, 1], [[1, 0], [0, 1]])
        m = block.evaluate(np.array([2.0, -3.0]))
        assert np.allclose(m, np.diag([3.0, -2.0]))

    def test_violation_sign(self):
        block = diag_block([1, 1], [[1, 0]], margin=0.0)
        violated, vector = block.violation(np.array([-2.0]))
        assert violated > 0  # min eig = -1 < 0
        assert np.allclose(np.abs(vector), [1.0, 0.0])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LmiBlock(np.eye(2), [np.eye(3)])


class TestEllipsoid:
    def test_simple_feasibility(self):
        # Find x with x*I - I/2 > 0, i.e. x > 1/2, and 2I - x*I > 0 (x < 2).
        blocks = [
            diag_block([-0.5, -0.5], [[1, 1]], name="lower"),
            diag_block([2, 2], [[-1, -1]], name="upper"),
        ]
        result = solve_lmi_ellipsoid(blocks, dimension=1)
        assert result.feasible
        assert 0.5 < result.x[0] < 2.0

    def test_two_dimensional(self):
        # [[x, y], [y, 1]] > 0 and x < 3: feasible, e.g. x=1, y=0.
        f0 = np.array([[0.0, 0.0], [0.0, 1.0]])
        fx = np.array([[1.0, 0.0], [0.0, 0.0]])
        fy = np.array([[0.0, 1.0], [1.0, 0.0]])
        cap = LmiBlock(np.array([[3.0]]), [np.array([[-1.0]]), np.array([[0.0]])])
        result = solve_lmi_ellipsoid(
            [LmiBlock(f0, [fx, fy], margin=0.1), cap], dimension=2
        )
        assert result.feasible
        x, y = result.x
        m = f0 + x * fx + y * fy
        assert np.linalg.eigvalsh(m).min() >= 0.1
        assert x < 3

    def test_infeasible_raises_or_exhausts(self):
        # x >= 1 and x <= -1 simultaneously: empty.
        blocks = [
            diag_block([-1], [[1]], name="lower"),
            diag_block([-1], [[-1]], name="upper"),
        ]
        with pytest.raises(LmiInfeasibleError):
            solve_lmi_ellipsoid(blocks, dimension=1, initial_radius=100.0)

    def test_budget_exhaustion_returns_best(self):
        blocks = [diag_block([-0.5], [[1]])]
        result = solve_lmi_ellipsoid(blocks, dimension=1, max_iterations=1)
        # One iteration from x=0 cannot reach feasibility (x must be > 1/2)
        assert not result.feasible
        assert result.worst_violation > 0

    def test_lyapunov_via_ellipsoid(self):
        """Cross-check against the dedicated solvers on a small system."""
        from repro.sdp import svec_basis

        a = np.array([[-1.0, 2.0], [0.0, -3.0]])
        basis = svec_basis(2)
        dim = len(basis)
        pd_block = LmiBlock(
            np.zeros((2, 2)), [e.copy() for e in basis], margin=0.05, name="P>0"
        )
        decay_block = LmiBlock(
            np.zeros((2, 2)),
            [-(a.T @ e + e @ a) for e in basis],
            margin=0.05,
            name="lyap",
        )
        bound_block = LmiBlock(
            10.0 * np.eye(2), [-e.copy() for e in basis], name="P<10I"
        )
        result = solve_lmi_ellipsoid(
            [pd_block, decay_block, bound_block], dimension=dim
        )
        assert result.feasible
        p = sum(x * e for x, e in zip(result.x, basis))
        assert np.linalg.eigvalsh(p).min() > 0
        assert np.linalg.eigvalsh(a.T @ p + p @ a).max() < 0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            solve_lmi_ellipsoid([], dimension=0)
        with pytest.raises(ValueError):
            solve_lmi_ellipsoid([diag_block([1], [[1]])], dimension=2)

    def test_history_recorded(self):
        blocks = [diag_block([-0.5], [[1]])]
        result = solve_lmi_ellipsoid(
            blocks, dimension=1, record_history=True
        )
        assert result.feasible
        assert len(result.history) == result.iterations

    def test_empty_block_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            solve_lmi_ellipsoid([], dimension=1)

    def test_dimension_one_bisection_thin_interval(self):
        # Feasible set is the thin interval [1, 1.001]: the 1-D update
        # is interval bisection, and many halvings are needed before the
        # iterate lands inside.  Exercises the dimension==1 branch.
        blocks = [
            diag_block([-1], [[1]], name="lower"),
            diag_block([1.001], [[-1]], name="upper"),
        ]
        result = solve_lmi_ellipsoid(
            blocks, dimension=1, initial_radius=10.0
        )
        assert result.feasible
        assert 1.0 <= result.x[0] <= 1.001
        assert result.iterations > 1  # took at least one bisection cut

    def test_dimension_one_shape_collapse_breaks(self):
        # A single-point feasible set {1} shrunk to emptiness by a tiny
        # margin: the 1-D branch must terminate (emptiness proof or
        # interval collapse below the 1e-24 width floor), never claim
        # feasibility, and never loop to budget exhaustion.
        blocks = [
            diag_block([-1], [[1]], margin=1e-9, name="lower"),
            diag_block([1], [[-1]], margin=1e-9, name="upper"),
        ]
        result = solve_lmi_ellipsoid(
            blocks, dimension=1, initial_radius=10.0,
            raise_on_infeasible=False, max_iterations=10_000,
        )
        assert not result.feasible
        assert result.proved_infeasible or result.iterations < 10_000

    def test_depth_one_infeasibility_proof(self):
        # Strict margins make x >= 1+m and x <= -1+m jointly empty with
        # slack, so a cut of depth >= 1 appears and proves emptiness.
        blocks = [
            diag_block([-1], [[1]], margin=0.1, name="lower"),
            diag_block([-1], [[-1]], margin=0.1, name="upper"),
        ]
        with pytest.raises(LmiInfeasibleError, match="infeasib"):
            solve_lmi_ellipsoid(blocks, dimension=1, initial_radius=100.0)
        result = solve_lmi_ellipsoid(
            blocks, dimension=1, initial_radius=100.0,
            raise_on_infeasible=False,
        )
        assert result.proved_infeasible
        assert not result.feasible

    def test_depth_one_proof_multidim(self):
        # Same emptiness proof through the general (dimension >= 2)
        # deep-cut branch rather than the 1-D bisection special case.
        blocks = [
            diag_block([-1, -1], [[1, 1], [0, 0]], name="lower"),
            diag_block([-1, -1], [[-1, -1], [0, 0]], name="upper"),
        ]
        result = solve_lmi_ellipsoid(
            blocks, dimension=2, initial_radius=50.0,
            raise_on_infeasible=False,
        )
        assert result.proved_infeasible
        assert not result.feasible


class TestCompiledLmiSystem:
    def _blocks(self):
        rng = np.random.default_rng(7)
        blocks = []
        for size in (1, 2, 3, 2):
            f0 = rng.normal(size=(size, size))
            f0 = (f0 + f0.T) / 2
            coeffs = []
            for _ in range(3):
                c = rng.normal(size=(size, size))
                coeffs.append((c + c.T) / 2)
            blocks.append(LmiBlock(f0, coeffs, margin=0.05 * size))
        return blocks

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompiledLmiSystem([], 1)

    def test_evaluate_matches_blocks(self):
        blocks = self._blocks()
        system = CompiledLmiSystem(blocks, 3)
        rng = np.random.default_rng(11)
        for _ in range(5):
            x = rng.normal(size=3)
            for i, block in enumerate(blocks):
                assert np.allclose(
                    system.evaluate(i, x), block.evaluate(x), atol=1e-12
                )

    def test_violations_and_gradient_match_blocks(self):
        blocks = self._blocks()
        system = CompiledLmiSystem(blocks, 3)
        rng = np.random.default_rng(13)
        for _ in range(5):
            x = rng.normal(size=3)
            violations = system.violations(x)
            for i, block in enumerate(blocks):
                violated, vector = block.violation(x)
                assert abs(violations[i] - violated) < 1e-12
                grad = system.gradient(i, vector)
                expected = np.array(
                    [-vector @ c @ vector for c in block.coefficients]
                )
                assert np.allclose(grad, expected, atol=1e-12)

    def test_oracle_matches_per_block_argmax(self):
        blocks = self._blocks()
        system = CompiledLmiSystem(blocks, 3)
        rng = np.random.default_rng(17)
        for _ in range(5):
            x = rng.normal(size=3)
            worst, vector, index, violations = system.oracle(x)
            per_block = [b.violation(x)[0] for b in blocks]
            assert index == int(np.argmax(per_block))
            assert abs(worst - max(per_block)) < 1e-12
            if worst > 0:
                # The returned eigenvector witnesses the violation.
                m = blocks[index].evaluate(x)
                rayleigh = vector @ m @ vector
                assert abs(
                    (blocks[index].margin - rayleigh) - worst
                ) < 1e-10

    def test_active_set_matches_full_sweep(self):
        from repro.sdp import svec_basis

        a = np.array([[-1.0, 2.0], [0.0, -3.0]])
        basis = svec_basis(2)
        dim = len(basis)
        blocks = [
            LmiBlock(np.zeros((2, 2)), [e.copy() for e in basis],
                     margin=0.05, name="P>0"),
            LmiBlock(np.zeros((2, 2)),
                     [-(a.T @ e + e @ a) for e in basis],
                     margin=0.05, name="lyap"),
            LmiBlock(10.0 * np.eye(2), [-e.copy() for e in basis],
                     name="P<10I"),
        ]
        full = solve_lmi_ellipsoid(blocks, dimension=dim)
        active = solve_lmi_ellipsoid(blocks, dimension=dim, sweep_every=4)
        assert full.feasible and active.feasible
        # Feasibility is always confirmed by a full sweep, so the
        # active-set iterate satisfies every block exactly like the
        # full-sweep one.
        for result in (full, active):
            p = sum(x * e for x, e in zip(result.x, basis))
            assert np.linalg.eigvalsh(p).min() > 0
            assert np.linalg.eigvalsh(a.T @ p + p @ a).max() < 0

    def test_batch_oracle_off_matches_on(self):
        blocks = self._blocks()
        on = solve_lmi_ellipsoid(
            blocks, dimension=3, max_iterations=500,
            raise_on_infeasible=False,
        )
        off = solve_lmi_ellipsoid(
            blocks, dimension=3, max_iterations=500,
            raise_on_infeasible=False, batch_oracle=False,
        )
        assert on.feasible == off.feasible
        assert on.iterations == off.iterations
        assert np.allclose(on.x, off.x, atol=1e-9)
