"""Tests for frequency-domain analysis (repro.systems.frequency)."""

import numpy as np
import pytest

from repro.systems import (
    StateSpace,
    frequency_response,
    loop_margins,
    sigma_max_response,
    transfer_function,
)


def first_order(a=2.0, k=3.0):
    """G(s) = k / (s + a)."""
    return StateSpace([[-a]], [[1.0]], [[k]])


class TestTransferFunction:
    def test_first_order_dc(self):
        g = transfer_function(first_order(), 0.0)
        assert g[0, 0] == pytest.approx(1.5)

    def test_first_order_pole_magnitude(self):
        # |G(j a)| = k / (a sqrt(2)).
        g = transfer_function(first_order(2.0, 3.0), 2.0j)
        assert abs(g[0, 0]) == pytest.approx(3.0 / (2.0 * np.sqrt(2.0)))

    def test_matches_dc_gain(self):
        from repro.engine import build_engine_plant

        plant = build_engine_plant()
        assert np.allclose(
            transfer_function(plant, 0.0).real, plant.dc_gain(), atol=1e-10
        )

    def test_frequency_response_shape(self):
        from repro.engine import build_engine_plant

        plant = build_engine_plant()
        response = frequency_response(plant, np.array([0.1, 1.0, 10.0]))
        assert response.shape == (3, 4, 3)

    def test_sigma_max_decreases_past_bandwidth(self):
        plant = first_order()
        sig = sigma_max_response(plant, np.array([0.01, 100.0]))
        assert sig[0] > sig[1]

    def test_balanced_truncation_hinf_bound_sampled(self):
        """|G - G_r| at sampled frequencies obeys 2*sum(tail sigma)."""
        from repro.engine import build_engine_plant
        from repro.reduction import balance

        plant = build_engine_plant()
        realization = balance(plant)
        reduced = realization.truncate(5)
        bound = realization.error_bound(5)
        for w in (0.0, 0.5, 2.0, 10.0, 50.0):
            g_full = transfer_function(plant, 1j * w)
            g_red = transfer_function(reduced, 1j * w)
            error = np.linalg.svd(g_full - g_red, compute_uv=False)[0]
            assert error <= bound + 1e-8


class TestLoopMargins:
    def test_integrator_loop(self):
        """L(s) = 10 / (s (s/10 + 1)^2): textbook margins."""

        def loop(w):
            s = 1j * w
            return 10.0 / (s * (s / 10.0 + 1.0) ** 2)

        omegas = np.logspace(-2, 3, 400)
        margins = loop_margins(loop, omegas)
        # Gain crossover near 10 rad/s, phase crossover at 10 rad/s
        # (phase = -90 - 2 atan(w/10) = -180 at w = 10).
        assert margins.phase_crossover == pytest.approx(10.0, rel=1e-3)
        # At w=10: |L| = 10/(10*2) = 0.5 -> gain margin = 6 dB.
        assert margins.gain_margin_db == pytest.approx(6.02, abs=0.1)
        assert margins.phase_margin_deg > 0

    def test_first_order_never_crosses_180(self):
        def loop(w):
            return 5.0 / (1j * w + 1.0)

        margins = loop_margins(loop, np.logspace(-2, 3, 300))
        assert margins.gain_margin_db == float("inf")
        assert margins.phase_margin_deg > 60.0

    def test_low_gain_loop_infinite_phase_margin(self):
        def loop(w):
            return 0.1 / (1j * w + 1.0)

        margins = loop_margins(loop, np.logspace(-2, 3, 300))
        assert margins.gain_crossover is None
        assert margins.phase_margin_deg == float("inf")

    def test_engine_fuel_loop_is_comfortably_stable(self):
        """The mode-0 fuel loop (PI * G00) has healthy margins — the
        design property behind Table I's all-valid column."""
        from repro.engine import build_engine_plant, mode_gains
        from repro.systems import transfer_function as tf

        plant = build_engine_plant()
        gains = mode_gains(0)
        kp, ki = gains.kp[0, 0], gains.ki[0, 0]

        def loop(w):
            s = 1j * w
            return (kp + ki / s) * tf(plant, s)[0, 0]

        margins = loop_margins(loop, np.logspace(-2, 3, 500))
        assert margins.phase_margin_deg > 30.0
