"""The CEGIS soundness harness (regression pin + property suite).

Pins, in order of importance:

1. **The paper's negative result, at iteration 0.** At the nominal
   references the certifying synthesizer proves the piecewise LMI
   infeasible in round 1 with zero cuts — Section VI-B.2's failure is
   not a rounding accident but genuine infeasibility, and the loop
   reports it before any refinement happens. Likewise the paper's
   *rounding protocol* (independent per-mode snap) is pinned to fail
   its surface check and stall: no cut can repair broken continuity.
2. **The flip.** At attracting references the loop produces certificates
   that survive the sound S-procedure/ICP verification — and the
   property suite revalidates every accepted certificate independently
   at tightened tolerance, plus hunts pointwise counterexamples that
   must not exist.
3. **Witness exactness.** Every witness the pointwise refuter emits
   violates the claimed Lyapunov condition when re-evaluated in exact
   rational arithmetic — checked twice, through the matrix path and
   through the scalar atom/polynomial path, which must agree exactly.
4. **Cut soundness.** Sampled cuts are implied constraints (Rayleigh
   sections): they can never exclude a point the parent matrix block
   admits. Deduplication by normalized fingerprint means the loop can
   never stall by re-adding the cut it already has.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import attracting_reference, case_by_name, nominal_reference
from repro.exact import RationalMatrix
from repro.lyapunov import (
    assemble_centered_lmi,
    cegis_piecewise,
    refute_certificate,
    seed_directions,
    snap_certificate,
    verify_certificate,
)
from repro.oracle import (
    CEGIS_KINDS,
    cegis_specs,
    check_cegis_scenario,
    generate_cegis_scenario,
)
from repro.sdp import CompiledLmiSystem, solve_lmi_ellipsoid
from repro.sdp.generic import LmiBlock, cut_fingerprint, sampled_cut
from repro.smt import (
    Atom,
    Relation,
    affine_term,
    atom_violation,
    point_satisfies,
    quadratic_form_term,
    Var,
)


@pytest.fixture(scope="module")
def size3_attracting():
    case = case_by_name("size3")
    return case.switched_system(attracting_reference(case.plant))


@pytest.fixture(scope="module")
def validated_size3(size3_attracting):
    outcome = cegis_piecewise(size3_attracting, synthesis="full")
    assert outcome.status == "validated"
    return outcome


# ----------------------------------------------------------------------
# 1. The pinned negative results (iteration 0)
# ----------------------------------------------------------------------
class TestPaperNegativeResult:
    def test_nominal_reference_proved_infeasible_with_zero_cuts(self):
        """Sec. VI-B.2 on the seed model: at the paper's references the
        loop's very first synthesis proves the LMI empty — no cut is
        ever generated, no certificate ever snapped."""
        case = case_by_name("size3")
        system = case.switched_system(nominal_reference(case.plant))
        outcome = cegis_piecewise(system, synthesis="full")
        assert outcome.status == "infeasible"
        assert len(outcome.rounds) == 1
        assert outcome.rounds[0].proved_infeasible
        assert outcome.cut_count == 0
        assert outcome.certificate is None

    def test_independent_rounding_protocol_fails_surface_and_stalls(
        self, size3_attracting
    ):
        """The paper's per-mode rounding breaks exact surface equality
        even where a certificate exists; since no sampled cut can repair
        a rounding defect, the loop must stall, not spin."""
        outcome = cegis_piecewise(
            size3_attracting, synthesis="full", snap="independent",
            max_rounds=3,
        )
        assert outcome.status == "stalled"
        assert outcome.rounds[-1].checks["surface"] is False
        defect = outcome.certificate.surface_defect()
        assert any(
            defect[i, j] != 0
            for i in range(defect.rows)
            for j in range(defect.cols)
        )


# ----------------------------------------------------------------------
# 2. The flip: validated certificates, independently revalidated
# ----------------------------------------------------------------------
class TestValidatedCertificates:
    def test_attracting_full_validates_round_one(self, validated_size3):
        assert validated_size3.rounds[-1].checks == {
            "surface": True, "multipliers": True,
            "pos0": True, "dec0": True, "pos1": True, "dec1": True,
        }

    def test_accepted_certificate_revalidates_at_tight_tolerance(
        self, size3_attracting, validated_size3
    ):
        """Independent re-verification: fresh assembly, ICP delta two
        orders tighter, bigger box budget — the acceptance must not
        hinge on the loop's own tolerances."""
        lmi = assemble_centered_lmi(size3_attracting)
        verification = verify_certificate(
            lmi, validated_size3.certificate,
            max_boxes=60_000, delta=1e-9,
        )
        assert verification.valid is True
        assert all(check.proved for check in verification.checks)

    def test_no_pointwise_counterexample_exists(
        self, size3_attracting, validated_size3
    ):
        """The pointwise ICP refuter (the paper's validation style) must
        come up empty against an accepted certificate."""
        witnesses = refute_certificate(
            validated_size3.certificate, size3_attracting,
            max_boxes=8_000,
        )
        assert witnesses == []

    def test_scalar_and_batched_verification_agree(self, size3_attracting):
        lmi = assemble_centered_lmi(size3_attracting)
        outcome = cegis_piecewise(size3_attracting, synthesis="full")
        verdicts = {}
        for backend in ("scalar", "batched"):
            verification = verify_certificate(
                lmi, outcome.certificate, backend=backend
            )
            verdicts[backend] = verification.verdict_map()
        assert verdicts["scalar"] == verdicts["batched"]

    @settings(max_examples=6)
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_shared_scenarios_validate_and_revalidate(self, seed, n):
        """Ground-truth shared-witness scenarios: the sampled loop must
        validate, and the accepted certificate must survive tightened
        independent ICP revalidation."""
        scenario = generate_cegis_scenario("cegis-shared", n, seed)
        lmi = assemble_centered_lmi(scenario.system)
        outcome = cegis_piecewise(
            scenario.system, synthesis="sampled", lmi=lmi
        )
        assert outcome.status == "validated", (seed, n)
        verification = verify_certificate(
            lmi, outcome.certificate, max_boxes=40_000, delta=1e-9
        )
        assert verification.valid is True

    @settings(max_examples=4)
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_bistable_scenarios_proved_infeasible(self, seed, n):
        scenario = generate_cegis_scenario("cegis-bistable", n, seed)
        outcome = cegis_piecewise(scenario.system, synthesis="full")
        assert outcome.status == "infeasible", (seed, n)
        assert outcome.certificate is None


# ----------------------------------------------------------------------
# 3. Witness exactness (matrix path vs scalar atom path)
# ----------------------------------------------------------------------
def _corrupt(certificate, shift: int):
    """Shift ``P̄_1`` down by ``shift * max(diag) * I``.

    Scaling by the certificate's own diagonal guarantees pointwise
    violations regardless of how large the synthesizer made ``S_0``:
    with ``shift >= 2`` the corrupted ``V_1`` is negative at the origin
    (which lies in region 1, since the guard puts ``w[0] <= 1`` there).
    """
    p1 = certificate.p1_bar
    da = p1.rows
    top = max(p1[i, i] for i in range(da))
    assert top > 0
    return dataclasses.replace(
        certificate,
        p1_bar=(
            p1 - RationalMatrix.identity(da).scale(shift * top)
        ).symmetrize(),
    )


class TestWitnessExactness:
    @settings(max_examples=6)
    @given(st.integers(0, 10_000), st.integers(1, 3), st.integers(2, 50))
    def test_refuter_witnesses_violate_exactly(self, seed, n, shift):
        """Every witness point from a refutation must (a) lie in the
        queried region exactly and (b) violate the Lyapunov condition
        in exact rational arithmetic — via the certificate's matrix
        evaluation AND via the scalar polynomial-atom oracle, which
        must agree to the last bit."""
        scenario = generate_cegis_scenario("cegis-shared", n, seed)
        outcome = cegis_piecewise(scenario.system, synthesis="full")
        assert outcome.status == "validated"
        bad = _corrupt(outcome.certificate, shift)
        witnesses = refute_certificate(
            bad, scenario.system, max_boxes=8_000
        )
        assert any(w.condition == "pos1" for w in witnesses)
        variables = [Var(f"w{i}") for i in range(n)]
        for witness in witnesses:
            point = [witness.point[f"w{i}"] for i in range(n)]
            if witness.status == "sat":
                # An exact SAT witness satisfies every query atom,
                # including region membership — checked here in exact
                # rational arithmetic, no float in the chain.
                assert scenario.system.modes[1].region.contains(point)
                assert witness.violation >= 0
            if witness.condition != "pos1":
                continue
            # Differential: rebuild V_1 as a scalar polynomial atom and
            # evaluate through the SMT-term path.
            p1 = bad.p1_bar
            term = quadratic_form_term(
                p1.submatrix(range(n), range(n)), variables
            ) + affine_term(
                [2 * p1[i, n] for i in range(n)], variables, p1[n, n]
            )
            atom = Atom(term, Relation.LE)  # "V1 <= 0": the refutation
            assert witness.violation == -atom_violation(atom, witness.point)
            if witness.status == "sat":
                assert point_satisfies(atom, witness.point)

    def test_refuter_finds_decrease_violations(self):
        """Negating the Lie derivative's sign via a corrupted flow-free
        shortcut: a certificate whose ``P̄_1`` is flipped violates the
        decrease condition too."""
        scenario = generate_cegis_scenario("cegis-shared", 2, 5)
        outcome = cegis_piecewise(scenario.system, synthesis="full")
        flipped = dataclasses.replace(
            outcome.certificate,
            p1_bar=outcome.certificate.p1_bar.scale(Fraction(-1)),
        )
        witnesses = refute_certificate(flipped, scenario.system)
        assert {w.condition for w in witnesses} >= {"dec1"}


# ----------------------------------------------------------------------
# 4. Cut soundness + dedup
# ----------------------------------------------------------------------
class TestCuts:
    @settings(max_examples=20)
    @given(st.integers(0, 10_000))
    def test_sampled_cut_is_implied_by_parent(self, seed):
        """Rayleigh: a unit direction's 1x1 section of a satisfied
        matrix block is satisfied with at least the same margin."""
        rng = np.random.default_rng(seed)
        n, m = 4, 6
        f0 = rng.normal(size=(n, n))
        coefficients = [rng.normal(size=(n, n)) for _ in range(m)]
        block = LmiBlock(
            f0 + f0.T,
            [c + c.T for c in coefficients],
            margin=0.1,
        )
        x = rng.normal(size=m)
        cut = sampled_cut(block, rng.normal(size=n))
        assert cut.violation(x)[0] <= block.violation(x)[0] + 1e-9

    def test_fingerprint_canonicalizes_sign_and_scale(self):
        v = np.array([0.3, -1.2, 0.5])
        base = cut_fingerprint("pos1", v)
        assert cut_fingerprint("pos1", -v) == base
        assert cut_fingerprint("pos1", 7.5 * v) == base
        assert cut_fingerprint("pos1", v + 1e-9) == base
        assert cut_fingerprint("dec1", v) != base
        assert cut_fingerprint("pos1", np.array([0.3, 1.2, 0.5])) != base

    def test_loop_never_records_duplicate_cuts(self):
        """The stall guard: across a whole sampled campaign every
        accumulated cut has a distinct fingerprint, and the loop ends
        by validating — not by stalling on a repeated refutation."""
        scenario = generate_cegis_scenario("cegis-shared", 2, 9)
        outcome = cegis_piecewise(scenario.system, synthesis="sampled")
        assert outcome.status == "validated"
        # Fingerprints are recorded per round; flatten and check there
        # are no repeats (the seen-set contract).
        recorded = [
            fp for r in outcome.rounds for fp in r.new_cuts
        ]
        assert len(recorded) == len(set(recorded))

    def test_reinjecting_seed_directions_adds_nothing(self):
        """Feeding the loop's own seed directions back through the
        fingerprint gate must produce zero new cuts — the loop cannot
        stall by re-adding what it already sampled."""
        scenario = generate_cegis_scenario("cegis-shared", 3, 11)
        lmi = assemble_centered_lmi(scenario.system)
        seen = set()
        first_round = 0
        for direction in seed_directions(lmi):
            for block in (lmi.pos1, lmi.dec1):
                fingerprint = cut_fingerprint(block.name, direction)
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    first_round += 1
        assert first_round == len(seen) > 0
        # Replay the exact same directions (and perturbed/rescaled
        # copies): the gate admits nothing.
        second_round = 0
        for direction in seed_directions(lmi):
            for scale in (1.0, -3.0):
                for block in (lmi.pos1, lmi.dec1):
                    fingerprint = cut_fingerprint(
                        block.name, scale * np.asarray(direction, float)
                    )
                    if fingerprint not in seen:
                        seen.add(fingerprint)
                        second_round += 1
        assert second_round == 0


# ----------------------------------------------------------------------
# 5. The compiled-system cut API
# ----------------------------------------------------------------------
class TestWithCuts:
    @settings(max_examples=10)
    @given(st.integers(0, 10_000))
    def test_with_cuts_matches_fresh_compile(self, seed):
        scenario = generate_cegis_scenario("cegis-shared", 2, seed)
        lmi = assemble_centered_lmi(scenario.system)
        blocks = lmi.blocks("full")
        rng = np.random.default_rng(seed)
        cuts = [
            sampled_cut(lmi.pos1, rng.normal(size=lmi.da)),
            sampled_cut(lmi.dec1, rng.normal(size=lmi.da)),
        ]
        incremental = CompiledLmiSystem(blocks, lmi.dim).with_cuts(cuts)
        fresh = CompiledLmiSystem(blocks + cuts, lmi.dim)
        x = rng.normal(size=lmi.dim)
        np.testing.assert_allclose(
            incremental.violations(x), fresh.violations(x),
            rtol=0, atol=1e-12,
        )

    def test_initial_center_is_honoured(self):
        scenario = generate_cegis_scenario("cegis-shared", 2, 3)
        lmi = assemble_centered_lmi(scenario.system)
        compiled = CompiledLmiSystem(lmi.blocks("full"), lmi.dim)
        center = np.full(lmi.dim, 5.0)
        result = solve_lmi_ellipsoid(
            compiled.blocks, dimension=lmi.dim, initial_radius=200.0,
            max_iterations=20_000, raise_on_infeasible=False,
            compiled=compiled, initial_center=center,
        )
        assert result.feasible
        with pytest.raises(ValueError):
            solve_lmi_ellipsoid(
                compiled.blocks, dimension=lmi.dim,
                compiled=compiled,
                initial_center=np.zeros(lmi.dim + 1),
            )


# ----------------------------------------------------------------------
# 6. Provenance determinism + fuzz-family plumbing
# ----------------------------------------------------------------------
class TestProvenanceAndFamily:
    def test_digest_is_deterministic_and_time_free(self):
        scenario = generate_cegis_scenario("cegis-shared", 2, 21)
        first = cegis_piecewise(scenario.system, synthesis="sampled")
        second = cegis_piecewise(scenario.system, synthesis="sampled")
        assert first.digest() == second.digest()
        provenance = first.provenance()
        flat = repr(provenance)
        assert "time" not in flat and "violation" not in flat

    def test_snap_structured_surface_defect_is_exactly_zero(self):
        scenario = generate_cegis_scenario("cegis-shared", 3, 2)
        lmi = assemble_centered_lmi(scenario.system)
        result = solve_lmi_ellipsoid(
            lmi.blocks("full"), dimension=lmi.dim, initial_radius=200.0,
            max_iterations=20_000, raise_on_infeasible=False,
            compiled=CompiledLmiSystem(lmi.blocks("full"), lmi.dim),
        )
        certificate = snap_certificate(lmi, result.x)
        defect = certificate.surface_defect()
        assert all(
            defect[i, j] == 0
            for i in range(defect.rows)
            for j in range(defect.cols)
        )

    def test_cegis_specs_are_deterministic(self):
        assert cegis_specs(6, 0) == cegis_specs(6, 0)
        kinds = [s["kind"] for s in cegis_specs(4, 0)]
        assert set(kinds) == set(CEGIS_KINDS)

    def test_family_checker_passes_on_fresh_specs(self):
        for spec in cegis_specs(2, 123):
            record = check_cegis_scenario(**spec)
            assert not record.failed, (spec, record.disagreements,
                                       record.harness_errors)
