"""Tests for charpoly and Routh--Hurwitz (repro.exact.poly)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import (
    RationalMatrix,
    charpoly,
    is_hurwitz_matrix,
    is_hurwitz_polynomial,
    poly_eval,
    routh_table,
)

entries = st.integers(min_value=-10, max_value=10)


def square(n):
    return st.lists(
        st.lists(entries, min_size=n, max_size=n), min_size=n, max_size=n
    ).map(RationalMatrix)


class TestCharpoly:
    def test_2x2(self):
        # det(sI - [[1,2],[3,4]]) = s^2 - 5s - 2
        assert charpoly(RationalMatrix([[1, 2], [3, 4]])) == [
            Fraction(1),
            Fraction(-5),
            Fraction(-2),
        ]

    def test_diagonal(self):
        # (s-1)(s-2) = s^2 - 3 s + 2
        assert charpoly(RationalMatrix.diagonal([1, 2])) == [1, -3, 2]

    def test_non_square(self):
        with pytest.raises(ValueError):
            charpoly(RationalMatrix([[1, 2]]))

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=4).flatmap(square))
    def test_cayley_hamilton(self, m):
        """A matrix annihilates its own characteristic polynomial."""
        coeffs = charpoly(m)
        acc = RationalMatrix.zeros(m.rows, m.rows)
        power = RationalMatrix.identity(m.rows)
        for c in reversed(coeffs):
            acc = acc + power.scale(c)
            power = power @ m
        assert acc.is_zero()

    @settings(max_examples=30)
    @given(square(3))
    def test_constant_term_is_det_sign(self, m):
        from repro.exact import bareiss_determinant

        coeffs = charpoly(m)
        assert coeffs[-1] == -bareiss_determinant(m) * (-1) ** (m.rows + 1)


class TestPolyEval:
    def test_horner(self):
        assert poly_eval([1, -5, -2], 6) == 36 - 30 - 2

    def test_empty_is_zero(self):
        assert poly_eval([], 3) == 0


class TestRouth:
    def test_stable_quadratic(self):
        assert is_hurwitz_polynomial([1, 3, 2])  # roots -1, -2

    def test_unstable_quadratic(self):
        assert not is_hurwitz_polynomial([1, -3, 2])  # roots 1, 2

    def test_marginal(self):
        assert not is_hurwitz_polynomial([1, 0, 1])  # roots +-i

    def test_classic_cubic(self):
        # s^3 + s^2 + 2 s + 8: Routh first column goes negative.
        assert not is_hurwitz_polynomial([1, 1, 2, 8])
        assert is_hurwitz_polynomial([1, 6, 11, 6])  # (s+1)(s+2)(s+3)

    def test_negative_leading_normalized(self):
        assert is_hurwitz_polynomial([-1, -3, -2])

    def test_degree_zero(self):
        assert is_hurwitz_polynomial([5])

    def test_zero_leading_raises(self):
        with pytest.raises(ValueError):
            is_hurwitz_polynomial([0, 1])
        with pytest.raises(ValueError):
            is_hurwitz_polynomial([])

    def test_routh_table_shape(self):
        table = routh_table([1, 6, 11, 6])
        assert len(table) == 4
        assert [row[0] for row in table] == [1, 6, 10, 6]

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=5))
    def test_product_of_stable_linear_factors(self, roots):
        """prod (s + r) with r > 0 is always Hurwitz."""
        coeffs = [Fraction(1)]
        for r in roots:
            new = [Fraction(0)] * (len(coeffs) + 1)
            for i, c in enumerate(coeffs):
                new[i] += c
                new[i + 1] += c * r
            coeffs = new
        assert is_hurwitz_polynomial(coeffs)


class TestHurwitzMatrix:
    def test_stable(self):
        assert is_hurwitz_matrix(RationalMatrix([[-1, 0], [0, -2]]))

    def test_unstable(self):
        assert not is_hurwitz_matrix(RationalMatrix([[1, 0], [0, -2]]))

    def test_rotation_is_marginal(self):
        assert not is_hurwitz_matrix(RationalMatrix([[0, 1], [-1, 0]]))

    @settings(max_examples=20)
    @given(square(3))
    def test_agrees_with_numpy_eigenvalues(self, m):
        eig = np.linalg.eigvals(m.to_numpy())
        margin = float(np.max(eig.real))
        if abs(margin) < 1e-9:
            return  # too close to the axis for float ground truth
        assert is_hurwitz_matrix(m) == (margin < 0)
