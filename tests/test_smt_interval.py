"""Tests for sound interval arithmetic (repro.smt.interval)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import Interval

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def intervals():
    return st.tuples(finite, finite).map(
        lambda ab: Interval(min(ab), max(ab))
    )


def exact_points(iv):
    """Rational sample points inside an interval."""
    lo, hi = Fraction(iv.lo), Fraction(iv.hi)
    return [lo, hi, (lo + hi) / 2]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_point_of_fraction_encloses(self):
        iv = Interval.point(Fraction(1, 3))
        assert Fraction(iv.lo) <= Fraction(1, 3) <= Fraction(iv.hi)
        assert iv.width < 1e-15

    def test_point_of_exact_float_is_tight(self):
        iv = Interval.point(0.25)
        assert iv.lo == iv.hi == 0.25

    def test_whole(self):
        iv = Interval.whole()
        assert iv.lo == -math.inf and iv.hi == math.inf
        assert iv.contains(10**20)

    def test_make(self):
        iv = Interval.make(Fraction(1, 3), Fraction(2, 3))
        assert iv.contains(Fraction(1, 2))


class TestQueries:
    def test_contains(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(Fraction(1, 2))
        assert not iv.contains(2)

    def test_midpoint_finite(self):
        assert Interval(0.0, 2.0).midpoint == 1.0

    def test_midpoint_half_infinite(self):
        assert Interval(-math.inf, 5.0).midpoint <= 4.0
        assert Interval(3.0, math.inf).midpoint >= 3.0
        assert Interval.whole().midpoint == 0.0

    def test_intersect(self):
        assert Interval(0.0, 2.0).intersect(Interval(1.0, 3.0)) == Interval(1.0, 2.0)
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)) is None

    def test_split_covers(self):
        left, right = Interval(0.0, 1.0).split()
        assert left.lo == 0.0 and right.hi == 1.0
        assert left.hi == right.lo

    def test_sign_queries(self):
        assert Interval(0.5, 1.0).certainly_positive()
        assert Interval(0.0, 1.0).certainly_nonnegative()
        assert not Interval(0.0, 1.0).certainly_positive()
        assert Interval(-2.0, -1.0).certainly_negative()
        assert Interval(-2.0, 0.0).certainly_nonpositive()
        assert Interval(0.5, 1.0).certainly_nonzero()
        assert Interval(-1.0, -0.5).certainly_nonzero()
        assert not Interval(-1.0, 1.0).certainly_nonzero()


class TestArithmeticSoundness:
    """Exact rational results must always land inside the float interval."""

    @settings(max_examples=60)
    @given(intervals(), intervals())
    def test_add_encloses(self, a, b):
        result = a + b
        for pa in exact_points(a):
            for pb in exact_points(b):
                assert result.contains(pa + pb)

    @settings(max_examples=60)
    @given(intervals(), intervals())
    def test_sub_encloses(self, a, b):
        result = a - b
        for pa in exact_points(a):
            for pb in exact_points(b):
                assert result.contains(pa - pb)

    @settings(max_examples=60)
    @given(intervals(), intervals())
    def test_mul_encloses(self, a, b):
        result = a * b
        for pa in exact_points(a):
            for pb in exact_points(b):
                assert result.contains(pa * pb)

    @settings(max_examples=60)
    @given(intervals(), st.integers(min_value=0, max_value=5))
    def test_pow_encloses(self, a, k):
        result = a**k
        for pa in exact_points(a):
            assert result.contains(pa**k)

    def test_even_pow_through_zero_floors_at_zero(self):
        assert (Interval(-2.0, 3.0) ** 2).lo == 0.0

    def test_pow_zero(self):
        assert Interval(-1.0, 1.0) ** 0 == Interval(1.0, 1.0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Interval(1.0, 2.0) ** (-1)

    def test_neg(self):
        assert -Interval(1.0, 2.0) == Interval(-2.0, -1.0)

    def test_scale(self):
        iv = Interval(1.0, 2.0).scale(Fraction(1, 2))
        assert iv.contains(Fraction(1, 2)) and iv.contains(1)

    def test_mul_with_infinity(self):
        result = Interval(0.0, 1.0) * Interval(0.0, math.inf)
        assert result.lo <= 0.0 and result.hi == math.inf
