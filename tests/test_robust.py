"""Tests for the robustness analysis (repro.robust)."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.exact import RationalMatrix
from repro.robust import (
    EpsilonInputs,
    cap_fraction,
    check_level_robust_smt,
    ellipsoid_volume,
    epsilon_radius,
    log10_truncated_ellipsoid_volume,
    surface_geometry,
    synthesize_robust_level,
    truncated_ellipsoid_volume,
    unit_ball_volume,
)
from repro.systems import AffineSystem, HalfSpace


def planar_mode():
    """Mode with region {x >= -1}, flow to the origin, V = x^2 + y^2."""
    flow = AffineSystem([[-1.0, 0.0], [0.0, -1.0]], [0.0, 0.0])
    halfspace = HalfSpace((1, 0), 1)  # x + 1 >= 0
    p = RationalMatrix.identity(2)
    return flow, halfspace, p


class TestSurfaceGeometry:
    def test_basic_quantities(self):
        flow, halfspace, _ = planar_mode()
        geometry = surface_geometry(halfspace, flow)
        assert geometry.normal == (Fraction(1), Fraction(0))
        # g^T A = (-1, 0); tangential part (orthogonal to g) is zero.
        assert geometry.derivative_row == (Fraction(-1), Fraction(0))
        assert geometry.constant_on_surface

    def test_inward_derivative(self):
        flow, halfspace, _ = planar_mode()
        geometry = surface_geometry(halfspace, flow)
        # On the surface x = -1 the flow has x' = 1 > 0: inward.
        assert geometry.inward_derivative([-1, 5]) == 1

    def test_distance(self):
        flow, halfspace, _ = planar_mode()
        geometry = surface_geometry(halfspace, flow)
        assert geometry.distance_to_surface([0.0, 7.0]) == pytest.approx(1.0)

    def test_non_constant_case(self):
        flow = AffineSystem([[-1.0, 2.0], [0.0, -1.0]], [0.0, 0.0])
        geometry = surface_geometry(HalfSpace((1, 0), 1), flow)
        # g^T A = (-1, 2): tangential component (0, 2) != 0.
        assert not geometry.constant_on_surface
        assert geometry.tangential_gradient == (Fraction(0), Fraction(2))


class TestRobustLevel:
    def test_whole_region_when_flow_constant_inward(self):
        flow, halfspace, p = planar_mode()
        region = synthesize_robust_level(flow, halfspace, p)
        assert region.case == "whole-region"
        assert not region.bounded
        assert region.k_float() == math.inf

    def test_surface_min_when_flow_constant_outward(self):
        # Flow x' = +x pushes outward everywhere on x = -1 (x' = -1 < 0
        # there)... use x' = -x + 2y with region x >= -1, eq at origin.
        flow = AffineSystem([[-1.0, 0.0], [0.0, -1.0]], [-2.0, 0.0])
        # equilibrium (-2, 0) is OUTSIDE region x >= -1: invalid setup.
        with pytest.raises(ValueError):
            synthesize_robust_level(
                flow, HalfSpace((1, 0), 1), RationalMatrix.identity(2)
            )

    def test_kkt_corner_case(self):
        # Region x >= -1, eq at origin, flow x' = -x + 4y, y' = -y:
        # on the surface x = -1, inward derivative = 1 + 4y: outward for
        # y < -1/4. Minimize x^2 + y^2 there: corner at (-1, -1/4).
        flow = AffineSystem([[-1.0, 4.0], [0.0, -1.0]], [0.0, 0.0])
        halfspace = HalfSpace((1, 0), 1)
        region = synthesize_robust_level(
            flow, halfspace, RationalMatrix.identity(2)
        )
        assert region.case == "kkt-corner"
        assert region.k == Fraction(17, 16)  # 1 + 1/16
        assert region.minimizer == [Fraction(-1), Fraction(-1, 4)]

    def test_surface_min_case(self):
        # Flow xdot = -x, ydot = -y with region x >= -1: derivative on
        # surface = 1 everywhere (constant inward) -> whole region. Make
        # it non-constant but inward-at-minimizer: x' = -x - 0.1y.
        flow = AffineSystem([[-1.0, -0.1], [0.0, -1.0]], [0.0, 0.0])
        halfspace = HalfSpace((1, 0), 1)
        region = synthesize_robust_level(
            flow, halfspace, RationalMatrix.identity(2)
        )
        # Surface minimizer is (-1, 0); inward derivative there is
        # 1 - 0 = 1 > 0... then the KKT corner applies.
        assert region.case in ("surface-min", "kkt-corner")
        assert region.bounded
        assert region.k >= 1  # at least the distance^2 to the surface

    def test_level_is_min_over_outward_set(self):
        """Property: V(minimizer) == k and the minimizer is on the surface
        with non-inward flow."""
        flow = AffineSystem([[-2.0, 3.0], [0.0, -4.0]], [1.0, 2.0])
        halfspace = HalfSpace((1, 1), 20)
        p = RationalMatrix([[3, 1], [1, 2]])
        region = synthesize_robust_level(flow, halfspace, p)
        assert region.bounded
        w = region.minimizer
        geometry = region.geometry
        # On the surface:
        value = sum(g * x for g, x in zip(geometry.normal, w)) + geometry.offset
        assert value == 0
        assert geometry.inward_derivative(w) <= 0

    def test_smt_certification_brackets_level(self):
        flow = AffineSystem([[-1.0, 4.0], [0.0, -1.0]], [0.0, 0.0])
        halfspace = HalfSpace((1, 0), 1)
        p = RationalMatrix.identity(2)
        region = synthesize_robust_level(flow, halfspace, p)
        w_eq = [Fraction(0), Fraction(0)]
        below = check_level_robust_smt(
            flow, halfspace, p, w_eq, region.k * Fraction(99, 100),
            box_radius=5.0, max_boxes=50_000,
        )
        above = check_level_robust_smt(
            flow, halfspace, p, w_eq, region.k * Fraction(101, 100),
            box_radius=5.0, max_boxes=50_000,
        )
        assert below is True
        assert above is False


class TestVolume:
    def test_unit_ball_known(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 * math.pi / 3.0)

    def test_cap_fraction_extremes(self):
        assert cap_fraction(-1.0, 3) == 1.0
        assert cap_fraction(1.0, 3) == 0.0
        assert cap_fraction(0.0, 5) == pytest.approx(0.5)

    def test_cap_fraction_symmetry(self):
        for t in (0.2, 0.6, 0.9):
            assert cap_fraction(t, 4) + cap_fraction(-t, 4) == pytest.approx(1.0)

    def test_cap_fraction_1d(self):
        # In 1-D the "ball" is [-1, 1]: fraction with x >= t is (1-t)/2.
        assert cap_fraction(0.5, 1) == pytest.approx(0.25)

    def test_ellipsoid_volume_sphere(self):
        # P = I, k = r^2: volume of radius-r ball.
        assert ellipsoid_volume(np.eye(3), 4.0) == pytest.approx(
            unit_ball_volume(3) * 8.0
        )

    def test_ellipsoid_volume_scaling(self):
        p = np.diag([4.0, 1.0])  # semi-axes 1/2 and 1 at k=1
        assert ellipsoid_volume(p, 1.0) == pytest.approx(math.pi / 2.0)

    def test_volume_validations(self):
        with pytest.raises(ValueError):
            ellipsoid_volume(np.eye(2), -1.0)
        with pytest.raises(ValueError):
            ellipsoid_volume(-np.eye(2), 1.0)

    def test_truncated_volume_halves_at_center_cut(self):
        p = np.eye(2)
        full = ellipsoid_volume(p, 1.0)
        half = truncated_ellipsoid_volume(
            p, 1.0, np.zeros(2), np.array([1.0, 0.0]), 0.0
        )
        assert half == pytest.approx(full / 2.0)

    def test_truncated_volume_untouched_when_far(self):
        p = np.eye(2)
        vol = truncated_ellipsoid_volume(
            p, 1.0, np.zeros(2), np.array([1.0, 0.0]), 100.0
        )
        assert vol == pytest.approx(ellipsoid_volume(p, 1.0))

    def test_log10_matches_plain(self):
        p = np.diag([2.0, 3.0])
        vol = truncated_ellipsoid_volume(
            p, 2.0, np.zeros(2), np.array([0.0, 1.0]), 0.5
        )
        log_vol = log10_truncated_ellipsoid_volume(
            p, 2.0, np.zeros(2), np.array([0.0, 1.0]), 0.5
        )
        assert 10.0**log_vol == pytest.approx(vol, rel=1e-9)

    def test_zero_level(self):
        assert truncated_ellipsoid_volume(
            np.eye(2), 0.0, np.zeros(2), np.array([1.0, 0.0]), 1.0
        ) == 0.0


class TestEpsilon:
    def make_inputs(self, constant=False):
        if constant:
            flow = AffineSystem([[-1.0, 0.0], [0.0, -1.0]], [0.0, 0.0])
        else:
            flow = AffineSystem([[-1.0, 4.0], [0.0, -1.0]], [0.0, 0.0])
        halfspace = HalfSpace((1, 0), 1)
        geometry = surface_geometry(halfspace, flow)
        b_cl = np.array([[1.0, 0.0], [0.0, 1.0]])
        return EpsilonInputs(
            flow_a=flow.a,
            b_cl=b_cl,
            p=np.eye(2),
            k=1.0,
            w_eq=np.zeros(2),
            geometry=geometry,
        )

    def test_constant_case(self):
        inputs = self.make_inputs(constant=True)
        # dist = 1, beta = ||A^{-1}B|| = 1 -> epsilon = 1.
        assert epsilon_radius(inputs) == pytest.approx(1.0)

    def test_general_case_positive_and_bounded(self):
        inputs = self.make_inputs(constant=False)
        eps = epsilon_radius(inputs)
        assert 0 < eps <= inputs.delta / inputs.beta

    def test_components(self):
        inputs = self.make_inputs(constant=False)
        assert inputs.delta == pytest.approx(1.0)
        assert inputs.mu == pytest.approx(1.0)  # P = I
        assert inputs.alpha == pytest.approx(1.0)
        assert inputs.gamma > 0

    def test_gamma_undefined_in_constant_case(self):
        inputs = self.make_inputs(constant=True)
        with pytest.raises(ValueError):
            _ = inputs.gamma

    def test_mu_requires_pd(self):
        inputs = self.make_inputs()
        inputs.p = -np.eye(2)
        with pytest.raises(ValueError):
            _ = inputs.mu
