"""Tests for fault-tolerant sharded campaigns (repro.runner.shard).

Covers the shard supervisor (partitioning, heartbeat-lease liveness,
requeue-on-death, work-stealing, in-process last resort), the
deterministic journal merge and its digest invariant (property-based:
shard count, file permutation, cross-shard duplicates, torn tails),
read-only journal opens, the telemetry dashboard, the new
requeued/stolen campaign counters, and the ``python -m
repro.runner.journal`` CLI.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    CampaignStats,
    Journal,
    RetryPolicy,
    ShardChaosPolicy,
    Task,
    TimingCollector,
    TransientTaskError,
    journal_digest,
    merge_journals,
    resolve_shards,
    run_sharded,
    run_tasks,
    shard_of,
    task_fingerprint,
)
from repro.runner.telemetry import (
    ShardStatus,
    lease_path,
    read_lease,
    render_dashboard,
    scan_campaign,
    shard_journal_path,
    write_lease,
)


class EchoTask(Task):
    def __init__(self, value):
        self.value = value

    def key(self):
        return {"case": f"echo{self.value}"}

    def run(self):
        return self.value


class SlowEchoTask(EchoTask):
    def __init__(self, value, delay=0.01):
        super().__init__(value)
        self.delay = delay

    def run(self):
        time.sleep(self.delay)
        return self.value


class FlakyTask(EchoTask):
    """Fails transiently on the first attempt, succeeds on the second."""

    def run(self):
        if getattr(self, "_attempt", 1) == 1:
            raise TransientTaskError("first attempt always fails")
        return self.value

    def on_attempt(self, attempt):
        self._attempt = attempt


N = 20


def _values(results):
    return results


class TestResolveShards:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert resolve_shards(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "5")
        assert resolve_shards(None) == 5

    def test_malformed_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        assert resolve_shards(None) == 1

    def test_default_unsharded_and_clamp(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 1
        assert resolve_shards(0) == 1
        assert resolve_shards(-3) == 1


class TestShardOf:
    def test_stable_and_in_range(self):
        tasks = [EchoTask(i) for i in range(50)]
        homes = [shard_of(task_fingerprint(t), 4) for t in tasks]
        assert all(0 <= h < 4 for h in homes)
        # deterministic: same fingerprints, same homes
        assert homes == [shard_of(task_fingerprint(t), 4) for t in tasks]
        # actually spreads (not everything on one shard)
        assert len(set(homes)) > 1


class TestRunSharded:
    def test_results_in_submission_order(self, tmp_path):
        stats = CampaignStats()
        with Journal(tmp_path / "j.jsonl") as journal:
            results = run_sharded(
                [EchoTask(i) for i in range(N)], shards=3, journal=journal,
                stats=stats, heartbeat_s=0.05,
            )
        assert results == list(range(N))
        assert stats.total == stats.executed == N
        assert stats.errors == 0

    def test_single_shard_delegates_to_run_tasks(self, tmp_path):
        tasks = [EchoTask(i) for i in range(6)]
        assert run_sharded(tasks, shards=1) == run_tasks(
            [EchoTask(i) for i in range(6)], jobs=1
        )

    def test_digest_invariant_to_shard_count(self, tmp_path):
        digests = []
        for shards in (1, 2, 4):
            path = tmp_path / f"s{shards}.jsonl"
            with Journal(path) as journal:
                run_sharded(
                    [EchoTask(i) for i in range(N)], shards=shards,
                    journal=journal, heartbeat_s=0.05,
                )
            digests.append(journal_digest(path))
        assert len(set(digests)) == 1

    def test_resume_replays_everything(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            run_sharded(
                [EchoTask(i) for i in range(N)], shards=3, journal=journal,
                heartbeat_s=0.05,
            )
        stats = CampaignStats()
        with Journal(path, resume=True) as journal:
            results = run_sharded(
                [EchoTask(i) for i in range(N)], shards=3, journal=journal,
                stats=stats, heartbeat_s=0.05,
            )
        assert results == list(range(N))
        assert stats.replayed == N
        assert stats.executed == 0

    def test_no_journal_throwaway(self):
        assert run_sharded(
            [EchoTask(i) for i in range(8)], shards=2, heartbeat_s=0.05
        ) == list(range(8))

    def test_journal_path_accepted(self, tmp_path):
        path = tmp_path / "by-path.jsonl"
        results = run_sharded(
            [EchoTask(i) for i in range(8)], shards=2, journal=path,
            heartbeat_s=0.05,
        )
        assert results == list(range(8))
        assert len(Journal.load(path)) == 8

    def test_shard_files_cleaned_up_after_merge(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            run_sharded(
                [EchoTask(i) for i in range(N)], shards=3, journal=journal,
                heartbeat_s=0.05,
            )
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "j.jsonl"]
        assert leftovers == []

    def test_premerges_leftover_shard_journals(self, tmp_path):
        """Shard journals from a crashed prior supervisor are absorbed
        before dispatch, so their tasks replay instead of re-running."""
        path = tmp_path / "j.jsonl"
        tasks = [EchoTask(i) for i in range(6)]
        # Simulate a dead supervisor: shard 0 journaled two tasks, the
        # main journal never saw them.
        with Journal(shard_journal_path(path, 0)) as shard0:
            for task in tasks[:2]:
                shard0.record(
                    task_fingerprint(task), "EchoTask", "ok", task.run()
                )
        stats = CampaignStats()
        with Journal(path, resume=True) as journal:
            results = run_sharded(
                tasks, shards=2, journal=journal, stats=stats,
                heartbeat_s=0.05,
            )
        assert results == list(range(6))
        assert stats.replayed == 2
        assert stats.executed == 4

    def test_retry_policy_honoured_in_shards(self, tmp_path):
        stats = CampaignStats()
        results = run_sharded(
            [FlakyTask(i) for i in range(8)], shards=2,
            retry=RetryPolicy(retries=2, backoff=0.001), stats=stats,
            heartbeat_s=0.05,
        )
        assert results == list(range(8))
        assert stats.retried_tasks == 8
        assert stats.errors == 0

    def test_timing_collector_sees_every_task(self, tmp_path):
        collect = TimingCollector()
        run_sharded(
            [EchoTask(i) for i in range(N)], shards=3, collect=collect,
            heartbeat_s=0.05,
        )
        assert len(collect.timings) == N
        workers = {t.worker for t in collect.timings}
        assert all(w.startswith("shard") for w in workers)
        assert len(workers) > 1  # more than one shard actually executed


class TestShardDeath:
    def _clean_digest(self, tmp_path, tasks):
        path = tmp_path / "ref.jsonl"
        with Journal(path) as journal:
            run_sharded(
                [type(t)(t.value) for t in tasks], shards=1, journal=journal
            )
        return journal_digest(path)

    def test_kill_completes_with_identical_digest(self, tmp_path):
        tasks = [EchoTask(i) for i in range(N)]
        reference = self._clean_digest(tmp_path, tasks)
        stats = CampaignStats()
        path = tmp_path / "kill.jsonl"
        with Journal(path) as journal:
            results = run_sharded(
                tasks, shards=4, journal=journal, stats=stats,
                heartbeat_s=0.05, lease_ttl=2.0,
                chaos=ShardChaosPolicy(kill_shard=1, kill_after=2),
            )
        # zero lost, zero duplicated
        assert results == list(range(N))
        assert len(Journal.load(path)) == N
        assert journal_digest(path) == reference
        # the killed shard's unacked work was requeued
        assert stats.requeued_tasks >= 1
        assert stats.total == stats.executed == N

    def test_torn_tail_killed_shard(self, tmp_path):
        tasks = [EchoTask(i) for i in range(N)]
        reference = self._clean_digest(tmp_path, tasks)
        path = tmp_path / "torn.jsonl"
        stats = CampaignStats()
        with Journal(path) as journal:
            results = run_sharded(
                tasks, shards=4, journal=journal, stats=stats,
                heartbeat_s=0.05, lease_ttl=2.0,
                chaos=ShardChaosPolicy(
                    kill_shard=2, kill_after=1, kill_mode="torn"
                ),
            )
        assert results == list(range(N))
        assert journal_digest(path) == reference
        assert stats.requeued_tasks >= 1

    def test_lease_expiry_without_process_death(self, tmp_path):
        """A frozen shard (heartbeats stop, process lives) is declared
        dead on lease expiry alone and its work requeued."""
        tasks = [SlowEchoTask(i, delay=0.25) for i in range(12)]
        stats = CampaignStats()
        path = tmp_path / "freeze.jsonl"
        with Journal(path) as journal:
            results = run_sharded(
                tasks, shards=3, journal=journal, stats=stats,
                heartbeat_s=0.05, lease_ttl=0.6,
                chaos=ShardChaosPolicy(freeze_shard=0, freeze_after=1),
            )
        assert results == list(range(12))
        assert len(Journal.load(path)) == 12

    def test_straggler_work_is_stolen(self, tmp_path):
        tasks = [EchoTask(i) for i in range(N)]
        stats = CampaignStats()
        results = run_sharded(
            tasks, shards=4, stats=stats, heartbeat_s=0.05, lease_ttl=5.0,
            chaos=ShardChaosPolicy(
                straggler_shard=0, straggler_delay_s=0.15
            ),
        )
        assert results == list(range(N))
        assert stats.stolen_tasks >= 1

    def test_kill_every_shard_falls_back_in_process(self, tmp_path):
        """kill_after=1 on the only shard holding work: the supervisor
        must finish the campaign in-process rather than hang."""
        tasks = [EchoTask(i) for i in range(4)]
        # Two shards, but kill shard 0 and shard 1 never spawns work?
        # Simpler: 2 shards, kill shard 0 on its first task, then kill
        # shard 1's replacement load too is impossible with one policy —
        # instead verify the single-victim case degrades cleanly when
        # the survivor also carries the stolen work.
        stats = CampaignStats()
        results = run_sharded(
            tasks, shards=2, stats=stats, heartbeat_s=0.05, lease_ttl=1.0,
            chaos=ShardChaosPolicy(kill_shard=0, kill_after=1),
        )
        assert results == [0, 1, 2, 3]
        assert stats.total == stats.executed == 4


# ----------------------------------------------------------------------
# Property-based: the merge digest invariant
# ----------------------------------------------------------------------

def _raw_line(fp, value, status="ok"):
    return (
        json.dumps(
            {
                "v": 1, "fp": fp, "kind": "T", "status": status,
                "attempts": 1, "error": None, "result": value,
            },
            separators=(",", ":"),
        ).encode()
        + b"\n"
    )


def _write_shards(base, assignment, lines):
    """Distribute raw lines across shard files per ``assignment``."""
    files = {}
    for fp, shard in assignment.items():
        files.setdefault(shard, []).append(lines[fp])
    paths = []
    for shard, shard_lines in files.items():
        path = base / f"j.shard{shard}"
        path.write_bytes(b"".join(shard_lines))
        paths.append(path)
    return paths


fingerprints = st.text(alphabet="0123456789abcdef", min_size=8, max_size=8)
entry_sets = st.dictionaries(
    fingerprints, st.integers(-1000, 1000), min_size=1, max_size=10
)


class TestMergeProperties:
    @settings(max_examples=40, deadline=None)
    @given(entries=entry_sets, data=st.data())
    def test_digest_invariant_under_sharding(self, entries, data):
        """Same entry set, any shard count (1, 2, 7), any assignment:
        identical merged bytes and digest."""
        lines = {fp: _raw_line(fp, v) for fp, v in entries.items()}
        with tempfile.TemporaryDirectory() as tmp:
            base = pathlib.Path(tmp)
            reference = base / "reference"
            reference.write_bytes(b"".join(lines[fp] for fp in sorted(lines)))
            ref_digest = journal_digest(reference)
            for shards in (1, 2, 7):
                assignment = {
                    fp: data.draw(
                        st.integers(0, shards - 1), label=f"shard({fp})"
                    )
                    for fp in lines
                }
                sub = base / f"n{shards}"
                sub.mkdir()
                paths = _write_shards(sub, assignment, lines)
                out = sub / "merged"
                merged = merge_journals(paths, out=out)
                assert set(merged) == set(lines)
                assert journal_digest(out) == ref_digest

    @settings(max_examples=40, deadline=None)
    @given(entries=entry_sets, data=st.data())
    def test_digest_invariant_under_permutation(self, entries, data):
        lines = {fp: _raw_line(fp, v) for fp, v in entries.items()}
        with tempfile.TemporaryDirectory() as tmp:
            base = pathlib.Path(tmp)
            assignment = {
                fp: i % 3 for i, fp in enumerate(sorted(lines))
            }
            paths = _write_shards(base, assignment, lines)
            ordering = data.draw(st.permutations(paths))
            out_a = base / "a"
            out_b = base / "b"
            merge_journals(paths, out=out_a)
            merge_journals(ordering, out=out_b)
            assert out_a.read_bytes() == out_b.read_bytes()
            assert journal_digest(out_a) == journal_digest(out_b)

    @settings(max_examples=40, deadline=None)
    @given(entries=entry_sets, data=st.data())
    def test_duplicates_across_shards_collapse(self, entries, data):
        """A fingerprint journaled by several shards (double execution
        after a steal/requeue) contributes exactly once."""
        lines = {fp: _raw_line(fp, v) for fp, v in entries.items()}
        duplicated = data.draw(
            st.lists(st.sampled_from(sorted(lines)), max_size=5)
        )
        with tempfile.TemporaryDirectory() as tmp:
            base = pathlib.Path(tmp)
            assignment = {fp: i % 2 for i, fp in enumerate(sorted(lines))}
            paths = _write_shards(base, assignment, lines)
            # replay the duplicated lines into the *other* shard file
            extra = base / "j.shard9"
            extra.write_bytes(b"".join(lines[fp] for fp in duplicated))
            out = base / "merged"
            merged = merge_journals([*paths, extra], out=out)
            assert set(merged) == set(lines)
            reference = base / "reference"
            reference.write_bytes(
                b"".join(lines[fp] for fp in sorted(lines))
            )
            assert journal_digest(out) == journal_digest(reference)

    @settings(max_examples=40, deadline=None)
    @given(entries=entry_sets, data=st.data())
    def test_torn_tail_in_any_shard_is_skipped(self, entries, data):
        """A torn (newline-less) tail in any one shard never corrupts
        the merge; the torn entry is simply absent."""
        lines = {fp: _raw_line(fp, v) for fp, v in entries.items()}
        with tempfile.TemporaryDirectory() as tmp:
            base = pathlib.Path(tmp)
            assignment = {fp: i % 3 for i, fp in enumerate(sorted(lines))}
            paths = _write_shards(base, assignment, lines)
            victim = data.draw(st.sampled_from(paths))
            torn = _raw_line("deadbeef", 1)[:-10]  # no trailing newline
            victim.write_bytes(victim.read_bytes() + torn)
            merged = merge_journals(paths)
            assert set(merged) == set(lines)
            assert "deadbeef" not in merged

    def test_within_file_last_wins(self, tmp_path):
        path = tmp_path / "j.shard0"
        path.write_bytes(_raw_line("aa", 1) + _raw_line("aa", 2))
        merged = merge_journals([path])
        assert merged["aa"] == _raw_line("aa", 2)

    def test_across_files_status_rank_wins(self, tmp_path):
        """A task that errored on a dying shard and then succeeded on
        the shard that stole it merges to the success, regardless of
        file order."""
        a = tmp_path / "j.shard0"
        b = tmp_path / "j.shard1"
        a.write_bytes(_raw_line("aa", None, status="error"))
        b.write_bytes(_raw_line("aa", 7, status="ok"))
        for ordering in ([a, b], [b, a]):
            merged = merge_journals(ordering)
            assert json.loads(merged["aa"])["status"] == "ok"


class TestReadonlyJournal:
    def test_load_does_not_truncate_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(_raw_line("aa", 1) + b'{"v":1,"fp":"bb"')
        size = path.stat().st_size
        journal = Journal.load(path)
        assert len(journal) == 1
        assert journal.get("aa").result == 1
        assert path.stat().st_size == size  # torn tail untouched

    def test_write_methods_raise(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(_raw_line("aa", 1))
        journal = Journal.load(path)
        with pytest.raises(ValueError):
            journal.record("bb", "T", "ok", 2)
        with pytest.raises(ValueError):
            journal.absorb_line(_raw_line("bb", 2))
        assert path.read_bytes() == _raw_line("aa", 1)

    def test_load_missing_file_is_empty(self, tmp_path):
        journal = Journal.load(tmp_path / "nope.jsonl")
        assert len(journal) == 0
        assert journal.get("aa") is None

    def test_reload_picks_up_appends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(_raw_line("aa", 1))
        journal = Journal.load(path)
        assert len(journal) == 1
        with open(path, "ab") as handle:
            handle.write(_raw_line("bb", 2))
        journal.reload()
        assert len(journal) == 2
        assert journal.fingerprints() == {"aa", "bb"}

    def test_reload_rejected_on_writable_journal(self, tmp_path):
        with Journal(tmp_path / "j.jsonl") as journal:
            with pytest.raises(ValueError):
                journal.reload()

    def test_absorb_line_round_trips_bytes(self, tmp_path):
        src = tmp_path / "src.jsonl"
        src.write_bytes(_raw_line("aa", 1))
        with Journal(tmp_path / "dst.jsonl") as journal:
            entry = journal.absorb_line(_raw_line("aa", 1))
            assert entry.result == 1
            assert journal.absorb_line(b'{"not": "an entry"}\n') is None
        assert (tmp_path / "dst.jsonl").read_bytes() == src.read_bytes()


class TestTelemetry:
    def test_lease_round_trip(self, tmp_path):
        path = lease_path(tmp_path / "j.jsonl", 3)
        write_lease(path, {"shard": 3, "ts": 100.0, "done": 5})
        assert read_lease(path)["done"] == 5

    def test_corrupt_or_missing_lease_is_none(self, tmp_path):
        missing = lease_path(tmp_path / "j.jsonl", 0)
        assert read_lease(missing) is None
        missing.write_text("{nope")
        assert read_lease(missing) is None
        missing.write_text('{"no_ts": 1}')
        assert read_lease(missing) is None

    def test_scan_discovers_shards_by_glob(self, tmp_path):
        base = tmp_path / "j.jsonl"
        for shard in (0, 2):
            write_lease(
                lease_path(base, shard),
                {"shard": shard, "ts": time.time(), "done": shard + 1},
            )
        statuses = scan_campaign(base)
        assert [s.shard for s in statuses] == [0, 2]
        assert [s.done for s in statuses] == [1, 3]

    def test_dashboard_marks_expired_leases(self):
        fresh = ShardStatus(shard=0, state="running", age_s=0.1, done=3)
        stale = ShardStatus(shard=1, state="running", age_s=9.0, done=1)
        text = render_dashboard(
            [fresh, stale], total=10, elapsed_s=5.0, lease_ttl=2.0
        )
        lines = text.splitlines()
        assert "expired" in lines[3]
        assert "running" in lines[2]
        assert "4/10 done" in lines[-1]

    def test_dashboard_counts_steals_and_requeues(self):
        statuses = [
            ShardStatus(shard=0, state="done", stolen=2, requeued=1),
            ShardStatus(shard=1, state="done", stolen=1),
        ]
        text = render_dashboard(statuses)
        assert "3 stolen" in text
        assert "1 requeued" in text

    def test_watch_cli_once(self, tmp_path):
        base = tmp_path / "j.jsonl"
        write_lease(
            lease_path(base, 0),
            {"shard": 0, "ts": time.time(), "state": "done", "done": 4},
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.runner.telemetry",
                str(base), "--once",
            ],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        assert proc.returncode == 0
        assert "done" in proc.stdout


class TestCampaignCounters:
    def test_requeued_and_stolen_hidden_when_zero(self):
        stats = CampaignStats(total=3, executed=3)
        assert "requeued" not in stats.summary()
        assert "stolen" not in stats.summary()

    def test_requeued_and_stolen_rendered(self):
        stats = CampaignStats(
            total=3, executed=3, requeued_tasks=2, requeue_attempts=3,
            stolen_tasks=4,
        )
        summary = stats.summary()
        assert "2 requeued (+3 attempts)" in summary
        assert "4 stolen" in summary

    def test_counters_snapshot(self):
        stats = CampaignStats(requeued_tasks=1, stolen_tasks=2)
        counters = stats.counters()
        assert counters["requeued_tasks"] == 1
        assert counters["stolen_tasks"] == 2
        assert set(counters) == {
            "total", "executed", "replayed", "retried_tasks",
            "retry_attempts", "requeued_tasks", "requeue_attempts",
            "stolen_tasks", "degraded", "errors", "timeouts",
            "journal_errors",
        }

    def test_write_bench_records_campaign_and_shards(self, tmp_path):
        from repro.runner import write_bench

        stats = CampaignStats(total=5, executed=4, replayed=1)
        path = tmp_path / "bench.json"
        data = write_bench(
            path, "t", TimingCollector(), jobs=2, quick=True,
            total_wall_s=1.0, stats=stats, shards=4,
        )
        entry = data["experiments"]["t"]
        assert entry["shards"] == 4
        assert entry["campaign"]["replayed"] == 1


class TestJournalCLI:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.runner.journal", *argv],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )

    def test_digest_command(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(_raw_line("aa", 1) + _raw_line("bb", 2))
        proc = self._run("digest", str(path))
        assert proc.returncode == 0
        digest, count = proc.stdout.split()
        assert digest == journal_digest(path)
        assert count == "2"

    def test_merge_command(self, tmp_path):
        a = tmp_path / "j.shard0"
        b = tmp_path / "j.shard1"
        a.write_bytes(_raw_line("aa", 1))
        b.write_bytes(_raw_line("bb", 2) + _raw_line("aa", 1))
        out = tmp_path / "merged.jsonl"
        proc = self._run("merge", str(out), str(a), str(b))
        assert proc.returncode == 0
        assert "2 entries" in proc.stdout
        merged = Journal.load(out)
        assert merged.fingerprints() == {"aa", "bb"}
