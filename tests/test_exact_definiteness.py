"""Tests for exact definiteness certificates (repro.exact.definiteness)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import (
    RationalMatrix,
    definiteness_counterexample,
    gauss_positive_definite,
    is_negative_definite,
    is_negative_semidefinite,
    is_positive_semidefinite,
    ldl_positive_definite,
    sylvester_positive_definite,
)

ALL_PD_CHECKS = [
    sylvester_positive_definite,
    gauss_positive_definite,
    ldl_positive_definite,
]

entries = st.integers(min_value=-10, max_value=10)


def random_symmetric(n):
    return st.lists(
        st.lists(entries, min_size=n, max_size=n), min_size=n, max_size=n
    ).map(lambda rows: RationalMatrix(rows).symmetrize())


symmetric_matrices = st.integers(min_value=1, max_value=5).flatmap(random_symmetric)


def gram(n):
    """Random G G^T + I: always positive definite."""
    return st.lists(
        st.lists(entries, min_size=n, max_size=n), min_size=n, max_size=n
    ).map(
        lambda rows: RationalMatrix(rows) @ RationalMatrix(rows).T
        + RationalMatrix.identity(n)
    )


PD_EXAMPLES = [
    RationalMatrix([[1]]),
    RationalMatrix([[2, 1], [1, 2]]),
    RationalMatrix([[4, 2, 0], [2, 5, 3], [0, 3, 6]]),
]

NOT_PD_EXAMPLES = [
    RationalMatrix([[0]]),
    RationalMatrix([[-1]]),
    RationalMatrix([[1, 2], [2, 1]]),  # eigenvalues 3, -1
    RationalMatrix([[0, 1], [1, 0]]),  # zero pivot first
    RationalMatrix([[1, 1], [1, 1]]),  # PSD but singular
]


class TestPositiveDefinite:
    @pytest.mark.parametrize("check", ALL_PD_CHECKS)
    @pytest.mark.parametrize("m", PD_EXAMPLES)
    def test_accepts_pd(self, check, m):
        assert check(m)

    @pytest.mark.parametrize("check", ALL_PD_CHECKS)
    @pytest.mark.parametrize("m", NOT_PD_EXAMPLES)
    def test_rejects_not_pd(self, check, m):
        assert not check(m)

    @pytest.mark.parametrize("check", ALL_PD_CHECKS)
    def test_requires_symmetric(self, check):
        with pytest.raises(ValueError):
            check(RationalMatrix([[1, 2], [0, 1]]))

    @settings(max_examples=40)
    @given(symmetric_matrices)
    def test_all_three_checks_agree(self, m):
        verdicts = {check(m) for check in ALL_PD_CHECKS}
        assert len(verdicts) == 1

    @settings(max_examples=30)
    @given(symmetric_matrices)
    def test_matches_numpy_eigenvalues(self, m):
        eig = np.linalg.eigvalsh(m.to_numpy())
        if abs(float(np.min(eig))) < 1e-9:
            return  # near-singular: float ground truth unreliable
        assert sylvester_positive_definite(m) == bool(np.min(eig) > 0)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=4).flatmap(gram))
    def test_gram_plus_identity_is_pd(self, m):
        assert all(check(m) for check in ALL_PD_CHECKS)

    @settings(max_examples=40)
    @given(symmetric_matrices)
    def test_single_pass_matches_per_minor_sylvester(self, m):
        """The one-pass Bareiss Sylvester check must give the verdict of
        the textbook criterion (each minor as its own determinant)."""
        from repro.exact import bareiss_determinant

        reference = all(
            bareiss_determinant(m.leading_principal(k)) > 0
            for k in range(1, m.rows + 1)
        )
        assert sylvester_positive_definite(m) == reference


class TestSemidefiniteAndNegative:
    def test_psd_but_not_pd(self):
        m = RationalMatrix([[1, 1], [1, 1]])
        assert is_positive_semidefinite(m)
        assert not sylvester_positive_definite(m)

    def test_psd_rejects_indefinite(self):
        assert not is_positive_semidefinite(RationalMatrix([[1, 2], [2, 1]]))

    def test_zero_matrix_is_psd(self):
        assert is_positive_semidefinite(RationalMatrix.zeros(3, 3))

    def test_negative_definite(self):
        assert is_negative_definite(RationalMatrix([[-2, 1], [1, -2]]))
        assert not is_negative_definite(RationalMatrix([[2, 1], [1, 2]]))

    def test_negative_semidefinite(self):
        assert is_negative_semidefinite(RationalMatrix([[-1, 1], [1, -1]]))
        assert not is_negative_semidefinite(RationalMatrix([[1, 0], [0, -1]]))

    @settings(max_examples=30)
    @given(symmetric_matrices)
    def test_pd_implies_psd(self, m):
        if sylvester_positive_definite(m):
            assert is_positive_semidefinite(m)

    @settings(max_examples=30)
    @given(symmetric_matrices)
    def test_negation_duality(self, m):
        assert is_negative_definite(m) == sylvester_positive_definite(m.scale(-1))


class TestCounterexample:
    @pytest.mark.parametrize("m", NOT_PD_EXAMPLES)
    def test_witness_refutes(self, m):
        v = definiteness_counterexample(m)
        assert v is not None
        assert any(x != 0 for x in v)
        assert m.quadratic_form(v) <= 0

    @pytest.mark.parametrize("m", PD_EXAMPLES)
    def test_no_witness_for_pd(self, m):
        assert definiteness_counterexample(m) is None

    @settings(max_examples=40)
    @given(symmetric_matrices)
    def test_witness_iff_not_pd(self, m):
        v = definiteness_counterexample(m)
        if sylvester_positive_definite(m):
            assert v is None
        else:
            assert v is not None
            assert m.quadratic_form(v) <= 0
            assert any(x != 0 for x in v)
