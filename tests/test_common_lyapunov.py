"""Tests for common quadratic Lyapunov synthesis (repro.lyapunov.common)."""

import numpy as np
import pytest

from repro.lyapunov import synthesize_common


class TestSynthesizeCommon:
    def test_commuting_stable_pair_feasible(self):
        """Commuting Hurwitz matrices always share a quadratic Lyapunov
        function — the classic positive case."""
        a0 = np.diag([-1.0, -3.0])
        a1 = np.diag([-2.0, -0.5])
        result = synthesize_common([a0, a1], max_iterations=30_000)
        assert result.feasible
        p = result.p
        assert np.linalg.eigvalsh(p).min() > 0
        for a in (a0, a1):
            assert np.linalg.eigvalsh(a.T @ p + p @ a).max() < 0

    def test_single_mode_reduces_to_plain_lyapunov(self):
        a = np.array([[-1.0, 2.0], [0.0, -3.0]])
        result = synthesize_common([a], max_iterations=30_000)
        assert result.feasible
        assert np.linalg.eigvalsh(a.T @ result.p + result.p @ a).max() < 0

    def test_known_counterexample_infeasible(self):
        """Two Hurwitz matrices with no common quadratic Lyapunov
        function (switching between them can destabilize). The classic
        construction: same eigenvalues, rotated eigenvectors with a large
        skew."""
        a0 = np.array([[-1.0, 10.0], [-0.1, -1.0]])
        a1 = np.array([[-1.0, 0.1], [-10.0, -1.0]])
        # Both Hurwitz:
        assert np.linalg.eigvals(a0).real.max() < 0
        assert np.linalg.eigvals(a1).real.max() < 0
        result = synthesize_common([a0, a1], max_iterations=60_000)
        assert not result.feasible
        assert result.proved_infeasible

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            synthesize_common([])
        with pytest.raises(ValueError):
            synthesize_common([np.eye(2), np.eye(3)])

    def test_engine_modes_outcome_is_decisive(self):
        """On the case study's homogeneous closed loops the search must
        terminate with a definite verdict (feasible or proved infeasible),
        not a budget timeout — and a feasible P must actually certify both
        modes."""
        from repro.engine import case_by_name

        case = case_by_name("size3")
        a0 = case.mode_matrix(0)
        a1 = case.mode_matrix(1)
        result = synthesize_common([a0, a1], max_iterations=80_000)
        assert result.feasible or result.proved_infeasible
        if result.feasible:
            for a in (a0, a1):
                lie_max = np.linalg.eigvalsh(
                    a.T @ result.p + result.p @ a
                ).max()
                assert lie_max < 0

    def test_metadata(self):
        result = synthesize_common([-np.eye(2)], max_iterations=5_000)
        assert result.synthesis_time > 0
        assert result.info["modes"] == 1
        assert result.info["dimension"] == 3
