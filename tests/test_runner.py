"""Tests for the parallel experiment runner (repro.runner)."""

import dataclasses
import json
import os
import time

import pytest

from repro.experiments import (
    MethodKey,
    render_sweep,
    render_table1,
    rounding_sweep,
    run_table1,
)
from repro.runner import (
    BENCH_SCHEMA,
    CampaignStats,
    RetryPolicy,
    Task,
    TimingCollector,
    TransientTaskError,
    resolve_jobs,
    run_tasks,
    write_bench,
)

QUICK_METHODS = [MethodKey("eq-num"), MethodKey("lmi", "shift")]


# ----------------------------------------------------------------------
# Picklable test tasks (must live at module level for the pool)
# ----------------------------------------------------------------------

class EchoTask(Task):
    def __init__(self, value):
        self.value = value

    def key(self):
        return {"case": f"echo{self.value}"}

    def run(self):
        return self.value


class SleepTask(Task):
    def __init__(self, delay, tag):
        self.delay = delay
        self.tag = tag

    def run(self):
        time.sleep(self.delay)
        return self.tag


class HangTask(Task):
    """Never finishes on its own; only a deadline kill stops it."""

    def run(self):
        time.sleep(600)
        return "finished"

    def on_timeout(self, elapsed):
        return ("timed-out", elapsed > 0)


class CrashTask(Task):
    def run(self):
        raise RuntimeError("boom")

    def on_error(self, message):
        return ("crashed", message)


class DieTask(Task):
    """Kills its worker process outright; survives when run in-process."""

    def __init__(self):
        self.parent_pid = os.getpid()

    def run(self):
        if os.getpid() != self.parent_pid:
            os._exit(3)  # simulate a segfaulting worker
        return "ran-in-parent"


class FlakyTask(Task):
    """Raises transiently until the configured attempt is reached."""

    def __init__(self, succeed_on):
        self.succeed_on = succeed_on
        self.attempt = 1

    def on_attempt(self, attempt):
        self.attempt = attempt

    def run(self):
        if self.attempt < self.succeed_on:
            raise TransientTaskError(f"flaky attempt {self.attempt}")
        return ("ok", self.attempt)


class FlakyDieTask(Task):
    """Kills its worker process until the configured attempt."""

    def __init__(self, succeed_on):
        self.succeed_on = succeed_on
        self.attempt = 1
        self.parent_pid = os.getpid()

    def on_attempt(self, attempt):
        self.attempt = attempt

    def run(self):
        if os.getpid() != self.parent_pid and self.attempt < self.succeed_on:
            os._exit(9)
        return ("ok", self.attempt)


class PermanentCrashTask(Task):
    """A domain error: must never be retried."""

    def __init__(self):
        self.runs = 0

    def on_attempt(self, attempt):
        self.attempt = attempt

    def run(self):
        raise ValueError("bad domain input")

    def on_error(self, message):
        return ("failed", message)


def _normalize(record):
    """Zero the stochastic wall-clock fields, keeping their None-ness."""
    return dataclasses.replace(
        record,
        synth_time=None if record.synth_time is None else 0.0,
        validation_time=None if record.validation_time is None else 0.0,
    )


class TestCore:
    def test_empty(self):
        assert run_tasks([], jobs=4) == []

    def test_serial_results_in_order(self):
        assert run_tasks([EchoTask(i) for i in range(5)], jobs=1) == list(
            range(5)
        )

    def test_parallel_results_in_submission_order(self):
        # Later-submitted tasks finish first; ordering must not care.
        tasks = [SleepTask(0.3, "slow"), SleepTask(0.0, "fast1"),
                 SleepTask(0.0, "fast2")]
        assert run_tasks(tasks, jobs=2) == ["slow", "fast1", "fast2"]

    def test_resolve_jobs(self, monkeypatch):
        # The default honours the CPU *affinity* mask (what a container
        # or taskset actually grants), not the machine's core count.
        # A REPRO_JOBS override (tested in test_service.py) would shadow
        # the affinity default, so make sure it is unset here.
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        expected = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1)
        )
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3

    def test_task_error_serial_and_parallel(self):
        for jobs in (1, 2):
            (status, message), ok = run_tasks(
                [CrashTask(), EchoTask("ok")], jobs=jobs
            )
            assert status == "crashed"
            assert "RuntimeError" in message and "boom" in message
            assert ok == "ok"

    def test_deadline_kills_hung_task(self):
        start = time.monotonic()
        results = run_tasks(
            [HangTask(), EchoTask(1)], jobs=2, task_deadline=1.0
        )
        elapsed = time.monotonic() - start
        assert results == [("timed-out", True), 1]
        assert elapsed < 30  # nowhere near the task's 600 s sleep

    def test_deadline_does_not_serialize_sweep(self):
        # One hung task must not delay the other tasks' completion.
        tasks = [HangTask()] + [SleepTask(0.05, i) for i in range(4)]
        results = run_tasks(tasks, jobs=2, task_deadline=1.5)
        assert results == [("timed-out", True), 0, 1, 2, 3]

    def test_worker_death_falls_back_in_process(self):
        results = run_tasks([DieTask(), EchoTask(7)], jobs=2)
        assert results == ["ran-in-parent", 7]

    def test_unpicklable_task_runs_locally(self):
        task = EchoTask(9)
        task.value = lambda: 9  # unpicklable payload
        task.run = lambda: "local"
        results = run_tasks([task, EchoTask(2)], jobs=2)
        assert results == ["local", 2]

    def test_base_task_hooks(self):
        task = Task()
        with pytest.raises(NotImplementedError):
            task.run()
        assert task.key() is None
        assert task.on_timeout(1.0) is None
        assert task.on_error("x") is None
        assert task.timing_detail(None) == {}


class TestRetry:
    def test_policy_backoff_deterministic(self):
        policy = RetryPolicy(retries=3, backoff=0.1, max_backoff=0.3)
        delays = [policy.delay(a, "token") for a in (1, 2, 3, 4)]
        assert delays == [policy.delay(a, "token") for a in (1, 2, 3, 4)]
        # exponential base growth capped at max_backoff; jitter < 100%
        assert delays[0] < delays[1]  # 0.1*(1+j) < 0.2*(1+j') always
        assert all(d <= 0.3 * 2.0 for d in delays)
        assert delays != [policy.delay(a, "other") for a in (1, 2, 3, 4)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_retried(self, jobs):
        stats = CampaignStats()
        results = run_tasks(
            [FlakyTask(3), EchoTask("x")], jobs=jobs,
            retry=RetryPolicy(retries=3, backoff=0.001), stats=stats,
        )
        assert results == [("ok", 3), "x"]
        assert stats.retried_tasks == 1
        assert stats.retry_attempts == 2
        assert stats.errors == 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retries_exhausted_records_error(self, jobs):
        collector = TimingCollector()
        stats = CampaignStats()
        result, = run_tasks(
            [FlakyTask(99)], jobs=jobs, retry=1, collect=collector,
            stats=stats,
        )
        assert result is None  # FlakyTask defines no on_error fallback
        timing = collector.timings[0]
        assert timing.status == "error"
        assert timing.attempts == 2
        assert timing.error is not None
        assert timing.error["transient"] is True
        assert "flaky attempt" in timing.error["exc"]
        assert stats.errors == 1

    def test_worker_death_retried_in_pool(self):
        stats = CampaignStats()
        results = run_tasks(
            [FlakyDieTask(2), EchoTask(5)], jobs=2,
            retry=RetryPolicy(retries=2, backoff=0.001), stats=stats,
        )
        assert results == [("ok", 2), 5]
        assert stats.retried_tasks == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_permanent_failure_not_retried(self, jobs):
        collector = TimingCollector()
        (status, message), = run_tasks(
            [PermanentCrashTask()], jobs=jobs, retry=5, collect=collector,
        )
        assert status == "failed"
        assert "ValueError" in message
        timing = collector.timings[0]
        assert timing.attempts == 1
        assert timing.error["transient"] is False

    def test_attempts_flow_into_bench_artifact(self, tmp_path):
        collector = TimingCollector()
        run_tasks(
            [FlakyTask(2), EchoTask(1)], jobs=1, retry=2, collect=collector,
        )
        data = write_bench(
            tmp_path / "bench.json", "t", collector, jobs=1, quick=True,
            total_wall_s=0.1,
        )
        entries = data["experiments"]["t"]["tasks"]
        assert entries[0]["attempts"] == 2
        assert entries[1]["attempts"] == 1


class TestTimingArtifact:
    def test_collector_records_per_task(self):
        collector = TimingCollector()
        run_tasks([EchoTask(1), CrashTask()], jobs=1, collect=collector)
        assert [t.status for t in collector.timings] == ["ok", "error"]
        assert collector.timings[0].key == {"case": "echo1"}
        assert all(t.wall_s >= 0 for t in collector.timings)
        assert collector.task_wall_s() == pytest.approx(
            sum(t.wall_s for t in collector.timings)
        )

    def test_parallel_collects_worker_pids(self):
        collector = TimingCollector()
        run_tasks([EchoTask(i) for i in range(4)], jobs=2, collect=collector)
        assert len(collector.timings) == 4
        assert all(t.worker != "local" for t in collector.timings)

    def test_write_bench_merges_experiments(self, tmp_path):
        path = tmp_path / "BENCH_experiments.json"
        first = TimingCollector()
        run_tasks([EchoTask(1)], jobs=1, collect=first)
        write_bench(path, "table1", first, jobs=1, quick=True,
                    total_wall_s=0.5)
        second = TimingCollector()
        run_tasks([EchoTask(2)], jobs=1, collect=second)
        data = write_bench(path, "figure3", second, jobs=2, quick=True,
                           total_wall_s=0.25)
        on_disk = json.loads(path.read_text())
        assert on_disk == data
        assert on_disk["schema"] == BENCH_SCHEMA
        assert set(on_disk["experiments"]) == {"table1", "figure3"}
        entry = on_disk["experiments"]["table1"]["tasks"][0]
        assert entry["case"] == "echo1"
        assert entry["status"] == "ok"
        assert "wall_s" in entry

    def test_write_bench_replaces_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_experiments.json"
        path.write_text("not json{")
        collector = TimingCollector()
        run_tasks([EchoTask(1)], jobs=1, collect=collector)
        data = write_bench(path, "table1", collector, jobs=1, quick=False,
                           total_wall_s=0.1)
        assert data["schema"] == BENCH_SCHEMA

    def test_table1_bench_keyed_by_grid_cell(self):
        collector = TimingCollector()
        run_table1(
            sizes=(3,), integer_sizes=(), methods=QUICK_METHODS,
            jobs=1, timing=collector,
        )
        entries = collector.entries()
        assert len(entries) == 4  # 1 case x 2 modes x 2 methods
        keys = {(e["case"], e["mode"], e["method"], e["backend"])
                for e in entries}
        assert ("size3", 0, "eq-num", None) in keys
        assert ("size3", 1, "lmi", "shift") in keys
        assert all("synth_s" in e and "validate_s" in e for e in entries)


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        kwargs = dict(
            sizes=(3,), integer_sizes=(3,), methods=QUICK_METHODS,
            keep_candidates=True,
        )
        return run_table1(jobs=1, **kwargs), run_table1(jobs=2, **kwargs)

    def test_records_identical_modulo_wall_times(self, serial_and_parallel):
        (serial, _), (parallel, _) = serial_and_parallel
        assert len(serial) == len(parallel) == 8
        assert [_normalize(r) for r in serial] == [
            _normalize(r) for r in parallel
        ]

    def test_rendered_tables_byte_identical(self, serial_and_parallel):
        (serial, serial_cands), (parallel, parallel_cands) = (
            serial_and_parallel
        )
        assert render_table1(
            [_normalize(r) for r in serial]
        ) == render_table1([_normalize(r) for r in parallel])
        assert list(serial_cands) == list(parallel_cands)
        sweep_serial = rounding_sweep(
            serial_cands, sigfig_levels=(10, 4), base_records=serial
        )
        sweep_parallel = rounding_sweep(
            parallel_cands, sigfig_levels=(10, 4), base_records=parallel,
            jobs=2,
        )
        assert render_sweep(
            [_normalize(r) for r in sweep_serial]
        ) == render_sweep([_normalize(r) for r in sweep_parallel])


class TestRoundingSweepReuse:
    def test_base_records_reused_not_revalidated(self):
        records, candidates = run_table1(
            sizes=(3,), integer_sizes=(), methods=QUICK_METHODS,
            keep_candidates=True,
        )
        collector = TimingCollector()
        sweep = rounding_sweep(
            candidates, sigfig_levels=(10, 6, 4), base_records=records,
            timing=collector,
        )
        assert len(sweep) == 3 * len(candidates)
        # Only levels 6 and 4 actually ran; level 10 is the same objects.
        assert len(collector.timings) == 2 * len(candidates)
        base = {
            (r.case, r.mode, r.method, r.backend): r for r in records
        }
        reused = [r for r in sweep if r.sigfigs == 10]
        assert all(
            r is base[(r.case, r.mode, r.method, r.backend)] for r in reused
        )

    def test_without_base_records_all_levels_run(self):
        _, candidates = run_table1(
            sizes=(3,), integer_sizes=(), methods=QUICK_METHODS,
            keep_candidates=True,
        )
        collector = TimingCollector()
        sweep = rounding_sweep(
            candidates, sigfig_levels=(10, 4), timing=collector
        )
        assert len(sweep) == 2 * len(candidates)
        assert len(collector.timings) == 2 * len(candidates)
