"""Tests for the certification service (repro.service).

Covers the three performance layers — the content-addressed
certificate store, single-flight dedup + same-shape batching, and the
persistent warm-worker pool — plus the campaign engine the experiment
drivers route through, the ``REPRO_JOBS`` override, and fingerprint
memoization. The dedup/batching tests are *differential*: every
accelerated path must reproduce the direct path's
:meth:`repro.service.Certificate.identity` bit for bit.
"""

import asyncio
import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    ChaosPolicy,
    ChaosTask,
    Journal,
    Task,
    resolve_jobs,
    run_tasks,
    task_fingerprint,
)
from repro.service import (
    AsyncCertificationService,
    CampaignEngine,
    Certificate,
    CertificationService,
    CertifyTask,
    CertificateStore,
    PoolDeadlineError,
    PoolOutcome,
    WarmPool,
    certify,
)

#: A small Hurwitz matrix certifiable in well under a millisecond via
#: the shift backend; the standard fast request for these tests.
STABLE = [[-1.0, 0.25], [0.0, -2.0]]
UNSTABLE = [[1.0, 0.0], [0.0, -1.0]]


def fast_request(service, a=STABLE, **kwargs):
    kwargs.setdefault("method", "lmi")
    kwargs.setdefault("backend", "shift")
    return service.request(a, **kwargs)


# ----------------------------------------------------------------------
# Module-level tasks (picklable for the pool tests)
# ----------------------------------------------------------------------

class HangTask(Task):
    def run(self):
        import time

        time.sleep(600)


# ----------------------------------------------------------------------
# Certificate store
# ----------------------------------------------------------------------

class TestCertificateStore:
    def test_memory_hit_miss_counters(self):
        store = CertificateStore()
        assert store.get("a") is None
        store.put("a", "cert-a")
        assert store.get("a") == "cert-a"
        assert store.counters()["memory_hits"] == 1
        assert store.counters()["misses"] == 1
        assert store.hit_rate == 0.5
        assert "a" in store and "b" not in store

    def test_lru_eviction_order(self):
        store = CertificateStore(capacity=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # refresh "a": "b" is now LRU
        store.put("c", 3)
        assert store.evictions == 1
        assert store.get("b") is None  # evicted
        assert store.get("a") == 1 and store.get("c") == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CertificateStore(capacity=0)

    def test_disk_tier_round_trip(self, tmp_path):
        path = tmp_path / "certs.jsonl"
        cert = Certificate(
            fingerprint="f", method="lmi", backend="shift",
            validator="sylvester", sigfigs=6, n=2, synth_status="ok",
            p=np.eye(2), valid=True,
        )
        with CertificateStore(path) as store:
            store.put("f", cert)
        with CertificateStore(path) as fresh:
            got = fresh.get("f")
            assert fresh.disk_hits == 1
            assert got.identity() == cert.identity()
            # Promoted to memory: second read never touches disk.
            assert fresh.get("f").identity() == cert.identity()
            assert fresh.memory_hits == 1


# ----------------------------------------------------------------------
# Cache + single-flight dedup
# ----------------------------------------------------------------------

class TestCacheAndDedup:
    def test_repeat_request_hits_cache(self):
        with CertificationService(sigfigs=6) as svc:
            cold = svc.certify(STABLE, method="lmi", backend="shift")
            warm = svc.certify(STABLE, method="lmi", backend="shift")
        assert cold.identity() == warm.identity()
        assert svc.computations == 1
        assert svc.store.memory_hits == 1
        assert cold.synth_status == "ok" and cold.valid is True

    def test_deterministic_failure_is_cached(self):
        with CertificationService(sigfigs=6) as svc:
            first = svc.certify(UNSTABLE, method="lmi", backend="shift")
            second = svc.certify(UNSTABLE, method="lmi", backend="shift")
        assert first.synth_status == "infeasible"
        assert first.identity() == second.identity()
        assert svc.computations == 1

    def test_distinct_recipes_do_not_collide(self):
        with CertificationService(sigfigs=6) as svc:
            a = svc.certify(STABLE, method="lmi", backend="shift")
            b = svc.certify(STABLE, method="lmi", backend="proj")
        assert svc.computations == 2
        assert a.fingerprint != b.fingerprint

    def test_one_shot_convenience(self):
        cert = certify(STABLE, method="lmi", backend="shift")
        assert cert.synth_status == "ok" and cert.valid is True

    @settings(max_examples=5)
    @given(
        n_threads=st.integers(min_value=2, max_value=8),
        diag=st.tuples(
            st.floats(min_value=-4.0, max_value=-0.5),
            st.floats(min_value=-4.0, max_value=-0.5),
        ),
    )
    def test_concurrent_identical_requests_coalesce(self, n_threads, diag):
        """N concurrent identical certify calls: exactly one journal
        entry (one store write) and byte-identical certificates."""
        matrix = [[diag[0], 0.125], [0.0, diag[1]]]
        results: list = [None] * n_threads
        with CertificationService(sigfigs=6) as svc:
            barrier = threading.Barrier(n_threads)

            def hit(i):
                barrier.wait()
                results[i] = svc.certify(
                    matrix, method="lmi", backend="shift"
                )

            threads = [
                threading.Thread(target=hit, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert svc.store.writes == 1
        assert svc.requests == n_threads
        identities = {r.identity() for r in results}
        assert len(identities) == 1
        direct = CertifyTask(
            matrix, method="lmi", backend="shift", sigfigs=6
        ).run()
        assert identities == {direct.identity()}

    def test_concurrent_requests_one_journal_entry(self, tmp_path):
        path = tmp_path / "certs.jsonl"
        n_threads = 6
        with CertificationService(
            store=CertificateStore(path), sigfigs=6
        ) as svc:
            barrier = threading.Barrier(n_threads)
            results = [None] * n_threads

            def hit(i):
                barrier.wait()
                results[i] = svc.certify(
                    STABLE, method="lmi", backend="shift"
                )

            threads = [
                threading.Thread(target=hit, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        with Journal(path, resume=True) as journal:
            assert len(journal) == 1
            entry = journal.get(results[0].fingerprint)
            assert entry is not None and entry.status == "ok"
            assert entry.result.identity() == results[0].identity()


# ----------------------------------------------------------------------
# Same-shape batching
# ----------------------------------------------------------------------

class TestBatching:
    def _grid(self, service):
        requests = []
        for shift in (1.0, 1.5, 2.0):
            a = [[-shift, 0.25], [0.0, -2 * shift]]
            requests.append(fast_request(service, a))
        requests.append(fast_request(service, UNSTABLE))
        return requests

    def test_batched_screen_bit_identical_to_direct(self):
        with CertificationService(sigfigs=6) as svc:
            requests = self._grid(svc)
            direct = [
                CertifyTask(
                    r.a, method=r.method, backend=r.backend,
                    validator=r.validator, sigfigs=r.sigfigs,
                ).run()
                for r in requests
            ]
            batched = svc.certify_many(requests)
        assert [c.identity() for c in batched] == [
            c.identity() for c in direct
        ]
        assert svc.computations == len(requests)

    def test_batch_dedups_within_and_against_cache(self):
        with CertificationService(sigfigs=6) as svc:
            cached = svc.certify(STABLE, method="lmi", backend="shift")
            batch = svc.certify_many(
                [
                    fast_request(svc),  # cache hit
                    fast_request(svc, [[-3.0, 0.0], [1.0, -1.0]]),
                    fast_request(svc, [[-3.0, 0.0], [1.0, -1.0]]),  # dup
                ]
            )
        assert batch[0].identity() == cached.identity()
        assert batch[1].identity() == batch[2].identity()
        assert svc.computations == 2  # cold + one fresh; dup coalesced
        assert svc.dedup_hits == 1

    def test_batch_results_in_request_order(self):
        with CertificationService(sigfigs=6) as svc:
            requests = self._grid(svc)
            fingerprints = [task_fingerprint(r) for r in requests]
            batch = svc.certify_many(requests)
        assert [c.fingerprint for c in batch] == fingerprints


# ----------------------------------------------------------------------
# Warm-worker pool
# ----------------------------------------------------------------------

class TestWarmPool:
    def test_pooled_certify_with_provenance(self):
        with CertificationService(
            pool=WarmPool(jobs=2, warm_sizes=(2,)), sigfigs=6
        ) as svc:
            cert = svc.certify(STABLE, method="lmi", backend="shift")
            warm = svc.certify(STABLE, method="lmi", backend="shift")
        assert cert.valid is True
        assert cert.provenance["executor"] == "pool"
        assert cert.provenance["attempts"] == 1
        assert cert.provenance["workers"][0] != os.getpid()
        # The cache hit returns the stored certificate unchanged.
        assert warm.identity() == cert.identity()
        assert svc.pool.counters()["tasks_done"] >= 1

    def test_pool_matches_inline_identity(self):
        with CertificationService(sigfigs=6) as inline_svc:
            inline = inline_svc.certify(STABLE, method="lmi", backend="shift")
        with CertificationService(
            pool=WarmPool(jobs=1), sigfigs=6
        ) as pooled_svc:
            pooled = pooled_svc.certify(STABLE, method="lmi", backend="shift")
        assert pooled.identity() == inline.identity()

    def test_deadline_kills_hung_request(self):
        with WarmPool(jobs=1, retry=0) as pool:
            future = pool.submit(HangTask(), deadline=1.0)
            with pytest.raises(PoolDeadlineError):
                future.result(timeout=60)
            assert pool.deadline_kills == 1
        # The service never caches environmental failures.
        with CertificationService(
            pool=WarmPool(jobs=1, retry=0), sigfigs=6, task_deadline=1.0
        ) as svc:
            with pytest.raises(PoolDeadlineError):
                svc.certify(HangTask())
            assert svc.store.writes == 0

    def test_worker_death_mid_request_retried_on_fresh_worker(self):
        """The chaos worker-death fault: the request's first attempt
        dies mid-flight (after the kill delay); the service retries on
        a freshly warmed worker and records both attempts in the
        certificate's provenance — no lost or duplicated entries."""
        task = CertifyTask(
            STABLE, method="lmi", backend="shift", sigfigs=6
        )
        chaotic = ChaosTask(
            task, ChaosPolicy(kill_first_attempts=1, kill_after_s=0.05)
        )
        with CertificationService(
            pool=WarmPool(jobs=2, retry=2), sigfigs=6
        ) as svc:
            cert = svc.certify(chaotic)
            counters = svc.pool.counters()
        assert cert.synth_status == "ok" and cert.valid is True
        assert cert.provenance["attempts"] == 2
        workers = cert.provenance["workers"]
        assert len(workers) == 2 and workers[0] != workers[1]
        assert counters["worker_deaths"] >= 1
        assert counters["respawns"] >= 1
        assert svc.store.writes == 1  # exactly one certificate stored
        direct = CertifyTask(
            STABLE, method="lmi", backend="shift", sigfigs=6
        ).run()
        assert cert.identity() == direct.identity()

    def test_pool_outcome_shape(self):
        with WarmPool(jobs=1) as pool:
            outcome = pool.submit(
                CertifyTask(STABLE, method="lmi", backend="shift", sigfigs=6)
            ).result(timeout=120)
        assert isinstance(outcome, PoolOutcome)
        assert outcome.attempts == 1 and len(outcome.workers) == 1

    def test_prewarm_solver_hook(self):
        """The warm-up task runs the solver front-end's prewarm hook;
        its probe (A = -I, P = I) must screen as strictly feasible."""
        from repro.sdp import prewarm_solver
        from repro.service.pool import WarmupTask

        summary = prewarm_solver(3)
        assert summary["n"] == 3 and summary["svec_dim"] == 6
        floor, decay = summary["screen"]
        assert floor > 0 and decay > 0
        assert WarmupTask(sizes=(2,)).run() == os.getpid()


# ----------------------------------------------------------------------
# Async front
# ----------------------------------------------------------------------

class TestAsyncFront:
    def test_gather_with_backpressure(self):
        async def scenario():
            with CertificationService(sigfigs=6) as svc:
                front = AsyncCertificationService(svc, max_pending=2)
                requests = [
                    fast_request(svc, [[-s, 0.0], [0.0, -2.0]])
                    for s in (1.0, 1.5, 2.0, 1.0)  # one duplicate
                ]
                certs = await front.gather(requests)
                single = await front.certify(
                    STABLE, method="lmi", backend="shift"
                )
            return certs, single, svc.computations

        certs, single, computations = asyncio.run(scenario())
        assert [c.synth_status for c in certs] == ["ok"] * 4
        assert certs[0].identity() == certs[3].identity()
        assert computations == 4  # 3 distinct + the standalone
        assert single.valid is True

    def test_rejects_bad_backpressure(self):
        with pytest.raises(ValueError):
            AsyncCertificationService(object(), max_pending=0)


# ----------------------------------------------------------------------
# Campaign engine
# ----------------------------------------------------------------------

class EchoTask(Task):
    def __init__(self, value):
        self.value = value

    def run(self):
        return self.value


class TestCampaignEngine:
    def test_engine_matches_run_tasks(self):
        tasks = [EchoTask(i) for i in range(5)]
        engine = CampaignEngine(jobs=1)
        assert engine.run(tasks) == run_tasks(tasks, jobs=1)
        assert engine.stats.executed == 5

    def test_ensure_passthrough_and_build(self):
        engine = CampaignEngine(jobs=2)
        assert CampaignEngine.ensure(engine, jobs=7) is engine
        built = CampaignEngine.ensure(None, jobs=3, task_deadline=1.5)
        assert built.jobs == 3 and built.task_deadline == 1.5

    def test_drivers_accept_engine(self):
        from repro.experiments import MethodKey, run_table1

        engine = CampaignEngine(jobs=1)
        records, _ = run_table1(
            sizes=(3,), integer_sizes=(),
            methods=[MethodKey("lmi", "shift")],
            engine=engine,
        )
        assert len(records) == 2  # one case, two modes
        assert engine.stats.executed == 2


# ----------------------------------------------------------------------
# REPRO_JOBS + fingerprint memoization satellites
# ----------------------------------------------------------------------

class TestResolveJobsEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(0) == 1

    def test_malformed_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        expected = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1)
        )
        assert resolve_jobs(None) == expected

    def test_env_zero_clamps_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs(None) == 1


class TestFingerprintMemo:
    def test_fingerprint_cached_on_task(self):
        task = CertifyTask(STABLE, method="lmi", backend="shift")
        first = task_fingerprint(task)
        assert task._fingerprint == first
        assert task_fingerprint(task) is first

    def test_memo_does_not_change_fingerprint(self):
        plain = CertifyTask(STABLE, method="lmi", backend="shift")
        warmed = CertifyTask(STABLE, method="lmi", backend="shift")
        expected = task_fingerprint(warmed)  # memo now set on `warmed`
        assert task_fingerprint(plain) == expected
        assert task_fingerprint(warmed) == expected
