"""Tests for Sturm-sequence root isolation (repro.exact.sturm)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import RationalMatrix
from repro.exact.sturm import (
    count_real_roots,
    eigenvalue_intervals,
    isolate_real_roots,
    lambda_min_bounds,
    sturm_sequence,
)


def poly_from_roots(roots):
    """prod (x - r) as highest-first rational coefficients."""
    coefficients = [Fraction(1)]
    for root in roots:
        new = [Fraction(0)] * (len(coefficients) + 1)
        for i, c in enumerate(coefficients):
            new[i] += c
            new[i + 1] -= c * Fraction(root)
        coefficients = new
    return coefficients


class TestSturmSequence:
    def test_chain_structure(self):
        chain = sturm_sequence([1, 0, -1])  # x^2 - 1
        assert chain[0] == [1, 0, -1]
        assert chain[1] == [2, 0]
        assert len(chain) >= 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            sturm_sequence([0])

    def test_constant(self):
        assert sturm_sequence([5]) == [[5]]


class TestRootCounting:
    def test_quadratic(self):
        poly = [1, 0, -2]  # roots +-sqrt(2)
        assert count_real_roots(poly, -10, 10) == 2
        assert count_real_roots(poly, 0, 10) == 1
        assert count_real_roots(poly, 2, 10) == 0

    def test_no_real_roots(self):
        assert count_real_roots([1, 0, 1], -100, 100) == 0

    def test_distinct_count_for_repeated_roots(self):
        poly = poly_from_roots([1, 1, 2])  # (x-1)^2 (x-2)
        assert count_real_roots(poly, 0, 3) == 2  # distinct roots only

    def test_half_open_semantics(self):
        poly = poly_from_roots([1])
        assert count_real_roots(poly, 0, 1) == 1  # root at right endpoint
        assert count_real_roots(poly, 1, 2) == 0  # excluded at left

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            count_real_roots([1, 0], 1, 0)

    @settings(max_examples=30)
    @given(
        st.lists(
            st.integers(-6, 6), min_size=1, max_size=4
        )
    )
    def test_count_matches_construction(self, roots):
        poly = poly_from_roots(roots)
        distinct = len(set(roots))
        assert count_real_roots(poly, -100, 100) == distinct


class TestIsolation:
    def test_isolates_known_roots(self):
        poly = poly_from_roots([-3, Fraction(1, 2), 7])
        intervals = isolate_real_roots(poly)
        assert len(intervals) == 3
        for (lo, hi), root in zip(intervals, [-3, Fraction(1, 2), 7]):
            assert lo <= root <= hi
            assert hi - lo <= Fraction(1, 10**6)

    def test_irrational_roots(self):
        intervals = isolate_real_roots([1, 0, -2])  # +-sqrt(2)
        assert len(intervals) == 2
        sqrt2 = Fraction(2**0.5)
        assert intervals[1][0] <= sqrt2 <= intervals[1][1] or abs(
            float(intervals[1][0]) - 2**0.5
        ) < 1e-5

    def test_close_roots_separated(self):
        poly = poly_from_roots([Fraction(1), Fraction(1001, 1000)])
        intervals = isolate_real_roots(poly, precision=Fraction(1, 10**4))
        assert len(intervals) == 2
        assert intervals[0][1] <= intervals[1][0]

    def test_no_real_roots_empty(self):
        assert isolate_real_roots([1, 0, 1]) == []

    def test_constant_polynomial(self):
        assert isolate_real_roots([3]) == []


class TestEigenvalues:
    def test_diagonal_matrix(self):
        m = RationalMatrix.diagonal([1, 4, 9])
        intervals = eigenvalue_intervals(m)
        assert len(intervals) == 3
        for (lo, hi), eig in zip(intervals, [1, 4, 9]):
            assert lo <= eig <= hi

    def test_requires_symmetric(self):
        with pytest.raises(ValueError):
            eigenvalue_intervals(RationalMatrix([[1, 2], [0, 1]]))

    def test_lambda_min_bounds_certify_definiteness(self):
        m = RationalMatrix([[2, 1], [1, 2]])  # eigenvalues 1, 3
        lo, hi = lambda_min_bounds(m)
        assert lo <= 1 <= hi
        assert lo > 0  # exact proof of positive definiteness

    def test_lambda_min_matches_numpy(self):
        rng = np.random.default_rng(3)
        g = rng.integers(-4, 5, size=(4, 4))
        m = RationalMatrix((g + g.T).tolist())
        lo, hi = lambda_min_bounds(m, precision=Fraction(1, 10**8))
        expected = float(np.linalg.eigvalsh(m.to_numpy())[0])
        assert float(lo) <= expected + 1e-7
        assert float(hi) >= expected - 1e-7

    def test_validated_candidate_margin(self):
        """The definiteness *margin* of a validated Lyapunov matrix:
        lambda_min bounds quantify what the rounding sweep consumes."""
        from repro.engine import case_by_name
        from repro.lyapunov import synthesize

        a = case_by_name("size3").mode_matrix(0)
        candidate = synthesize("lmi-alpha+", a, backend="shift")
        p_exact = candidate.exact_p(6)
        lo, _hi = lambda_min_bounds(p_exact, precision=Fraction(1, 10**3))
        assert lo > 0  # exact margin proof
        # lmi-alpha+ enforces P >= nu I with nu = 1: the margin shows it.
        assert lo > Fraction(1, 2)
