"""Differential tests for the batched ICP engine (repro.smt.boxes).

The batched engine's contract is *exact replay*: on every input it must
return the same status, the same witness point, the same witness box and
the same search statistics as the scalar branch-and-prune it vectorizes.
These tests enforce that bit-for-bit over hand-picked corner cases,
hypothesis-generated constraint systems, and the ground-truth fuzzer's
system generator.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import RationalMatrix
from repro.smt import (
    Box,
    ICP_BACKENDS,
    IcpSolver,
    IcpStatus,
    Interval,
    Var,
    check_positive_definite_icp,
    classify_boxes,
    polynomial_of,
    quadratic_form_term,
    resolve_icp_backend,
)
from repro.smt.boxes import BoxArray

x, y, z = Var("x"), Var("y"), Var("z")


def both(atoms, box, **solver_args):
    """Run scalar and batched solvers; assert identical results."""
    scalar = IcpSolver(backend="scalar", **solver_args).check(atoms, box)
    batched = IcpSolver(backend="batched", **solver_args).check(atoms, box)
    assert batched.status is scalar.status
    assert batched.witness == scalar.witness
    if scalar.witness_box is None:
        assert batched.witness_box is None
    else:
        assert batched.witness_box.intervals == scalar.witness_box.intervals
    assert batched.boxes_explored == scalar.boxes_explored
    assert batched.splits == scalar.splits
    return scalar


class TestBackendDispatch:
    def test_known_backends(self):
        assert ICP_BACKENDS == ("auto", "scalar", "batched")
        for backend in ("scalar", "batched"):
            assert resolve_icp_backend(backend) == backend

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            resolve_icp_backend("cuda")
        with pytest.raises(KeyError):
            IcpSolver(backend="cuda").check([(x) <= 0], Box.cube(["x"], 0, 1))

    def test_auto_prefers_batched_with_numpy(self):
        pytest.importorskip("numpy")
        assert resolve_icp_backend("auto") == "batched"


class TestCornerCases:
    """Pinned scalar/batched equality on shapes that stress the kernels."""

    def test_unsat_positive_poly(self):
        result = both(
            [(x * x + 1) <= 0], Box.cube(["x"], -10.0, 10.0)
        )
        assert result.status is IcpStatus.UNSAT

    def test_sat_with_witness(self):
        result = both(
            [(x * x - 1) <= 0, (Fraction(1, 2) - x) <= 0],
            Box.cube(["x"], -10.0, 10.0),
        )
        assert result.status is IcpStatus.SAT

    def test_delta_sat_sqrt2(self):
        result = both([(x * x - 2).eq(0)], Box.cube(["x"], 0.0, 2.0))
        assert result.status is IcpStatus.DELTA_SAT

    def test_budget_exhaustion(self):
        result = both(
            [(x * x - 2).eq(0)], Box.cube(["x"], 0.0, 2.0),
            delta=1e-30, max_boxes=5,
        )
        assert result.status is IcpStatus.UNKNOWN

    def test_budget_boundary_exactly_at_terminal(self):
        # Sweep the budget across the discovery point of the terminal so
        # both engines must agree on the UNKNOWN/DELTA_SAT boundary.
        for budget in range(1, 45):
            both(
                [(x * x - 2).eq(0)], Box.cube(["x"], 0.0, 2.0),
                max_boxes=budget,
            )

    def test_two_variables_circle(self):
        circle = (x * x + y * y - 1).eq(0)
        both(
            [circle, (Fraction(9, 10) - x) <= 0, (Fraction(9, 10) - y) <= 0],
            Box.cube(["x", "y"], -2.0, 2.0),
        )

    def test_strict_and_boundary(self):
        box = Box.cube(["x"], 0.0, 1.0)
        both([x < 0], box)
        both([x <= 0], box)

    def test_degenerate_interval_face(self):
        p = RationalMatrix([[1, 2], [2, 1]])
        form = quadratic_form_term(p, [x, y])
        box = Box({"x": Interval(1.0, 1.0), "y": Interval(-1.0, 1.0)})
        result = both([form <= 0], box)
        assert result.status is IcpStatus.SAT

    def test_half_infinite_box(self):
        box = Box({"x": Interval(0.0, float("inf"))})
        both([(x * x - 4) <= 0, (1 - x) <= 0], box)

    def test_huge_coefficients_defer_to_scalar(self):
        # 1e200-scale enclosures leave the guarded exactness band, so
        # the batched engine must defer those boxes to the scalar step
        # and still agree exactly.
        huge = Fraction(10) ** 200
        both(
            [(huge * x * x - huge) <= 0, (Fraction(1, 2) - x) <= 0],
            Box.cube(["x"], -2.0, 2.0),
        )

    def test_tiny_coefficients_defer_to_scalar(self):
        tiny = Fraction(1, 10**200)
        both(
            [(tiny * x * x - tiny) <= 0, (Fraction(1, 2) - x) <= 0],
            Box.cube(["x"], -2.0, 2.0),
        )

    def test_equality_contraction_paths(self):
        both(
            [(2 * x + 3 * y - 1).eq(0), (x - y) <= 0],
            Box.cube(["x", "y"], -4.0, 4.0),
        )

    def test_disequality_split(self):
        # NE atoms exercise the no-linear-plan path.
        both(
            [x.eq(0).negate(), x * x <= Fraction(1, 4)],
            Box.cube(["x"], -1.0, 1.0),
        )


@st.composite
def small_systems(draw):
    """A conjunction of low-degree polynomial atoms over a small box."""
    n_vars = draw(st.integers(1, 3))
    variables = [x, y, z][:n_vars]
    coeff = st.integers(-3, 3)

    def poly(allow_quadratic=True):
        terms = []
        for v in variables:
            c = draw(coeff)
            if c:
                terms.append(c * v)
            if allow_quadratic:
                c2 = draw(coeff)
                if c2:
                    terms.append(c2 * v * v)
        c0 = draw(coeff)
        base = terms[0] if terms else polynomial_of_zero()
        for t in terms[1:]:
            base = base + t
        return base + c0

    def polynomial_of_zero():
        return variables[0] - variables[0]

    n_atoms = draw(st.integers(1, 3))
    atoms = []
    for _ in range(n_atoms):
        lhs = poly()
        relation = draw(st.sampled_from(["le", "lt", "eq"]))
        if relation == "le":
            atoms.append(lhs <= 0)
        elif relation == "lt":
            atoms.append(lhs < 0)
        else:
            atoms.append(lhs.eq(0))
    radius = draw(st.sampled_from([1.0, 2.0, 8.0]))
    box = Box.cube([v.name for v in variables], -radius, radius)
    return atoms, box


class TestHypothesisDifferential:
    @settings(max_examples=60, deadline=None)
    @given(small_systems())
    def test_batched_replays_scalar(self, system):
        atoms, box = system
        both(atoms, box, max_boxes=3000)

    @settings(max_examples=25, deadline=None)
    @given(small_systems(), st.integers(1, 40))
    def test_budget_equivalence(self, system, budget):
        atoms, box = system
        both(atoms, box, max_boxes=budget)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        )
    )
    def test_definiteness_encoding_agrees(self, rows):
        matrix = RationalMatrix(rows).symmetrize()
        scalar = check_positive_definite_icp(
            matrix, max_boxes=20_000, backend="scalar"
        )
        batched = check_positive_definite_icp(
            matrix, max_boxes=20_000, backend="batched"
        )
        assert batched.verdict == scalar.verdict
        assert batched.counterexample == scalar.counterexample
        assert batched.faces_checked == scalar.faces_checked
        assert batched.boxes_explored == scalar.boxes_explored


class TestOracleSystems:
    """Scalar/batched equality on the ground-truth fuzzer's systems."""

    @pytest.mark.parametrize("kind", ["stable", "unstable", "integer"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fuzzer_matrices_agree(self, kind, seed):
        from repro.oracle import generate_system

        system = generate_system(kind, 3, seed)
        targets = [system.a.symmetrize()]
        if system.witness_p is not None:
            targets.append(system.witness_p)
        for matrix in targets:
            scalar = check_positive_definite_icp(
                matrix, max_boxes=4000, backend="scalar"
            )
            batched = check_positive_definite_icp(
                matrix, max_boxes=4000, backend="batched"
            )
            assert batched.verdict == scalar.verdict
            assert batched.counterexample == scalar.counterexample
            assert batched.boxes_explored == scalar.boxes_explored


class TestClassifyBoxes:
    def test_matches_scalar_classification(self):
        from repro.smt.icp import prepare_atoms

        atoms = [(x * x + y * y - 1) <= 0, (x + y) < 0]
        prepared = prepare_atoms(atoms)
        scalar_solver = IcpSolver(backend="scalar")
        boxes = [
            Box.cube(["x", "y"], -0.1, 0.1),        # satisfied
            Box.cube(["x", "y"], 2.0, 3.0),         # infeasible
            Box.cube(["x", "y"], -2.0, 2.0),        # undecided
            Box({"x": Interval(-0.2, -0.1), "y": Interval(-0.2, -0.1)}),
        ]
        verdicts = classify_boxes(atoms, boxes)
        scalar_names = {
            "infeasible": "infeasible",
            "satisfied": "satisfied",
            "undecided": "undecided",
        }
        for box, verdict in zip(boxes, verdicts):
            kind, _ = scalar_solver._classify(prepared, box)
            assert verdict == scalar_names[kind]

    def test_box_array_roundtrip(self):
        boxes = [
            Box({"b": Interval(0.0, 1.0), "a": Interval(-2.0, 3.0)}),
            Box({"b": Interval(-1.0, 1.0), "a": Interval(0.0, 0.5)}),
        ]
        arr = BoxArray.from_boxes(boxes)
        assert tuple(arr.names) == ("a", "b")
        assert len(arr) == 2
        back = arr.to_boxes()
        for original, restored in zip(boxes, back):
            for name in ("a", "b"):
                assert restored[name] == original[name]
