"""Property-based zonotope laws, with the oracle generator as the
matrix strategy source.

The linear maps exercised here are ground-truth systems from
:mod:`repro.oracle.generate` — the same seeded constructions the fuzz
campaign sweeps — so the strategy space includes ill-conditioned,
defective and singular matrices, not just well-behaved gaussians.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oracle import KINDS, generate_system
from repro.reach import Zonotope

_DIMS = st.integers(min_value=1, max_value=4)
_SEEDS = st.integers(min_value=0, max_value=10_000)


@st.composite
def oracle_matrix(draw, dims=_DIMS):
    """A generated system matrix (float image) of dimension 2..4."""
    kind = draw(st.sampled_from(KINDS))
    n = draw(dims)
    if kind in ("marginal", "jordan"):
        n = max(n, 2)
    return generate_system(kind, n, draw(_SEEDS)).a_float


@st.composite
def zonotope(draw, n):
    """A random zonotope of dimension ``n`` with 0..5 generators."""
    rng = np.random.default_rng(draw(_SEEDS))
    m = draw(st.integers(min_value=0, max_value=5))
    return Zonotope(rng.normal(size=n), rng.normal(size=(n, m)))


@st.composite
def matrix_and_zonotope(draw):
    matrix = draw(oracle_matrix())
    return matrix, draw(zonotope(matrix.shape[0]))


@given(matrix_and_zonotope(), _SEEDS)
@settings(max_examples=40)
def test_linear_map_support_duality(pair, dseed):
    """support(d, M Z) == support(M^T d, Z) — the defining identity."""
    matrix, z = pair
    direction = np.random.default_rng(dseed).normal(size=matrix.shape[0])
    mapped = z.linear_map(matrix)
    assert np.isclose(
        mapped.support(direction), z.support(matrix.T @ direction),
        rtol=1e-9, atol=1e-9,
    )


@given(matrix_and_zonotope(), _SEEDS, _SEEDS)
@settings(max_examples=40)
def test_minkowski_sum_support_is_additive(pair, zseed, dseed):
    matrix, x = pair
    n = matrix.shape[0]
    rng = np.random.default_rng(zseed)
    y = Zonotope(rng.normal(size=n), rng.normal(size=(n, 3)))
    direction = np.random.default_rng(dseed).normal(size=n)
    both = x.minkowski_sum(y)
    assert np.isclose(
        both.support(direction),
        x.support(direction) + y.support(direction),
        rtol=1e-9, atol=1e-9,
    )


@given(matrix_and_zonotope(), _SEEDS)
@settings(max_examples=40)
def test_interval_hull_contains_sampled_points(pair, bseed):
    matrix, z = pair
    z = z.linear_map(matrix)
    lower, upper = z.interval_hull()
    rng = np.random.default_rng(bseed)
    for _ in range(5):
        b = rng.uniform(-1.0, 1.0, size=z.n_generators)
        point = z.center + z.generators @ b
        assert np.all(point >= lower - 1e-9)
        assert np.all(point <= upper + 1e-9)


@given(matrix_and_zonotope(), _SEEDS)
@settings(max_examples=30)
def test_reduce_order_is_a_sound_overapproximation(pair, dseed):
    matrix, z = pair
    reduced = z.linear_map(matrix).reduce_order(max(z.dimension + 1, 2))
    original = z.linear_map(matrix)
    direction = np.random.default_rng(dseed).normal(size=z.dimension)
    assert reduced.support(direction) >= original.support(direction) - 1e-9


@given(matrix_and_zonotope(), st.floats(min_value=0.0, max_value=8.0))
@settings(max_examples=30)
def test_scale_is_positively_homogeneous(pair, factor):
    matrix, z = pair
    direction = matrix[0] if matrix.shape[0] else np.ones(1)
    assert np.isclose(
        z.scale(factor).support(direction),
        factor * z.support(direction),
        rtol=1e-9, atol=1e-9,
    )


@given(oracle_matrix())
@settings(max_examples=30)
def test_point_zonotope_maps_to_point(matrix):
    n = matrix.shape[0]
    z = Zonotope.point(np.ones(n)).linear_map(matrix)
    assert z.n_generators == 0
    assert np.allclose(z.center, matrix @ np.ones(n))
    assert z.radius_inf() == 0.0
