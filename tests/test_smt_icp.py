"""Tests for the ICP branch-and-prune solver (repro.smt.icp)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import RationalMatrix
from repro.smt import (
    Box,
    IcpSolver,
    IcpStatus,
    Interval,
    Var,
    eval_poly_interval,
    polynomial_of,
    quadratic_form_term,
)

x, y = Var("x"), Var("y")


class TestBox:
    def test_cube(self):
        box = Box.cube(["x", "y"], -1.0, 1.0)
        assert box["x"] == Interval(-1.0, 1.0)
        assert box.max_width() == 2.0

    def test_widest_variable(self):
        box = Box({"x": Interval(0.0, 1.0), "y": Interval(0.0, 3.0)})
        assert box.widest_variable() == "y"

    def test_with_interval_copies(self):
        box = Box.cube(["x"], 0.0, 1.0)
        other = box.with_interval("x", Interval(0.0, 0.5))
        assert box["x"].hi == 1.0 and other["x"].hi == 0.5

    def test_midpoint_is_rational(self):
        box = Box.cube(["x"], 0.0, 1.0)
        assert box.midpoint() == {"x": Fraction(1, 2)}


class TestEvalPolyInterval:
    def test_simple(self):
        poly = polynomial_of(x * x + y)
        box = Box({"x": Interval(-1.0, 1.0), "y": Interval(0.0, 2.0)})
        enclosure = eval_poly_interval(poly, box)
        assert enclosure.lo <= 0.0 and enclosure.hi >= 3.0

    def test_constant(self):
        enclosure = eval_poly_interval(polynomial_of(x - x + 5), Box.cube(["x"], 0, 1))
        assert enclosure.contains(5)

    def test_power_table_leaves_enclosures_unchanged(self):
        # Satellite regression: sharing a power table across monomials
        # and constraints must reproduce the uncached enclosures
        # exactly (the cached entries ARE the same __pow__ results).
        polys = [
            polynomial_of(x * x + y),
            polynomial_of(3 * x * x * x - 2 * x * x + y * y),
            polynomial_of(x * x * y * y - x * y + 7),
        ]
        box = Box({"x": Interval(-1.5, 2.0), "y": Interval(-0.25, 3.0)})
        powers: dict = {}
        for poly in polys:
            plain = eval_poly_interval(poly, box)
            shared = eval_poly_interval(poly, box, powers=powers)
            assert shared == plain
        # The table actually filled and is keyed by (variable, exponent).
        assert ("x", 2) in powers
        assert powers[("x", 2)] == box["x"] ** 2

    def test_power_table_hits_skip_recomputation(self):
        poly = polynomial_of(x * x + 2 * x * x * y)
        box = Box({"x": Interval(-1.0, 1.0), "y": Interval(0.0, 2.0)})
        sentinel = Interval(5.0, 6.0)
        poisoned = {("x", 2): sentinel}
        # A poisoned cache entry shows up in the result, proving the
        # table is consulted instead of recomputing x**2 per monomial.
        poisoned_result = eval_poly_interval(poly, box, powers=poisoned)
        assert poisoned_result != eval_poly_interval(poly, box)


class TestWidest:
    def test_tie_breaks_to_sorted_name(self):
        box = Box(
            {
                "b": Interval(0.0, 2.0),
                "c": Interval(0.0, 1.0),
                "a": Interval(-1.0, 1.0),
            }
        )
        assert box.widest() == ("a", 2.0)
        assert box.widest_variable() == "a"
        assert box.max_width() == 2.0

    def test_split_variable_tie_break_pinned(self):
        # Satellite: the DFS split order is deterministic — equal widths
        # split the lexicographically smallest candidate first, however
        # the box dict happens to be ordered.
        from repro.smt.icp import prepare_atoms

        solver = IcpSolver(backend="scalar")
        prepared = prepare_atoms([(x * x + y * y - 2) <= 0])
        box = Box.cube(["y", "x"], -1.0, 1.0)
        assert solver._pick_split_variable(box, prepared) == "x"


class TestIcpDecisions:
    def test_unsat_positive_poly(self):
        # x^2 + 1 <= 0 has no solution anywhere.
        result = IcpSolver().check([(x * x + 1) <= 0], Box.cube(["x"], -10.0, 10.0))
        assert result.status is IcpStatus.UNSAT

    def test_sat_with_witness(self):
        # x^2 - 1 <= 0 and x >= 1/2
        result = IcpSolver().check(
            [(x * x - 1) <= 0, (Fraction(1, 2) - x) <= 0],
            Box.cube(["x"], -10.0, 10.0),
        )
        assert result.status is IcpStatus.SAT
        w = result.witness["x"]
        assert w * w <= 1 and w >= Fraction(1, 2)

    def test_unsat_outside_box(self):
        # x >= 5 within box [-1, 1]
        result = IcpSolver().check([(5 - x) <= 0], Box.cube(["x"], -1.0, 1.0))
        assert result.status is IcpStatus.UNSAT

    def test_strict_vs_nonstrict_at_boundary(self):
        box = Box.cube(["x"], 0.0, 1.0)
        # x < 0 is UNSAT on [0, 1]; x <= 0 is SAT (at 0).
        assert IcpSolver().check([x < 0], box).status is IcpStatus.UNSAT
        nonstrict = IcpSolver().check([x <= 0], box)
        assert nonstrict.status in (IcpStatus.SAT, IcpStatus.DELTA_SAT)

    def test_equality_atom(self):
        result = IcpSolver().check(
            [(x * x - 2).eq(0)], Box.cube(["x"], 0.0, 2.0)
        )
        # sqrt(2) is irrational: ICP can only conclude delta-sat.
        assert result.status is IcpStatus.DELTA_SAT
        mid = result.witness_box["x"].midpoint
        assert mid == pytest.approx(2**0.5, abs=1e-5)

    def test_equality_unsat(self):
        result = IcpSolver().check([(x * x + 1).eq(0)], Box.cube(["x"], -5.0, 5.0))
        assert result.status is IcpStatus.UNSAT

    def test_disequality(self):
        result = IcpSolver().check(
            [x.eq(0).negate(), x * x <= Fraction(1, 4)],
            Box.cube(["x"], -1.0, 1.0),
        )
        assert result.status is IcpStatus.SAT
        assert result.witness["x"] != 0

    def test_two_variables(self):
        # Unit circle intersect x >= 0.9, y >= 0.9: impossible.
        circle = (x * x + y * y - 1).eq(0)
        result = IcpSolver().check(
            [circle, (Fraction(9, 10) - x) <= 0, (Fraction(9, 10) - y) <= 0],
            Box.cube(["x", "y"], -2.0, 2.0),
        )
        assert result.status is IcpStatus.UNSAT

    def test_budget_exhaustion_returns_unknown(self):
        solver = IcpSolver(delta=1e-30, max_boxes=5)
        result = solver.check(
            [(x * x - 2).eq(0)], Box.cube(["x"], 0.0, 2.0)
        )
        assert result.status in (IcpStatus.UNKNOWN, IcpStatus.DELTA_SAT)

    def test_stats_populated(self):
        result = IcpSolver().check([(x * x + 1) <= 0], Box.cube(["x"], -4.0, 4.0))
        assert result.boxes_explored >= 1


class TestIcpOnQuadraticForms:
    """The definiteness workloads the library actually runs."""

    def test_pd_form_unsat_on_face(self):
        p = RationalMatrix([[2, 1], [1, 2]])
        form = quadratic_form_term(p, [x, y])
        box = Box({"x": Interval(1.0, 1.0), "y": Interval(-1.0, 1.0)})
        result = IcpSolver().check([form <= 0], box)
        assert result.status is IcpStatus.UNSAT

    def test_indefinite_form_sat_on_face(self):
        p = RationalMatrix([[1, 2], [2, 1]])  # eigenvalues 3, -1
        form = quadratic_form_term(p, [x, y])
        box = Box({"x": Interval(1.0, 1.0), "y": Interval(-1.0, 1.0)})
        result = IcpSolver().check([form <= 0], box)
        assert result.status is IcpStatus.SAT
        witness = [result.witness["x"], result.witness["y"]]
        assert p.quadratic_form(witness) <= 0

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        )
    )
    def test_agrees_with_exact_sylvester(self, rows):
        from repro.exact import sylvester_positive_definite
        from repro.smt import check_positive_definite_icp

        m = RationalMatrix(rows).symmetrize()
        outcome = check_positive_definite_icp(m, max_boxes=50_000)
        expected = sylvester_positive_definite(m)
        if outcome.verdict is not None:
            assert outcome.verdict == expected
