"""Tests for the Lyapunov LMI solvers (repro.sdp)."""

import numpy as np
import pytest

from repro.sdp import (
    BACKENDS,
    LmiInfeasibleError,
    LyapunovLmiProblem,
    best_alpha,
    solve_lyapunov_lmi,
)

ALL_BACKENDS = sorted(BACKENDS)


def stable_matrix(n, seed=0, margin=0.5):
    """A random Hurwitz matrix with spectral abscissa <= -margin."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    abscissa = float(np.linalg.eigvals(a).real.max())
    return a - (abscissa + margin) * np.eye(n)


class TestProblem:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            LyapunovLmiProblem(np.ones((2, 3)))

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LyapunovLmiProblem(np.eye(2), alpha=-1.0)

    def test_rejects_bad_nu(self):
        with pytest.raises(ValueError):
            LyapunovLmiProblem(np.eye(2), nu=0.0)

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            LyapunovLmiProblem(np.eye(2), margin=0.0)

    def test_margins_at_known_point(self):
        a = -np.eye(2)
        problem = LyapunovLmiProblem(a, margin=1e-6)
        floor, decay = problem.constraint_margins(np.eye(2))
        # P = I: floor = 1 - 1e-6, L(P) = -2I so decay = 2 - 1e-6.
        assert floor == pytest.approx(1.0, abs=1e-5)
        assert decay == pytest.approx(2.0, abs=1e-5)
        assert problem.is_strictly_feasible(np.eye(2))
        assert problem.residual(np.eye(2)) == 0.0

    def test_residual_positive_when_infeasible(self):
        problem = LyapunovLmiProblem(-np.eye(2))
        assert problem.residual(-np.eye(2)) > 0


class TestBackends:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("n", [2, 5, 10])
    def test_plain_lmi_feasible(self, backend, n):
        a = stable_matrix(n, seed=n)
        solution = solve_lyapunov_lmi(a, backend=backend)
        problem = LyapunovLmiProblem(a)
        assert problem.is_strictly_feasible(solution.p, slack=1e-10)
        assert np.allclose(solution.p, solution.p.T)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_alpha_constraint_enforced(self, backend):
        a = stable_matrix(6, seed=3, margin=2.0)
        alpha = 1.0
        solution = solve_lyapunov_lmi(a, alpha=alpha, backend=backend)
        p = solution.p
        decay = np.linalg.eigvalsh(a.T @ p + p @ a + alpha * p).max()
        assert decay < 0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_nu_floor_enforced(self, backend):
        a = stable_matrix(4, seed=9)
        nu = 2.5
        solution = solve_lyapunov_lmi(a, nu=nu, backend=backend)
        assert np.linalg.eigvalsh(solution.p).min() >= nu

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_unstable_matrix_rejected(self, backend):
        a = np.array([[1.0, 0.0], [0.0, -1.0]])
        with pytest.raises(LmiInfeasibleError):
            solve_lyapunov_lmi(a, backend=backend)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_excessive_alpha_rejected(self, backend):
        a = -np.eye(3)  # decay rate exactly 2
        with pytest.raises(LmiInfeasibleError):
            solve_lyapunov_lmi(a, alpha=5.0, backend=backend)

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            solve_lyapunov_lmi(-np.eye(2), backend="mosek")

    def test_solution_metadata(self):
        solution = solve_lyapunov_lmi(-np.eye(3), backend="shift")
        assert solution.backend == "shift"
        assert solution.iterations >= 1
        assert solution.matrix is solution.p

    def test_ipm_returns_interior_point(self):
        """The analytic center should be far from the constraint floor."""
        a = stable_matrix(4, seed=1)
        shift_sol = solve_lyapunov_lmi(a, backend="shift")
        ipm_sol = solve_lyapunov_lmi(a, backend="ipm")
        problem = LyapunovLmiProblem(a)
        floor_shift, _ = problem.constraint_margins(shift_sol.p)
        floor_ipm, _ = problem.constraint_margins(ipm_sol.p)
        assert floor_ipm > floor_shift  # deeper in the cone


class TestBestAlpha:
    def test_matches_spectral_abscissa(self):
        a = np.diag([-1.0, -3.0])
        # Decay limited by the slowest mode: alpha* = 2.
        assert best_alpha(a, tolerance=1e-4) == pytest.approx(2.0, abs=1e-3)

    def test_rejects_unstable(self):
        with pytest.raises(LmiInfeasibleError):
            best_alpha(np.eye(2))

    def test_random_system(self):
        a = stable_matrix(5, seed=12)
        expected = -2.0 * float(np.linalg.eigvals(a).real.max())
        assert best_alpha(a, tolerance=1e-4) == pytest.approx(expected, abs=1e-2)
