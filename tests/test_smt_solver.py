"""Tests for the combined SMT front-end (repro.smt.solver, .encodings)."""

import pytest

from repro.exact import RationalMatrix, sylvester_positive_definite
from repro.smt import (
    And,
    Box,
    Not,
    Or,
    SmtSolver,
    SmtStatus,
    Var,
    check_positive_definite_icp,
)

x, y = Var("x"), Var("y")


class TestSolverDispatch:
    def test_linear_sat(self):
        result = SmtSolver().check(And((x <= 1, x >= 0)))
        assert result.is_sat
        assert 0 <= result.model["x"] <= 1

    def test_linear_unsat(self):
        result = SmtSolver().check(And((x < 0, x > 0)))
        assert result.is_unsat

    def test_disjunction(self):
        f = Or((And((x < 0, x > 0)), x.eq(7)))
        result = SmtSolver().check(f)
        assert result.is_sat
        assert result.model["x"] == 7

    def test_nonlinear_needs_box(self):
        with pytest.raises(ValueError):
            SmtSolver().check(And(((x * x) <= 0, (x * x) >= 1)))

    def test_nonlinear_unsat(self):
        f = And(((x * x + 1) <= 0,))
        result = SmtSolver().check(f, Box.cube(["x"], -10.0, 10.0))
        assert result.is_unsat

    def test_nonlinear_sat(self):
        f = And(((x * x - 4).eq(0), x >= 0))
        result = SmtSolver().check(f, Box.cube(["x"], -5.0, 5.0))
        # x = 2 is rational: solver should find it exactly or delta-sat it.
        assert result.status in (SmtStatus.SAT, SmtStatus.DELTA_SAT)

    def test_nonlinear_ne_case_split(self):
        f = And((Not((x * x).eq(0)), (x * x) <= 1))
        result = SmtSolver().check(f, Box.cube(["x"], -2.0, 2.0))
        assert result.is_sat
        assert result.model["x"] != 0

    def test_empty_conjunction_is_sat(self):
        result = SmtSolver().check_conjunction([])
        assert result.is_sat

    def test_mixed_statuses_prefer_delta(self):
        # One conjunct unsat, another only delta-decidable.
        f = Or((And((x < 0, x > 0)), And(((x * x - 2).eq(0),))))
        result = SmtSolver().check(f, Box.cube(["x"], 0.0, 2.0))
        assert result.status is SmtStatus.DELTA_SAT


class TestDefinitenessEncoding:
    def test_pd_validated(self):
        p = RationalMatrix([[2, 1], [1, 2]])
        outcome = check_positive_definite_icp(p)
        assert outcome.verdict is True
        assert outcome.faces_checked == 2

    def test_indefinite_refuted_with_witness(self):
        p = RationalMatrix([[1, 2], [2, 1]])
        outcome = check_positive_definite_icp(p)
        assert outcome.verdict is False
        witness = [outcome.counterexample["w0"], outcome.counterexample["w1"]]
        assert p.quadratic_form(witness) <= 0

    def test_negative_definite_refuted(self):
        p = RationalMatrix([[-1, 0], [0, -1]])
        outcome = check_positive_definite_icp(p)
        assert outcome.verdict is False

    def test_plus_det_catches_singular(self):
        p = RationalMatrix([[1, 1], [1, 1]])
        outcome = check_positive_definite_icp(p, plus_det=True)
        assert outcome.verdict is False

    def test_plus_det_on_pd(self):
        p = RationalMatrix([[5, 1], [1, 5]])
        assert check_positive_definite_icp(p, plus_det=True).verdict is True

    def test_singular_without_det_is_undecided_or_refuted(self):
        # q(w) = (w0 - w1)^2: zero on the diagonal, never negative.
        p = RationalMatrix([[1, -1], [-1, 1]])
        outcome = check_positive_definite_icp(p, max_boxes=3_000)
        assert outcome.verdict in (False, None)
        assert outcome.verdict is not True

    def test_requires_symmetric(self):
        with pytest.raises(ValueError):
            check_positive_definite_icp(RationalMatrix([[1, 2], [0, 1]]))

    @pytest.mark.parametrize("plus_det", [False, True])
    def test_agrees_with_sylvester_on_diagonals(self, plus_det):
        for diag in ([3, 1, 2], [1, -1, 2], [2, 2, 0]):
            m = RationalMatrix.diagonal(diag)
            outcome = check_positive_definite_icp(m, plus_det=plus_det)
            expected = sylvester_positive_definite(m)
            if outcome.verdict is not None:
                assert outcome.verdict == expected
