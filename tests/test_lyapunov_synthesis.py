"""Tests for the Lyapunov synthesis methods (repro.lyapunov)."""

import numpy as np
import pytest
from fractions import Fraction

from repro.exact import RationalMatrix, sylvester_positive_definite
from repro.lyapunov import (
    LMI_METHODS,
    METHODS,
    LyapunovCandidate,
    SynthesisTimeout,
    default_alpha,
    modal_lyapunov,
    solve_lyapunov_exact,
    solve_lyapunov_numeric,
    synthesize,
)


def stable_matrix(n, seed=0, margin=0.5):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a - (np.linalg.eigvals(a).real.max() + margin) * np.eye(n)


def is_valid_lyapunov(p, a, tol=1e-9):
    return (
        np.linalg.eigvalsh(p).min() > tol
        and np.linalg.eigvalsh(a.T @ p + p @ a).max() < -tol
    )


class TestCandidate:
    def test_symmetrizes(self):
        c = LyapunovCandidate(np.array([[1.0, 2.0], [0.0, 1.0]]), method="x")
        assert np.allclose(c.p, [[1.0, 1.0], [1.0, 1.0]])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            LyapunovCandidate(np.ones((2, 3)), method="x")

    def test_value(self):
        c = LyapunovCandidate(np.diag([2.0, 3.0]), method="x")
        assert c.value([1.0, 1.0]) == pytest.approx(5.0)
        assert c.value([2.0, 1.0], center=[1.0, 1.0]) == pytest.approx(2.0)

    def test_lie_matrix(self):
        a = np.array([[-1.0, 0.0], [0.0, -2.0]])
        c = LyapunovCandidate(np.eye(2), method="x")
        assert np.allclose(c.lie_matrix(a), [[-2.0, 0.0], [0.0, -4.0]])

    def test_exact_p_rounding(self):
        c = LyapunovCandidate(np.array([[1.23456789012345]]), method="x")
        exact = c.exact_p(sigfigs=3)
        assert exact[0, 0] == Fraction(123, 100)
        unrounded = c.exact_p(sigfigs=None)
        assert float(unrounded[0, 0]) == 1.23456789012345

    def test_label_and_eigrange(self):
        c = LyapunovCandidate(np.eye(2), method="lmi", backend="ipm")
        assert c.label == "lmi/ipm"
        assert c.eigenvalue_range() == (1.0, 1.0)


class TestEquationSolvers:
    def test_numeric_solves_equation(self):
        a = stable_matrix(5, seed=1)
        p = solve_lyapunov_numeric(a)
        assert np.allclose(a.T @ p + p @ a, -np.eye(5), atol=1e-8)

    def test_numeric_custom_q(self):
        a = stable_matrix(3, seed=2)
        q = np.diag([1.0, 2.0, 3.0])
        p = solve_lyapunov_numeric(a, q)
        assert np.allclose(a.T @ p + p @ a, -q, atol=1e-8)

    def test_exact_solves_equation(self):
        a = RationalMatrix([[-2, 1], [0, -3]])
        p = solve_lyapunov_exact(a)
        residual = a.T @ p + p @ a + RationalMatrix.identity(2)
        assert residual.is_zero()
        assert p.is_symmetric()
        assert sylvester_positive_definite(p)

    def test_exact_matches_numeric(self):
        a_int = [[-3, 1, 0], [0, -2, 1], [1, 0, -4]]
        p_exact = solve_lyapunov_exact(RationalMatrix(a_int))
        p_num = solve_lyapunov_numeric(np.array(a_int, dtype=float))
        assert np.allclose(p_exact.to_numpy(), p_num, atol=1e-9)

    def test_exact_matches_sympy(self):
        import sympy

        a_int = [[-2, 1], [1, -3]]
        p = solve_lyapunov_exact(RationalMatrix(a_int))
        a_sym = sympy.Matrix(a_int)
        p_sym = sympy.Matrix(2, 2, lambda i, j: sympy.Rational(
            p[i, j].numerator, p[i, j].denominator))
        assert (a_sym.T * p_sym + p_sym * a_sym + sympy.eye(2)).is_zero_matrix

    def test_exact_timeout(self):
        a = RationalMatrix.from_numpy(stable_matrix(10, seed=3))
        with pytest.raises(SynthesisTimeout):
            solve_lyapunov_exact(a, deadline=1e-4)

    def test_exact_singular_operator(self):
        # A and -A share eigenvalues (eig +-1): Lyapunov operator singular.
        a = RationalMatrix([[1, 0], [0, -1]])
        with pytest.raises(ValueError):
            solve_lyapunov_exact(a)


class TestModal:
    def test_valid_on_diagonalizable(self):
        a = stable_matrix(5, seed=4)
        p = modal_lyapunov(a)
        assert is_valid_lyapunov(p, a)

    def test_complex_eigenvalues_give_real_p(self):
        a = np.array([[-1.0, 5.0], [-5.0, -1.0]])
        p = modal_lyapunov(a)
        assert np.isrealobj(p)
        assert is_valid_lyapunov(p, a)

    def test_rejects_unstable(self):
        with pytest.raises(ValueError):
            modal_lyapunov(np.array([[1.0]]))

    def test_rejects_defective(self):
        # Jordan block: not diagonalizable.
        a = np.array([[-1.0, 1.0], [0.0, -1.0]])
        with pytest.raises(ValueError):
            modal_lyapunov(a)


class TestSynthesizeRegistry:
    @pytest.mark.parametrize("method", [m for m in METHODS if m != "eq-smt"])
    def test_all_numeric_methods_produce_valid_candidates(self, method):
        a = stable_matrix(6, seed=5)
        candidate = synthesize(method, a)
        assert candidate.method == method
        assert candidate.synthesis_time >= 0
        assert is_valid_lyapunov(candidate.p, a)

    def test_eq_smt_small(self):
        a = np.array([[-2.0, 1.0], [0.0, -3.0]])
        candidate = synthesize("eq-smt", a)
        assert is_valid_lyapunov(candidate.p, a)
        assert "exact" in candidate.info

    @pytest.mark.parametrize("method", LMI_METHODS)
    @pytest.mark.parametrize("backend", ["ipm", "shift", "proj"])
    def test_lmi_backends(self, method, backend):
        a = stable_matrix(4, seed=6)
        candidate = synthesize(method, a, backend=backend)
        assert candidate.backend == backend
        assert is_valid_lyapunov(candidate.p, a)

    def test_lmi_alpha_enforces_decay(self):
        a = stable_matrix(4, seed=7, margin=2.0)
        alpha = default_alpha(a)
        candidate = synthesize("lmi-alpha", a, alpha=alpha)
        lie = candidate.lie_matrix(a) + alpha * candidate.p
        assert np.linalg.eigvalsh(lie).max() < 0

    def test_lmi_alpha_plus_floor(self):
        a = stable_matrix(4, seed=8)
        candidate = synthesize("lmi-alpha+", a, nu=2.0)
        assert np.linalg.eigvalsh(candidate.p).min() >= 2.0

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            synthesize("sos", -np.eye(2))

    def test_default_alpha_positive(self):
        assert default_alpha(-np.eye(3)) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            default_alpha(np.eye(2))
