"""Property-based laws for the Table II volume formulas, with SPD
matrices sourced from the oracle generator's witness constructions."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oracle import generate_system
from repro.robust import (
    cap_fraction,
    ellipsoid_volume,
    log10_truncated_ellipsoid_volume,
    truncated_ellipsoid_volume,
    unit_ball_volume,
)

_SEEDS = st.integers(min_value=0, max_value=10_000)
_DIMS = st.integers(min_value=1, max_value=5)


@st.composite
def witness_spd(draw):
    """A genuinely SPD matrix: a generated stable system's witness P."""
    system = generate_system("stable", draw(_DIMS), draw(_SEEDS))
    return system.witness_p.to_numpy()


@given(witness_spd(), st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=40)
def test_volume_scales_as_k_to_the_half_n(p, k):
    n = p.shape[0]
    base = ellipsoid_volume(p, k)
    quadrupled = ellipsoid_volume(p, 4.0 * k)
    assert np.isclose(quadrupled, base * 2.0 ** n, rtol=1e-9)


@given(witness_spd())
@settings(max_examples=40)
def test_volume_matches_determinant_formula(p):
    n = p.shape[0]
    expected = unit_ball_volume(n) / math.sqrt(np.linalg.det(p))
    assert np.isclose(ellipsoid_volume(p, 1.0), expected, rtol=1e-9)


@given(witness_spd(), st.floats(min_value=0.01, max_value=50.0), _SEEDS)
@settings(max_examples=40)
def test_truncation_never_grows_the_volume(p, k, seed):
    n = p.shape[0]
    rng = np.random.default_rng(seed)
    center = rng.normal(size=n)
    normal = rng.normal(size=n)
    if not np.any(normal):
        normal = np.ones(n)
    offset = float(rng.normal())
    full = ellipsoid_volume(p, k)
    truncated = truncated_ellipsoid_volume(p, k, center, normal, offset)
    assert -1e-12 <= truncated <= full * (1 + 1e-9)
    # Opposite half-spaces partition the ellipsoid.
    other = truncated_ellipsoid_volume(p, k, center, -normal, -offset)
    assert np.isclose(truncated + other, full, rtol=1e-9, atol=1e-12)


@given(witness_spd(), st.floats(min_value=0.01, max_value=50.0), _SEEDS)
@settings(max_examples=40)
def test_log10_variant_agrees_when_finite(p, k, seed):
    n = p.shape[0]
    rng = np.random.default_rng(seed)
    center = rng.normal(size=n)
    normal = rng.normal(size=n)
    if not np.any(normal):
        normal = np.ones(n)
    offset = float(rng.normal())
    plain = truncated_ellipsoid_volume(p, k, center, normal, offset)
    logged = log10_truncated_ellipsoid_volume(p, k, center, normal, offset)
    if plain > 0 and math.isfinite(plain):
        assert np.isclose(logged, math.log10(plain), rtol=1e-9, atol=1e-9)
    else:
        assert logged == -math.inf or plain == math.inf


@given(st.floats(min_value=-1.0, max_value=1.0), st.integers(1, 6))
@settings(max_examples=60)
def test_cap_fraction_symmetry_and_bounds(t, n):
    f = cap_fraction(t, n)
    assert 0.0 <= f <= 1.0
    assert np.isclose(f + cap_fraction(-t, n), 1.0, atol=1e-12)


@given(st.integers(1, 6))
@settings(max_examples=10)
def test_cap_fraction_is_monotone(n):
    grid = np.linspace(-1.0, 1.0, 21)
    values = [cap_fraction(float(t), n) for t in grid]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
