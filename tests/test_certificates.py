"""Tests for machine-checkable certificates (repro.robust.certificates)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exact import RationalMatrix
from repro.robust import StabilityCertificate, certify_mode
from repro.systems import AffineSystem, HalfSpace


def simple_mode():
    flow = AffineSystem([[-1.0, 4.0], [0.0, -1.0]], [0.0, 0.0])
    halfspace = HalfSpace((1, 0), 1)
    # P = diag(1, 5) is a genuine Lyapunov function for this A:
    # A^T P + P A = [[-2, 4], [4, -10]] is negative definite.
    p = RationalMatrix.diagonal([1, 5])
    return flow, halfspace, p


class TestCertifyMode:
    def test_build_and_verify(self):
        flow, halfspace, p = simple_mode()
        certificate = certify_mode(
            flow, halfspace, p, provenance={"method": "manual"}
        )
        assert certificate.verify()
        assert certificate.k is not None
        assert certificate.k > 0

    def test_whole_region_certificate(self):
        flow = AffineSystem([[-1.0, 0.0], [0.0, -1.0]], [0.0, 0.0])
        certificate = certify_mode(
            flow, HalfSpace((1, 0), 1), RationalMatrix.identity(2)
        )
        assert certificate.k is None  # no finite truncation
        assert certificate.verify()

    def test_json_roundtrip_is_exact(self):
        flow, halfspace, p = simple_mode()
        certificate = certify_mode(flow, halfspace, p)
        text = certificate.to_json()
        back = StabilityCertificate.from_json(text)
        assert back.p == certificate.p
        assert back.a == certificate.a
        assert back.k == certificate.k
        assert back.surface_normal == certificate.surface_normal
        assert back.verify()

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            StabilityCertificate.from_json('{"format": "something-else"}')

    def test_tampered_p_fails_verification(self):
        flow, halfspace, p = simple_mode()
        certificate = certify_mode(flow, halfspace, p)
        tampered = StabilityCertificate(
            a=certificate.a,
            p=RationalMatrix([[1, 2], [2, 1]]),  # indefinite
            b=certificate.b,
            surface_normal=certificate.surface_normal,
            surface_offset=certificate.surface_offset,
            k=certificate.k,
        )
        with pytest.raises(AssertionError):
            tampered.verify()

    def test_inflated_level_fails_verification(self):
        flow, halfspace, p = simple_mode()
        certificate = certify_mode(flow, halfspace, p)
        inflated = StabilityCertificate(
            a=certificate.a, p=certificate.p, b=certificate.b,
            surface_normal=certificate.surface_normal,
            surface_offset=certificate.surface_offset,
            k=certificate.k * 4,  # claims more than the exact optimum
        )
        with pytest.raises(AssertionError):
            inflated.verify()

    def test_unstable_mode_fails(self):
        certificate = StabilityCertificate(
            a=RationalMatrix([[1]]), p=RationalMatrix([[1]])
        )
        with pytest.raises(AssertionError):
            certificate.verify()

    def test_engine_mode_certificate_end_to_end(self):
        """Full pipeline: synthesize, round, certify, serialize, verify."""
        from repro.engine import case_by_name
        from repro.lyapunov import synthesize

        case = case_by_name("size5")
        system = case.switched_system(case.reference())
        flow = system.modes[0].flow
        halfspace = system.modes[0].region.halfspaces[0]
        candidate = synthesize("lmi", case.mode_matrix(0), backend="ipm")
        certificate = certify_mode(
            flow, halfspace, candidate.exact_p(10),
            provenance={"method": "lmi", "backend": "ipm", "case": case.name},
        )
        restored = StabilityCertificate.from_json(certificate.to_json())
        assert restored.verify()
        assert restored.provenance["case"] == "size5"
