"""Tests for StateSpace and AffineSystem (repro.systems.statespace)."""

import numpy as np
import pytest

from repro.exact import RationalMatrix
from repro.systems import AffineSystem, StateSpace


def example_siso():
    # x' = -2x + u, y = 3x: DC gain 3/2.
    return StateSpace(a=[[-2.0]], b=[[1.0]], c=[[3.0]])


class TestStateSpace:
    def test_dimensions(self):
        sys = StateSpace(np.eye(3) * -1, np.ones((3, 2)), np.ones((1, 3)))
        assert sys.n_states == 3
        assert sys.n_inputs == 2
        assert sys.n_outputs == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            StateSpace(np.ones((2, 3)), np.ones((2, 1)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            StateSpace(np.eye(2), np.ones((3, 1)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            StateSpace(np.eye(2), np.ones((2, 1)), np.ones((1, 3)))

    def test_poles_and_stability(self):
        sys = example_siso()
        assert np.allclose(sys.poles(), [-2.0])
        assert sys.is_stable()
        assert sys.spectral_abscissa() == -2.0
        unstable = StateSpace([[1.0]], [[1.0]], [[1.0]])
        assert not unstable.is_stable()

    def test_dc_gain(self):
        assert example_siso().dc_gain() == pytest.approx(np.array([[1.5]]))

    def test_equilibrium(self):
        sys = example_siso()
        x_eq = sys.equilibrium(np.array([4.0]))
        assert x_eq == pytest.approx([2.0])
        assert sys.derivative(x_eq, [4.0]) == pytest.approx([0.0])

    def test_output(self):
        assert example_siso().output([2.0]) == pytest.approx([6.0])

    def test_exact_roundtrip(self):
        sys = example_siso()
        a, b, c = sys.exact()
        assert isinstance(a, RationalMatrix)
        assert a[0, 0] == -2

    def test_rounded_to_integers(self):
        sys = StateSpace([[-1.6]], [[0.4]], [[2.5]])
        rounded = sys.rounded_to_integers()
        assert rounded.a[0, 0] == -2.0
        assert rounded.b[0, 0] == 0.0
        assert rounded.c[0, 0] == 2.0  # banker's rounding

    def test_repr(self):
        assert "n=1" in repr(example_siso())


class TestAffineSystem:
    def test_equilibrium(self):
        sys = AffineSystem([[-1.0, 0.0], [0.0, -2.0]], [2.0, 4.0])
        assert sys.equilibrium() == pytest.approx([2.0, 2.0])
        assert sys.derivative(sys.equilibrium()) == pytest.approx([0.0, 0.0])

    def test_stability(self):
        assert AffineSystem([[-1.0]], [0.0]).is_stable()
        assert not AffineSystem([[0.5]], [0.0]).is_stable()

    def test_validation(self):
        with pytest.raises(ValueError):
            AffineSystem(np.ones((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            AffineSystem(np.eye(2), np.zeros(3))

    def test_exact(self):
        a, b = AffineSystem([[-1.0]], [0.5]).exact()
        assert a[0, 0] == -1
        assert b[0, 0] == 0.5
