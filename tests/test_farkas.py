"""Tests for Farkas infeasibility certificates (repro.smt.linear)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import LinearConstraint, Relation, Var, solve_linear
from repro.smt.linear import check_farkas_certificate

x, y, z = Var("x"), Var("y"), Var("z")


def constraints(*atoms):
    return [LinearConstraint.from_atom(a) for a in atoms]


class TestCertificateProduction:
    def test_simple_unsat_carries_certificate(self):
        cs = constraints(x <= 0, (1 - x) <= 0)
        result = solve_linear(cs)
        assert not result.satisfiable
        assert check_farkas_certificate(cs, result.farkas)

    def test_strict_contradiction(self):
        cs = constraints(x < 0, Var("x") > 0)
        result = solve_linear(cs)
        assert not result.satisfiable
        assert check_farkas_certificate(cs, result.farkas)

    def test_equality_chain_contradiction(self):
        cs = constraints(x.eq(1), y.eq(x + 1), y <= 1)
        result = solve_linear(cs)
        assert not result.satisfiable
        assert check_farkas_certificate(cs, result.farkas)

    def test_pure_equality_contradiction(self):
        cs = constraints(x.eq(1), x.eq(2))
        result = solve_linear(cs)
        assert not result.satisfiable
        assert check_farkas_certificate(cs, result.farkas)

    def test_sat_has_no_certificate(self):
        result = solve_linear(constraints(x <= 5))
        assert result.satisfiable
        assert result.farkas is None

    def test_three_variable_cycle(self):
        cs = constraints((x - y) <= -1, (y - z) <= -1, (z - x) <= -1)
        result = solve_linear(cs)
        assert not result.satisfiable
        assert check_farkas_certificate(cs, result.farkas)

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(-4, 4),
                st.integers(-4, 4),
                st.integers(-6, 6),
                st.sampled_from(["<=", "<", "="]),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_every_unsat_verdict_is_certified(self, rows):
        """Soundness property: whenever FM reports UNSAT, the returned
        Farkas combination must check out independently."""
        atoms = []
        for a, b, c, op in rows:
            lhs = a * x + b * y + c
            if op == "<=":
                atoms.append(lhs <= 0)
            elif op == "<":
                atoms.append(lhs < 0)
            else:
                atoms.append(lhs.eq(0))
        cs = constraints(*atoms)
        result = solve_linear(cs)
        if not result.satisfiable:
            assert result.farkas is not None
            assert check_farkas_certificate(cs, result.farkas)


class TestCertificateChecker:
    def test_rejects_empty(self):
        assert not check_farkas_certificate(constraints(x <= 0), {})

    def test_rejects_negative_multiplier_on_inequality(self):
        cs = constraints(x <= 0, (1 - x) <= 0)
        assert not check_farkas_certificate(cs, {0: Fraction(-1), 1: Fraction(1)})

    def test_rejects_out_of_range_index(self):
        cs = constraints(x <= 0)
        assert not check_farkas_certificate(cs, {5: Fraction(1)})

    def test_rejects_uncancelled_variables(self):
        cs = constraints(x <= 0, (1 - y) <= 0)
        assert not check_farkas_certificate(cs, {0: Fraction(1), 1: Fraction(1)})

    def test_rejects_nonpositive_constant(self):
        cs = constraints(x <= 0, -x <= 0)  # feasible at x=0
        # combination cancels x and gives constant 0 without strictness
        assert not check_farkas_certificate(cs, {0: Fraction(1), 1: Fraction(1)})

    def test_accepts_strict_zero_combination(self):
        cs = constraints(x < 0, Var("x") > 0)
        # x < 0 and -x < 0 sum to 0 < 0.
        assert check_farkas_certificate(cs, {0: Fraction(1), 1: Fraction(1)})

    def test_free_multiplier_on_equality(self):
        cs = [
            LinearConstraint((("x", Fraction(1)),), Fraction(-1), Relation.EQ),
            LinearConstraint((("x", Fraction(1)),), Fraction(-3), Relation.EQ),
        ]
        # (x - 1) - (x - 3) = 2 > 0 with a negative equality multiplier.
        assert check_farkas_certificate(cs, {0: Fraction(1), 1: Fraction(-1)})
