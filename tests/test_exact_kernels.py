"""Unit and differential tests for the exact kernel layer.

The kernels (``repro.exact.kernels``) are the fast path under every
exact verdict; these tests pin their contracts — normalization, the
integer Bareiss/LDL^T streams, the multimodular CRT machinery with its
Hadamard-bound certification and unlucky-prime adjudication — and prove
on the real benchmark ladder that every backend decides exactly what
the historical Fraction oracle decides.
"""

from fractions import Fraction

import pytest

from repro.engine import benchmark_suite
from repro.exact import (
    RationalMatrix,
    bareiss_determinant,
    charpoly,
    clear_denominators,
    clear_kernel_cache,
    gauss_positive_definite,
    hadamard_bound,
    inverse,
    is_hurwitz_matrix,
    kernel_cache_info,
    ldl,
    ldl_positive_definite,
    leading_principal_minors,
    rank,
    resolve_backend,
    solve,
    sylvester_positive_definite,
)
from repro.exact import kernels
from repro.lyapunov import synthesize
from repro.validate import run_validator
from repro.validate.pipeline import lie_derivative_exact

BACKENDS = ("auto", "fraction", "int", "gmpy2", "modular")


def frac_matrix(entries):
    return RationalMatrix(
        [[Fraction(x) for x in row] for row in entries]
    )


class TestNormalization:
    def test_clear_denominators_exact(self):
        m = RationalMatrix(
            [[Fraction(1, 2), Fraction(-2, 3)], [Fraction(5), Fraction(7, 6)]]
        )
        rows, den = clear_denominators(m)
        assert den == 6
        assert rows == [[3, -4], [30, 7]]
        for i in range(2):
            for j in range(2):
                assert Fraction(rows[i][j], den) == m[i, j]

    def test_integer_matrix_has_unit_denominator(self):
        rows, den = clear_denominators(frac_matrix([[2, -3], [0, 9]]))
        assert den == 1
        assert rows == [[2, -3], [0, 9]]

    def test_normalized_is_cached(self):
        clear_kernel_cache()
        m = RationalMatrix([[Fraction(1, 3), 0], [0, Fraction(1, 5)]])
        first = kernels.normalized(m)
        second = kernels.normalized(m)
        assert first is second
        info = kernel_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
        clear_kernel_cache()
        assert kernel_cache_info() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
        }

    def test_cache_evicts_least_recent(self):
        clear_kernel_cache()
        for value in range(kernels._CACHE_MAX + 1):
            kernels.normalized(RationalMatrix([[Fraction(value, 7)]]))
        info = kernel_cache_info()
        assert info["evictions"] == 1
        assert info["size"] == kernels._CACHE_MAX


class TestDispatch:
    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            resolve_backend("sympy")

    def test_explicit_backends_pass_through(self):
        for backend in ("fraction", "int", "modular"):
            assert resolve_backend(backend, 50, op="det") == backend

    def test_auto_routes_large_dets_to_modular(self):
        assert resolve_backend("auto", kernels.MODULAR_MIN_N) == "modular"
        assert resolve_backend("auto", kernels.MODULAR_MIN_N - 1) == "int"

    def test_auto_routes_streams_to_int(self):
        assert resolve_backend("auto", 50, op="minors") == "int"

    def test_gmpy2_resolution_tracks_availability(self):
        # With gmpy2 installed, "gmpy2" passes through; without it, the
        # backend degrades silently to "int" (identical results, plain
        # Python bignums) — no error in either world.
        expected = "gmpy2" if kernels.gmpy2_available() else "int"
        for op in ("det", "minors", "solve", "ldl", "charpoly"):
            assert resolve_backend("gmpy2", 21, op=op) == expected

    def test_gmpy2_fallback_chain_reaches_fraction(self):
        assert kernels.KERNEL_FALLBACKS["gmpy2"] == "int"
        assert kernels.fallback_backend("gmpy2") == "int"
        assert kernels.fallback_backend("int") == "fraction"

    def test_auto_never_selects_gmpy2(self):
        # "auto" routing is pinned to int/modular regardless of what is
        # installed — gmpy2 is an explicit opt-in, so auto verdicts stay
        # identical across environments.
        for n in (2, kernels.MODULAR_MIN_N, 50):
            for op in ("det", "minors"):
                assert resolve_backend("auto", n, op=op) != "gmpy2"


class TestIntegerKernels:
    def test_bareiss_determinant_known(self):
        rows = [[2, 1, 0], [1, 3, 1], [0, 1, 4]]
        assert kernels.int_bareiss_determinant(rows) == 18

    def test_bareiss_determinant_row_swap_sign(self):
        rows = [[0, 1], [1, 0]]
        assert kernels.int_bareiss_determinant(rows) == -1

    def test_minor_stream_zero_pivot_falls_back(self):
        assert list(
            kernels.iter_int_leading_principal_minors([[0, 1], [1, 0]])
        ) == [0, -1]

    def test_rank(self):
        assert kernels.int_rank([[1, 2], [2, 4]]) == 1
        assert kernels.int_rank([[1, 0], [0, 1]]) == 2
        assert kernels.int_rank([]) == 0

    def test_solve_singular_raises(self):
        with pytest.raises(ValueError):
            kernels.int_solve_columns([[1, 2], [2, 4]], [[1], [1]])

    def test_ldlt_zero_pivot_returns_none(self):
        assert kernels.int_ldlt([[0, 1], [1, 0]]) is None

    def test_charpoly_companion(self):
        # companion of s^2 - 5s + 6: charpoly coefficients [1, -5, 6]
        assert kernels.int_charpoly([[0, -6], [1, 5]]) == [1, -5, 6]


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 31, (1 << 31) - 1, (1 << 61) - 1, (1 << 255) - 19):
            assert kernels._is_prime(p), p

    def test_known_composites_and_pseudoprimes(self):
        # 2047, 3215031751 are strong pseudoprimes to the first bases
        for n in (0, 1, 2047, 3215031751, (1 << 32) - 1, (1 << 256) - 1):
            assert not kernels._is_prime(n), n

    def test_kernel_primes_are_256_bit_and_distinct(self):
        primes = kernels.kernel_primes(5)
        assert len(set(primes)) == 5
        assert all(p.bit_length() == 256 for p in primes)
        assert primes == sorted(primes, reverse=True)

    def test_batch_primes_fit_vectorized_arithmetic(self):
        primes = kernels._batch_primes(5)
        assert primes[0] == (1 << 31) - 1  # the Mersenne prime itself
        assert all(p * p < (1 << 62) for p in primes)


class TestModularKernels:
    def test_hadamard_bounds_determinant(self):
        rows = [[3, -4], [5, 12]]
        assert abs(kernels.int_bareiss_determinant(rows)) <= hadamard_bound(
            rows
        )

    def test_hadamard_zero_row(self):
        assert hadamard_bound([[0, 0], [1, 2]]) == 0

    def test_determinant_matches_bareiss(self):
        rows = [[7, -3, 2], [4, 11, -5], [-6, 1, 9]]
        assert kernels.modular_determinant(
            rows
        ) == kernels.int_bareiss_determinant(rows)

    def test_determinant_singular(self):
        assert kernels.modular_determinant([[1, 2], [2, 4]]) == 0

    def test_minors_with_genuine_zero_minor(self):
        small = [101, 103, 107, 109, 113]
        assert kernels.modular_leading_principal_minors(
            [[0, 1], [1, 0]], primes=small
        ) == [0, -1]
        assert kernels.modular_leading_principal_minors(
            [[1, 2], [2, 4]], primes=small
        ) == [1, 0]

    def test_unlucky_prime_is_replaced(self):
        # leading minor 101 vanishes mod the first injected prime; the
        # adjudication must discard that prime, not emit a zero minor.
        rows = [[101, 1], [1, 2]]
        assert kernels.modular_leading_principal_minors(
            rows, primes=[101, 103, 107, 109]
        ) == [101, 201]
        assert kernels.modular_determinant(
            rows, primes=[67, 3, 5, 7, 11, 13]
        ) == 201

    def test_not_enough_primes_raises(self):
        with pytest.raises(ValueError):
            kernels.modular_determinant([[10**6, 1], [1, 10**6]], primes=[101])
        with pytest.raises(ValueError):
            kernels.modular_leading_principal_minors(
                [[10**6, 1], [1, 10**6]], primes=[101]
            )

    def test_batched_path_matches_scalar(self):
        # n >= _BATCH_MIN_N triggers the vectorized batch; forcing the
        # scalar pass via `primes=` must give identical results.
        n = kernels._BATCH_MIN_N + 2
        rows = [
            [((i * 31 + j * 17) % 23) - 11 + (n * 29 if i == j else 0)
             for j in range(n)]
            for i in range(n)
        ]
        scalar_primes = kernels.kernel_primes(8)
        assert kernels.modular_determinant(rows) == (
            kernels.modular_determinant(rows, primes=scalar_primes)
        )
        assert kernels.modular_leading_principal_minors(rows) == (
            kernels.modular_leading_principal_minors(
                rows, primes=scalar_primes
            )
        )


class TestBackendAgreement:
    """Small-matrix differential checks across every public wrapper."""

    CASES = [
        frac_matrix([[2, 1], [1, 3]]),
        frac_matrix([[0, 1], [1, 0]]),
        frac_matrix([[1, 2], [2, 4]]),
        RationalMatrix(
            [[Fraction(5, 3), Fraction(-1, 7)], [Fraction(-1, 7), Fraction(9, 2)]]
        ),
        frac_matrix([[-3, 1, 0], [1, -4, 2], [0, 2, -5]]),
    ]

    def test_determinant_and_minors(self):
        for m in self.CASES:
            want_det = bareiss_determinant(m, backend="fraction")
            want_minors = leading_principal_minors(m, backend="fraction")
            for backend in BACKENDS:
                assert bareiss_determinant(m, backend=backend) == want_det
                assert (
                    leading_principal_minors(m, backend=backend)
                    == want_minors
                )

    def test_rank_solve_inverse(self):
        m = self.CASES[0]
        rhs = frac_matrix([[1, 0], [3, -2]])
        for backend in BACKENDS:
            assert rank(m, backend=backend) == 2
            assert (
                solve(m, rhs, backend=backend).tolist()
                == solve(m, rhs, backend="fraction").tolist()
            )
            assert (
                inverse(m, backend=backend).tolist()
                == inverse(m, backend="fraction").tolist()
            )

    def test_definiteness_and_ldl(self):
        for m in self.CASES:
            if not m.is_symmetric():
                continue
            expected = [
                sylvester_positive_definite(m, backend="fraction"),
                gauss_positive_definite(m, backend="fraction"),
                ldl_positive_definite(m, backend="fraction"),
            ]
            for backend in BACKENDS:
                got = [
                    sylvester_positive_definite(m, backend=backend),
                    gauss_positive_definite(m, backend=backend),
                    ldl_positive_definite(m, backend=backend),
                ]
                assert got == expected, backend
            oracle = ldl(m, backend="fraction")
            fast = ldl(m, backend="int")
            if oracle is None:
                assert fast is None
            else:
                assert oracle[0].tolist() == fast[0].tolist()
                assert oracle[1] == fast[1]

    def test_charpoly_and_hurwitz(self):
        for m in self.CASES:
            want = charpoly(m, backend="fraction")
            want_hurwitz = is_hurwitz_matrix(m, backend="fraction")
            for backend in BACKENDS:
                assert charpoly(m, backend=backend) == want
                assert is_hurwitz_matrix(m, backend=backend) == want_hurwitz

    def test_validator_backend_option(self):
        m = self.CASES[0]
        auto = run_validator("sylvester", m)
        pinned = run_validator("sylvester", m, backend="int")
        assert auto.valid is pinned.valid is True
        assert auto.extra.get("backend") is None
        assert pinned.extra["backend"] == "int"


class TestGmpy2Kernels:
    """Bit-equality of the gmpy2 kernels against the "int" oracle.

    Skips cleanly when gmpy2 is not installed (the without-gmpy2 CI job
    exercises exactly that world via the resolution tests above).
    """

    @pytest.fixture(autouse=True)
    def _need_gmpy2(self):
        pytest.importorskip("gmpy2")

    @staticmethod
    def ladder_rows(n, seed=0):
        """Deterministic integer matrix in the fuzz-ladder style."""
        return [
            [((i * 31 + j * 17 + seed * 7) % 23) - 11
             + (n * 29 if i == j else 0)
             for j in range(n)]
            for i in range(n)
        ]

    @pytest.mark.parametrize("n", list(range(1, 22)))
    def test_det_minors_solve_ladder(self, n):
        rows = self.ladder_rows(n)
        sym = [
            [rows[i][j] + rows[j][i] for j in range(n)] for i in range(n)
        ]
        got_det = kernels.gmpy2_bareiss_determinant(rows)
        assert got_det == kernels.int_bareiss_determinant(rows)
        assert isinstance(got_det, int)
        got_minors = list(kernels.iter_gmpy2_leading_principal_minors(sym))
        assert got_minors == list(
            kernels.iter_int_leading_principal_minors(sym)
        )
        assert all(isinstance(m, int) for m in got_minors)
        rhs = [[(i * 13 + b) % 7 - 3 for b in range(2)] for i in range(n)]
        assert kernels.gmpy2_solve_columns(rows, rhs) == (
            kernels.int_solve_columns(rows, rhs)
        )

    @pytest.mark.parametrize("n", [1, 2, 5, 13, 21])
    def test_ldlt_rank_charpoly_ladder(self, n):
        rows = self.ladder_rows(n, seed=3)
        sym = [
            [rows[i][j] + rows[j][i] for j in range(n)] for i in range(n)
        ]
        assert kernels.gmpy2_ldlt(sym) == kernels.int_ldlt(sym)
        assert kernels.gmpy2_rank(rows) == kernels.int_rank(rows)
        assert kernels.gmpy2_charpoly(rows) == kernels.int_charpoly(rows)

    def test_zero_pivot_paths(self):
        assert list(
            kernels.iter_gmpy2_leading_principal_minors([[0, 1], [1, 0]])
        ) == [0, -1]
        assert kernels.gmpy2_ldlt([[0, 1], [1, 0]]) is None
        with pytest.raises(ValueError):
            kernels.gmpy2_solve_columns([[1, 2], [2, 4]], [[1], [1]])

    def test_fuzzer_generated_matrices(self):
        from repro.oracle import generate_system

        for n in (1, 3, 5, 8, 13, 18, 21):
            system = generate_system("integer", n, seed=n)
            rows, _den = kernels.normalized(system.a)
            assert kernels.gmpy2_bareiss_determinant(rows) == (
                kernels.int_bareiss_determinant(rows)
            )


class TestBenchmarkLadderAgreement:
    """Kernel verdicts must equal the Fraction oracle on every benchmark
    case — candidates P and their Lie derivatives at closed-loop
    dimensions 6, 8, 13, 18 and 21 (the acceptance differential)."""

    @pytest.mark.parametrize(
        "case", benchmark_suite(), ids=lambda c: c.name
    )
    def test_all_backends_agree(self, case):
        a = case.mode_matrix(0)
        candidate = synthesize("eq-num", a)
        p_exact = candidate.exact_p(10)
        a_exact = RationalMatrix.from_numpy(a)
        lie = lie_derivative_exact(p_exact, a_exact).scale(-1)
        for matrix in (p_exact, lie):
            want_verdict = sylvester_positive_definite(
                matrix, backend="fraction"
            )
            want_minors = leading_principal_minors(matrix, backend="fraction")
            for backend in ("auto", "int", "modular"):
                assert (
                    sylvester_positive_definite(matrix, backend=backend)
                    is want_verdict
                )
                assert (
                    leading_principal_minors(matrix, backend=backend)
                    == want_minors
                )
