"""Tests for RationalMatrix (repro.exact.matrix)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact import RationalMatrix

entries = st.integers(min_value=-50, max_value=50)


def square_matrices(n_max=4):
    return st.integers(min_value=1, max_value=n_max).flatmap(
        lambda n: st.lists(
            st.lists(entries, min_size=n, max_size=n), min_size=n, max_size=n
        ).map(RationalMatrix)
    )


class TestConstruction:
    def test_shape(self):
        m = RationalMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)

    def test_entries_are_fractions(self):
        m = RationalMatrix([["0.5", 1]])
        assert m[0, 0] == Fraction(1, 2)
        assert isinstance(m[0, 1], Fraction)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RationalMatrix([])

    def test_identity_and_zeros(self):
        assert RationalMatrix.identity(2) == RationalMatrix([[1, 0], [0, 1]])
        assert RationalMatrix.zeros(2, 3).is_zero()

    def test_diagonal(self):
        d = RationalMatrix.diagonal([1, 2, 3])
        assert d[1, 1] == 2 and d[0, 1] == 0

    def test_from_numpy_roundtrip(self):
        a = np.array([[0.25, -1.5], [3.0, 0.0]])
        m = RationalMatrix.from_numpy(a)
        assert m[0, 0] == Fraction(1, 4)
        assert np.array_equal(m.to_numpy(), a)

    def test_from_numpy_1d_becomes_column(self):
        m = RationalMatrix.from_numpy(np.array([1.0, 2.0]))
        assert m.shape == (2, 1)


class TestArithmetic:
    def test_add_sub(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        b = RationalMatrix([[4, 3], [2, 1]])
        assert a + b == RationalMatrix([[5, 5], [5, 5]])
        assert (a + b) - b == a

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1]]) + RationalMatrix([[1, 2]])

    def test_matmul(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        b = RationalMatrix([[0, 1], [1, 0]])
        assert a @ b == RationalMatrix([[2, 1], [4, 3]])

    def test_matmul_mismatch(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1, 2]]) @ RationalMatrix([[1, 2]])

    def test_scale(self):
        assert RationalMatrix([[2, 4]]).scale("1/2") == RationalMatrix([[1, 2]])
        assert 2 * RationalMatrix([[1]]) == RationalMatrix([[2]])

    def test_neg(self):
        assert -RationalMatrix([[1, -2]]) == RationalMatrix([[-1, 2]])

    def test_trace(self):
        assert RationalMatrix([[1, 9], [9, 2]]).trace() == 3

    def test_quadratic_form(self):
        p = RationalMatrix([[2, 0], [0, 3]])
        assert p.quadratic_form([1, 2]) == 2 + 12

    def test_dot(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m.dot([1, 1]) == [3, 7]

    @given(square_matrices(), square_matrices())
    def test_transpose_antihomomorphism(self, a, b):
        if a.cols == b.rows:
            assert (a @ b).T == b.T @ a.T

    @given(square_matrices())
    def test_identity_neutral(self, m):
        eye = RationalMatrix.identity(m.rows)
        assert eye @ m == m and m @ eye == m


class TestStructure:
    def test_leading_principal(self):
        m = RationalMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.leading_principal(2) == RationalMatrix([[1, 2], [4, 5]])
        with pytest.raises(ValueError):
            m.leading_principal(4)

    def test_stacking(self):
        a = RationalMatrix([[1], [2]])
        b = RationalMatrix([[3], [4]])
        assert a.hstack(b) == RationalMatrix([[1, 3], [2, 4]])
        assert a.vstack(b) == RationalMatrix([[1], [2], [3], [4]])

    def test_stack_mismatch(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1]]).hstack(RationalMatrix([[1], [2]]))

    def test_symmetrize(self):
        m = RationalMatrix([[0, 2], [0, 0]]).symmetrize()
        assert m == RationalMatrix([[0, 1], [1, 0]])
        assert m.is_symmetric()

    def test_is_symmetric(self):
        assert RationalMatrix([[1, 5], [5, 2]]).is_symmetric()
        assert not RationalMatrix([[1, 5], [4, 2]]).is_symmetric()
        assert not RationalMatrix([[1, 2]]).is_symmetric()

    def test_round_sigfigs(self):
        m = RationalMatrix([["1.23456", "0"]]).round_sigfigs(3)
        assert m == RationalMatrix([["1.23", 0]])

    def test_max_abs(self):
        assert RationalMatrix([[1, -7], [3, 2]]).max_abs() == 7

    def test_hash_eq(self):
        a = RationalMatrix([[1, 2]])
        b = RationalMatrix([["1", "2"]])
        assert a == b and hash(a) == hash(b)
        assert a != RationalMatrix([[1, 3]])
        assert (a == "nope") is False

    def test_repr_small_and_large(self):
        assert "1 2" in repr(RationalMatrix([[1, 2]]))
        big = RationalMatrix.zeros(10, 10)
        assert repr(big) == "RationalMatrix(10x10)"
