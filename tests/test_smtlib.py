"""Tests for SMT-LIB export (repro.smt.smtlib)."""

from fractions import Fraction

import pytest

from repro.smt import (
    And,
    Atom,
    Box,
    Const,
    Not,
    Or,
    Relation,
    Var,
    formula_to_smtlib,
    script_for_refutation,
    term_to_smtlib,
)

x, y = Var("x"), Var("y")


class TestTermPrinting:
    def test_var_and_const(self):
        assert term_to_smtlib(x) == "x"
        assert term_to_smtlib(Const(Fraction(3))) == "3"
        assert term_to_smtlib(Const(Fraction(-3))) == "(- 3)"
        assert term_to_smtlib(Const(Fraction(1, 2))) == "(/ 1 2)"
        assert term_to_smtlib(Const(Fraction(-2, 7))) == "(- (/ 2 7))"

    def test_arithmetic(self):
        assert term_to_smtlib(x + y) == "(+ x y)"
        assert term_to_smtlib(x * y) == "(* x y)"
        assert term_to_smtlib(x**3) == "(* x x x)"
        assert term_to_smtlib(x**0) == "1"

    def test_nested_canonical(self):
        term = 2 * x + y * y
        assert term_to_smtlib(term) == "(+ (* 2 x) (* y y))"

    def test_raw_structure(self):
        term = x + Const(Fraction(0)) + x
        assert term_to_smtlib(term) == "(* 2 x)"          # canonical merges
        assert "(+ " in term_to_smtlib(term, canonical=False)


class TestFormulaPrinting:
    def test_atoms(self):
        assert formula_to_smtlib(x <= 0) == "(<= x 0)"
        assert formula_to_smtlib(x < 0) == "(< x 0)"
        assert formula_to_smtlib(x.eq(0)) == "(= x 0)"
        assert formula_to_smtlib(Atom(x, Relation.NE)) == "(not (= x 0))"

    def test_connectives(self):
        f = And((x <= 0, Or((y < 0, Not(y.eq(0))))))
        out = formula_to_smtlib(f)
        assert out == "(and (<= x 0) (or (< y 0) (not (= y 0))))"


class TestScript:
    def test_declares_all_variables(self):
        script = script_for_refutation([x <= 0, (x + y) < 0])
        assert "(set-logic QF_NRA)" in script
        assert "(declare-const x Real)" in script
        assert "(declare-const y Real)" in script
        assert script.rstrip().endswith("(exit)")

    def test_box_bounds_asserted(self):
        box = Box.cube(["x"], -1.0, 2.0)
        script = script_for_refutation([x * x <= 0], box=box)
        assert "(assert (<= (- 1) x))" in script
        assert "(assert (<= x 2))" in script

    def test_comment(self):
        script = script_for_refutation([x <= 0], comment="line1\nline2")
        assert script.startswith("; line1\n; line2\n")

    def test_formula_input(self):
        script = script_for_refutation(Or((x <= 0, y <= 0)))
        assert "(or (<= x 0) (<= y 0))" in script

    def test_roundtrip_semantics_via_eval(self):
        """The printed script's assertion matches exact evaluation at a
        sample point (crude semantic smoke check via string structure)."""
        f = And(((2 * x - 1) <= 0,))
        script = script_for_refutation(f)
        assert "(<= (+ (- 1) (* 2 x)) 0)" in script

    def test_validation_query_exports(self):
        """End to end: the definiteness refutation query of a real
        candidate exports as well-formed SMT-LIB."""
        from repro.engine import case_by_name
        from repro.lyapunov import synthesize
        from repro.smt import quadratic_form_term

        a = case_by_name("size3").mode_matrix(0)
        candidate = synthesize("eq-num", a)
        p = candidate.exact_p(10)
        variables = [Var(f"w{i}") for i in range(p.rows)]
        form = quadratic_form_term(p, variables)
        script = script_for_refutation(
            [Atom(form, Relation.LE)],
            box=Box.cube([v.name for v in variables], -1.0, 1.0),
            comment="refute: P not positive definite on the unit box",
        )
        assert script.count("declare-const") == p.rows
        assert "(check-sat)" in script
        # balanced parentheses
        assert script.count("(") == script.count(")")
