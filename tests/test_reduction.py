"""Tests for Gramians and balanced truncation (repro.reduction)."""

import numpy as np
import pytest

from repro.reduction import (
    balance,
    balanced_truncation,
    controllability_gramian,
    hankel_singular_values,
    observability_gramian,
)
from repro.systems import StateSpace


def random_stable_system(n, m=2, p=2, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    a -= (np.linalg.eigvals(a).real.max() + 0.5) * np.eye(n)
    return StateSpace(a, rng.normal(size=(n, m)), rng.normal(size=(p, n)))


class TestGramians:
    def test_controllability_equation(self):
        sys = random_stable_system(5, seed=1)
        wc = controllability_gramian(sys)
        residual = sys.a @ wc + wc @ sys.a.T + sys.b @ sys.b.T
        assert np.allclose(residual, 0.0, atol=1e-8)
        assert np.allclose(wc, wc.T)

    def test_observability_equation(self):
        sys = random_stable_system(5, seed=2)
        wo = observability_gramian(sys)
        residual = sys.a.T @ wo + wo @ sys.a + sys.c.T @ sys.c
        assert np.allclose(residual, 0.0, atol=1e-8)

    def test_gramians_psd(self):
        sys = random_stable_system(6, seed=3)
        assert np.linalg.eigvalsh(controllability_gramian(sys)).min() >= -1e-10
        assert np.linalg.eigvalsh(observability_gramian(sys)).min() >= -1e-10

    def test_unstable_rejected(self):
        sys = StateSpace([[1.0]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            controllability_gramian(sys)
        with pytest.raises(ValueError):
            observability_gramian(sys)

    def test_hankel_first_order(self):
        # G(s) = 1/(s + a): single Hankel value 1/(2a).
        sys = StateSpace([[-2.0]], [[1.0]], [[1.0]])
        assert hankel_singular_values(sys) == pytest.approx([0.25])

    def test_hankel_sorted_descending(self):
        values = hankel_singular_values(random_stable_system(6, seed=4))
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))


class TestBalancedTruncation:
    def test_balanced_gramians_are_diagonal_equal(self):
        sys = random_stable_system(5, seed=5)
        realization = balance(sys)
        wc = controllability_gramian(realization.system)
        wo = observability_gramian(realization.system)
        expected = np.diag(realization.hankel_values)
        assert np.allclose(wc, expected, atol=1e-6)
        assert np.allclose(wo, expected, atol=1e-6)

    def test_transformation_consistency(self):
        sys = random_stable_system(4, seed=6)
        realization = balance(sys)
        assert np.allclose(realization.t @ realization.t_inv, np.eye(4), atol=1e-8)
        assert np.allclose(
            realization.t_inv @ sys.a @ realization.t,
            realization.system.a,
            atol=1e-8,
        )

    def test_truncation_preserves_stability(self):
        sys = random_stable_system(8, seed=7)
        for order in (1, 3, 6):
            reduced = balanced_truncation(sys, order)
            assert reduced.n_states == order
            assert reduced.is_stable()

    def test_truncation_preserves_io_shape(self):
        sys = random_stable_system(6, m=3, p=4, seed=8)
        reduced = balanced_truncation(sys, 2)
        assert reduced.n_inputs == 3
        assert reduced.n_outputs == 4

    def test_full_order_matches_dc_gain(self):
        sys = random_stable_system(5, seed=9)
        reduced = balanced_truncation(sys, 5)
        assert np.allclose(reduced.dc_gain(), sys.dc_gain(), atol=1e-8)

    def test_error_bound_holds_at_dc(self):
        """|G(0) - G_r(0)| <= 2 sum sigma_tail (H-inf bound at s=0)."""
        sys = random_stable_system(7, seed=10)
        realization = balance(sys)
        for order in (2, 4):
            reduced = realization.truncate(order)
            error = np.linalg.norm(sys.dc_gain() - reduced.dc_gain(), 2)
            assert error <= realization.error_bound(order) + 1e-8

    def test_order_validation(self):
        realization = balance(random_stable_system(3, seed=11))
        with pytest.raises(ValueError):
            realization.truncate(0)
        with pytest.raises(ValueError):
            realization.truncate(4)
