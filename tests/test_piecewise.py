"""Tests for piecewise-quadratic synthesis and validation."""

import numpy as np
import pytest

from repro.engine import case_by_name
from repro.lyapunov import ENCODINGS, PiecewiseCandidate, synthesize_piecewise
from repro.systems import AffineSystem, HalfSpace, PolyhedralRegion, PwaMode, PwaSystem
from repro.validate import validate_piecewise


def shared_equilibrium_system():
    """Two modes with the SAME globally stable equilibrium at the origin
    (origin on region-0 side). A common quadratic Lyapunov function
    exists, so the piecewise LMI system is genuinely feasible."""
    mode0 = PwaMode(
        flow=AffineSystem([[-1.0, 0.0], [0.0, -2.0]], [0.0, 0.0]),
        region=PolyhedralRegion([HalfSpace((1, 0), 1)]),  # x >= -1
    )
    mode1 = PwaMode(
        flow=AffineSystem([[-3.0, 0.0], [0.0, -1.0]], [0.0, 0.0]),
        region=PolyhedralRegion([HalfSpace((-1, 0), -1, strict=True)]),
    )
    return PwaSystem([mode0, mode1])


@pytest.fixture(scope="module")
def engine_size3():
    case = case_by_name("size3")
    return case.switched_system(case.reference())


class TestSynthesizePiecewise:
    def test_feasible_on_shared_equilibrium(self):
        system = shared_equilibrium_system()
        candidate = synthesize_piecewise(
            system, encoding="continuous", max_iterations=20_000
        )
        assert candidate.feasible
        assert candidate.dimension == 2
        # V must be positive away from the origin on each side.
        assert candidate.value(0, np.array([1.0, 1.0])) > 0
        assert candidate.value(1, np.array([-2.0, 0.5])) > 0

    def test_continuity_encoding_exact_on_surface(self):
        system = shared_equilibrium_system()
        candidate = synthesize_piecewise(
            system, encoding="continuous", max_iterations=5_000
        )
        # P1 - P0 = sym(g_bar q^T) vanishes on the surface x = -1.
        for y in (-3.0, 0.0, 2.0):
            w = np.array([-1.0, y])
            assert candidate.value(0, w) == pytest.approx(
                candidate.value(1, w), rel=1e-9, abs=1e-9
            )

    def test_engine_case_proved_infeasible(self, engine_size3):
        """With the nominal reference both equilibria are locally stable
        in their own regions (bistable switched system): no global
        piecewise-quadratic certificate can exist, and the ellipsoid
        method proves it."""
        candidate = synthesize_piecewise(
            engine_size3, encoding="continuous", max_iterations=6_000
        )
        assert not candidate.feasible
        assert candidate.info["proved_infeasible"] or candidate.iterations == 6_000
        # The best iterate is still returned as a candidate.
        assert np.abs(candidate.p[0]).max() > 0

    def test_unknown_encoding(self, engine_size3):
        with pytest.raises(ValueError):
            synthesize_piecewise(engine_size3, encoding="sos")

    def test_rejects_three_modes(self):
        base = shared_equilibrium_system()
        system = PwaSystem(list(base.modes) + [base.modes[0]])
        with pytest.raises(ValueError):
            synthesize_piecewise(system)

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_both_encodings_run(self, encoding):
        system = shared_equilibrium_system()
        candidate = synthesize_piecewise(
            system, encoding=encoding, max_iterations=800
        )
        assert isinstance(candidate, PiecewiseCandidate)
        assert candidate.encoding == encoding
        assert candidate.synthesis_time > 0

    def test_unknown_solver(self, engine_size3):
        with pytest.raises(ValueError):
            synthesize_piecewise(engine_size3, solver="simplex")

    @pytest.mark.parametrize("solver", ("hybrid", "ellipsoid"))
    def test_solver_info_and_phases(self, solver):
        system = shared_equilibrium_system()
        candidate = synthesize_piecewise(
            system, encoding="continuous", max_iterations=20_000,
            solver=solver,
        )
        assert candidate.feasible
        assert candidate.info["solver"] == solver
        phases = candidate.info["phases"]
        assert set(phases) == {"compile_s", "oracle_s", "polish_s"}
        assert phases["compile_s"] >= 0
        assert phases["oracle_s"] > 0
        if solver == "ellipsoid":
            assert phases["polish_s"] == 0.0
            assert candidate.info["polish_iterations"] == 0

    def test_oracle_batch_off_agrees(self):
        """The per-block differential oracle and the tensorized one
        reach the same verdict on the feasible toy system.  (Iterates
        are not bit-identical: tensordot and the per-block accumulation
        round differently, and the ellipsoid trajectory amplifies the
        ~1e-16 difference over hundreds of cuts.)"""
        system = shared_equilibrium_system()
        on = synthesize_piecewise(
            system, encoding="continuous", max_iterations=20_000,
            solver="ellipsoid", sweep_every=None,
        )
        off = synthesize_piecewise(
            system, encoding="continuous", max_iterations=20_000,
            solver="ellipsoid", oracle_batch=False,
        )
        assert on.feasible and off.feasible
        # Same order of work: the trajectories track each other closely.
        assert abs(on.iterations - off.iterations) <= 0.05 * off.iterations
        # Both candidates are genuinely feasible for both modes.
        for candidate in (on, off):
            assert candidate.value(0, np.array([1.0, 1.0])) > 0
            assert candidate.value(1, np.array([-2.0, 0.5])) > 0


class TestHybridEllipsoidEquivalence:
    """The hybrid pipeline must be a drop-in for the pure ellipsoid
    solver: same infeasibility proofs on the engine cases and, on
    feasible systems, candidates that pass the same exact validation."""

    def test_feasible_candidates_both_validate(self):
        system = shared_equilibrium_system()
        reports = {}
        for solver in ("hybrid", "ellipsoid"):
            candidate = synthesize_piecewise(
                system, encoding="continuous", max_iterations=20_000,
                solver=solver,
            )
            assert candidate.feasible, solver
            reports[solver] = validate_piecewise(
                candidate, system, conditions_scope="surface",
                max_boxes=2_000,
            )
        assert reports["hybrid"].valid == reports["ellipsoid"].valid

    def test_engine_proof_preserved(self, engine_size3):
        """Hybrid must not trade away the ellipsoid method's
        infeasibility proof on the case-study system (the burn-in covers
        the full budget, and polish only runs when nothing is proved)."""
        verdicts = {}
        for solver in ("hybrid", "ellipsoid"):
            candidate = synthesize_piecewise(
                engine_size3, encoding="continuous", max_iterations=6_000,
                solver=solver,
            )
            verdicts[solver] = (
                candidate.feasible, candidate.info["proved_infeasible"]
            )
        assert verdicts["hybrid"] == verdicts["ellipsoid"]

    def test_engine_validation_verdict_matches(self, engine_size3):
        """On the relaxed encoding (budget exhausted, best iterate) both
        pipelines' candidates must fail exact validation the same way —
        the paper's negative result does not depend on the solver."""
        names = {}
        for solver in ("hybrid", "ellipsoid"):
            candidate = synthesize_piecewise(
                engine_size3, encoding="relaxed", max_iterations=4_000,
                solver=solver,
            )
            report = validate_piecewise(
                candidate, engine_size3, conditions_scope="surface",
                max_boxes=4_000,
            )
            assert report.valid is False, solver
            names[solver] = set(report.failed_conditions)
        assert names["hybrid"] and names["ellipsoid"]


class TestValidatePiecewise:
    def test_engine_candidate_fails_surface_condition(self, engine_size3):
        """The paper's negative result: exact validation of the
        switching-surface condition fails on the rounded candidate."""
        candidate = synthesize_piecewise(
            engine_size3, encoding="continuous", max_iterations=4_000
        )
        report = validate_piecewise(
            candidate, engine_size3, conditions_scope="surface", max_boxes=4_000
        )
        assert report.valid is False
        assert any(
            name.startswith("surface-nonincrease")
            for name in report.failed_conditions
        )
        # Witnesses are exact rational points on the surface.
        name = report.failed_conditions[0]
        witness = report.witnesses[name]
        halfspace = engine_size3.modes[0].region.halfspaces[0]
        point = [witness[f"w{i}"] for i in range(engine_size3.dimension)]
        assert halfspace.value(point) == 0

    def test_surface_scope_skips_region_conditions(self, engine_size3):
        candidate = synthesize_piecewise(
            engine_size3, encoding="continuous", max_iterations=500
        )
        report = validate_piecewise(
            candidate, engine_size3, conditions_scope="surface", max_boxes=1_000
        )
        assert set(report.conditions) == {
            "surface-nonincrease(0->1)",
            "surface-nonincrease(1->0)",
        }

    def test_report_properties(self, engine_size3):
        candidate = synthesize_piecewise(
            engine_size3, encoding="relaxed", max_iterations=500
        )
        report = validate_piecewise(
            candidate, engine_size3, conditions_scope="surface", max_boxes=1_000
        )
        assert report.time > 0
        assert report.sigfigs == 10
        # A near-zero best iterate can make the surface difference vanish
        # identically, so any tri-state verdict is structurally possible.
        assert report.valid in (True, False, None)
        assert set(report.conditions) == {
            "surface-nonincrease(0->1)",
            "surface-nonincrease(1->0)",
        }


class TestValidateAllScope:
    def test_all_scope_probes_region_conditions(self, engine_size3):
        from repro.lyapunov import synthesize_piecewise
        from repro.validate import validate_piecewise

        candidate = synthesize_piecewise(
            engine_size3, encoding="continuous", max_iterations=400
        )
        report = validate_piecewise(
            candidate, engine_size3, conditions_scope="all", max_boxes=300
        )
        assert set(report.conditions) == {
            "positivity(mode0)",
            "decrease(mode0)",
            "positivity(mode1)",
            "decrease(mode1)",
            "surface-nonincrease(0->1)",
            "surface-nonincrease(1->0)",
        }
        # Every found witness must be confirmed (exact rational point).
        for name, witness in report.witnesses.items():
            assert witness, name
