"""Tests for ZOH discretization and discrete Lyapunov verification."""

import numpy as np
import pytest

from repro.engine import case_by_name
from repro.lyapunov.discrete import (
    solve_stein_numeric,
    synthesize_discrete,
    validate_discrete_candidate,
)
from repro.systems import StateSpace
from repro.systems.discretize import DiscreteStateSpace, discretize_zoh


def siso():
    return StateSpace([[-2.0]], [[1.0]], [[1.0]])


class TestDiscretize:
    def test_first_order_exact(self):
        dt = 0.1
        disc = discretize_zoh(siso(), dt)
        # A_d = e^{-2 dt}; B_d = (1 - e^{-2 dt}) / 2.
        assert disc.a[0, 0] == pytest.approx(np.exp(-0.2))
        assert disc.b[0, 0] == pytest.approx((1 - np.exp(-0.2)) / 2.0)
        assert disc.dt == dt

    def test_singular_a_supported(self):
        # Pure integrator: A = 0, A_d = 1, B_d = dt.
        plant = StateSpace([[0.0]], [[1.0]], [[1.0]])
        disc = discretize_zoh(plant, 0.5)
        assert disc.a[0, 0] == pytest.approx(1.0)
        assert disc.b[0, 0] == pytest.approx(0.5)

    def test_stability_transfers(self):
        disc = discretize_zoh(case_by_name("size5").plant, 0.01)
        assert disc.is_stable()
        assert disc.spectral_radius() < 1.0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            discretize_zoh(siso(), 0.0)
        with pytest.raises(ValueError):
            DiscreteStateSpace(np.ones((2, 3)), np.ones((2, 1)), np.ones((1, 2)), 0.1)
        with pytest.raises(ValueError):
            DiscreteStateSpace(np.eye(2), np.ones((2, 1)), np.ones((1, 2)), -1.0)

    def test_simulation_matches_continuous_samples(self):
        """ZOH discretization is exact at the sample instants for
        piecewise-constant inputs."""
        from repro.systems import AffineSystem, simulate_affine

        plant = StateSpace([[-1.0, 0.5], [0.0, -3.0]], [[1.0], [2.0]], [[1.0, 0.0]])
        dt = 0.25
        disc = discretize_zoh(plant, dt)
        u = np.array([0.7])
        x0 = np.array([1.0, -1.0])
        # continuous simulation with the constant input folded into b,
        # integrated one sampling interval at a time (final_state lands
        # exactly on the sample instant, avoiding interpolation error)
        flow = AffineSystem(plant.a, plant.b @ u)
        states = disc.simulate(x0, np.tile(u, (4, 1)))
        x = x0
        for k in range(1, 5):
            x = simulate_affine(flow, x, t_final=dt, rtol=1e-11).final_state
            assert np.allclose(states[k], x, atol=1e-8), k

    def test_step(self):
        disc = discretize_zoh(siso(), 0.1)
        x1 = disc.step(np.array([1.0]), np.array([0.0]))
        assert x1[0] == pytest.approx(np.exp(-0.2))


class TestDiscreteLyapunov:
    def test_stein_equation(self):
        a = np.array([[0.5, 0.1], [0.0, 0.8]])
        p = solve_stein_numeric(a)
        assert np.allclose(a.T @ p @ a - p, -np.eye(2), atol=1e-10)

    def test_synthesize_and_validate_engine_loop(self):
        """Discretized closed loop of the case study certifies exactly."""
        case = case_by_name("size5")
        a_cont = case.mode_matrix(0)
        # discretize the closed-loop dynamics directly
        from scipy.linalg import expm

        a_disc = expm(a_cont * 0.02)
        candidate = synthesize_discrete(a_disc)
        positivity, decrease = validate_discrete_candidate(candidate, a_disc)
        assert positivity.valid is True
        assert decrease.valid is True

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            synthesize_discrete(np.array([[1.1]]))

    def test_invalid_candidate_refuted(self):
        from repro.lyapunov import LyapunovCandidate

        a = np.array([[0.9]])
        bogus = LyapunovCandidate(np.array([[-1.0]]), method="bogus")
        positivity, _decrease = validate_discrete_candidate(bogus, a)
        assert positivity.valid is False

    def test_spectral_radius_metadata(self):
        candidate = synthesize_discrete(np.array([[0.5]]))
        assert candidate.info["spectral_radius"] == pytest.approx(0.5)
        assert candidate.method == "stein-num"
