"""Tests for ARCH benchmark export/import (repro.engine.archive)."""

import json

import numpy as np
import pytest

from repro.engine import case_by_name, export_arch_benchmark, load_arch_benchmark


@pytest.fixture(scope="module")
def exported():
    case = case_by_name("size3")
    r = case.reference()
    system = case.switched_system(r)
    text = export_arch_benchmark(
        system, name="uc5-size3", reference=r,
        metadata={"theta": 1.0, "source": "repro"},
    )
    return case, r, system, text


class TestExport:
    def test_payload_structure(self, exported):
        _case, _r, system, text = exported
        payload = json.loads(text)
        assert payload["format"] == "repro-arch-benchmark-v1"
        assert payload["dimension"] == system.dimension
        assert len(payload["modes"]) == 2
        assert payload["metadata"]["theta"] == 1.0
        # half-space data is exact rational strings
        normal = payload["modes"][0]["invariant"][0]["normal"]
        assert all(isinstance(x, str) for x in normal)


class TestRoundTrip:
    def test_dynamics_preserved_exactly(self, exported):
        _case, _r, system, text = exported
        loaded, info = load_arch_benchmark(text)
        assert loaded.dimension == system.dimension
        for original, rebuilt in zip(system.modes, loaded.modes):
            assert np.array_equal(original.flow.a, rebuilt.flow.a)
            assert np.array_equal(original.flow.b, rebuilt.flow.b)
            for h1, h2 in zip(
                original.region.halfspaces, rebuilt.region.halfspaces
            ):
                assert h1.normal == h2.normal
                assert h1.offset == h2.offset
                assert h1.strict == h2.strict
        assert np.allclose(info["reference"], _r)

    def test_loaded_system_behaves_identically(self, exported):
        from repro.systems import simulate_pwa

        _case, _r, system, text = exported
        loaded, _ = load_arch_benchmark(text)
        w0 = system.modes[1].flow.equilibrium() * 1.05
        t1 = simulate_pwa(system, w0, t_final=2.0)
        t2 = simulate_pwa(loaded, w0, t_final=2.0)
        assert np.allclose(t1.final_state, t2.final_state, atol=1e-12)
        assert t1.n_switches == t2.n_switches

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            load_arch_benchmark('{"format": "something"}')

    def test_dimension_mismatch_rejected(self, exported):
        _case, _r, _system, text = exported
        payload = json.loads(text)
        payload["dimension"] = 99
        with pytest.raises(ValueError):
            load_arch_benchmark(json.dumps(payload))
