"""Tests for simulation with event detection (repro.systems.simulate)."""

import numpy as np
import pytest

from repro.systems import (
    AffineSystem,
    HalfSpace,
    PolyhedralRegion,
    PwaMode,
    PwaSystem,
    rk45_step,
    settling_time,
    simulate_affine,
    simulate_pwa,
)


class TestRk45Step:
    def test_exponential_decay_accuracy(self):
        # y' = -y from 1: y(h) = e^{-h}.
        f = lambda y: -y
        y1, error = rk45_step(f, np.array([1.0]), 0.1)
        assert y1[0] == pytest.approx(np.exp(-0.1), abs=1e-9)
        assert error < 1e-6

    def test_linear_problem_is_near_exact(self):
        f = lambda y: np.array([2.0])
        y1, error = rk45_step(f, np.array([0.0]), 0.5)
        assert y1[0] == pytest.approx(1.0, abs=1e-14)
        assert error == pytest.approx(0.0, abs=1e-14)


class TestSimulateAffine:
    def test_converges_to_equilibrium(self):
        system = AffineSystem([[-1.0, 0.5], [0.0, -2.0]], [1.0, 2.0])
        trajectory = simulate_affine(system, [5.0, -3.0], t_final=20.0)
        assert trajectory.final_state == pytest.approx(
            system.equilibrium(), abs=1e-5
        )

    def test_matches_matrix_exponential(self):
        from scipy.linalg import expm

        a = np.array([[-1.0, 2.0], [-2.0, -1.0]])
        system = AffineSystem(a, [0.0, 0.0])
        w0 = np.array([1.0, 1.0])
        trajectory = simulate_affine(system, w0, t_final=1.0, rtol=1e-10)
        assert trajectory.final_state == pytest.approx(expm(a) @ w0, abs=1e-7)

    def test_state_interpolation(self):
        system = AffineSystem([[0.0]], [1.0])  # x(t) = t
        trajectory = simulate_affine(system, [0.0], t_final=2.0)
        assert trajectory.state_at(1.3)[0] == pytest.approx(1.3, abs=1e-6)
        assert trajectory.state_at(-1.0)[0] == 0.0
        assert trajectory.state_at(99.0)[0] == pytest.approx(2.0, abs=1e-6)


def bouncing_modes():
    """Two 1-D modes: x >= 0 flows to -1 equilibrium, x < 0 flows to +1.

    Trajectories slide toward x = 0 and chatter across it; good stress
    for the event detector.
    """
    right = PwaMode(
        flow=AffineSystem([[-1.0]], [-1.0]),  # x' = -x - 1 -> eq -1
        region=PolyhedralRegion([HalfSpace((1,), 0)]),
        name="right",
    )
    left = PwaMode(
        flow=AffineSystem([[-1.0]], [1.0]),  # x' = -x + 1 -> eq +1
        region=PolyhedralRegion([HalfSpace((-1,), 0, strict=True)]),
        name="left",
    )
    return PwaSystem([right, left])


def stable_switched():
    """Both modes share the equilibrium -A^{-1}b inside mode 0."""
    mode0 = PwaMode(
        flow=AffineSystem([[-1.0, 0.0], [0.0, -1.0]], [2.0, 0.0]),  # eq (2, 0)
        region=PolyhedralRegion([HalfSpace((1, 0), 0)]),  # x >= 0
    )
    mode1 = PwaMode(
        flow=AffineSystem([[-2.0, 0.0], [0.0, -2.0]], [4.0, 0.0]),  # eq (2, 0)
        region=PolyhedralRegion([HalfSpace((-1, 0), 0, strict=True)]),
    )
    return PwaSystem([mode0, mode1])


class TestPwaSystem:
    def test_mode_of(self):
        system = bouncing_modes()
        assert system.mode_of(np.array([1.0])) == 0
        assert system.mode_of(np.array([-1.0])) == 1
        assert system.mode_of(np.array([0.0])) == 0

    def test_derivative_dispatch(self):
        system = bouncing_modes()
        assert system.derivative(np.array([2.0])) == pytest.approx([-3.0])
        assert system.derivative(np.array([-2.0])) == pytest.approx([3.0])

    def test_equilibria(self):
        eqs = bouncing_modes().equilibria()
        assert eqs[0] == pytest.approx([-1.0])
        assert eqs[1] == pytest.approx([1.0])

    def test_cover_check(self):
        assert bouncing_modes().check_cover()

    def test_validation(self):
        with pytest.raises(ValueError):
            PwaSystem([])
        with pytest.raises(ValueError):
            PwaMode(
                flow=AffineSystem([[-1.0]], [0.0]),
                region=PolyhedralRegion([HalfSpace((1, 0), 0)]),
            )

    def test_equilibrium_in_region(self):
        system = stable_switched()
        assert system.modes[0].equilibrium_in_region()
        assert not system.modes[1].equilibrium_in_region()


class TestSimulatePwa:
    def test_no_switch_when_staying_inside(self):
        system = stable_switched()
        trajectory = simulate_pwa(system, [5.0, 1.0], t_final=25.0)
        assert trajectory.n_switches == 0
        assert trajectory.final_state == pytest.approx([2.0, 0.0], abs=1e-5)
        assert set(trajectory.modes.tolist()) == {0}

    def test_switch_detected(self):
        system = stable_switched()
        trajectory = simulate_pwa(system, [-3.0, 0.0], t_final=25.0)
        # Starts in mode 1, converges to (2, 0) inside mode 0: one switch.
        assert trajectory.n_switches == 1
        assert trajectory.final_state == pytest.approx([2.0, 0.0], abs=1e-5)
        # The switch happens when x crosses 0: x(t) = -3 e^{-2t} + 2(1 - e^{-2t})
        # = 2 - 5 e^{-2t} = 0 -> t = ln(5/2)/2.
        expected = np.log(5.0 / 2.0) / 2.0
        assert trajectory.switch_times[0] == pytest.approx(expected, abs=1e-6)

    def test_chattering_truncated_by_zeno_guard(self):
        system = bouncing_modes()
        trajectory = simulate_pwa(
            system, [2.0], t_final=5.0, max_step=0.1, max_switches=50
        )
        # The trajectory slides toward 0 and chatters; the Zeno guard
        # must stop it near the surface instead of hanging.
        assert not trajectory.completed
        assert trajectory.n_switches == 50
        assert abs(trajectory.final_state[0]) < 0.2

    def test_settling_time(self):
        system = AffineSystem([[-1.0]], [0.0])
        trajectory = simulate_affine(system, [1.0], t_final=20.0)
        settle = settling_time(trajectory, np.array([0.0]), tolerance=1e-3)
        # e^{-t} <= 1e-3 at t = ln(1000) ~ 6.9.
        assert settle == pytest.approx(np.log(1000.0), abs=0.5)

    def test_settling_time_none_when_unsettled(self):
        system = AffineSystem([[0.0]], [1.0])  # x grows linearly
        trajectory = simulate_affine(system, [0.0], t_final=5.0)
        assert settling_time(trajectory, np.array([0.0]), tolerance=0.1) is None
