"""Tests for the log-barrier block-LMI engine (repro.sdp.barrier)."""

import numpy as np
import pytest

from repro.sdp import LmiBlock, solve_lmi_barrier, solve_lmi_ellipsoid, svec_basis


def diag_block(f0_diag, coeff_diags, margin=0.0, name=""):
    return LmiBlock(
        np.diag(np.asarray(f0_diag, dtype=float)),
        [np.diag(np.asarray(d, dtype=float)) for d in coeff_diags],
        margin=margin,
        name=name,
    )


class TestBarrier:
    def test_simple_interval(self):
        # x > 1/2 and x < 2: margin maximized at x = 5/4 with t = 3/4.
        blocks = [
            diag_block([-0.5], [[1]], name="lower"),
            diag_block([2.0], [[-1]], name="upper"),
        ]
        result = solve_lmi_barrier(blocks, dimension=1, target_margin=10.0)
        assert result.feasible
        assert 0.5 < result.x[0] < 2.0
        assert result.t_star == pytest.approx(0.75, abs=1e-3)

    def test_early_stop_at_target(self):
        blocks = [diag_block([-0.5], [[1]], name="lower")]
        result = solve_lmi_barrier(blocks, dimension=1, target_margin=0.01)
        assert result.feasible
        assert result.t_star > 0.01

    def test_infeasible_reports_negative_margin(self):
        blocks = [
            diag_block([-1.0], [[1]], name="x>=1"),
            diag_block([-1.0], [[-1]], name="x<=-1"),
        ]
        result = solve_lmi_barrier(blocks, dimension=1)
        assert not result.feasible
        assert result.t_star <= 0
        # The best margin of this system is -1 (at x = 0).
        assert result.t_star == pytest.approx(-1.0, abs=1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_lmi_barrier([], dimension=0)
        with pytest.raises(ValueError):
            solve_lmi_barrier([diag_block([1], [[1]])], dimension=2)
        with pytest.raises(ValueError):
            solve_lmi_barrier(None, dimension=1)  # no blocks, no compiled

    def test_compiled_only_matches_blocks_path(self):
        from repro.sdp import CompiledLmiSystem

        blocks = [
            diag_block([-0.5], [[1]], name="lower"),
            diag_block([2.0], [[-1]], name="upper"),
        ]
        compiled = CompiledLmiSystem(blocks, dimension=1)
        direct = solve_lmi_barrier(blocks, dimension=1)
        reused = solve_lmi_barrier(None, dimension=1, compiled=compiled)
        assert reused.t_star == direct.t_star
        assert np.array_equal(reused.x, direct.x)
        with pytest.raises(ValueError):
            solve_lmi_barrier(None, dimension=2, compiled=compiled)

    def test_lyapunov_block_system(self):
        """Same cross-check as the ellipsoid: find P > 0 with
        A^T P + P A < 0 via generic blocks."""
        a = np.array([[-1.0, 2.0], [0.0, -3.0]])
        basis = svec_basis(2)
        blocks = [
            LmiBlock(np.zeros((2, 2)), [e.copy() for e in basis], name="P>0"),
            LmiBlock(
                np.zeros((2, 2)),
                [-(a.T @ e + e @ a) for e in basis],
                name="lyap",
            ),
            LmiBlock(5.0 * np.eye(2), [-e.copy() for e in basis], name="cap"),
        ]
        result = solve_lmi_barrier(blocks, dimension=len(basis), target_margin=0.05)
        assert result.feasible
        p = sum(x * e for x, e in zip(result.x, basis))
        assert np.linalg.eigvalsh(p).min() > 0
        assert np.linalg.eigvalsh(a.T @ p + p @ a).max() < 0

    def test_agrees_with_ellipsoid_verdicts(self):
        """Cross-engine consistency on feasible and infeasible systems."""
        feasible = [
            diag_block([-0.5, -0.5], [[1, 1]], name="lower"),
            diag_block([2, 2], [[-1, -1]], name="upper"),
        ]
        b = solve_lmi_barrier(feasible, dimension=1)
        e = solve_lmi_ellipsoid(feasible, dimension=1)
        assert b.feasible and e.feasible

        infeasible = [
            diag_block([-1], [[1]], name="lower"),
            diag_block([-1], [[-1]], name="upper"),
        ]
        b2 = solve_lmi_barrier(infeasible, dimension=1)
        e2 = solve_lmi_ellipsoid(
            infeasible, dimension=1, raise_on_infeasible=False
        )
        assert not b2.feasible
        assert e2.proved_infeasible

    def test_history_recorded(self):
        blocks = [diag_block([-0.5], [[1]])]
        result = solve_lmi_barrier(
            blocks, dimension=1, record_history=True, target_margin=1e9,
            max_outer=10,
        )
        assert len(result.history) >= 1


class TestBarrierInPiecewise:
    def test_barrier_solver_option(self):
        from repro.engine import case_by_name
        from repro.lyapunov import synthesize_piecewise

        case = case_by_name("size3")
        system = case.switched_system(case.reference())
        candidate = synthesize_piecewise(
            system, encoding="continuous", solver="barrier"
        )
        assert candidate.info["solver"] == "barrier"
        # The case-study system is genuinely infeasible (bistable), so
        # the barrier must report a non-feasible best iterate too.
        assert not candidate.feasible
        assert not candidate.info["proved_infeasible"]
        assert np.abs(candidate.p[0]).max() > 0

    def test_unknown_solver_rejected(self):
        from repro.engine import case_by_name
        from repro.lyapunov import synthesize_piecewise

        case = case_by_name("size3")
        system = case.switched_system(case.reference())
        with pytest.raises(ValueError):
            synthesize_piecewise(system, solver="mosek")

    def test_barrier_finds_feasible_shared_equilibrium(self):
        from repro.lyapunov import synthesize_piecewise
        from repro.systems import (
            AffineSystem, HalfSpace, PolyhedralRegion, PwaMode, PwaSystem,
        )

        mode0 = PwaMode(
            flow=AffineSystem([[-1.0, 0.0], [0.0, -2.0]], [0.0, 0.0]),
            region=PolyhedralRegion([HalfSpace((1, 0), 1)]),
        )
        mode1 = PwaMode(
            flow=AffineSystem([[-3.0, 0.0], [0.0, -1.0]], [0.0, 0.0]),
            region=PolyhedralRegion([HalfSpace((-1, 0), -1, strict=True)]),
        )
        system = PwaSystem([mode0, mode1])
        candidate = synthesize_piecewise(
            system, encoding="continuous", solver="barrier"
        )
        assert candidate.feasible
