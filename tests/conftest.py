"""Test-suite configuration.

Hypothesis: exact rational arithmetic has high variance per example
(coefficient growth depends on the drawn values), so the default
200ms deadline is disabled; example counts are kept moderate in the
individual ``@settings`` decorations instead.

Determinism: the seed audit (the oracle-fuzzer PR) found every
randomness source in the suite already flows through explicit
``numpy.random.default_rng(seed)`` or ``SeedSequence`` constructions.
The autouse fixture below pins the two *legacy* global streams anyway
(``numpy.random.seed`` / ``random.seed``) so that any future test — or
any library routine — that reaches for a global generator stays
reproducible per-test instead of depending on execution order.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # The autouse seeding fixture below is function-scoped by design
        # (reset per test); it draws nothing from hypothesis examples.
        HealthCheck.function_scoped_fixture,
    ],
)
settings.load_profile("repro")

#: One shared seed for the global-stream pin and the ``rng`` fixture.
TEST_SEED = 20230


@pytest.fixture(autouse=True)
def _pin_global_rngs():
    """Reset the legacy global RNG streams before every test."""
    np.random.seed(TEST_SEED)
    random.seed(TEST_SEED)
    yield


@pytest.fixture
def rng():
    """A per-test seeded Generator — the preferred randomness source."""
    return np.random.default_rng(TEST_SEED)
