"""Test-suite configuration.

Hypothesis: exact rational arithmetic has high variance per example
(coefficient growth depends on the drawn values), so the default
200ms deadline is disabled; example counts are kept moderate in the
individual ``@settings`` decorations instead.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
