"""``python -m repro.fuzz`` end-to-end: determinism, resume, planted
bugs, bench output."""

import json

import pytest

from repro.fuzz import main


def _run(tmp_path, *extra, systems=8, seed=0, journal=None, bench=False):
    argv = [
        "--systems", str(systems), "--seed", str(seed), "--jobs", "1",
        "--artifacts", str(tmp_path / "artifacts"),
    ]
    if journal is not None:
        argv += ["--journal", str(journal)]
    if bench:
        argv += ["--bench", str(tmp_path / "bench.json")]
    else:
        argv += ["--no-bench"]
    argv += list(extra)
    return main(argv)


def test_same_seed_runs_produce_byte_identical_journals(tmp_path):
    j1, j2 = tmp_path / "one.jsonl", tmp_path / "two.jsonl"
    assert _run(tmp_path, journal=j1) == 0
    assert _run(tmp_path, journal=j2) == 0
    assert j1.read_bytes() == j2.read_bytes()
    assert j1.stat().st_size > 0


def test_different_seed_changes_the_journal(tmp_path):
    j1, j2 = tmp_path / "one.jsonl", tmp_path / "two.jsonl"
    assert _run(tmp_path, journal=j1, seed=0) == 0
    assert _run(tmp_path, journal=j2, seed=1) == 0
    assert j1.read_bytes() != j2.read_bytes()


def test_journal_digest_printed_and_stable(tmp_path, capsys):
    j1 = tmp_path / "one.jsonl"
    _run(tmp_path, journal=j1)
    first = capsys.readouterr().out
    _run(tmp_path, journal=tmp_path / "two.jsonl")
    second = capsys.readouterr().out

    def digest(text):
        lines = [l for l in text.splitlines() if "journal digest:" in l]
        assert len(lines) == 1
        return lines[0].split()[-1]

    assert digest(first) == digest(second)


def test_resume_replays_everything(tmp_path, capsys):
    journal = tmp_path / "campaign.jsonl"
    assert _run(tmp_path, journal=journal) == 0
    before = journal.read_bytes()
    capsys.readouterr()
    assert _run(tmp_path, journal=journal, *("--resume",)) == 0
    out = capsys.readouterr().out
    assert "8 replayed" in out
    assert journal.read_bytes() == before  # replays append nothing


def test_planted_sign_flip_fails_campaign_with_artifacts(tmp_path, capsys):
    assert _run(tmp_path, "--plant") == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    failures = tmp_path / "artifacts" / "failures.jsonl"
    entries = [
        json.loads(line) for line in failures.read_text().splitlines()
    ]
    assert entries
    # Every failure shrank to the smallest dimension its kind allows.
    for entry in entries:
        assert entry["minimal"]["n"] == 1
        assert entry["disagreements"]
    npz = list((tmp_path / "artifacts").glob("*.npz"))
    assert len(npz) == len(entries)


def test_bench_section_is_written(tmp_path):
    assert _run(tmp_path, journal=None, bench=True) == 0
    data = json.loads((tmp_path / "bench.json").read_text())
    fuzz = data["fuzz"]
    assert fuzz["systems"] == 8
    assert fuzz["failing_systems"] == 0
    assert fuzz["disagreements"] == 0
    assert fuzz["checks"] > 0
    assert fuzz["systems_per_s"] > 0


def test_replay_flag_runs_one_spec(capsys):
    assert main(["--replay", "stable:2:5"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spec"] == {"kind": "stable", "n": 2, "seed": 5}
    assert payload["failed"] is False


def test_bad_replay_spec_exits_with_usage_error():
    with pytest.raises(SystemExit):
        main(["--replay", "not-a-spec"])


def test_coverage_ratchet_file_is_wellformed():
    # CI reads the floor from this file; a malformed edit should fail
    # here, locally, not in the coverage job.
    import pathlib

    path = pathlib.Path(__file__).resolve().parent.parent / ".coverage-ratchet.json"
    data = json.loads(path.read_text())
    assert 0 < data["line_floor"] <= 100
