"""Tests for exact linear feasibility (repro.smt.linear)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    Atom,
    LinearConstraint,
    Relation,
    Var,
    check_atoms_linear,
    polynomial_of,
    solve_linear,
)

x, y, z = Var("x"), Var("y"), Var("z")


def constraints(*atoms):
    return [LinearConstraint.from_atom(a) for a in atoms]


def check_model(result, atoms):
    """Every returned model must satisfy every atom exactly."""
    from repro.smt.terms import poly_eval

    assert result.model is not None
    for atom in atoms:
        value = poly_eval(
            polynomial_of(atom.lhs),
            {v: result.model.get(v, Fraction(0)) for v in _vars(atom)},
        )
        if atom.relation is Relation.LE:
            assert value <= 0
        elif atom.relation is Relation.LT:
            assert value < 0
        elif atom.relation is Relation.EQ:
            assert value == 0
        else:
            assert value != 0


def _vars(atom):
    from repro.smt.terms import poly_free_vars

    return poly_free_vars(polynomial_of(atom.lhs))


class TestFromAtom:
    def test_parses_affine(self):
        c = LinearConstraint.from_atom((2 * x - y + 3) <= 0)
        assert c.coeff_map() == {"x": Fraction(2), "y": Fraction(-1)}
        assert c.constant == 3
        assert c.relation is Relation.LE

    def test_rejects_nonlinear(self):
        with pytest.raises(ValueError):
            LinearConstraint.from_atom((x * y) <= 0)

    def test_rejects_ne(self):
        with pytest.raises(ValueError):
            LinearConstraint.from_atom(Atom(x, Relation.NE))


class TestSolveLinear:
    def test_trivially_sat(self):
        assert solve_linear([]).satisfiable

    def test_simple_sat(self):
        atoms = [x <= 5, (1 - x) <= 0]  # 1 <= x <= 5
        result = solve_linear(constraints(*atoms))
        assert result.satisfiable
        check_model(result, atoms)

    def test_simple_unsat(self):
        result = solve_linear(constraints(x <= 0, (1 - x) <= 0))
        assert not result.satisfiable

    def test_strict_unsat(self):
        # x < 0 and x > 0
        result = solve_linear(constraints(x < 0, Var("x") > 0))
        assert not result.satisfiable

    def test_strict_boundary(self):
        # x <= 0 and x >= 0 is SAT (x = 0); x < 0 and x >= 0 is not.
        assert solve_linear(constraints(x <= 0, x >= 0)).satisfiable
        assert not solve_linear(constraints(x < 0, x >= 0)).satisfiable

    def test_equality_substitution(self):
        atoms = [x.eq(y + 1), x <= 0, y >= -3]
        result = solve_linear(constraints(*atoms))
        assert result.satisfiable
        check_model(result, atoms)

    def test_inconsistent_equalities(self):
        result = solve_linear(constraints(x.eq(1), x.eq(2)))
        assert not result.satisfiable

    def test_constant_equality(self):
        assert not solve_linear(
            [LinearConstraint((), Fraction(1), Relation.EQ)]
        ).satisfiable
        assert solve_linear(
            [LinearConstraint((), Fraction(0), Relation.EQ)]
        ).satisfiable

    def test_chain(self):
        atoms = [x <= y, y <= z, z <= x, x.eq(3)]
        result = solve_linear(constraints(*atoms))
        assert result.satisfiable
        assert result.model["x"] == result.model["y"] == result.model["z"] == 3

    def test_two_var_unsat(self):
        # x + y <= 0, x >= 1, y >= 1
        result = solve_linear(constraints((x + y) <= 0, x >= 1, y >= 1))
        assert not result.satisfiable

    def test_unbounded_variable(self):
        result = solve_linear(constraints(x >= 10))
        assert result.satisfiable
        assert result.model["x"] >= 10

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.integers(-5, 5),
                st.integers(-5, 5),
                st.integers(-10, 10),
                st.booleans(),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_models_always_satisfy(self, rows):
        atoms = []
        for a, b, c, strict in rows:
            lhs = a * x + b * y + c
            atoms.append(lhs < 0 if strict else lhs <= 0)
        result = solve_linear(constraints(*atoms))
        if result.satisfiable:
            check_model(result, atoms)

    @settings(max_examples=50)
    @given(st.lists(st.integers(-4, 4), min_size=2, max_size=2))
    def test_point_feasibility_agrees(self, point):
        """Constraints pinning an integer point are always satisfiable."""
        px, py = point
        atoms = [x.eq(px), y.eq(py), (x + y) <= px + py, x <= px]
        result = check_atoms_linear(atoms)
        assert result.satisfiable
        assert result.model["x"] == px and result.model["y"] == py


class TestDisequalities:
    def test_ne_split(self):
        atoms = [x.eq(0).negate(), x <= 1, x >= -1]
        result = check_atoms_linear(atoms)
        assert result.satisfiable
        assert result.model["x"] != 0

    def test_ne_forces_unsat(self):
        atoms = [x.eq(0), Atom(x, Relation.NE)]
        assert not check_atoms_linear(atoms).satisfiable

    def test_multiple_ne(self):
        atoms = [
            Atom(x, Relation.NE),
            Atom(x - 1, Relation.NE),
            x >= 0,
            x <= 1,
        ]
        result = check_atoms_linear(atoms)
        assert result.satisfiable
        assert result.model["x"] not in (0, 1)
