"""Tests for exact scalar utilities (repro.exact.rational)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exact import (
    decimal_exponent,
    fraction_to_float,
    round_sigfigs,
    round_to_int,
    to_fraction,
)

nonzero_fractions = st.fractions(
    min_value=Fraction(-10**9), max_value=Fraction(10**9), max_denominator=10**6
).filter(lambda q: q != 0)


class TestToFraction:
    def test_int(self):
        assert to_fraction(7) == Fraction(7)

    def test_fraction_passthrough(self):
        q = Fraction(3, 7)
        assert to_fraction(q) is q

    def test_float_is_exact_binary(self):
        assert to_fraction(0.5) == Fraction(1, 2)
        assert to_fraction(0.1) != Fraction(1, 10)  # binary 0.1 is not 1/10

    def test_string_is_decimal(self):
        assert to_fraction("0.1") == Fraction(1, 10)
        assert to_fraction("-3/4") == Fraction(-3, 4)

    def test_numpy_scalar(self):
        import numpy as np

        assert to_fraction(np.float64(0.25)) == Fraction(1, 4)
        assert to_fraction(np.int64(-3)) == Fraction(-3)

    def test_rejects_complex(self):
        with pytest.raises(TypeError):
            to_fraction(1 + 2j)


class TestDecimalExponent:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (Fraction(1), 0),
            (Fraction(9), 0),
            (Fraction(10), 1),
            (Fraction(99, 10), 0),
            (Fraction(1, 10), -1),
            (Fraction(1, 1000), -3),
            (Fraction(-12345), 4),
        ],
    )
    def test_known_values(self, value, expected):
        assert decimal_exponent(value) == expected

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            decimal_exponent(Fraction(0))

    @given(nonzero_fractions)
    def test_defining_property(self, q):
        e = decimal_exponent(q)
        assert Fraction(10) ** e <= abs(q) < Fraction(10) ** (e + 1)


class TestRoundSigfigs:
    def test_exact_cases(self):
        assert round_sigfigs(Fraction(12345), 2) == Fraction(12000)
        assert round_sigfigs(Fraction(12345), 3) == Fraction(12300)
        assert round_sigfigs(Fraction("0.0012349"), 3) == Fraction("0.00123")

    def test_zero(self):
        assert round_sigfigs(Fraction(0), 4) == 0

    def test_negative(self):
        assert round_sigfigs(Fraction(-987654), 2) == Fraction(-990000)

    def test_half_even(self):
        assert round_sigfigs(Fraction(125), 2) == Fraction(120)
        assert round_sigfigs(Fraction(135), 2) == Fraction(140)

    def test_invalid_sigfigs(self):
        with pytest.raises(ValueError):
            round_sigfigs(Fraction(1), 0)

    @given(nonzero_fractions, st.integers(min_value=1, max_value=12))
    def test_relative_error_bound(self, q, n):
        rounded = round_sigfigs(q, n)
        assert abs(rounded - q) <= abs(q) * Fraction(1, 10 ** (n - 1))

    @given(nonzero_fractions, st.integers(min_value=1, max_value=10))
    def test_idempotent(self, q, n):
        once = round_sigfigs(q, n)
        if once != 0:
            assert round_sigfigs(once, n) == once


class TestSmallHelpers:
    def test_round_to_int(self):
        assert round_to_int(Fraction(5, 2)) == 2  # half-even
        assert round_to_int(Fraction(7, 2)) == 4
        assert round_to_int(2.3) == 2

    def test_fraction_to_float(self):
        assert fraction_to_float(Fraction(1, 4)) == 0.25
