"""Tests for the experiment drivers (repro.experiments)."""

import json

import pytest

from repro.experiments import (
    MethodKey,
    dump_records,
    method_rows,
    render_figure3,
    render_grid,
    render_piecewise,
    render_sweep,
    render_table1,
    render_table2,
    rounding_sweep,
    run_figure3,
    run_piecewise,
    run_table1,
    run_table2,
)

QUICK_METHODS = [MethodKey("eq-num"), MethodKey("lmi", "shift")]


@pytest.fixture(scope="module")
def table1_quick():
    return run_table1(
        sizes=(3,), integer_sizes=(3,), methods=QUICK_METHODS,
        keep_candidates=True,
    )


class TestRecordsHelpers:
    def test_method_rows_paper_order(self):
        rows = method_rows()
        assert str(rows[0]) == "eq-smt"
        assert str(rows[1]) == "eq-num"
        assert str(rows[3]) == "lmi[ipm]"
        assert len(rows) == 12  # 3 scalar methods + 3 LMI x 3 backends

    def test_method_rows_without_eq_smt(self):
        assert len(method_rows(include_eq_smt=False)) == 11

    def test_render_grid_alignment(self):
        text = render_grid(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len(lines) == 5

    def test_dump_records(self, tmp_path, table1_quick):
        records, _ = table1_quick
        path = tmp_path / "out.json"
        dump_records(records, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded) == len(records)
        assert loaded[0]["case"].startswith("size3")


class TestTable1:
    def test_grid_completeness(self, table1_quick):
        records, candidates = table1_quick
        # 2 cases (size3i, size3) x 2 modes x 2 methods.
        assert len(records) == 8
        assert all(r.valid is True for r in records)
        assert len(candidates) == 8

    def test_render(self, table1_quick):
        records, _ = table1_quick
        text = render_table1(records)
        assert "Table I" in text
        assert "4/4" in text  # 2 cases x 2 modes per size-3 bucket

    def test_rounding_sweep_and_render(self, table1_quick):
        _, candidates = table1_quick
        sweep = rounding_sweep(candidates, sigfig_levels=(10, 4))
        assert len(sweep) == 2 * len(candidates)
        text = render_sweep(sweep)
        assert "invalid@10sf" in text
        assert "TOTAL" in text

    def test_eq_smt_timeout_recorded(self):
        records, _ = run_table1(
            sizes=(5,), integer_sizes=(),
            methods=[MethodKey("eq-smt")], eq_smt_deadline=1e-3,
        )
        assert all(r.synth_status == "timeout" for r in records)
        text = render_table1(records)
        assert "TO" in text


class TestFigure3:
    def test_run_with_shared_candidates(self, table1_quick):
        _, candidates = table1_quick
        records = run_figure3(
            candidates=candidates,
            validators=("sylvester", "gauss"),
        )
        # every candidate validated by both validators
        assert len(records) == 2 * len(candidates)
        assert all(r.valid is True for r in records)
        text = render_figure3(records)
        assert "vs sylvester" in text

    def test_size_caps_respected(self, table1_quick):
        _, candidates = table1_quick
        records = run_figure3(
            candidates=candidates,
            validators=("icp",),
            size_caps={"icp": 0},  # cap below every case size
        )
        assert records == []


class TestTable2:
    def test_run_and_render(self):
        records = run_table2(
            case_names=("size3",), methods=[MethodKey("eq-num")]
        )
        assert len(records) == 2  # two modes
        assert all(r.k and r.k > 0 for r in records)
        assert all(r.epsilon and r.epsilon > 0 for r in records)
        text = render_table2(records)
        assert "Table II" in text
        assert "kkt-corner" in text or "surface-min" in text or "whole-region" in text


class TestPiecewiseDriver:
    def test_run_and_render(self):
        records = run_piecewise(
            case_names=("size3",),
            encodings=("continuous",),
            max_iterations=2_000,
            max_boxes=2_000,
        )
        assert len(records) == 1
        record = records[0]
        assert record.encoding == "continuous"
        assert record.validation_valid is not True
        text = render_piecewise(records)
        assert "Sec. VI-B.2" in text


class TestCli:
    def test_main_piecewise_quick(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["piecewise", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Piecewise" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table9"])


class TestRenderEdgeCases:
    def test_figure3_render_without_sylvester(self):
        from repro.experiments import Figure3Record, render_figure3

        records = [
            Figure3Record(
                case="size3", size=3, mode=0, method="eq-num", backend=None,
                validator="gauss", valid=True, time=0.5,
            )
        ]
        text = render_figure3(records)
        assert "gauss" in text  # no division-by-zero on missing sylvester

    def test_table2_render_skipped_row(self):
        from repro.experiments import Table2Record, render_table2

        record = Table2Record(
            case="size15", size=15, mode=0, method="lmi", backend="proj",
            time=None, volume=None, log10_volume=None, epsilon=None,
            k=None, region_case=None, skipped_reason="candidate not validated",
        )
        text = render_table2([record])
        assert "candidate not validated" in text

    def test_table1_render_infeasible_bucket(self):
        from repro.experiments import Table1Record, render_table1

        records = [
            Table1Record(
                case="size3", size=3, mode=0, method="lmi-alpha",
                backend="shift", synth_time=None, synth_status="infeasible",
                valid=None, validation_time=None,
            )
        ]
        text = render_table1(records)
        assert "TO" in text and "0/1" in text
