"""Tests for the chaos-injection harness (repro.runner.chaos) and the
kill-and-resume resilience invariants it exists to exercise.

The core contract under fire: a chaos campaign produces the full,
ordered result list — no task lost, none duplicated — with transient
faults retried, permanent faults recorded once, and journal corruption
healed by the next resume.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.runner import (
    CampaignStats,
    ChaosError,
    ChaosPermanentError,
    ChaosPolicy,
    ChaosTask,
    Journal,
    RetryPolicy,
    TimingCollector,
    run_tasks,
)
from repro.runner.chaos import inject
from tests.test_runner import EchoTask

N_TASKS = 40
#: Well above the ISSUE's 20% floor: every fault class armed.
SUITE_POLICY = ChaosPolicy(
    seed=1729, raise_rate=0.20, permanent_rate=0.05, kill_rate=0.05
)
RETRY = RetryPolicy(retries=8, backoff=0.001, max_backoff=0.01)


def _expected_outcome(task, policy, retries):
    """Mirror the injector's deterministic draws: what must happen?"""
    probe = ChaosTask(task, policy)
    for attempt in range(1, retries + 2):
        probe.attempt = attempt
        if probe._draw("kill") < policy.kill_rate:
            continue  # transient (in-process kill or worker death)
        if probe._draw("hang") < policy.hang_rate:
            continue  # deadline kill, transient
        if probe._draw("raise") < policy.raise_rate:
            continue  # transient
        if probe._draw("permanent") < policy.permanent_rate:
            return ("permanent", attempt)
        return ("ok", attempt)
    return ("exhausted", retries + 1)


class TestDeterminism:
    def test_draws_are_seeded_and_attempt_dependent(self):
        a = ChaosTask(EchoTask(1), ChaosPolicy(seed=1))
        b = ChaosTask(EchoTask(1), ChaosPolicy(seed=1))
        assert a._draw("raise") == b._draw("raise")
        assert a._draw("raise") != a._draw("kill")
        b.attempt = 2
        assert a._draw("raise") != b._draw("raise")  # fresh draw on retry
        c = ChaosTask(EchoTask(1), ChaosPolicy(seed=2))
        assert a._draw("raise") != c._draw("raise")
        d = ChaosTask(EchoTask(2), ChaosPolicy(seed=1))
        assert a._draw("raise") != d._draw("raise")

    def test_corrupt_draw_ignores_attempt(self):
        task = ChaosTask(EchoTask(1), ChaosPolicy(seed=1, corrupt_rate=0.5))
        first = task.corrupt_journal_record()
        task.attempt = 7
        assert task.corrupt_journal_record() == first

    def test_injected_error_types(self):
        always_raise = ChaosPolicy(seed=0, raise_rate=1.0)
        with pytest.raises(ChaosError):
            ChaosTask(EchoTask(1), always_raise).run()
        always_permanent = ChaosPolicy(seed=0, permanent_rate=1.0)
        with pytest.raises(ChaosPermanentError):
            ChaosTask(EchoTask(1), always_permanent).run()

    def test_zero_rates_are_transparent(self):
        task = ChaosTask(EchoTask(5), ChaosPolicy(seed=3))
        assert task.run() == 5
        assert not task.corrupt_journal_record()


class TestChaosSuite:
    """The acceptance campaign: >=20% injection, full ordered results."""

    @pytest.fixture(scope="class")
    def campaign(self):
        tasks = [EchoTask(i) for i in range(N_TASKS)]
        stats = CampaignStats()
        collector = TimingCollector()
        results = run_tasks(
            inject(tasks, SUITE_POLICY), jobs=1, retry=RETRY,
            stats=stats, collect=collector,
        )
        return tasks, results, stats, collector

    def test_no_task_lost_or_duplicated(self, campaign):
        tasks, results, stats, _ = campaign
        assert len(results) == N_TASKS
        expected = [
            _expected_outcome(t, SUITE_POLICY, RETRY.retries) for t in tasks
        ]
        # something actually injected, and something actually survived
        assert any(kind != "ok" or attempt > 1 for kind, attempt in expected)
        assert any(kind == "ok" for kind, _ in expected)
        for task, result, (kind, _) in zip(tasks, results, expected):
            if kind == "ok":
                assert result == task.value  # exactly this task's payload
            else:
                assert result is None  # EchoTask has no on_error fallback

    def test_retries_and_errors_counted(self, campaign):
        tasks, _, stats, collector = campaign
        expected = [
            _expected_outcome(t, SUITE_POLICY, RETRY.retries) for t in tasks
        ]
        n_permanent = sum(1 for kind, _ in expected if kind == "permanent")
        n_exhausted = sum(1 for kind, _ in expected if kind == "exhausted")
        n_retried = sum(1 for _, attempt in expected if attempt > 1)
        assert stats.total == stats.executed == N_TASKS
        assert stats.errors == n_permanent + n_exhausted
        assert stats.retried_tasks == n_retried
        assert stats.retry_attempts == sum(
            attempt - 1 for _, attempt in expected
        )
        attempts = [t.attempts for t in collector.timings]
        assert attempts == [attempt for _, attempt in expected]

    def test_campaign_is_reproducible(self, campaign):
        _, results, stats, _ = campaign
        rerun_stats = CampaignStats()
        rerun = run_tasks(
            inject([EchoTask(i) for i in range(N_TASKS)], SUITE_POLICY),
            jobs=1, retry=RETRY, stats=rerun_stats,
        )
        assert rerun == results
        assert rerun_stats == stats


class TestPooledChaos:
    def test_worker_kills_retried(self):
        policy = ChaosPolicy(seed=11, kill_rate=0.3)
        tasks = [EchoTask(i) for i in range(12)]
        expected = [_expected_outcome(t, policy, 8) for t in tasks]
        assert any(attempt > 1 for _, attempt in expected)  # kills do land
        stats = CampaignStats()
        results = run_tasks(
            inject(tasks, policy), jobs=2, retry=RETRY, stats=stats,
        )
        assert results == [
            t.value if kind == "ok" else None
            for t, (kind, _) in zip(tasks, expected)
        ]
        # A pooled worker kill is classified as an infrastructure
        # *requeue* when the death is caught by the liveness check, but
        # degrades to in-process policy *retries* when the EOF races
        # ahead — either way every killed task is reported in exactly
        # these two counters, and the attempt totals are exact.
        n_killed = sum(1 for _, attempt in expected if attempt > 1)
        assert stats.retried_tasks + stats.requeued_tasks >= n_killed
        assert stats.retry_attempts + stats.requeue_attempts == sum(
            attempt - 1 for _, attempt in expected
        )

    def test_hangs_deadline_killed_then_retried(self):
        policy = ChaosPolicy(seed=5, hang_rate=0.3, hang_s=600.0)
        tasks = [EchoTask(i) for i in range(8)]
        expected = [_expected_outcome(t, policy, 8) for t in tasks]
        assert any(attempt > 1 for _, attempt in expected)  # hangs do land
        start = time.monotonic()
        results = run_tasks(
            inject(tasks, policy), jobs=2, task_deadline=0.5, retry=RETRY,
        )
        assert time.monotonic() - start < 60  # nowhere near any hang
        assert results == [
            t.value if kind == "ok" else None
            for t, (kind, _) in zip(tasks, expected)
        ]


class TestJournalChaos:
    def test_corrupt_records_rerun_on_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        policy = ChaosPolicy(seed=21, corrupt_rate=0.4)
        tasks = [EchoTask(i) for i in range(20)]
        corrupted = [
            ChaosTask(t, policy).corrupt_journal_record() for t in tasks
        ]
        assert 0 < sum(corrupted) < len(tasks)
        with Journal(path) as journal:
            first = run_tasks(inject(tasks, policy), journal=journal)
        assert first == [t.value for t in tasks]
        stats = CampaignStats()
        with Journal(path, resume=True) as journal:
            assert len(journal) == len(tasks) - sum(corrupted)
            results = run_tasks(
                [EchoTask(i) for i in range(20)], journal=journal,
                stats=stats,
            )
        assert results == [t.value for t in tasks]
        assert stats.replayed == len(tasks) - sum(corrupted)
        assert stats.executed == sum(corrupted)


class TestKillAndResume:
    """SIGKILL a live campaign mid-run; resume must fill only the gaps
    and render byte-identically to an uninterrupted run."""

    GRID = dict(sizes=(3,), integer_sizes=(3,))
    CHILD = """
import sys
sys.path.insert(0, "src")
from repro.experiments import MethodKey
from repro.experiments.table1 import run_table1
from repro.runner import Journal

with Journal(sys.argv[1]) as journal:
    run_table1(
        sizes=(3,), integer_sizes=(3,),
        methods=[MethodKey("eq-num"), MethodKey("lmi", "shift")],
        jobs=1, journal=journal,
    )
"""

    def _grid_kwargs(self):
        from repro.experiments import MethodKey

        return dict(
            sizes=(3,), integer_sizes=(3,),
            methods=[MethodKey("eq-num"), MethodKey("lmi", "shift")],
            jobs=1,
        )

    @staticmethod
    def _rendered(records):
        import dataclasses

        from repro.experiments import render_table1

        normalized = [
            dataclasses.replace(
                r,
                synth_time=None if r.synth_time is None else 0.0,
                validation_time=None if r.validation_time is None else 0.0,
            )
            for r in records
        ]
        return render_table1(normalized)

    def test_sigkill_resume_matches_clean_run(self, tmp_path):
        from repro.experiments.table1 import run_table1

        path = tmp_path / "campaign.jsonl"
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD, str(path)],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for a few fsync'd entries, then kill without warning.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if path.exists() and path.read_bytes().count(b"\n") >= 2:
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.01)
            child.kill()
        finally:
            child.wait()

        interrupted = (
            path.read_bytes().count(b"\n") if path.exists() else 0
        )
        stats = CampaignStats()
        with Journal(path, resume=True) as journal:
            resumed, _ = run_table1(
                journal=journal, stats=stats, **self._grid_kwargs()
            )
        clean, _ = run_table1(**self._grid_kwargs())
        assert len(resumed) == len(clean) == 8
        assert self._rendered(resumed) == self._rendered(clean)
        assert stats.replayed == min(interrupted, stats.total)
        assert stats.executed == stats.total - stats.replayed

    def test_full_replay_renders_byte_identical(self, tmp_path):
        """Unnormalized: a fully-replayed campaign reproduces the exact
        wall-clock numbers of the run that journaled them."""
        from repro.experiments.table1 import run_table1

        path = tmp_path / "campaign.jsonl"
        from repro.experiments import render_table1

        with Journal(path) as journal:
            original, _ = run_table1(
                journal=journal, **self._grid_kwargs()
            )
        stats = CampaignStats()
        with Journal(path, resume=True) as journal:
            replayed, _ = run_table1(
                journal=journal, stats=stats, **self._grid_kwargs()
            )
        assert stats.replayed == stats.total
        assert stats.executed == 0
        assert render_table1(replayed) == render_table1(original)
