"""Tests for the SMT-LIB parser (repro.smt.parser)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    And,
    Atom,
    Box,
    Not,
    Or,
    Relation,
    Var,
    polynomial_of,
    script_for_refutation,
    formula_to_smtlib,
)
from repro.smt.parser import (
    ParsedScript,
    SmtLibParseError,
    parse_formula,
    parse_script,
)

x, y = Var("x"), Var("y")


class TestParseFormula:
    def test_atom(self):
        f = parse_formula("(<= x 0)", ["x"])
        assert isinstance(f, Atom)
        assert f.relation is Relation.LE

    def test_ge_gt_normalization(self):
        f = parse_formula("(>= x 1)", ["x"])
        # x >= 1 becomes 1 - x <= 0.
        assert polynomial_of(f.lhs) == {(("x", 1),): -1, (): 1}
        g = parse_formula("(> x 1)", ["x"])
        assert g.relation is Relation.LT

    def test_rationals(self):
        f = parse_formula("(= (* (/ 1 3) x) 0)", ["x"])
        assert polynomial_of(f.lhs) == {(("x", 1),): Fraction(1, 3)}

    def test_negative_literals(self):
        f = parse_formula("(<= (+ x (- 2)) 0)", ["x"])
        assert polynomial_of(f.lhs) == {(("x", 1),): 1, (): -2}

    def test_unary_and_binary_minus(self):
        f = parse_formula("(<= (- x y 1) 0)", ["x", "y"])
        assert polynomial_of(f.lhs) == {(("x", 1),): 1, (("y", 1),): -1, (): -1}

    def test_connectives(self):
        f = parse_formula("(and (<= x 0) (or (< y 0) (not (= y 1))))", ["x", "y"])
        assert isinstance(f, And)
        assert isinstance(f.args[1], Or)
        assert isinstance(f.args[1].args[1], Not)

    def test_undeclared_symbol(self):
        with pytest.raises(SmtLibParseError):
            parse_formula("(<= z 0)", ["x"])

    def test_malformed(self):
        with pytest.raises(SmtLibParseError):
            parse_formula("(<= x 0", ["x"])
        with pytest.raises(SmtLibParseError):
            parse_formula(")", ["x"])
        with pytest.raises(SmtLibParseError):
            parse_formula("(banana x 0)", ["x"])
        with pytest.raises(SmtLibParseError):
            parse_formula("(/ x y)", ["x", "y"])


class TestParseScript:
    def test_exporter_roundtrip(self):
        script = script_for_refutation(
            [(x * x + 2 * y - 1) <= 0, y.eq(0).negate()],
            box=Box.cube(["x", "y"], -1.0, 1.0),
            comment="roundtrip test",
        )
        parsed = parse_script(script)
        assert parsed.logic == "QF_NRA"
        assert parsed.variables == ["x", "y"]
        # box bounds (4) + the main assertion
        assert len(parsed.assertions) == 5

    def test_declare_fun_variant(self):
        parsed = parse_script(
            "(set-logic QF_NRA)(declare-fun a () Real)(assert (<= a 0))"
        )
        assert parsed.variables == ["a"]
        assert isinstance(parsed.formula, Atom)

    def test_comments_ignored(self):
        parsed = parse_script("; hello\n(set-logic QF_LRA)\n; more\n")
        assert parsed.logic == "QF_LRA"
        assert isinstance(parsed, ParsedScript)

    def test_unsupported_command(self):
        with pytest.raises(SmtLibParseError):
            parse_script("(pop 1)")

    def test_non_real_rejected(self):
        with pytest.raises(SmtLibParseError):
            parse_script("(declare-const b Bool)")

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.fractions(
                    min_value=-5, max_value=5, max_denominator=12
                ),
                st.integers(0, 2),
                st.integers(0, 2),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_print_parse_roundtrip_is_exact(self, monomials):
        """Export→parse preserves the polynomial exactly (no floats)."""
        term = None
        for coeff, dx, dy in monomials:
            part = (
                (x**dx) * (y**dy) * Fraction(coeff)
                if coeff
                else x * 0
            )
            term = part if term is None else term + part
        atom = Atom(term, Relation.LE)
        printed = formula_to_smtlib(atom)
        parsed = parse_formula(printed, ["x", "y"])
        assert polynomial_of(parsed.lhs) == polynomial_of(term)

    def test_semantics_preserved_through_solver(self):
        """A parsed script decides the same way as the original atoms."""
        from repro.smt import SmtSolver

        original = And(((x - 1) <= 0, (1 - x) < 0))  # x <= 1 and x > 1
        script = script_for_refutation(original)
        parsed = parse_script(script)
        assert SmtSolver().check(original).is_unsat
        assert SmtSolver().check(parsed.formula).is_unsat
