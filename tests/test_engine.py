"""Tests for the case-study engine model and benchmark suite."""

import numpy as np
import pytest

from repro.engine import (
    MODES,
    THETA,
    BenchmarkCase,
    benchmark_suite,
    build_engine_plant,
    case_by_name,
    equilibrium_output,
    mode_equilibrium,
    mode_gains,
    nominal_reference,
    paper_controller,
)
from repro.engine.model import INPUT_NAMES, OUTPUT_NAMES, STATE_NAMES


class TestPlant:
    def test_signature_matches_paper(self):
        plant = build_engine_plant()
        assert plant.n_states == 18
        assert plant.n_inputs == 3
        assert plant.n_outputs == 4

    def test_open_loop_stable(self):
        assert build_engine_plant().is_stable()

    def test_names_cover_dimensions(self):
        assert len(STATE_NAMES) == 18
        assert len(INPUT_NAMES) == 3
        assert len(OUTPUT_NAMES) == 4

    def test_deterministic(self):
        p1, p2 = build_engine_plant(), build_engine_plant()
        assert np.array_equal(p1.a, p2.a)
        assert np.array_equal(p1.b, p2.b)
        assert np.array_equal(p1.c, p2.c)

    def test_every_actuation_channel_reaches_its_output(self):
        gain = build_engine_plant().dc_gain()
        # fuel -> LPC speed and HPC PR; nozzle -> Mach; IGV -> HPC speed.
        assert gain[0, 0] > 0.1
        assert gain[1, 0] > 0.1
        assert gain[2, 1] > 0.1
        assert gain[3, 2] > 0.3


class TestGainsAndController:
    def test_gain_values_match_paper(self):
        g0, g1 = mode_gains(0), mode_gains(1)
        assert g0.ki[0, 0] == 10.0 and g0.ki[1, 2] == 100.0 and g0.ki[2, 3] == 2.0
        assert g1.ki[0, 1] == 20.0
        assert g0.kp[0, 0] == 1.0 and g1.kp[0, 1] == 0.1
        assert g0.kp[1, 2] == 10.0 and g0.kp[2, 3] == 0.5

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            mode_gains(2)

    def test_switching_law(self):
        controller = paper_controller()
        r = np.array([5.0, 0.0, 0.0, 0.0])
        # r0 - y0 < Theta -> mode 0.
        assert controller.mode_of(np.array([4.5, 0, 0, 0]), r) == 0
        # r0 - y0 >= Theta -> mode 1.
        assert controller.mode_of(np.array([3.0, 0, 0, 0]), r) == 1
        # Boundary r0 - y0 == Theta belongs to mode 1 (non-strict guard).
        assert controller.mode_of(np.array([4.0, 0, 0, 0]), r) == 1

    def test_guards_partition(self):
        controller = paper_controller()
        rng = np.random.default_rng(0)
        r = np.array([5.0, 1.0, 0.5, 2.0])
        for y in rng.normal(scale=10.0, size=(200, 4)):
            modes = [
                all(c.holds(y, r) for c in conditions)
                for conditions in controller.guards
            ]
            assert sum(modes) == 1

    def test_both_modes_closed_loop_stable(self):
        """The headline design property: the paper's exact gains stabilize
        the synthetic plant in both operating modes."""
        case = case_by_name("size18")
        for mode in MODES:
            eigenvalues = np.linalg.eigvals(case.mode_matrix(mode))
            assert eigenvalues.real.max() < -0.1


class TestReferences:
    def test_equilibria_in_their_regions(self):
        plant = build_engine_plant()
        r = nominal_reference(plant)
        y0_mode1 = equilibrium_output(plant, mode_equilibrium(plant, 1, r))[0]
        # Mode-1 equilibrium satisfies the mode-1 guard with margin.
        assert r[0] - y0_mode1 >= THETA + 0.5
        # Mode-0 equilibrium tracks r0 exactly: guard value = Theta > 0.
        y0_mode0 = equilibrium_output(plant, mode_equilibrium(plant, 0, r))[0]
        assert y0_mode0 == pytest.approx(r[0], abs=1e-8)

    def test_mode1_tracks_its_outputs(self):
        plant = build_engine_plant()
        r = nominal_reference(plant)
        y = equilibrium_output(plant, mode_equilibrium(plant, 1, r))
        assert y[1:] == pytest.approx(r[1:], abs=1e-8)

    def test_switched_system_equilibria_in_regions(self):
        case = case_by_name("size18")
        r = case.reference()
        system = case.switched_system(r)
        for mode in MODES:
            assert system.modes[mode].equilibrium_in_region()


class TestBenchmarkSuite:
    def test_suite_composition(self):
        suite = benchmark_suite()
        names = [case.name for case in suite]
        assert names == [
            "size3i",
            "size3",
            "size5i",
            "size5",
            "size10i",
            "size10",
            "size15",
            "size18",
        ]

    def test_case_by_name_roundtrip(self):
        for case in benchmark_suite():
            again = case_by_name(case.name)
            assert again.size == case.size
            assert again.integer == case.integer

    def test_integer_cases_have_integer_entries(self):
        case = case_by_name("size5i")
        for m in (case.plant.a, case.plant.b, case.plant.c):
            assert np.array_equal(m, np.round(m))

    @pytest.mark.parametrize(
        "name",
        ["size3i", "size3", "size5i", "size5", "size10i", "size10", "size15", "size18"],
    )
    def test_every_case_closed_loop_stable(self, name):
        """Table I's precondition: all 16 single-mode benchmarks admit a
        Lyapunov function."""
        assert case_by_name(name).is_closed_loop_stable()

    def test_closed_loop_dimension(self):
        assert case_by_name("size18").closed_loop_dimension == 21
        assert case_by_name("size3").closed_loop_dimension == 6

    def test_plant_sizes(self):
        for case in benchmark_suite():
            assert case.plant.n_states == case.size
            assert case.plant.n_inputs == 3
            assert case.plant.n_outputs == 4
