"""Tests for the validation pipeline (repro.validate)."""

import numpy as np
import pytest

from repro.exact import RationalMatrix
from repro.lyapunov import LyapunovCandidate, synthesize
from repro.validate import (
    VALIDATORS,
    ValidationReport,
    lie_derivative_exact,
    run_validator,
    validate_candidate,
)

EXACT_VALIDATORS = ["sylvester", "gauss", "ldl", "sympy"]
ALL_VALIDATORS = EXACT_VALIDATORS + ["icp", "icp+det"]


def stable_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a - (np.linalg.eigvals(a).real.max() + 0.5) * np.eye(n)


class TestRunValidator:
    @pytest.mark.parametrize("name", ALL_VALIDATORS)
    def test_accepts_pd(self, name):
        result = run_validator(name, RationalMatrix([[2, 1], [1, 2]]))
        assert result.valid is True
        assert result.time >= 0
        assert result.counterexample is None

    @pytest.mark.parametrize("name", ALL_VALIDATORS)
    def test_rejects_indefinite_with_witness(self, name):
        m = RationalMatrix([[1, 2], [2, 1]])
        result = run_validator(name, m)
        assert result.valid is False
        assert result.counterexample is not None
        assert m.quadratic_form(result.counterexample) <= 0

    def test_unknown_validator(self):
        with pytest.raises(KeyError):
            run_validator("mathematica", RationalMatrix([[1]]))

    def test_registry_contents(self):
        assert set(VALIDATORS) == {
            "sylvester", "gauss", "ldl", "sympy", "icp", "icp+det",
        }

    def test_icp_refutes_singular_with_dyadic_null_vector(self):
        # q(w) = (w0 - w1)^2 vanishes at the corner (1, 1): the exact
        # witness check refutes strict definiteness immediately.
        result = run_validator("icp", RationalMatrix([[1, -1], [-1, 1]]))
        assert result.valid is False

    def test_icp_budget_gives_unknown(self):
        # q(w) = (3 w0 - w1)^2 vanishes only at the non-dyadic w0 = 1/3
        # on the face w1 = 1: ICP can neither refute nor verify.
        m = RationalMatrix([[9, -3], [-3, 1]])
        result = run_validator("icp", m, max_boxes=2_000)
        assert result.valid is None

    def test_icp_det_decides_singular(self):
        m = RationalMatrix([[9, -3], [-3, 1]])
        result = run_validator("icp+det", m)
        assert result.valid is False


class TestLieDerivative:
    def test_exact_formula(self):
        a = RationalMatrix([[-1, 0], [0, -2]])
        p = RationalMatrix([[1, 0], [0, 1]])
        lie = lie_derivative_exact(p, a)
        assert lie == RationalMatrix([[-2, 0], [0, -4]])


class TestValidateCandidate:
    def test_valid_candidate_passes(self):
        a = stable_matrix(4, seed=1)
        candidate = synthesize("eq-num", a)
        report = validate_candidate(candidate, a)
        assert report.valid is True
        assert report.total_time > 0
        assert report.positivity.valid and report.decrease.valid

    def test_invalid_candidate_fails_with_short_circuit(self):
        a = -np.eye(2)
        bogus = LyapunovCandidate(-np.eye(2), method="bogus")
        report = validate_candidate(bogus, a)
        assert report.valid is False
        assert report.positivity.valid is False
        assert report.decrease.extra.get("skipped")

    def test_decrease_failure_detected(self):
        # P is PD but V increases along the unstable direction.
        a = np.diag([1.0, -2.0])
        candidate = LyapunovCandidate(np.eye(2), method="bogus")
        report = validate_candidate(candidate, a)
        assert report.positivity.valid is True
        assert report.decrease.valid is False
        assert report.valid is False

    def test_aggressive_rounding_can_invalidate(self):
        """The paper's robustness observation: rounding at too few
        significant figures can break validity."""
        a = stable_matrix(6, seed=3)
        # Scale A so the Lyapunov solution has small margins.
        candidate = synthesize("eq-num", a)
        report10 = validate_candidate(candidate, a, sigfigs=10)
        assert report10.valid is True
        # At 1 significant figure the decrease margin usually dies; we
        # only assert the pipeline runs and produces a verdict.
        report1 = validate_candidate(candidate, a, sigfigs=1)
        assert report1.valid in (True, False)

    def test_dimension_mismatch(self):
        candidate = LyapunovCandidate(np.eye(2), method="x")
        with pytest.raises(ValueError):
            validate_candidate(candidate, -np.eye(3))

    @pytest.mark.parametrize("validator", EXACT_VALIDATORS)
    def test_validators_agree_on_synthesized(self, validator):
        a = stable_matrix(5, seed=4)
        candidate = synthesize("modal", a)
        report = validate_candidate(candidate, a, validator=validator)
        assert report.valid is True

    def test_exact_a_override(self):
        a_int = RationalMatrix([[-2, 0], [0, -3]])
        candidate = synthesize("eq-num", a_int.to_numpy())
        report = validate_candidate(
            candidate, a_int.to_numpy(), exact_a=a_int
        )
        assert report.valid is True

    def test_report_metadata(self):
        a = stable_matrix(3, seed=5)
        candidate = synthesize("lmi", a, backend="shift")
        report = validate_candidate(candidate, a)
        assert report.extra["method"] == "lmi"
        assert report.extra["backend"] == "shift"
        assert report.sigfigs == 10
        assert isinstance(report, ValidationReport)
