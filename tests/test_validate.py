"""Tests for the validation pipeline (repro.validate)."""

import numpy as np
import pytest

from repro.exact import RationalMatrix
from repro.lyapunov import LyapunovCandidate, synthesize
from repro.validate import (
    VALIDATORS,
    ValidationReport,
    lie_derivative_exact,
    run_validator,
    validate_candidate,
)

EXACT_VALIDATORS = ["sylvester", "gauss", "ldl", "sympy"]
ALL_VALIDATORS = EXACT_VALIDATORS + ["icp", "icp+det"]


def stable_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a - (np.linalg.eigvals(a).real.max() + 0.5) * np.eye(n)


class TestRunValidator:
    @pytest.mark.parametrize("name", ALL_VALIDATORS)
    def test_accepts_pd(self, name):
        result = run_validator(name, RationalMatrix([[2, 1], [1, 2]]))
        assert result.valid is True
        assert result.time >= 0
        assert result.counterexample is None

    @pytest.mark.parametrize("name", ALL_VALIDATORS)
    def test_rejects_indefinite_with_witness(self, name):
        m = RationalMatrix([[1, 2], [2, 1]])
        result = run_validator(name, m)
        assert result.valid is False
        assert result.counterexample is not None
        assert m.quadratic_form(result.counterexample) <= 0

    def test_unknown_validator(self):
        with pytest.raises(KeyError):
            run_validator("mathematica", RationalMatrix([[1]]))

    def test_registry_contents(self):
        assert set(VALIDATORS) == {
            "sylvester", "gauss", "ldl", "sympy", "icp", "icp+det",
        }

    def test_icp_refutes_singular_with_dyadic_null_vector(self):
        # q(w) = (w0 - w1)^2 vanishes at the corner (1, 1): the exact
        # witness check refutes strict definiteness immediately.
        result = run_validator("icp", RationalMatrix([[1, -1], [-1, 1]]))
        assert result.valid is False

    def test_icp_budget_gives_unknown(self):
        # q(w) = (3 w0 - w1)^2 vanishes only at the non-dyadic w0 = 1/3
        # on the face w1 = 1: ICP can neither refute nor verify.
        m = RationalMatrix([[9, -3], [-3, 1]])
        result = run_validator("icp", m, max_boxes=2_000)
        assert result.valid is None

    def test_icp_det_decides_singular(self):
        m = RationalMatrix([[9, -3], [-3, 1]])
        result = run_validator("icp+det", m)
        assert result.valid is False


class TestLieDerivative:
    def test_exact_formula(self):
        a = RationalMatrix([[-1, 0], [0, -2]])
        p = RationalMatrix([[1, 0], [0, 1]])
        lie = lie_derivative_exact(p, a)
        assert lie == RationalMatrix([[-2, 0], [0, -4]])


class TestValidateCandidate:
    def test_valid_candidate_passes(self):
        a = stable_matrix(4, seed=1)
        candidate = synthesize("eq-num", a)
        report = validate_candidate(candidate, a)
        assert report.valid is True
        assert report.total_time > 0
        assert report.positivity.valid and report.decrease.valid

    def test_invalid_candidate_fails_with_short_circuit(self):
        a = -np.eye(2)
        bogus = LyapunovCandidate(-np.eye(2), method="bogus")
        report = validate_candidate(bogus, a)
        assert report.valid is False
        assert report.positivity.valid is False
        assert report.decrease.extra.get("skipped")

    def test_decrease_failure_detected(self):
        # P is PD but V increases along the unstable direction.
        a = np.diag([1.0, -2.0])
        candidate = LyapunovCandidate(np.eye(2), method="bogus")
        report = validate_candidate(candidate, a)
        assert report.positivity.valid is True
        assert report.decrease.valid is False
        assert report.valid is False

    def test_aggressive_rounding_can_invalidate(self):
        """The paper's robustness observation: rounding at too few
        significant figures can break validity."""
        a = stable_matrix(6, seed=3)
        # Scale A so the Lyapunov solution has small margins.
        candidate = synthesize("eq-num", a)
        report10 = validate_candidate(candidate, a, sigfigs=10)
        assert report10.valid is True
        # At 1 significant figure the decrease margin usually dies; we
        # only assert the pipeline runs and produces a verdict.
        report1 = validate_candidate(candidate, a, sigfigs=1)
        assert report1.valid in (True, False)

    def test_dimension_mismatch(self):
        candidate = LyapunovCandidate(np.eye(2), method="x")
        with pytest.raises(ValueError):
            validate_candidate(candidate, -np.eye(3))

    @pytest.mark.parametrize("validator", EXACT_VALIDATORS)
    def test_validators_agree_on_synthesized(self, validator):
        a = stable_matrix(5, seed=4)
        candidate = synthesize("modal", a)
        report = validate_candidate(candidate, a, validator=validator)
        assert report.valid is True

    def test_exact_a_override(self):
        a_int = RationalMatrix([[-2, 0], [0, -3]])
        candidate = synthesize("eq-num", a_int.to_numpy())
        report = validate_candidate(
            candidate, a_int.to_numpy(), exact_a=a_int
        )
        assert report.valid is True

    def test_report_metadata(self):
        a = stable_matrix(3, seed=5)
        candidate = synthesize("lmi", a, backend="shift")
        report = validate_candidate(candidate, a)
        assert report.extra["method"] == "lmi"
        assert report.extra["backend"] == "shift"
        assert report.sigfigs == 10
        assert isinstance(report, ValidationReport)


class TestGracefulDegradation:
    """Forced backend/validator failures must degrade visibly, never
    silently (ValidatorResult.extra carries the provenance)."""

    def _break_modular(self, monkeypatch):
        from repro.exact import kernels

        def explode(*_a, **_k):
            raise RuntimeError("modular kernel corrupted")

        monkeypatch.setattr(
            kernels, "modular_leading_principal_minors", explode
        )

    def test_modular_backend_falls_back_to_int(self, monkeypatch):
        self._break_modular(monkeypatch)
        matrix = RationalMatrix([[2, 1], [1, 2]])
        result = run_validator("sylvester", matrix, backend="modular")
        assert result.valid is True
        assert result.degraded
        hops = result.extra["backend_fallbacks"]
        assert [h["backend"] for h in hops] == ["modular"]
        assert "modular kernel corrupted" in hops[0]["error"]
        assert result.extra["backend"] == "int"  # who actually decided
        assert result.validator == "sylvester"  # no escalation needed

    def test_no_fallback_propagates_backend_error(self, monkeypatch):
        self._break_modular(monkeypatch)
        matrix = RationalMatrix([[2, 1], [1, 2]])
        with pytest.raises(RuntimeError, match="modular kernel corrupted"):
            run_validator(
                "sylvester", matrix, backend="modular", fallback=False
            )

    def _break_sylvester(self, monkeypatch):
        from repro.exact import definiteness

        def explode(_matrix):
            raise RuntimeError("sylvester imploded")

        # First call inside every exact check: breaks all its backends.
        monkeypatch.setattr(definiteness, "_require_symmetric", explode)

    def test_validator_escalates_to_sympy(self, monkeypatch):
        self._break_sylvester(monkeypatch)
        matrix = RationalMatrix([[2, 1], [1, 2]])
        result = run_validator("sylvester", matrix)
        assert result.valid is True
        assert result.validator == "sympy"  # the verdict's true author
        assert result.extra["escalated_from"] == "sylvester"
        assert "sylvester imploded" in result.extra["escalation_error"]
        assert result.degraded

    def test_escalation_opt_out(self, monkeypatch):
        self._break_sylvester(monkeypatch)
        with pytest.raises(RuntimeError, match="sylvester imploded"):
            run_validator(
                "sylvester", RationalMatrix([[2, 1], [1, 2]]),
                fallback=False,
            )

    def test_clean_run_has_no_provenance_keys(self):
        result = run_validator("sylvester", RationalMatrix([[2, 1], [1, 2]]))
        assert not result.degraded
        assert "backend_fallbacks" not in result.extra
        assert "escalated_from" not in result.extra

    def test_report_aggregates_degradations(self, monkeypatch):
        self._break_sylvester(monkeypatch)
        a = stable_matrix(3, seed=2)
        candidate = synthesize("eq-num", a)
        report = validate_candidate(candidate, a)
        assert report.valid is True  # verdict survived the degradation
        stages = {d["stage"] for d in report.degraded}
        kinds = {d["kind"] for d in report.degraded}
        assert stages == {"positivity", "decrease"}
        assert kinds == {"validator"}
        assert all(d["failed"] == "sylvester" for d in report.degraded)
        assert all(d["used"] == "sympy" for d in report.degraded)

    def test_report_no_fallback_raises(self, monkeypatch):
        self._break_sylvester(monkeypatch)
        a = stable_matrix(3, seed=2)
        candidate = synthesize("eq-num", a)
        with pytest.raises(RuntimeError, match="sylvester imploded"):
            validate_candidate(candidate, a, fallback=False)

    def test_degradation_reaches_record_and_timing(self, monkeypatch):
        """End-to-end: a degraded validation shows up on the Table I
        record and in the timing artifact's detail."""
        self._break_sylvester(monkeypatch)
        from repro.runner import Table1Task, TimingCollector, run_tasks

        collector = TimingCollector()
        task = Table1Task(
            case_name="size3", size=3, mode=0, method="eq-num", backend=None,
            eq_smt_deadline=5.0, validator="sylvester", sigfigs=10,
            keep_candidate=False,
        )
        (record, _), = run_tasks([task], jobs=1, collect=collector)
        assert record.valid is True
        assert record.degraded, "degradation must be recorded on the row"
        assert all(d["used"] == "sympy" for d in record.degraded)
        detail = collector.entries()[0]
        assert detail["degraded"] == record.degraded
