"""The ground-truth oracle: generator, differential harness, shrinking,
artifacts, and the planted-bug self-test."""

import json

import pytest

from repro.exact import is_hurwitz_matrix
from repro.oracle import (
    KINDS,
    FuzzRecord,
    QUICK_PROFILE,
    check_system,
    generate_system,
    load_failures,
    replay_spec,
    shrink_failure,
    system_specs,
    write_failure,
)
from repro.runner.journal import decode_value, encode_value
from repro.validate import VALIDATORS, run_validator, temporary_validator
from repro.validate.pipeline import lie_derivative_exact


# ----------------------------------------------------------------------
# Generator ground truth
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("n", [1, 2, 4])
def test_constructed_verdict_matches_exact_routh(kind, n):
    system = generate_system(kind, n, seed=11)
    assert is_hurwitz_matrix(system.a, backend="fraction") == system.stable


@pytest.mark.parametrize("kind", ["stable", "stable-illcond"])
def test_witness_algebra_is_exact(kind):
    system = generate_system(kind, 4, seed=3)
    lie = lie_derivative_exact(system.witness_p, system.a)
    assert lie == system.witness_q.scale(-2)
    assert run_validator("sylvester", system.witness_p).valid is True
    assert run_validator("sylvester", system.witness_q.scale(2)).valid is True


def test_generation_is_deterministic_in_spec():
    one = generate_system("stable", 3, seed=99)
    two = generate_system("stable", 3, seed=99)
    other = generate_system("stable", 3, seed=100)
    assert one.a == two.a
    assert one.witness_p == two.witness_p
    assert one.a != other.a


def test_system_specs_plan_is_deterministic_and_covers_kinds():
    plan = system_specs(24, seed=5, sizes=(1, 2, 3))
    again = system_specs(24, seed=5, sizes=(1, 2, 3))
    assert plan == again
    assert {spec["kind"] for spec in plan} == set(KINDS)
    # marginal/jordan need n >= 2 for their 2x2 structure draws
    for spec in plan:
        if spec["kind"] in ("marginal", "jordan"):
            assert spec["n"] >= 2


def test_unknown_kind_and_bad_dimension_raise():
    with pytest.raises(KeyError):
        generate_system("nope", 3, 0)
    with pytest.raises(ValueError):
        generate_system("stable", 0, 0)


# ----------------------------------------------------------------------
# Differential harness
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", KINDS)
def test_check_system_is_clean_on_healthy_code(kind):
    record = check_system(generate_system(kind, 3, seed=7))
    assert not record.failed, (record.disagreements, record.harness_errors)
    assert record.checks > 0


def test_record_survives_journal_encoding():
    record = check_system(generate_system("stable", 2, seed=1))
    clone = decode_value(json.loads(json.dumps(encode_value(record))))
    assert isinstance(clone, FuzzRecord)
    assert clone == record


# ----------------------------------------------------------------------
# Planted bug: detection + shrinking (the acceptance self-test)
# ----------------------------------------------------------------------

def _sign_flipped_sylvester():
    genuine = VALIDATORS["sylvester"]

    def sabotaged(matrix, **options):
        verdict, _witness, extra = genuine(matrix, **options)
        return (not verdict), None, extra

    return temporary_validator("sylvester", sabotaged)


def test_planted_sign_flip_is_caught_and_shrunk_to_minimal():
    with _sign_flipped_sylvester():
        record = check_system(generate_system("stable", 5, seed=13))
        assert record.failed
        assert any(
            d["check"] == "witness" and d["combo"].startswith("sylvester")
            for d in record.disagreements
        )
        result = shrink_failure(record)
    assert result.reduced
    assert result.minimal == {"kind": "stable", "n": 1, "seed": 13}
    assert result.record.failed
    # Outside the planted context the same spec is clean again.
    assert not replay_spec(result.minimal).failed


def test_temporary_validator_restores_registry():
    genuine = VALIDATORS["sylvester"]
    with temporary_validator("sylvester", lambda m, **o: (True, None, {})):
        assert VALIDATORS["sylvester"] is not genuine
    assert VALIDATORS["sylvester"] is genuine
    with temporary_validator("scratch", lambda m, **o: (True, None, {})):
        assert "scratch" in VALIDATORS
    assert "scratch" not in VALIDATORS


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------

def test_failure_artifacts_roundtrip(tmp_path):
    import numpy as np

    with _sign_flipped_sylvester():
        record = check_system(generate_system("stable", 2, seed=21))
        assert record.failed
    npz_path = write_failure(
        tmp_path, record, minimal={"kind": "stable", "n": 1, "seed": 21}
    )
    assert npz_path.exists()
    entries = load_failures(tmp_path)
    assert len(entries) == 1
    entry = entries[0]
    assert entry["spec"] == {"kind": "stable", "n": 2, "seed": 21}
    assert entry["minimal"]["n"] == 1
    assert entry["disagreements"]
    # The .npz is self-contained: the dumped A matches regeneration.
    dumped = np.load(npz_path)
    system = generate_system("stable", 2, seed=21)
    assert np.array_equal(dumped["a"], system.a_float)
    assert bool(dumped["stable"]) is True
    assert np.array_equal(dumped["witness_p"], system.witness_p.to_numpy())
    # Replay from the JSONL spec alone (healthy code -> clean now).
    assert not replay_spec(entry["spec"], QUICK_PROFILE).failed
