"""Degenerate inputs through every experiment driver and the synthesis
pipeline: empty grids, n=1, the zero matrix, repeated eigenvalues."""

import numpy as np
import pytest

from repro.experiments.figure3 import run_figure3
from repro.experiments.piecewise import run_piecewise
from repro.experiments.table1 import rounding_sweep, run_table1
from repro.experiments.table2 import run_table2
from repro.lyapunov import synthesize
from repro.oracle import generate_system
from repro.validate import validate_candidate


# ----------------------------------------------------------------------
# Empty grids: every driver must return an empty record list, not crash
# ----------------------------------------------------------------------

def test_table1_empty_grid():
    records, candidates = run_table1(
        sizes=(), integer_sizes=(), keep_candidates=True
    )
    assert records == []
    assert candidates == {}


def test_table1_empty_methods():
    records, _ = run_table1(sizes=(3,), integer_sizes=(), methods=[])
    assert records == []


def test_rounding_sweep_empty_candidates():
    assert rounding_sweep({}) == []


def test_figure3_empty_grid():
    assert run_figure3(sizes=()) == []
    assert run_figure3(sizes=(3,), validators=()) == []


def test_table2_empty_grid():
    assert run_table2(case_names=()) == []
    assert run_table2(case_names=("size15",), methods=[]) == []


def test_piecewise_empty_grid():
    assert run_piecewise(case_names=()) == []
    assert run_piecewise(case_names=("size3",), encodings=()) == []


# ----------------------------------------------------------------------
# Degenerate systems through synthesis + exact validation
# ----------------------------------------------------------------------

def test_one_dimensional_system_end_to_end():
    system = generate_system("stable", 1, seed=2)
    candidate = synthesize("eq-num", system.a_float)
    report = validate_candidate(
        candidate, system.a_float, exact_a=system.a, sigfigs=10
    )
    assert report.valid is True


def test_zero_matrix_candidates_are_refuted_not_crashed():
    a = np.zeros((2, 2))
    from repro.exact import RationalMatrix

    exact = RationalMatrix.zeros(2, 2)
    # eq-num solves a singular Lyapunov equation: whatever garbage comes
    # back, exact validation must refuse it (no certificate exists).
    try:
        candidate = synthesize("eq-num", a)
    except ValueError:
        return  # refusing to synthesize is equally acceptable
    report = validate_candidate(candidate, a, exact_a=exact, sigfigs=10)
    assert report.valid is not True


def test_modal_rejects_defective_matrices():
    system = generate_system("jordan", 3, seed=14)
    if system.info.get("defective"):
        with pytest.raises(ValueError):
            synthesize("modal", system.a_float)
    else:
        candidate = synthesize("modal", system.a_float)
        assert candidate.p.shape == (3, 3)


def test_repeated_eigenvalues_still_validate():
    # Semisimple repeated eigenvalues are fine for every method.
    for seed in range(6):
        system = generate_system("jordan", 2, seed=seed)
        if system.info.get("defective"):
            continue
        candidate = synthesize("lmi", system.a_float, backend="ipm")
        report = validate_candidate(
            candidate, system.a_float, exact_a=system.a, sigfigs=10
        )
        assert report.valid is True
        break
    else:  # pragma: no cover - seed sweep always finds a semisimple one
        pytest.fail("no semisimple repeat in seeds 0..5")
