"""Tests for failure injection (repro.engine.faults)."""

import numpy as np
import pytest

from repro.engine import build_engine_plant, nominal_reference
from repro.engine.faults import (
    NO_DESTABILIZING_MARGIN,
    Fault,
    apply_fault,
    bias_shifts_equilibrium,
    fault_margin,
    stability_under_fault,
)


@pytest.fixture(scope="module")
def plant():
    return build_engine_plant()


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            Fault("melting", 0, 0.1)
        with pytest.raises(ValueError):
            Fault("sensor-gain", 0, 1.5)
        # bias severities are unbounded offsets
        Fault("sensor-bias", 0, 7.0)

    def test_actuator_fault_scales_b(self, plant):
        faulted = apply_fault(plant, Fault("actuator-effectiveness", 0, 0.5))
        assert np.allclose(faulted.b[:, 0], 0.5 * plant.b[:, 0])
        assert np.allclose(faulted.b[:, 1:], plant.b[:, 1:])
        assert np.allclose(faulted.a, plant.a)

    def test_sensor_fault_scales_c(self, plant):
        faulted = apply_fault(plant, Fault("sensor-gain", 2, 0.25))
        assert np.allclose(faulted.c[2, :], 0.75 * plant.c[2, :])
        assert np.allclose(faulted.c[0, :], plant.c[0, :])

    def test_bias_leaves_structure(self, plant):
        faulted = apply_fault(plant, Fault("sensor-bias", 1, 3.0))
        assert faulted is plant

    def test_channel_range_checked(self, plant):
        with pytest.raises(ValueError):
            apply_fault(plant, Fault("actuator-effectiveness", 3, 0.1))
        with pytest.raises(ValueError):
            apply_fault(plant, Fault("sensor-gain", 4, 0.1))


class TestStabilityUnderFault:
    def test_nominal_is_stable(self, plant):
        abscissas = stability_under_fault(
            plant, Fault("actuator-effectiveness", 0, 0.0)
        )
        assert all(value < 0 for value in abscissas.values())

    def test_total_fuel_actuator_loss_leaves_integrator_pole(self, plant):
        """Killing the fuel channel disconnects its PI integrator: a pole
        lands at the origin (marginally stable, not Hurwitz)."""
        abscissas = stability_under_fault(
            plant, Fault("actuator-effectiveness", 0, 1.0)
        )
        assert max(abscissas.values()) >= -1e-9

    def test_small_faults_tolerated(self, plant):
        for kind, channel in (
            ("actuator-effectiveness", 0),
            ("actuator-effectiveness", 1),
            ("sensor-gain", 0),
            ("sensor-gain", 2),
        ):
            abscissas = stability_under_fault(plant, Fault(kind, channel, 0.1))
            assert max(abscissas.values()) < 0, (kind, channel)


class TestFaultMargin:
    def test_margin_is_meaningful(self, plant):
        margin = fault_margin(plant, "actuator-effectiveness", 0)
        assert 0.1 < margin <= 1.0
        # just below the margin: stable; at the extreme: not
        below = stability_under_fault(
            plant, Fault("actuator-effectiveness", 0, margin * 0.95)
        )
        assert max(below.values()) < 0

    def test_bias_rejected(self, plant):
        with pytest.raises(ValueError):
            fault_margin(plant, "sensor-bias", 0)

    def test_unstable_nominal_rejected(self):
        from repro.systems import StateSpace

        bad = StateSpace(
            np.eye(18) * 1.0,
            np.ones((18, 3)),
            np.ones((4, 18)),
        )
        with pytest.raises(ValueError):
            fault_margin(bad, "actuator-effectiveness", 0)

    def test_severity_zero_is_strictly_inside_the_margin(self, plant):
        """Bisection edge: the nominal (severity-0) loop is stable, so
        every finite margin must be strictly positive."""
        margin = fault_margin(plant, "sensor-gain", 0)
        assert margin > 0.0

    def test_severity_one_unstable_brackets_the_margin(self, plant):
        """Bisection edge: when total loss destabilizes, the returned
        margin is finite, still stable, and unstable just above."""
        tolerance = 1e-3
        margin = fault_margin(
            plant, "sensor-gain", 0, tolerance=tolerance
        )
        assert margin < 1.0
        stable = stability_under_fault(
            plant, Fault("sensor-gain", 0, margin)
        )
        assert max(stable.values()) < 0
        unstable = stability_under_fault(
            plant, Fault("sensor-gain", 0, min(1.0, margin + 2 * tolerance))
        )
        assert max(unstable.values()) >= 0

    def test_non_destabilizing_family_returns_sentinel(self, plant):
        """Mode 0 ignores y1 (no gain on that error), so a sensor-gain
        fault there can never destabilize mode 0: the no-margin sentinel
        comes back, distinguishable from a genuine margin at the cap."""
        margin = fault_margin(plant, "sensor-gain", 1, modes=(0,))
        assert margin == NO_DESTABILIZING_MARGIN
        assert np.isinf(margin)
        assert margin != 1.0


class TestBiasAnalysis:
    def test_bias_moves_equilibrium_linearly(self, plant):
        r = nominal_reference(plant)
        shift1 = bias_shifts_equilibrium(plant, 0, 0, 0.1, r)
        shift2 = bias_shifts_equilibrium(plant, 0, 0, 0.2, r)
        assert np.allclose(2.0 * shift1, shift2, rtol=1e-8)
        assert np.linalg.norm(shift1) > 0

    def test_bias_on_untracked_channel_mode0(self, plant):
        """Mode 0 ignores y1 (no gain on that error): a y1 bias moves
        nothing."""
        r = nominal_reference(plant)
        shift = bias_shifts_equilibrium(plant, 0, 1, 0.5, r)
        assert np.linalg.norm(shift) == pytest.approx(0.0, abs=1e-10)

    def test_bias_vs_robust_epsilon(self, plant):
        """A bias below the verified epsilon keeps the shifted equilibrium
        within the robust region's guarantees (consistency of the two
        analyses on the size-10 benchmark)."""
        from repro.engine import case_by_name, mode_gains
        from repro.exact import RationalMatrix, solve_vector, to_fraction
        from repro.lyapunov import synthesize
        from repro.robust import (
            EpsilonInputs,
            epsilon_radius,
            surface_geometry,
            synthesize_robust_level,
        )
        from repro.systems import closed_loop_matrices

        case = case_by_name("size10")
        r = case.reference()
        system = case.switched_system(r)
        flow = system.modes[0].flow
        halfspace = system.modes[0].region.halfspaces[0]
        candidate = synthesize("lmi", case.mode_matrix(0), backend="ipm")
        region = synthesize_robust_level(flow, halfspace, candidate.exact_p(10))
        w_eq = solve_vector(
            RationalMatrix.from_numpy(flow.a),
            [-to_fraction(x) for x in flow.b.tolist()],
        )
        _, b_cl = closed_loop_matrices(case.plant, mode_gains(0))
        eps = epsilon_radius(
            EpsilonInputs(
                flow_a=flow.a, b_cl=b_cl, p=candidate.p, k=region.k_float(),
                w_eq=np.array([float(x) for x in w_eq]),
                geometry=surface_geometry(halfspace, flow),
            )
        )
        # A reference perturbation of size eps moves the equilibrium by
        # at most beta*eps, which stays inside the robust region.
        bias = 0.9 * eps
        shift = bias_shifts_equilibrium(case.plant, 0, 0, bias, r)
        beta = float(np.linalg.norm(np.linalg.solve(flow.a, b_cl), 2))
        assert np.linalg.norm(shift) <= beta * bias * (1 + 1e-6)
