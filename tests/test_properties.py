"""Cross-cutting property-based tests (library-wide invariants).

These run hypothesis over the seams *between* subsystems — scaling laws,
dualities, and conservation properties that any refactoring must
preserve."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import (
    RationalMatrix,
    bareiss_determinant,
    leading_principal_minors,
    sylvester_positive_definite,
)
from repro.lyapunov import synthesize
from repro.robust import synthesize_robust_level
from repro.smt import LinearConstraint, Relation, Var, solve_linear
from repro.smt.linear import check_farkas_certificate
from repro.systems import AffineSystem, HalfSpace
from repro.validate import validate_candidate

x, y = Var("x"), Var("y")


def random_stable(n, seed, margin=0.5):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a - (np.linalg.eigvals(a).real.max() + margin) * np.eye(n)


class TestSynthesisValidationClosure:
    """Every method's output on every (small random) stable system must
    pass exact validation — the library's central contract."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_all_methods_validate(self, seed, n):
        a = random_stable(n, seed)
        for method in ("eq-num", "modal", "lmi", "lmi-alpha"):
            candidate = synthesize(method, a, backend="shift")
            report = validate_candidate(candidate, a)
            assert report.valid is True, (method, seed, n)


class TestRobustLevelScaling:
    """Scaling the Lyapunov matrix scales the level linearly: the robust
    region W = {V <= k} is invariant under V -> cV, k -> ck."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 9))
    def test_k_scales_with_p(self, c):
        flow = AffineSystem([[-1.0, 4.0], [0.0, -1.0]], [0.0, 0.0])
        halfspace = HalfSpace((1, 0), 1)
        p = RationalMatrix([[2, 1], [1, 3]])
        base = synthesize_robust_level(flow, halfspace, p)
        scaled = synthesize_robust_level(flow, halfspace, p.scale(c))
        assert scaled.k == base.k * c
        assert scaled.minimizer == base.minimizer


class TestKernelOracleAgreement:
    """The int/modular exact kernels are only ever allowed to be faster,
    never different: determinants, leading-minor streams and Sylvester
    verdicts must agree bit-for-bit with the Fraction oracle on every
    matrix shape the pipeline produces — including singular, zero-pivot,
    negative-definite and huge-denominator (10-sigfig-rounded) cases."""

    KINDS = (
        "generic",
        "singular",
        "zero_pivot",
        "negative_definite",
        "huge_denominator",
    )

    @staticmethod
    def _matrix(kind, n, seed):
        rng = np.random.default_rng(seed)

        def frac():
            return Fraction(
                int(rng.integers(-99, 100)), int(rng.integers(1, 60))
            )

        if kind == "huge_denominator":
            # 10-significant-figure decimal roundings of floats — the
            # denominator profile of ``exact_p(10)`` candidates.
            return RationalMatrix(
                [[Fraction(f"{value:.10g}") for value in row]
                 for row in rng.normal(size=(n, n)).tolist()]
            )
        if kind == "negative_definite":
            g = RationalMatrix([[frac() for _ in range(n)] for _ in range(n)])
            return (
                (g @ g.T + RationalMatrix.identity(n).scale(n))
                .scale(-1)
                .symmetrize()
            )
        rows = [[frac() for _ in range(n)] for _ in range(n)]
        if kind == "singular":
            rows[n - 1] = [x * 2 for x in rows[0]]
        elif kind == "zero_pivot":
            rows[0][0] = Fraction(0)
        return RationalMatrix(rows)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.sampled_from(KINDS),
        st.integers(2, 7),
    )
    def test_kernels_match_fraction_oracle(self, seed, kind, n):
        m = self._matrix(kind, n, seed)
        det = bareiss_determinant(m, backend="fraction")
        minors = leading_principal_minors(m, backend="fraction")
        for backend in ("int", "modular", "auto"):
            assert bareiss_determinant(m, backend=backend) == det, (
                kind, backend,
            )
            assert leading_principal_minors(m, backend=backend) == minors, (
                kind, backend,
            )
        if m.is_symmetric():
            verdict = sylvester_positive_definite(m, backend="fraction")
            for backend in ("int", "modular", "auto"):
                assert (
                    sylvester_positive_definite(m, backend=backend)
                    is verdict
                ), (kind, backend)


class TestTensorizedOracleAgreement:
    """The compiled (tensorized, batched) LMI separation oracle is only
    ever allowed to be faster than the per-block differential oracle,
    never different: violations, deep-cut gradients and the argmax
    choice must agree to 1e-12 on random block systems mixing sizes
    (including the scalar fast path) and margins."""

    @staticmethod
    def _system(seed, dimension):
        from repro.sdp import LmiBlock

        rng = np.random.default_rng(seed)
        blocks = []
        n_blocks = int(rng.integers(2, 6))
        for _ in range(n_blocks):
            size = int(rng.integers(1, 5))
            f0 = rng.normal(size=(size, size))
            coefficients = [
                rng.normal(size=(size, size)) for _ in range(dimension)
            ]
            blocks.append(
                LmiBlock(
                    (f0 + f0.T) / 2,
                    [(c + c.T) / 2 for c in coefficients],
                    margin=float(rng.uniform(0, 0.5)),
                )
            )
        return blocks

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5))
    def test_compiled_matches_per_block(self, seed, dimension):
        from repro.sdp import CompiledLmiSystem

        blocks = self._system(seed, dimension)
        system = CompiledLmiSystem(blocks, dimension)
        rng = np.random.default_rng(seed + 1)
        for _ in range(3):
            point = rng.normal(size=dimension) * rng.choice([0.1, 1.0, 10.0])
            violations = system.violations(point)
            per_block = np.array(
                [block.violation(point)[0] for block in blocks]
            )
            assert np.allclose(violations, per_block, atol=1e-12), seed
            worst, vector, index, oracle_violations = system.oracle(point)
            assert index == int(np.argmax(per_block)), seed
            assert abs(worst - per_block.max()) < 1e-12, seed
            # Reported (non-screened) violations agree where resolved.
            resolved = np.isfinite(oracle_violations)
            assert np.allclose(
                oracle_violations[resolved], per_block[resolved], atol=1e-12
            ), seed
            # Deep-cut gradient: g_i = -v^T F_ji v for the worst block.
            expected = np.array(
                [-vector @ c @ vector
                 for c in blocks[index].coefficients]
            )
            assert np.allclose(
                system.gradient(index, vector), expected, atol=1e-12
            ), seed

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4))
    def test_solver_trajectories_track(self, seed, dimension):
        """Both oracles drive the ellipsoid method along the same early
        trajectory.  (Only a prefix is compared: tensordot and per-block
        accumulation round differently at ~1e-16, which the cut dynamics
        amplify over many iterations.)"""
        from repro.sdp import solve_lmi_ellipsoid

        blocks = self._system(seed, dimension)
        on = solve_lmi_ellipsoid(
            blocks, dimension=dimension, max_iterations=60,
            raise_on_infeasible=False, record_history=True,
        )
        off = solve_lmi_ellipsoid(
            blocks, dimension=dimension, max_iterations=60,
            raise_on_infeasible=False, record_history=True,
            batch_oracle=False,
        )
        prefix = min(len(on.history), len(off.history), 20)
        assert prefix >= 1, seed
        assert np.allclose(
            on.history[:prefix], off.history[:prefix],
            rtol=1e-6, atol=1e-9,
        ), seed


class TestLinearSolverDuality:
    """solve_linear returns a model XOR a Farkas certificate — never
    neither, never both — and whichever it returns checks out."""

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(-3, 3), st.integers(-3, 3), st.integers(-5, 5),
                st.sampled_from([Relation.LE, Relation.LT, Relation.EQ]),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_model_xor_certificate(self, rows):
        constraints = [
            LinearConstraint(
                (("x", Fraction(a)), ("y", Fraction(b))), Fraction(c), rel
            )
            for a, b, c, rel in rows
        ]
        result = solve_linear(constraints)
        if result.satisfiable:
            assert result.model is not None
            assert result.farkas is None
            for constraint in constraints:
                value = sum(
                    (coef * result.model.get(var, Fraction(0))
                     for var, coef in constraint.coeffs),
                    Fraction(0),
                ) + constraint.constant
                if constraint.relation is Relation.LE:
                    assert value <= 0
                elif constraint.relation is Relation.LT:
                    assert value < 0
                else:
                    assert value == 0
        else:
            assert result.model is None
            assert result.farkas is not None
            assert check_farkas_certificate(constraints, result.farkas)


class TestReductionMonotonicity:
    """Hankel values descend; the H-inf error bound shrinks with order."""

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 5_000))
    def test_bounds_monotone(self, seed):
        from repro.reduction import balance
        from repro.systems import StateSpace

        rng = np.random.default_rng(seed)
        n = 6
        a = random_stable(n, seed)
        plant = StateSpace(a, rng.normal(size=(n, 2)), rng.normal(size=(2, n)))
        realization = balance(plant)
        hankel = realization.hankel_values
        assert all(hankel[i] >= hankel[i + 1] - 1e-12 for i in range(n - 1))
        bounds = [realization.error_bound(k) for k in range(1, n + 1)]
        assert all(bounds[i] >= bounds[i + 1] - 1e-12 for i in range(n - 1))
        assert bounds[-1] == pytest.approx(0.0, abs=1e-9)


class TestZonotopeSupportDuality:
    """support_{MZ}(d) == support_Z(M^T d) — linearity of support
    functions under linear maps."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_support_under_linear_map(self, seed):
        from repro.reach import Zonotope

        rng = np.random.default_rng(seed)
        z = Zonotope(rng.normal(size=3), rng.normal(size=(3, 5)))
        m = rng.normal(size=(3, 3))
        d = rng.normal(size=3)
        lhs = z.linear_map(m).support(d)
        rhs = z.support(m.T @ d)
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestDiscretizationConsistency:
    """ZOH at dt then at 2*dt composes: A_d(2dt) == A_d(dt)^2 and the
    offset accumulates accordingly."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.01, 0.5))
    def test_semigroup_property(self, seed, dt):
        from repro.systems import StateSpace
        from repro.systems.discretize import discretize_zoh

        a = random_stable(3, seed)
        rng = np.random.default_rng(seed)
        plant = StateSpace(a, rng.normal(size=(3, 1)), np.ones((1, 3)))
        one = discretize_zoh(plant, dt)
        two = discretize_zoh(plant, 2 * dt)
        assert np.allclose(two.a, one.a @ one.a, atol=1e-9)
        assert np.allclose(two.b, one.a @ one.b + one.b, atol=1e-9)


class TestExactRoundingMonotonicity:
    """Rounding a validated candidate at MORE significant figures can
    never turn a valid verdict invalid while fewer figures stay valid
    (margins only shrink as precision drops)."""

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 3_000))
    def test_validity_monotone_in_precision(self, seed):
        a = random_stable(4, seed, margin=1.0)
        candidate = synthesize("lmi-alpha", a, backend="shift")
        verdicts = {}
        for sigfigs in (3, 6, 12):
            verdicts[sigfigs] = validate_candidate(
                candidate, a, sigfigs=sigfigs
            ).valid
        if verdicts[3] is True:
            assert verdicts[6] is True
        if verdicts[6] is True:
            assert verdicts[12] is True
