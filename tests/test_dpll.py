"""Tests for the lazy DPLL(T) engine (repro.smt.dpll)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import And, Atom, Box, Not, Or, Relation, SmtSolver, SmtStatus, Var
from repro.smt.dpll import DpllSolver, tseitin_cnf

x, y, z = Var("x"), Var("y"), Var("z")


class TestTseitin:
    def test_atom_only(self):
        clauses, atoms, n = tseitin_cnf(x <= 0)
        assert len(atoms) == 1
        assert len(clauses) == 1  # the root unit clause

    def test_shared_subformulas_reuse_variables(self):
        atom = x <= 0
        f = And((atom, Or((atom, y <= 0))))
        _clauses, atoms, _n = tseitin_cnf(f)
        # The repeated atom maps to ONE boolean variable.
        assert len(atoms) == 2

    def test_linear_size(self):
        """CNF size grows linearly where DNF would blow up: CNF of
        (a1 or b1) and ... and (ak or bk) stays small."""
        k = 12
        conjuncts = []
        for i in range(k):
            conjuncts.append(
                Or((Var(f"a{i}") <= 0, Var(f"b{i}") <= 0))
            )
        clauses, atoms, n = tseitin_cnf(And(tuple(conjuncts)))
        assert len(atoms) == 2 * k
        assert len(clauses) < 10 * k  # DNF would have 2^k disjuncts

    def test_not_handled_by_negated_literal(self):
        clauses, atoms, _ = tseitin_cnf(Not(x <= 0))
        assert len(atoms) == 1
        # Root clause is the negated atom literal.
        assert any(clause == (-1,) or clause == (-list(atoms)[0],) for clause in clauses)


class TestDpllDecisions:
    def test_linear_sat(self):
        result = DpllSolver().check(And((x <= 1, x >= 0)))
        assert result.is_sat
        assert 0 <= result.model["x"] <= 1

    def test_linear_unsat(self):
        result = DpllSolver().check(And((x < 0, x > 0)))
        assert result.is_unsat

    def test_boolean_structure(self):
        f = And((Or((x <= -1, x >= 1)), x >= 0, x <= 2))
        result = DpllSolver().check(f)
        assert result.is_sat
        assert result.model["x"] >= 1

    def test_blocking_clause_moves_past_theory_conflicts(self):
        # First boolean model (x <= -1 branch) conflicts with x >= 0;
        # DPLL must block it and find the other branch.
        f = And((Or((x <= -1, x.eq(5))), x >= 0))
        result = DpllSolver().check(f)
        assert result.is_sat
        assert result.model["x"] == 5

    def test_nonlinear_with_box(self):
        f = And(((x * x - 4).eq(0), x >= 0))
        result = DpllSolver().check(f, Box.cube(["x"], -5.0, 5.0))
        assert result.status in (SmtStatus.SAT, SmtStatus.DELTA_SAT)

    def test_pure_boolean_true(self):
        from repro.smt import TRUE

        assert DpllSolver().check(TRUE).is_sat

    def test_pure_boolean_false(self):
        from repro.smt import FALSE

        assert DpllSolver().check(FALSE).is_unsat

    def test_deep_nesting(self):
        f = Not(Or((Not(x <= 0), And((y <= 0, Not(y <= 0))))))
        # equivalent to: x <= 0 and not(y<=0 and y>0) = x <= 0.
        result = DpllSolver().check(f)
        assert result.is_sat
        assert result.model["x"] <= 0


def random_formulas():
    """Small random formulas over 3 variables with linear atoms."""
    atoms = st.builds(
        lambda c1, c2, c0, strict: Atom(
            c1 * x + c2 * y + c0, Relation.LT if strict else Relation.LE
        ),
        st.integers(-3, 3),
        st.integers(-3, 3),
        st.integers(-4, 4),
        st.booleans(),
    )
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(Not, children),
        ),
        max_leaves=6,
    )


class TestEquivalenceWithDnfEngine:
    @settings(max_examples=60, deadline=None)
    @given(random_formulas())
    def test_same_verdict_as_dnf(self, formula):
        dnf_result = SmtSolver().check(formula)
        dpll_result = DpllSolver().check(formula)
        assert dpll_result.status == dnf_result.status
        if dpll_result.is_sat:
            # Models may differ; both must satisfy the formula — checked
            # by evaluating through the exact polynomial layer.
            from repro.smt.terms import poly_eval, polynomial_of
            from fractions import Fraction

            def holds(f, model):
                if isinstance(f, Atom):
                    from repro.smt.terms import poly_free_vars

                    poly = polynomial_of(f.lhs)
                    complete = {
                        v: model.get(v, Fraction(0))
                        for v in poly_free_vars(poly)
                    }
                    value = poly_eval(poly, complete)
                    return {
                        Relation.LE: value <= 0,
                        Relation.LT: value < 0,
                        Relation.EQ: value == 0,
                        Relation.NE: value != 0,
                    }[f.relation]
                if isinstance(f, And):
                    return all(holds(a, model) for a in f.args)
                if isinstance(f, Or):
                    return any(holds(a, model) for a in f.args)
                if isinstance(f, Not):
                    return not holds(f.arg, model)
                return f.value

            assert holds(formula, dpll_result.model)
