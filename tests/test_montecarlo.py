"""Tests for Monte Carlo robustness validation (repro.robust.montecarlo)."""

import numpy as np
import pytest

from repro.engine import case_by_name, mode_gains
from repro.exact import RationalMatrix, solve_vector, to_fraction
from repro.lyapunov import synthesize
from repro.robust import (
    EpsilonInputs,
    epsilon_radius,
    surface_geometry,
    synthesize_robust_level,
)
from repro.robust.montecarlo import MonteCarloReport, monte_carlo_epsilon_check
from repro.systems import closed_loop_matrices


@pytest.fixture(scope="module")
def size5_setup():
    case = case_by_name("size5")
    r = case.reference()
    system = case.switched_system(r)
    mode = 0
    flow = system.modes[mode].flow
    halfspace = system.modes[mode].region.halfspaces[0]
    candidate = synthesize("lmi", case.mode_matrix(mode), backend="ipm")
    region = synthesize_robust_level(flow, halfspace, candidate.exact_p(10))
    w_eq = solve_vector(
        RationalMatrix.from_numpy(flow.a),
        [-to_fraction(x) for x in flow.b.tolist()],
    )
    _, b_cl = closed_loop_matrices(case.plant, mode_gains(mode))
    epsilon = epsilon_radius(
        EpsilonInputs(
            flow_a=flow.a, b_cl=b_cl, p=candidate.p, k=region.k_float(),
            w_eq=np.array([float(x) for x in w_eq]),
            geometry=surface_geometry(halfspace, flow),
        )
    )
    return case, r, epsilon


class TestInputValidation:
    def test_epsilon_positive(self, size5_setup):
        case, r, _ = size5_setup
        with pytest.raises(ValueError):
            monte_carlo_epsilon_check(case.switched_system, r, 0, epsilon=0.0)

    def test_fraction_range(self, size5_setup):
        case, r, eps = size5_setup
        with pytest.raises(ValueError):
            monte_carlo_epsilon_check(
                case.switched_system, r, 0, epsilon=eps, fraction=1.5
            )


class TestVerifiedRadiusHolds:
    def test_no_switching_inside_epsilon(self, size5_setup):
        """The headline check: perturbations within the verified radius
        never cause a mode switch, and the loop re-converges."""
        case, r, epsilon = size5_setup
        report = monte_carlo_epsilon_check(
            case.switched_system, r, mode=0, epsilon=epsilon,
            trials=6, t_final=25.0, seed=7,
        )
        assert isinstance(report, MonteCarloReport)
        assert report.all_switch_free, report.failures
        assert report.all_converged, report.failures
        assert report.worst_switches == 0

    def test_inflated_radius_can_fail(self, size5_setup):
        """Sanity that the check has teeth: pushing the perturbation far
        beyond the verified radius (up to the switching margin itself)
        eventually flips the mode — here, moving r0 down by more than
        the mode-0 guard margin forces a switch."""
        case, r, epsilon = size5_setup

        # Directly aim at the vulnerable direction instead of sampling:
        # lower r0 so the guard r0 - y0 < Theta flips at equilibrium.
        r_bad = r.copy()
        r_bad[0] += 2.5  # raise r0: old equilibrium has r0' - y0 > Theta
        system = case.switched_system(r_bad)
        old_eq = case.switched_system(r).modes[0].flow.equilibrium()
        from repro.systems import simulate_pwa

        trajectory = simulate_pwa(system, old_eq, t_final=5.0)
        # The old equilibrium now sits in mode 1's region: the claimed
        # "no switch" property fails for this oversized perturbation.
        assert system.mode_of(old_eq) == 1 or trajectory.n_switches > 0

    def test_report_counts_consistent(self, size5_setup):
        case, r, epsilon = size5_setup
        report = monte_carlo_epsilon_check(
            case.switched_system, r, mode=0, epsilon=epsilon,
            trials=3, t_final=20.0, seed=1,
        )
        assert report.trials == 3
        assert 0 <= report.switch_free <= 3
        assert 0 <= report.converged <= 3
        assert report.max_final_error >= 0
