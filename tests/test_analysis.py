"""Tests for structural analysis (repro.systems.analysis)."""

import numpy as np
import pytest

from repro.systems import StateSpace
from repro.systems.analysis import (
    controllability_matrix,
    is_controllable,
    is_minimal,
    is_observable,
    kalman_decomposition,
    observability_matrix,
)


def chain():
    """Controllable + observable 2-state chain."""
    return StateSpace([[-1.0, 1.0], [0.0, -2.0]], [[0.0], [1.0]], [[1.0, 0.0]])


def uncontrollable():
    """Second state disconnected from the input."""
    return StateSpace([[-1.0, 0.0], [0.0, -2.0]], [[1.0], [0.0]], [[1.0, 1.0]])


def unobservable():
    """Second state invisible at the output."""
    return StateSpace([[-1.0, 0.0], [0.0, -2.0]], [[1.0], [1.0]], [[1.0, 0.0]])


class TestMatrices:
    def test_controllability_matrix_shape_and_content(self):
        plant = chain()
        ctrb = controllability_matrix(plant)
        assert ctrb.shape == (2, 2)
        # [B, AB] = [[0, 1], [1, -2]]
        assert np.allclose(ctrb, [[0.0, 1.0], [1.0, -2.0]])

    def test_observability_matrix(self):
        plant = chain()
        obsv = observability_matrix(plant)
        assert obsv.shape == (2, 2)
        assert np.allclose(obsv, [[1.0, 0.0], [-1.0, 1.0]])

    def test_predicates(self):
        assert is_controllable(chain())
        assert is_observable(chain())
        assert is_minimal(chain())
        assert not is_controllable(uncontrollable())
        assert not is_observable(unobservable())
        assert not is_minimal(uncontrollable())
        assert not is_minimal(unobservable())


class TestKalman:
    def test_minimal_system(self):
        decomposition = kalman_decomposition(chain())
        assert decomposition.n_controllable == 2
        assert decomposition.n_observable == 2
        assert decomposition.minimal_order == 2

    def test_uncontrollable_system(self):
        decomposition = kalman_decomposition(uncontrollable())
        assert decomposition.n_controllable == 1
        assert decomposition.minimal_order == 1

    def test_unobservable_system(self):
        decomposition = kalman_decomposition(unobservable())
        assert decomposition.n_observable == 1
        assert decomposition.minimal_order == 1

    def test_transform_is_orthonormal(self):
        decomposition = kalman_decomposition(chain())
        t = decomposition.transform
        assert np.allclose(t.T @ t, np.eye(2), atol=1e-10)

    def test_engine_is_minimal_pbh(self):
        """The synthetic engine must be a minimal realization: every
        state participates in the I/O behaviour (else balanced
        truncation orders would be misleading). PBH is the robust test
        for this stiff model."""
        from repro.engine import build_engine_plant
        from repro.systems import (
            pbh_uncontrollable_eigenvalues,
            pbh_unobservable_eigenvalues,
        )

        plant = build_engine_plant()
        assert pbh_uncontrollable_eigenvalues(plant) == []
        assert pbh_unobservable_eigenvalues(plant) == []
        assert is_minimal(plant)

    def test_engine_kalman_gramian_subspaces(self):
        """Gramian-based Kalman analysis: the weakest directions sit
        many orders below the dominant ones (the Hankel tail), so the
        *strong* minimal order at a loose tolerance is what balanced
        truncation actually keeps."""
        from repro.engine import build_engine_plant

        plant = build_engine_plant()
        strict = kalman_decomposition(plant, tol=1e-14)
        assert strict.minimal_order == 18
        loose = kalman_decomposition(plant, tol=1e-4)
        assert loose.minimal_order < 18

    def test_reduced_models_stay_minimal(self):
        from repro.engine import case_by_name

        for name in ("size3", "size5", "size10"):
            plant = case_by_name(name).plant
            assert is_minimal(plant, tol=1e-8), name

    def test_block_diagonal_disconnected(self):
        # Two disconnected SISO systems, output sees only the first:
        # minimal order 1 (second block neither observable... still
        # controllable, but not observable).
        plant = StateSpace(
            np.diag([-1.0, -2.0]),
            np.array([[1.0], [1.0]]),
            np.array([[1.0, 0.0]]),
        )
        decomposition = kalman_decomposition(plant)
        assert decomposition.minimal_order == 1
