"""Tests for region stability certificates (repro.robust.region_stability)."""

import numpy as np
import pytest

from repro.engine import case_by_name
from repro.lyapunov import synthesize
from repro.robust import certify_region_stability
from repro.systems import simulate_affine


@pytest.fixture(scope="module")
def mode0():
    case = case_by_name("size5")
    system = case.switched_system(case.reference())
    a = case.mode_matrix(0)
    return system.modes[0].flow, a, synthesize("lmi-alpha", a)


class TestCertificate:
    def test_time_bound_formula(self, mode0):
        _flow, a, candidate = mode0
        certificate = certify_region_stability(candidate, a, 100.0, 1.0)
        assert certificate.time_bound == pytest.approx(
            np.log(100.0) / certificate.alpha
        )
        assert certificate.alpha > 0

    def test_entered_by(self, mode0):
        _flow, a, candidate = mode0
        certificate = certify_region_stability(candidate, a, 100.0, 1.0)
        assert not certificate.entered_by(100.0, 0.0)
        assert certificate.entered_by(100.0, certificate.time_bound * 1.001)

    def test_validation(self, mode0):
        _flow, a, candidate = mode0
        with pytest.raises(ValueError):
            certify_region_stability(candidate, a, 1.0, 1.0)
        with pytest.raises(ValueError):
            certify_region_stability(candidate, a, 1.0, 2.0)

    def test_simulation_respects_time_bound(self, mode0):
        """Eventually-always, checked dynamically: the trajectory's V
        enters the inner sublevel set no later than the certificate's
        bound and never leaves it afterwards."""
        flow, a, candidate = mode0
        w_eq = flow.equilibrium()
        rng = np.random.default_rng(9)
        direction = rng.normal(size=len(w_eq))
        v0_target = 50.0
        scale = np.sqrt(v0_target / (direction @ candidate.p @ direction))
        w0 = w_eq + scale * direction
        v0 = candidate.value(w0, center=w_eq)
        assert v0 == pytest.approx(v0_target, rel=1e-9)
        certificate = certify_region_stability(candidate, a, v0_target, 0.5)
        trajectory = simulate_affine(flow, w0, t_final=certificate.time_bound * 1.5)
        entered = None
        for t, state in zip(trajectory.times, trajectory.states):
            value = candidate.value(state, center=w_eq)
            if entered is None and value <= 0.5:
                entered = t
            if entered is not None:
                assert value <= 0.5 * (1 + 1e-6), "left the inner region"
        assert entered is not None
        assert entered <= certificate.time_bound
