"""Tests for zonotope reachability (repro.reach)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reach import Zonotope, compute_flowpipe, verify_invariance
from repro.systems import AffineSystem, HalfSpace, simulate_affine

finite = st.floats(-5.0, 5.0, allow_nan=False)


class TestZonotope:
    def test_from_box(self):
        z = Zonotope.from_box([0.0, -1.0], [2.0, 1.0])
        lower, upper = z.interval_hull()
        assert np.allclose(lower, [0.0, -1.0])
        assert np.allclose(upper, [2.0, 1.0])

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            Zonotope.from_box([1.0], [0.0])

    def test_point(self):
        z = Zonotope.point([1.0, 2.0])
        assert z.n_generators == 0
        assert z.contains_point([1.0, 2.0])
        assert not z.contains_point([1.0, 2.5])

    def test_ball_inf(self):
        z = Zonotope.ball_inf([0.0, 0.0], 2.0)
        assert z.contains_point([2.0, -2.0])
        assert not z.contains_point([2.1, 0.0])

    def test_linear_map(self):
        z = Zonotope.from_box([-1.0, -1.0], [1.0, 1.0])
        rotated = z.linear_map(np.array([[0.0, -1.0], [1.0, 0.0]]))
        assert rotated.contains_point([1.0, 1.0])
        assert rotated.support(np.array([1.0, 0.0])) == pytest.approx(1.0)

    def test_minkowski_sum(self):
        a = Zonotope.ball_inf([0.0], 1.0)
        b = Zonotope.ball_inf([3.0], 0.5)
        s = a.minkowski_sum(b)
        lower, upper = s.interval_hull()
        assert lower[0] == pytest.approx(1.5)
        assert upper[0] == pytest.approx(4.5)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Zonotope.ball_inf([0.0], 1.0).minkowski_sum(
                Zonotope.ball_inf([0.0, 0.0], 1.0)
            )
        with pytest.raises(ValueError):
            Zonotope([0.0, 0.0], np.ones((1, 2)))

    def test_support_matches_hull(self):
        z = Zonotope(
            np.array([1.0, -2.0]),
            np.array([[1.0, 0.5], [0.0, 2.0]]),
        )
        lower, upper = z.interval_hull()
        assert z.support(np.array([1.0, 0.0])) == pytest.approx(upper[0])
        assert -z.support(np.array([-1.0, 0.0])) == pytest.approx(lower[0])

    @settings(max_examples=40)
    @given(st.lists(finite, min_size=2, max_size=2), st.floats(0.1, 3.0))
    def test_scale_support_homogeneous(self, center, factor):
        z = Zonotope.ball_inf(np.array(center), 1.0)
        direction = np.array([1.0, -2.0])
        assert z.scale(factor).support(direction) == pytest.approx(
            factor * z.support(direction * np.sign(factor)), rel=1e-9
        )

    def test_reduce_order_is_outer(self):
        rng = np.random.default_rng(5)
        z = Zonotope(np.zeros(2), rng.normal(size=(2, 12)))
        reduced = z.reduce_order(5)
        assert reduced.n_generators <= 7  # kept + 2 box generators
        for _ in range(30):
            direction = rng.normal(size=2)
            assert reduced.support(direction) >= z.support(direction) - 1e-9

    def test_reduce_order_noop_when_small(self):
        z = Zonotope.ball_inf([0.0, 0.0], 1.0)
        assert z.reduce_order(10) is z

    def test_contains_point_lp(self):
        z = Zonotope(np.zeros(2), np.array([[1.0, 1.0], [1.0, -1.0]]))
        assert z.contains_point([2.0, 0.0])  # b = (1, 1)
        assert not z.contains_point([2.0, 1.0])


class TestFlowpipe:
    def test_covers_simulated_trajectories(self):
        """Soundness: sampled trajectories stay inside the pipe's hull."""
        system = AffineSystem([[-1.0, 2.0], [-2.0, -1.0]], [0.5, -0.3])
        initial = Zonotope.ball_inf([2.0, 1.0], 0.2)
        pipe = compute_flowpipe(system, initial, horizon=1.5, dt=0.02)
        lower, upper = pipe.interval_hull()
        rng = np.random.default_rng(0)
        for _ in range(5):
            w0 = initial.center + rng.uniform(-0.2, 0.2, size=2)
            trajectory = simulate_affine(system, w0, t_final=1.5)
            assert (trajectory.states >= lower - 1e-6).all()
            assert (trajectory.states <= upper + 1e-6).all()

    def test_segment_count(self):
        system = AffineSystem([[-1.0]], [0.0])
        pipe = compute_flowpipe(
            system, Zonotope.point([1.0]), horizon=1.0, dt=0.1
        )
        assert len(pipe) == 10
        assert pipe.horizon == pytest.approx(1.0)

    def test_validation(self):
        system = AffineSystem([[-1.0]], [0.0])
        with pytest.raises(ValueError):
            compute_flowpipe(system, Zonotope.point([1.0]), horizon=0.0)
        with pytest.raises(ValueError):
            compute_flowpipe(system, Zonotope.point([1.0]), horizon=1.0, dt=-0.1)
        with pytest.raises(ValueError):
            compute_flowpipe(system, Zonotope.point([1.0, 2.0]), horizon=1.0)

    def test_contracting_system_shrinks(self):
        system = AffineSystem([[-2.0, 0.0], [0.0, -2.0]], [0.0, 0.0])
        initial = Zonotope.ball_inf([1.0, 1.0], 0.1)
        pipe = compute_flowpipe(system, initial, horizon=3.0, dt=0.05)
        early = pipe.segments[1].support(np.array([1.0, 0.0]))
        late = pipe.segments[-1].support(np.array([1.0, 0.0]))
        assert late < early


class TestVerifyInvariance:
    def test_invariant_region_confirmed(self):
        # Flow to the origin; region x >= -1; start near the origin.
        system = AffineSystem([[-1.0, 0.0], [0.0, -1.0]], [0.0, 0.0])
        initial = Zonotope.ball_inf([0.0, 0.0], 0.3)
        assert verify_invariance(
            system, initial, HalfSpace((1, 0), 1), horizon=5.0, dt=0.02
        )

    def test_violation_detected(self):
        # Flow pushes left beyond the region boundary.
        system = AffineSystem([[-1.0, 0.0], [0.0, -1.0]], [-5.0, 0.0])
        initial = Zonotope.ball_inf([0.0, 0.0], 0.1)
        assert not verify_invariance(
            system, initial, HalfSpace((1, 0), 1), horizon=5.0, dt=0.02
        )

    def test_cross_check_robust_region(self):
        """Independent confirmation of a verified robust region: a
        flowpipe from a ball inside W never leaves the operating
        region."""
        from repro.engine import case_by_name
        from repro.lyapunov import synthesize
        from repro.robust import synthesize_robust_level

        case = case_by_name("size3")
        system = case.switched_system(case.reference())
        flow = system.modes[0].flow
        halfspace = system.modes[0].region.halfspaces[0]
        candidate = synthesize("lmi", case.mode_matrix(0), backend="ipm")
        region = synthesize_robust_level(flow, halfspace, candidate.exact_p(10))
        w_eq = flow.equilibrium()
        # Largest inf-ball inside {V <= 0.5 k}: radius sqrt(0.5 k / mu_max) / sqrt(n)
        mu_max = float(np.linalg.eigvalsh(candidate.p).max())
        radius = 0.5 * np.sqrt(0.5 * region.k_float() / mu_max)
        initial = Zonotope.ball_inf(w_eq, radius / np.sqrt(len(w_eq)))
        assert verify_invariance(flow, initial, halfspace, horizon=3.0)
