"""Tests for half-spaces and regions (repro.systems.regions)."""

from fractions import Fraction

import pytest

from repro.smt import Relation, SmtSolver, Var
from repro.systems import HalfSpace, PolyhedralRegion


class TestHalfSpace:
    def test_value_exact(self):
        h = HalfSpace((1, -2), "0.5")
        assert h.value([1, Fraction(1, 4)]) == 1 - Fraction(1, 2) + Fraction(1, 2)

    def test_contains_nonstrict(self):
        h = HalfSpace((1,), 0)
        assert h.contains([0])
        assert h.contains([1])
        assert not h.contains([-1])

    def test_contains_strict(self):
        h = HalfSpace((1,), 0, strict=True)
        assert not h.contains([0])
        assert h.contains([Fraction(1, 10**12)])

    def test_complement_partitions(self):
        h = HalfSpace((1, 0), -1, strict=True)  # x > 1
        comp = h.complement()  # x <= 1
        for point in ([0, 5], [1, 0], [2, -3]):
            assert h.contains(point) != comp.contains(point)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            HalfSpace((1, 2), 0).value([1])

    def test_value_float(self):
        h = HalfSpace((2, 0), 1)
        assert h.value_float([3.0, 9.0]) == pytest.approx(7.0)

    def test_to_atom_agrees_with_contains(self):
        h = HalfSpace((1, -1), 2, strict=True)
        variables = [Var("w0"), Var("w1")]
        atom = h.to_atom(variables)
        # The atom is the membership condition; check with the SMT solver
        # at pinned points.
        for point, expected in [((0, 0), True), ((0, 3), False), ((0, 2), False)]:
            from repro.smt import And

            pin = [variables[i].eq(point[i]) for i in range(2)]
            result = SmtSolver().check(And(tuple(pin + [atom])))
            assert result.is_sat == expected
            assert h.contains(list(point)) == expected

    def test_boundary_atom(self):
        h = HalfSpace((1,), -5)
        atom = h.boundary_atom([Var("w0")])
        assert atom.relation is Relation.EQ

    def test_normal_float(self):
        assert list(HalfSpace((1, 2), 0).normal_float()) == [1.0, 2.0]


class TestPolyhedralRegion:
    def test_box_region(self):
        # 0 <= x <= 1
        region = PolyhedralRegion(
            [HalfSpace((1,), 0), HalfSpace((-1,), 1)]
        )
        assert region.contains([0])
        assert region.contains([1])
        assert region.contains([Fraction(1, 2)])
        assert not region.contains([2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PolyhedralRegion([])

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError):
            PolyhedralRegion([HalfSpace((1,), 0), HalfSpace((1, 2), 0)])

    def test_margin(self):
        region = PolyhedralRegion([HalfSpace((1,), 0), HalfSpace((-1,), 1)])
        assert region.margin([0.25]) == pytest.approx(0.25)
        assert region.margin([2.0]) == pytest.approx(-1.0)

    def test_to_atoms(self):
        region = PolyhedralRegion([HalfSpace((1, 0), 0, strict=True)])
        atoms = region.to_atoms([Var("a"), Var("b")])
        assert len(atoms) == 1
        assert atoms[0].relation is Relation.LT
