"""Tests for PI controllers and the closed-loop reformulation."""

import numpy as np
import pytest

from repro.systems import (
    OutputGuard,
    PIGains,
    StateSpace,
    SwitchedPIController,
    build_closed_loop,
    closed_loop_matrices,
    fixed_mode_closed_loop,
    lift_guard,
)


def siso_plant():
    # x' = -x + u, y = x.
    return StateSpace([[-1.0]], [[1.0]], [[1.0]])


def siso_gains(kp=2.0, ki=3.0):
    return PIGains([[kp]], [[ki]])


def two_mode_controller():
    """Mode 0 active when y >= 1 (non-strict), mode 1 when y < 1."""
    guard0 = OutputGuard(g=[1.0], f=[0.0], h=-1.0)  # y - 1 >= 0
    guard1 = OutputGuard(g=[-1.0], f=[0.0], h=1.0, strict=True)  # 1 - y > 0
    return SwitchedPIController(
        gains=[siso_gains(2.0, 3.0), siso_gains(1.0, 5.0)],
        guards=[[guard0], [guard1]],
    )


class TestPIGains:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            PIGains(np.ones((2, 3)), np.ones((3, 2)))

    def test_dimensions(self):
        gains = PIGains(np.ones((3, 4)), np.zeros((3, 4)))
        assert gains.n_inputs == 3
        assert gains.n_outputs == 4


class TestSwitchedController:
    def test_mode_selection(self):
        controller = two_mode_controller()
        assert controller.mode_of([2.0], [0.0]) == 0
        assert controller.mode_of([0.5], [0.0]) == 1
        assert controller.mode_of([1.0], [0.0]) == 0  # boundary is mode 0

    def test_guard_with_reference(self):
        # Case-study-style guard: y0 - r0 + Theta > 0.
        guard = OutputGuard(g=[1.0], f=[-1.0], h=1.0, strict=True)
        assert guard.holds(np.array([5.0]), np.array([5.5]))
        assert not guard.holds(np.array([3.0]), np.array([5.0]))

    def test_no_cover_raises(self):
        guard = OutputGuard(g=[1.0], f=[0.0], h=0.0)
        controller = SwitchedPIController([siso_gains()], [[guard]])
        with pytest.raises(ValueError):
            controller.mode_of([-1.0], [0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchedPIController([], [])
        with pytest.raises(ValueError):
            SwitchedPIController([siso_gains()], [[], []])
        with pytest.raises(ValueError):
            SwitchedPIController(
                [siso_gains(), PIGains(np.ones((2, 2)), np.ones((2, 2)))],
                [[], []],
            )


class TestClosedLoopMatrices:
    def test_known_siso(self):
        """Hand-computed 2x2 closed loop for the SISO plant."""
        plant = siso_plant()
        gains = siso_gains(kp=2.0, ki=3.0)
        a_cl, b_cl = closed_loop_matrices(plant, gains)
        # N = -kp*c*a - ki*c = -2*1*(-1) - 3*1 = -1; M = -kp*c*b = -2.
        assert np.allclose(a_cl, [[-1.0, 1.0], [-1.0, -2.0]])
        assert np.allclose(b_cl, [[0.0], [3.0]])

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            closed_loop_matrices(siso_plant(), PIGains(np.ones((1, 2)), np.ones((1, 2))))
        with pytest.raises(ValueError):
            closed_loop_matrices(siso_plant(), PIGains(np.ones((2, 1)), np.ones((2, 1))))

    def test_equilibrium_tracks_reference(self):
        """The closed-loop equilibrium must put y = r (integral action)."""
        plant = siso_plant()
        flow = fixed_mode_closed_loop(plant, siso_gains(), r=np.array([2.5]))
        w_eq = flow.equilibrium()
        y_eq = plant.c @ w_eq[: plant.n_states]
        assert y_eq == pytest.approx([2.5])

    def test_closed_loop_is_stable_for_good_gains(self):
        flow = fixed_mode_closed_loop(siso_plant(), siso_gains(), r=np.array([1.0]))
        assert flow.is_stable()

    def test_derivative_matches_component_equations(self):
        """w' from the block matrix equals the direct PI derivation (Eq. 21)."""
        plant = siso_plant()
        gains = siso_gains()
        flow = fixed_mode_closed_loop(plant, gains, r=np.array([1.0]))
        w = np.array([0.3, -0.7])
        x, u = w[:1], w[1:]
        x_dot = plant.a @ x + plant.b @ u
        y = plant.c @ x
        y_dot = plant.c @ x_dot
        u_dot = -gains.kp @ y_dot + gains.ki @ (np.array([1.0]) - y)
        assert flow.derivative(w) == pytest.approx(
            np.concatenate([x_dot, u_dot])
        )


class TestLiftGuardAndBuild:
    def test_lift_guard(self):
        plant = siso_plant()
        guard = OutputGuard(g=[2.0], f=[-1.0], h=0.5, strict=True)
        halfspace = lift_guard(plant, guard, r=np.array([3.0]))
        # normal = (C^T g, 0) = (2, 0); offset = -3 + 0.5.
        assert list(halfspace.normal_float()) == [2.0, 0.0]
        assert float(halfspace.offset) == -2.5
        assert halfspace.strict

    def test_build_closed_loop_structure(self):
        system = build_closed_loop(
            siso_plant(), two_mode_controller(), r=np.array([0.0])
        )
        assert system.n_modes == 2
        assert system.dimension == 2
        # Regions partition: every sampled point belongs to exactly one.
        rng = np.random.default_rng(1)
        for point in rng.normal(size=(100, 2)):
            memberships = [
                mode.region.contains(list(point)) for mode in system.modes
            ]
            assert sum(memberships) == 1

    def test_build_validates_dimensions(self):
        wrong = SwitchedPIController(
            [PIGains(np.ones((1, 2)), np.ones((1, 2)))],
            [[OutputGuard(g=[1.0, 0.0], f=[0.0, 0.0], h=0.0)]],
        )
        with pytest.raises(ValueError):
            build_closed_loop(siso_plant(), wrong, r=np.zeros(2))

    def test_mode_flows_differ(self):
        system = build_closed_loop(
            siso_plant(), two_mode_controller(), r=np.array([0.0])
        )
        a0 = system.modes[0].flow.a
        a1 = system.modes[1].flow.a
        assert not np.allclose(a0, a1)
