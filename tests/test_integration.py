"""Cross-module integration tests: the full verification pipeline.

These tests exercise the pipeline end to end the way the paper does —
model → reduction → closed loop → synthesis → exact validation → robust
region — and cross-check the *semantic* consistency between layers
(e.g. a validated Lyapunov function must actually decrease along
simulated trajectories; ICP verdicts must agree with exact linear
algebra)."""

from fractions import Fraction

import numpy as np
import pytest

import repro
from repro.engine import case_by_name
from repro.exact import RationalMatrix, is_hurwitz_matrix
from repro.robust import certify_mode, synthesize_robust_level
from repro.validate import validate_candidate


class TestPipelineEndToEnd:
    def test_small_case_full_chain(self):
        """size3i: synthesis, validation, exact Hurwitz proof, robust
        region, certificate — everything must agree."""
        case = case_by_name("size3i")
        system = case.switched_system(case.reference())
        for mode in (0, 1):
            a = case.mode_matrix(mode)
            # exact stability proof of the mode matrix itself
            assert is_hurwitz_matrix(RationalMatrix.from_numpy(a))
            candidate = repro.synthesize("lmi", a, backend="shift")
            report = validate_candidate(candidate, a)
            assert report.valid is True
            flow = system.modes[mode].flow
            halfspace = system.modes[mode].region.halfspaces[0]
            certificate = certify_mode(flow, halfspace, candidate.exact_p(10))
            assert certificate.verify()

    def test_lyapunov_decreases_along_simulation(self):
        """The validated V must decrease along an actual trajectory."""
        case = case_by_name("size5")
        system = case.switched_system(case.reference())
        flow = system.modes[0].flow
        a = case.mode_matrix(0)
        candidate = repro.synthesize("eq-num", a)
        assert validate_candidate(candidate, a).valid
        w_eq = flow.equilibrium()
        rng = np.random.default_rng(3)
        w0 = w_eq + rng.normal(scale=0.1, size=len(w_eq))
        trajectory = repro.simulate_affine(flow, w0, t_final=5.0)
        values = [
            candidate.value(state, center=w_eq) for state in trajectory.states
        ]
        # Monotone decrease up to integrator noise.
        diffs = np.diff(values)
        assert values[-1] < values[0] * 1e-3
        assert (diffs <= 1e-9 * max(values)).all()

    def test_reduced_models_inherit_stability_story(self):
        """Every reduction level yields the same verdict pattern."""
        for name in ("size3", "size5", "size10", "size15"):
            case = case_by_name(name)
            for mode in (0, 1):
                a = case.mode_matrix(mode)
                candidate = repro.synthesize("modal", a)
                assert validate_candidate(candidate, a).valid is True

    def test_robust_region_blocks_switching_exactly(self):
        """Exact semantics of the robust level: the sublevel set at the
        synthesized k contains no surface point with outward flow, and
        slightly above k such a point exists (checked via the exact
        minimizer)."""
        case = case_by_name("size5")
        system = case.switched_system(case.reference())
        flow = system.modes[0].flow
        halfspace = system.modes[0].region.halfspaces[0]
        candidate = repro.synthesize("lmi-alpha", case.mode_matrix(0))
        p_exact = candidate.exact_p(10)
        region = synthesize_robust_level(flow, halfspace, p_exact)
        assert region.bounded
        minimizer = region.minimizer
        # The minimizer witnesses tightness: on the surface, not inward.
        geometry = region.geometry
        on_surface = (
            sum(g * x for g, x in zip(geometry.normal, minimizer))
            + geometry.offset
        )
        assert on_surface == 0
        assert geometry.inward_derivative(minimizer) <= 0
        # And its V-value equals k exactly (about the *exact* equilibrium,
        # the same one the synthesis used).
        from repro.exact import solve_vector, to_fraction

        w_eq_exact = solve_vector(
            RationalMatrix.from_numpy(flow.a),
            [-to_fraction(x) for x in flow.b.tolist()],
        )
        shifted = [m - e for m, e in zip(minimizer, w_eq_exact)]
        assert p_exact.quadratic_form(shifted) == region.k

    def test_icp_agrees_with_exact_validators_on_grid(self):
        """Every validator family must give identical verdicts on a mix
        of valid and broken candidates."""
        case = case_by_name("size3")
        a = case.mode_matrix(0)
        good = repro.synthesize("eq-num", a)
        bad = repro.LyapunovCandidate(-good.p, method="negated")
        for candidate, expected in ((good, True), (bad, False)):
            for validator in ("sylvester", "gauss", "ldl", "sympy", "icp"):
                report = validate_candidate(candidate, a, validator=validator)
                assert report.valid is expected, (validator, expected)

    def test_switched_simulation_respects_verified_regions(self):
        """Trajectories from inside a certified robust region never
        switch; this is the headline semantic link between the symbolic
        and the dynamic sides."""
        case = case_by_name("size3")
        system = case.switched_system(case.reference())
        flow = system.modes[0].flow
        halfspace = system.modes[0].region.halfspaces[0]
        candidate = repro.synthesize("lmi", case.mode_matrix(0), backend="ipm")
        p_exact = candidate.exact_p(10)
        region = synthesize_robust_level(flow, halfspace, p_exact)
        k = region.k_float()
        w_eq = flow.equilibrium()
        p = candidate.p
        rng = np.random.default_rng(11)
        for _ in range(3):
            direction = rng.normal(size=len(w_eq))
            scale = np.sqrt(direction @ p @ direction)
            w0 = w_eq + direction * (0.85 * np.sqrt(k) / scale)
            trajectory = repro.simulate_pwa(system, w0, t_final=25.0)
            assert trajectory.n_switches == 0
            assert np.linalg.norm(trajectory.final_state - w_eq) < 1e-3


class TestNumericExactBridge:
    def test_exact_p_roundtrip_preserves_validation(self):
        case = case_by_name("size5")
        a = case.mode_matrix(1)
        candidate = repro.synthesize("lmi-alpha+", a, backend="ipm")
        # Raw binary floats (sigfigs=None) validate too: the synthesis
        # margin dominates the encoding error.
        report = validate_candidate(candidate, a, sigfigs=None)
        assert report.valid is True

    def test_mode_matrices_match_affine_flows(self):
        case = case_by_name("size10")
        r = case.reference()
        system = case.switched_system(r)
        for mode in (0, 1):
            assert np.allclose(
                case.mode_matrix(mode), system.modes[mode].flow.a
            )

    def test_equilibrium_consistency_numeric_vs_exact(self):
        from repro.exact import solve_vector, to_fraction

        case = case_by_name("size5")
        system = case.switched_system(case.reference())
        flow = system.modes[0].flow
        numeric = flow.equilibrium()
        exact = solve_vector(
            RationalMatrix.from_numpy(flow.a),
            [-to_fraction(x) for x in flow.b.tolist()],
        )
        assert np.allclose(numeric, [float(x) for x in exact], atol=1e-9)
