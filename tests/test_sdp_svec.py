"""Tests for symmetric vectorization (repro.sdp.svec)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdp import basis_matrix, smat, svec, svec_basis, svec_dim


def random_symmetric(n, seed):
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(n, n))
    return 0.5 * (g + g.T)


class TestSvec:
    @pytest.mark.parametrize("n, expected", [(1, 1), (2, 3), (4, 10), (21, 231)])
    def test_dim(self, n, expected):
        assert svec_dim(n) == expected

    @settings(max_examples=25)
    @given(st.integers(1, 6), st.integers(0, 10_000))
    def test_roundtrip(self, n, seed):
        m = random_symmetric(n, seed)
        assert np.allclose(smat(svec(m), n), m)

    @settings(max_examples=25)
    @given(st.integers(1, 6), st.integers(0, 10_000), st.integers(0, 10_000))
    def test_inner_product_preserved(self, n, s1, s2):
        a = random_symmetric(n, s1)
        b = random_symmetric(n, s2)
        assert np.trace(a @ b) == pytest.approx(svec(a) @ svec(b), rel=1e-10)

    def test_basis_is_orthonormal(self):
        n = 4
        basis = svec_basis(n)
        assert len(basis) == svec_dim(n)
        for i, e1 in enumerate(basis):
            for j, e2 in enumerate(basis):
                assert np.trace(e1 @ e2) == pytest.approx(float(i == j), abs=1e-12)

    def test_basis_matrix_maps_vec_to_svec(self):
        n = 3
        b = basis_matrix(n)
        m = random_symmetric(n, 7)
        assert np.allclose(b @ m.flatten(order="F"), svec(m))

    def test_basis_matrix_rows_orthonormal(self):
        b = basis_matrix(5)
        assert np.allclose(b @ b.T, np.eye(svec_dim(5)))

    @settings(max_examples=10)
    @given(st.integers(1, 5), st.integers(0, 1000))
    def test_svec_of_basis_is_unit(self, n, seed):
        basis = svec_basis(n)
        k = seed % len(basis)
        unit = np.zeros(len(basis))
        unit[k] = 1.0
        assert np.allclose(svec(basis[k]), unit)
