"""Tests for the crash-safe result journal (repro.runner.journal).

Property-based coverage of the tagged encoding (exact round-trip),
fingerprint stability (including across processes), and the torn-line
tolerance that makes mid-write crashes recoverable.
"""

import json
import subprocess
import sys
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.records import Figure3Record, Table1Record
from repro.runner import (
    JOURNAL_SALT,
    Journal,
    Task,
    task_fingerprint,
)
from repro.runner.journal import decode_value, encode_value


class SpecTask(Task):
    """A task whose fingerprint spec is exactly its constructor kwargs."""

    def __init__(self, **spec):
        for key, value in spec.items():
            setattr(self, key, value)

    def run(self):  # pragma: no cover - never executed here
        return None


# ----------------------------------------------------------------------
# Strategies: the closed set of payload types runner results are made of
# ----------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.floats(allow_nan=False),  # inf is fine: json round-trips it
    st.text(max_size=20),
    st.fractions(),
)


def payloads(depth=3):
    if depth == 0:
        return scalars
    inner = payloads(depth - 1)
    return st.one_of(
        scalars,
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
        st.dictionaries(
            st.tuples(st.text(max_size=4), st.integers()), inner, max_size=3
        ),
    )


class TestEncoding:
    @settings(max_examples=150)
    @given(payloads())
    def test_round_trip_exact(self, value):
        encoded = encode_value(value)
        # The encoding must actually be JSON-serializable...
        wire = json.dumps(encoded)
        # ...and decode back to an equal value of the same shape.
        decoded = decode_value(json.loads(wire))
        assert decoded == value
        assert type(decoded) is type(value)

    @settings(max_examples=50)
    @given(st.fractions())
    def test_fraction_exactness(self, value):
        decoded = decode_value(json.loads(json.dumps(encode_value(value))))
        assert isinstance(decoded, Fraction)
        assert decoded == value

    def test_numpy_array_round_trip(self):
        array = np.array([[1.5, -2.25], [0.1, 3e-300]])
        decoded = decode_value(json.loads(json.dumps(encode_value(array))))
        assert decoded.dtype == array.dtype
        assert np.array_equal(decoded, array)

    def test_record_dataclass_round_trip(self):
        record = Table1Record(
            case="size3", size=3, mode=0, method="lmi", backend="ipm",
            synth_time=0.125, synth_status="ok", valid=True,
            validation_time=0.5, sigfigs=10,
            degraded=[{"stage": "positivity", "kind": "kernel-backend"}],
        )
        decoded = decode_value(json.loads(json.dumps(encode_value(record))))
        assert decoded == record
        assert isinstance(decoded, Table1Record)

    def test_tuple_of_records_round_trip(self):
        # Table1Task results are (record, candidate-or-None) tuples.
        record = Figure3Record(
            case="size3", size=3, mode=1, method="eq-num", backend=None,
            validator="sylvester", valid=True, time=0.25,
        )
        value = (record, None)
        decoded = decode_value(json.loads(json.dumps(encode_value(value))))
        assert decoded == value
        assert isinstance(decoded, tuple)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

spec_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(max_size=10),
    st.none(),
    st.booleans(),
    st.fractions(),
)
spec_dicts = st.dictionaries(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll",)),
        min_size=1, max_size=8,
    ),
    spec_values,
    min_size=1,
    max_size=5,
)


class TestFingerprints:
    @settings(max_examples=100)
    @given(spec_dicts)
    def test_same_spec_same_fingerprint(self, spec):
        assert task_fingerprint(SpecTask(**spec)) == task_fingerprint(
            SpecTask(**spec)
        )

    @settings(max_examples=100)
    @given(spec_dicts, spec_values)
    def test_any_field_change_changes_fingerprint(self, spec, new_value):
        base = task_fingerprint(SpecTask(**spec))
        for key in spec:
            if spec[key] == new_value:
                continue
            changed = dict(spec, **{key: new_value})
            assert task_fingerprint(SpecTask(**changed)) != base

    def test_extra_field_changes_fingerprint(self):
        assert task_fingerprint(SpecTask(a=1)) != task_fingerprint(
            SpecTask(a=1, b=None)
        )

    def test_kind_participates(self):
        class OtherTask(SpecTask):
            pass

        assert task_fingerprint(SpecTask(a=1)) != task_fingerprint(
            OtherTask(a=1)
        )

    def test_stable_across_processes(self):
        """No hash() randomization: a fresh interpreter (fresh
        PYTHONHASHSEED) derives the identical digest."""
        spec = {"case": "size10i", "mode": 1, "sigfigs": 6}
        local = task_fingerprint(SpecTask(**spec))
        code = (
            "import json, sys; sys.path.insert(0, 'src')\n"
            "from tests.test_journal import SpecTask\n"
            "from repro.runner import task_fingerprint\n"
            f"print(task_fingerprint(SpecTask(**{spec!r})))"
        )
        for seed in ("0", "1", "random"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src:."},
            )
            assert out.stdout.strip() == local

    def test_salt_is_versioned(self):
        assert JOURNAL_SALT.rsplit("/", 1)[-1].isdigit()


# ----------------------------------------------------------------------
# Durability / torn lines
# ----------------------------------------------------------------------

class TestJournalFile:
    def test_record_and_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", {"x": Fraction(1, 3)})
            journal.record("fp2", "Echo", "error", None,
                           attempts=3, error={"exc": "boom"})
        with Journal(path, resume=True) as journal:
            assert len(journal) == 2
            assert journal.get("fp1").result == {"x": Fraction(1, 3)}
            entry = journal.get("fp2")
            assert entry.status == "error"
            assert entry.attempts == 3
            assert entry.error == {"exc": "boom"}

    def test_truncate_without_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", 1)
        with Journal(path, resume=False) as journal:
            assert len(journal) == 0
        with Journal(path, resume=True) as journal:
            assert len(journal) == 0

    def test_last_write_wins_on_duplicates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", "old")
            journal.record("fp1", "Echo", "ok", "new")
        with Journal(path, resume=True) as journal:
            assert journal.get("fp1").result == "new"

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=80))
    def test_torn_trailing_line_tolerated(self, tmp_path_factory, cut):
        """A crash mid-write leaves a truncated last line: every intact
        entry still replays, the torn one is simply missing."""
        path = tmp_path_factory.mktemp("journal") / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", [1, 2, 3])
            journal.record("fp2", "Echo", "ok", {"deep": (1, Fraction(2, 7))})
        data = path.read_bytes()
        assert data.endswith(b"\n")
        torn = data + data.splitlines(keepends=True)[-1][:cut].rstrip(b"\n")
        path.write_bytes(torn)
        with Journal(path, resume=True) as journal:
            assert len(journal) == 2
            assert "fp1" in journal and "fp2" in journal

    def test_corrupt_interior_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", 1)
        raw = path.read_bytes()
        path.write_bytes(b'{"not": "an entry"}\n' + b"garbage{{{\n" + raw)
        with Journal(path, resume=True) as journal:
            assert len(journal) == 1
            assert journal.get("fp1").result == 1

    def test_record_corrupt_writes_torn_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", 1)
            journal.record_corrupt("fp2", "Echo")
        with Journal(path, resume=True) as journal:
            assert "fp1" in journal
            assert "fp2" not in journal  # torn record is not replayable

    def test_append_after_torn_tail_does_not_splice(self, tmp_path):
        """Resuming over a torn trailing line must trim it: otherwise
        the first record appended afterwards merges into the garbage
        and a *good* entry is lost on the following resume."""
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", 1)
        with open(path, "ab") as handle:
            handle.write(b'{"v":1,"fp":"torn","sta')  # crash mid-write
        with Journal(path, resume=True) as journal:
            assert len(journal) == 1
            journal.record("fp2", "Echo", "ok", 2)
        with Journal(path, resume=True) as journal:
            assert len(journal) == 2
            assert journal.get("fp2").result == 2

    def test_missing_file_resume_is_empty(self, tmp_path):
        with Journal(tmp_path / "absent.jsonl", resume=True) as journal:
            assert len(journal) == 0

    def test_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("fp1", "Echo", "ok", {"nested": [1, (2, 3)]})
            journal.record("fp2", "Echo", "ok", "x")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["v"] == 1 for line in lines)


class TestRunTasksReplay:
    def test_replay_skips_completed_and_fills_gaps(self, tmp_path):
        from repro.runner import CampaignStats, run_tasks
        from tests.test_runner import EchoTask

        path = tmp_path / "j.jsonl"
        tasks = [EchoTask(i) for i in range(6)]
        with Journal(path) as journal:
            first = run_tasks(tasks[:3], journal=journal)
        assert first == [0, 1, 2]
        stats = CampaignStats()
        with Journal(path, resume=True) as journal:
            # drop one entry to create an interior gap
            fp = journal.fingerprint(tasks[1])
            del journal._entries[fp]
            results = run_tasks(tasks, journal=journal, stats=stats)
        assert results == list(range(6))
        assert stats.replayed == 2
        assert stats.executed == 4
