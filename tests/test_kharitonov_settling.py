"""Tests for Kharitonov robust stability and settling-time bounds."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exact.kharitonov import (
    interval_polynomial_is_hurwitz,
    kharitonov_polynomials,
    stability_radius_coefficients,
)
from repro.lyapunov import synthesize
from repro.lyapunov.settling import (
    SettlingBound,
    settling_bound,
    verify_decay_rate_exact,
)


class TestKharitonov:
    def test_four_corners(self):
        corners = kharitonov_polynomials([1, 1, 1], [2, 2, 2])
        assert len(corners) == 4
        for corner in corners:
            assert all(Fraction(1) <= c <= Fraction(2) for c in corner)
        # All four corner patterns are distinct for a generic box.
        assert len({tuple(c) for c in corners}) == 4

    def test_degenerate_point_interval(self):
        corners = kharitonov_polynomials([1, 3, 2], [1, 3, 2])
        assert all(corner == [1, 3, 2] for corner in corners)

    def test_stable_family(self):
        # (s+1)(s+2) = s^2 + 3s + 2 with small wiggle: stays Hurwitz.
        assert interval_polynomial_is_hurwitz(
            ["0.9", "2.7", "1.8"], ["1.1", "3.3", "2.2"]
        )

    def test_unstable_corner_detected(self):
        # Intervals permitting a sign change in a coefficient.
        assert not interval_polynomial_is_hurwitz([1, -1, 2], [1, 4, 2])

    def test_degree_drop_rejected(self):
        assert not interval_polynomial_is_hurwitz([0, 1, 1], [1, 1, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            kharitonov_polynomials([1, 2], [1])
        with pytest.raises(ValueError):
            kharitonov_polynomials([2], [1])
        with pytest.raises(ValueError):
            kharitonov_polynomials([], [])

    def test_sampled_family_members_inherit_stability(self):
        """Property: if the Kharitonov test passes, random members of
        the family are Hurwitz (numeric spot check)."""
        lower = [Fraction(9, 10), Fraction(54, 10), Fraction(99, 10), Fraction(54, 10)]
        upper = [Fraction(11, 10), Fraction(66, 10), Fraction(121, 10), Fraction(66, 10)]
        assert interval_polynomial_is_hurwitz(lower, upper)
        rng = np.random.default_rng(0)
        for _ in range(20):
            coefficients = [
                float(lo) + rng.uniform() * float(hi - lo)
                for lo, hi in zip(lower, upper)
            ]
            roots = np.roots(coefficients)
            assert roots.real.max() < 0

    def test_stability_radius(self):
        # (s+1)(s+2)(s+3): comfortably robust.
        rho = stability_radius_coefficients([1, 6, 11, 6])
        assert rho > Fraction(1, 10)
        # Perturbing beyond the radius (times a safety factor) can break:
        assert not interval_polynomial_is_hurwitz(
            [c * (1 - (rho * 2)) for c in (1, 6, 11, 6)],
            [c * (1 + (rho * 2)) for c in (1, 6, 11, 6)],
        ) or rho * 2 > 10

    def test_stability_radius_unstable_nominal(self):
        assert stability_radius_coefficients([1, -1, 1]) == 0

    def test_engine_closed_loop_coefficient_radius(self):
        """Exact robust-stability radius of the size-3 closed loop's
        characteristic polynomial."""
        from repro.engine import case_by_name
        from repro.exact import RationalMatrix, charpoly

        a = RationalMatrix.from_numpy(case_by_name("size3i").mode_matrix(0))
        coefficients = charpoly(a)
        rho = stability_radius_coefficients(coefficients)
        assert rho > 0


class TestSettlingBound:
    @pytest.fixture(scope="class")
    def mode0(self):
        from repro.engine import case_by_name

        case = case_by_name("size5")
        a = case.mode_matrix(0)
        candidate = synthesize("lmi-alpha", a)
        return a, candidate

    def test_envelope_monotone(self, mode0):
        a, candidate = mode0
        bound = settling_bound(candidate, a)
        assert bound.alpha > 0
        assert bound.condition_number >= 1
        assert bound.envelope(1.0, 0.0) >= 1.0
        assert bound.envelope(1.0, 10.0) < bound.envelope(1.0, 1.0)

    def test_settling_time_properties(self, mode0):
        a, candidate = mode0
        bound = settling_bound(candidate, a)
        t = bound.settling_time(initial_distance=1.0, radius=1e-3)
        assert t > 0
        assert bound.envelope(1.0, t) <= 1e-3 * (1 + 1e-9)
        assert bound.settling_time(0.0, 1e-3) == 0.0
        with pytest.raises(ValueError):
            bound.settling_time(1.0, 0.0)

    def test_envelope_dominates_simulation(self, mode0):
        """The certified envelope must upper-bound a real trajectory."""
        from repro.engine import case_by_name
        from repro.systems import simulate_affine

        case = case_by_name("size5")
        system = case.switched_system(case.reference())
        flow = system.modes[0].flow
        a, candidate = mode0
        bound = settling_bound(candidate, a)
        w_eq = flow.equilibrium()
        rng = np.random.default_rng(4)
        w0 = w_eq + rng.normal(scale=0.05, size=len(w_eq))
        d0 = float(np.linalg.norm(w0 - w_eq))
        trajectory = simulate_affine(flow, w0, t_final=3.0)
        for t, state in zip(trajectory.times[::25], trajectory.states[::25]):
            assert np.linalg.norm(state - w_eq) <= bound.envelope(d0, t) + 1e-9

    def test_alpha_from_pencil_when_unannotated(self, mode0):
        a, _ = mode0
        candidate = synthesize("eq-num", a)  # no alpha annotation
        bound = settling_bound(candidate, a)
        assert bound.alpha > 0

    def test_exact_decay_verification(self, mode0):
        a, candidate = mode0
        alpha = candidate.info["alpha"]
        assert verify_decay_rate_exact(candidate, a, Fraction(alpha).limit_denominator(10**6))
        # Double the rate: must fail (alpha was chosen at half the true
        # decay rate, so 2x sits exactly at the limit; 4x is surely out).
        assert not verify_decay_rate_exact(
            candidate, a, 4 * Fraction(alpha).limit_denominator(10**6)
        )

    def test_not_pd_rejected(self, mode0):
        from repro.lyapunov import LyapunovCandidate

        a, _ = mode0
        bogus = LyapunovCandidate(-np.eye(a.shape[0]), method="x")
        with pytest.raises(ValueError):
            settling_bound(bogus, a)
