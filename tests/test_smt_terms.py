"""Tests for the term/formula language (repro.smt.terms)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import RationalMatrix
from repro.smt import (
    FALSE,
    TRUE,
    And,
    Atom,
    Const,
    Not,
    Or,
    Relation,
    Var,
    affine_term,
    poly_degree,
    poly_eval,
    poly_free_vars,
    poly_is_linear,
    polynomial_of,
    quadratic_form_term,
    to_dnf,
    to_nnf,
)

x, y, z = Var("x"), Var("y"), Var("z")


class TestTermBuilding:
    def test_operators_build_terms(self):
        term = 2 * x + y - 3
        poly = polynomial_of(term)
        assert poly == {
            (("x", 1),): Fraction(2),
            (("y", 1),): Fraction(1),
            (): Fraction(-3),
        }

    def test_pow_and_mul(self):
        poly = polynomial_of((x + y) ** 2)
        assert poly == {
            (("x", 2),): 1,
            (("x", 1), ("y", 1)): 2,
            (("y", 2),): 1,
        }

    def test_neg(self):
        assert polynomial_of(-x) == {(("x", 1),): Fraction(-1)}

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            x ** (-1)

    def test_cancellation(self):
        assert polynomial_of(x - x) == {}

    def test_relational_sugar(self):
        atom = x <= 3
        assert atom.relation is Relation.LE
        assert polynomial_of(atom.lhs) == {(("x", 1),): 1, (): -3}
        atom = x > y
        assert atom.relation is Relation.LT
        # x > y  normalizes to  y - x < 0
        assert polynomial_of(atom.lhs) == {(("y", 1),): 1, (("x", 1),): -1}

    def test_eq_atom(self):
        atom = x.eq(1)
        assert atom.relation is Relation.EQ


class TestPolynomialQueries:
    def test_degree(self):
        assert poly_degree(polynomial_of(x * y * z + x)) == 3
        assert poly_degree(polynomial_of(Const(Fraction(5)))) == 0
        assert poly_degree({}) == 0

    def test_is_linear(self):
        assert poly_is_linear(polynomial_of(2 * x + 3))
        assert not poly_is_linear(polynomial_of(x * y))

    def test_free_vars(self):
        assert poly_free_vars(polynomial_of(x * y + z)) == {"x", "y", "z"}

    def test_eval(self):
        poly = polynomial_of(x**2 + 2 * y)
        assert poly_eval(poly, {"x": 3, "y": Fraction(1, 2)}) == 10

    @settings(max_examples=30)
    @given(
        st.integers(-5, 5),
        st.integers(-5, 5),
        st.integers(-3, 3),
        st.integers(-3, 3),
    )
    def test_eval_matches_python(self, a, b, vx, vy):
        term = a * x * x + b * x * y + 7
        poly = polynomial_of(term)
        assert poly_eval(poly, {"x": vx, "y": vy}) == a * vx * vx + b * vx * vy + 7


class TestBuilders:
    def test_quadratic_form_term(self):
        p = RationalMatrix([[2, 1], [1, 3]])
        term = quadratic_form_term(p, [x, y])
        poly = polynomial_of(term)
        assert poly == {(("x", 2),): 2, (("x", 1), ("y", 1)): 2, (("y", 2),): 3}

    def test_quadratic_form_with_center(self):
        p = RationalMatrix([[1]])
        term = quadratic_form_term(p, [x], center=[2])
        poly = polynomial_of(term)
        # (x-2)^2 = x^2 -4x +4
        assert poly == {(("x", 2),): 1, (("x", 1),): -4, (): 4}

    def test_quadratic_form_dimension_mismatch(self):
        with pytest.raises(ValueError):
            quadratic_form_term(RationalMatrix([[1]]), [x, y])

    def test_affine_term(self):
        poly = polynomial_of(affine_term([1, -2], [x, y], 5))
        assert poly == {(("x", 1),): 1, (("y", 1),): -2, (): 5}

    def test_affine_term_all_zero(self):
        poly = polynomial_of(affine_term([0, 0], [x, y]))
        assert poly == {}

    def test_affine_mismatch(self):
        with pytest.raises(ValueError):
            affine_term([1], [x, y])


class TestNormalForms:
    def test_nnf_pushes_negation(self):
        f = Not(And((x <= 0, y <= 0)))
        nnf = to_nnf(f)
        assert isinstance(nnf, Or)
        assert all(isinstance(a, Atom) for a in nnf.args)
        assert {a.relation for a in nnf.args} == {Relation.LT}

    def test_nnf_double_negation(self):
        f = Not(Not(x <= 0))
        assert to_nnf(f) == (x <= 0)

    def test_nnf_constants(self):
        assert to_nnf(Not(TRUE)) == FALSE

    def test_negate_atom_relations(self):
        assert (x <= 0).negate().relation is Relation.LT
        assert (x < 0).negate().relation is Relation.LE
        assert x.eq(0).negate().relation is Relation.NE
        assert x.eq(0).negate().negate().relation is Relation.EQ

    def test_dnf_distribution(self):
        f = And((Or((x <= 0, y <= 0)), z <= 0))
        disjuncts = to_dnf(f)
        assert len(disjuncts) == 2
        assert all(len(d) == 2 for d in disjuncts)

    def test_dnf_false(self):
        assert to_dnf(FALSE) == []
        assert to_dnf(And((FALSE, x <= 0))) == []

    def test_dnf_true(self):
        assert to_dnf(TRUE) == [[]]
