"""Tests for exact factorizations (repro.exact.factor)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import (
    RationalMatrix,
    bareiss_determinant,
    determinant,
    gauss_pivots,
    inverse,
    iter_leading_principal_minors,
    ldl,
    leading_principal_minors,
    rank,
    solve,
    solve_vector,
)

entries = st.integers(min_value=-20, max_value=20)
fraction_entries = st.fractions(
    min_value=-20, max_value=20, max_denominator=12
)


def square(n, elements=entries):
    return st.lists(
        st.lists(elements, min_size=n, max_size=n), min_size=n, max_size=n
    ).map(RationalMatrix)


small_square = st.integers(min_value=1, max_value=5).flatmap(square)
small_symmetric = st.integers(min_value=1, max_value=5).flatmap(
    lambda n: square(n, fraction_entries).map(RationalMatrix.symmetrize)
)


class TestDeterminant:
    def test_known(self):
        assert bareiss_determinant(RationalMatrix([[1, 2], [3, 4]])) == -2
        assert determinant(RationalMatrix([[5]])) == 5

    def test_singular(self):
        assert bareiss_determinant(RationalMatrix([[1, 2], [2, 4]])) == 0

    def test_needs_pivot_swap(self):
        m = RationalMatrix([[0, 1], [1, 0]])
        assert bareiss_determinant(m) == -1

    def test_non_square(self):
        with pytest.raises(ValueError):
            bareiss_determinant(RationalMatrix([[1, 2]]))

    @settings(max_examples=40)
    @given(small_square)
    def test_matches_numpy(self, m):
        expected = np.linalg.det(m.to_numpy())
        got = float(bareiss_determinant(m))
        assert got == pytest.approx(expected, rel=1e-6, abs=1e-6)

    @settings(max_examples=40)
    @given(square(3), square(3))
    def test_multiplicative(self, a, b):
        assert bareiss_determinant(a @ b) == bareiss_determinant(
            a
        ) * bareiss_determinant(b)


class TestLeadingPrincipalMinors:
    def test_known(self):
        m = RationalMatrix([[2, 1, 0], [1, 2, 1], [0, 1, 2]])
        assert leading_principal_minors(m) == [2, 3, 4]

    def test_single_entry(self):
        assert leading_principal_minors(RationalMatrix([[7]])) == [7]

    def test_zero_first_minor_falls_back(self):
        # Pivot-free Bareiss stalls on the zero; remaining minors must
        # still come out exact.
        m = RationalMatrix([[0, 1], [1, 0]])
        assert leading_principal_minors(m) == [0, -1]

    def test_singular_leading_block(self):
        m = RationalMatrix([[1, 1, 0], [1, 1, 1], [0, 1, 1]])
        assert leading_principal_minors(m) == [1, 0, -1]

    def test_non_square(self):
        with pytest.raises(ValueError):
            leading_principal_minors(RationalMatrix([[1, 2]]))

    def test_iterator_is_lazy(self):
        minors = iter_leading_principal_minors(
            RationalMatrix([[-1, 0], [0, 1]])
        )
        assert next(minors) == -1  # consumers may stop here

    @settings(max_examples=40)
    @given(small_square)
    def test_matches_per_k_determinants(self, m):
        assert leading_principal_minors(m) == [
            bareiss_determinant(m.leading_principal(k))
            for k in range(1, m.rows + 1)
        ]

    @settings(max_examples=40)
    @given(small_symmetric)
    def test_symmetric_rational_matches_per_k_determinants(self, m):
        # Symmetric input takes the mirrored-elimination fast path;
        # singular and indefinite matrices exercise the fallback.
        assert leading_principal_minors(m) == [
            bareiss_determinant(m.leading_principal(k))
            for k in range(1, m.rows + 1)
        ]

    @settings(max_examples=40)
    @given(small_square)
    def test_last_minor_is_determinant(self, m):
        assert leading_principal_minors(m)[-1] == bareiss_determinant(m)


class TestSolveInverse:
    def test_solve_known(self):
        a = RationalMatrix([[2, 0], [0, 4]])
        b = RationalMatrix([[1], [1]])
        assert solve(a, b) == RationalMatrix([["1/2"], ["1/4"]])

    def test_solve_vector(self):
        a = RationalMatrix([[1, 1], [0, 1]])
        assert solve_vector(a, [3, 1]) == [Fraction(2), Fraction(1)]

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            solve(RationalMatrix([[1, 1], [1, 1]]), RationalMatrix([[1], [1]]))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            solve(RationalMatrix([[1, 2]]), RationalMatrix([[1]]))

    def test_rhs_mismatch_raises(self):
        with pytest.raises(ValueError):
            solve(RationalMatrix([[1]]), RationalMatrix([[1], [2]]))

    @settings(max_examples=40)
    @given(small_square)
    def test_inverse_roundtrip(self, m):
        if bareiss_determinant(m) == 0:
            return
        assert m @ inverse(m) == RationalMatrix.identity(m.rows)

    @settings(max_examples=40)
    @given(square(3), st.lists(entries, min_size=3, max_size=3))
    def test_solve_then_multiply(self, a, rhs):
        if bareiss_determinant(a) == 0:
            return
        x = solve_vector(a, rhs)
        assert a.dot(x) == [Fraction(v) for v in rhs]


class TestRank:
    def test_full_rank(self):
        assert rank(RationalMatrix.identity(3)) == 3

    def test_deficient(self):
        assert rank(RationalMatrix([[1, 2], [2, 4]])) == 1

    def test_rectangular(self):
        assert rank(RationalMatrix([[1, 0, 0], [0, 1, 0]])) == 2

    def test_zero(self):
        assert rank(RationalMatrix.zeros(2, 2)) == 0


class TestGaussPivotsAndLDL:
    def test_pivots_positive_definite(self):
        m = RationalMatrix([[2, 1], [1, 2]])
        assert gauss_pivots(m) == [Fraction(2), Fraction(3, 2)]

    def test_pivots_zero_returns_none(self):
        assert gauss_pivots(RationalMatrix([[0, 1], [1, 0]])) is None

    def test_ldl_reconstructs(self):
        m = RationalMatrix([[4, 2, 0], [2, 5, 3], [0, 3, 6]])
        lower, diag = ldl(m)
        d = RationalMatrix.diagonal(diag)
        assert lower @ d @ lower.T == m

    def test_ldl_requires_symmetric(self):
        with pytest.raises(ValueError):
            ldl(RationalMatrix([[1, 2], [3, 4]]))

    def test_ldl_zero_pivot(self):
        assert ldl(RationalMatrix([[0, 1], [1, 0]])) is None

    @settings(max_examples=40)
    @given(square(4))
    def test_ldl_congruence_property(self, g):
        m = (g @ g.T).symmetrize()
        result = ldl(m)
        if result is None:
            return
        lower, diag = result
        assert lower @ RationalMatrix.diagonal(diag) @ lower.T == m
