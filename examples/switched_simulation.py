"""Switched closed-loop simulation: reference steps and mode switching.

Simulates the full 21-state hybrid closed loop through a scenario the
paper's introduction motivates: the supervisory system commands a new
LPC spool-speed reference, the error ``r0 - y0`` exceeds the safety
margin ``Theta``, the controller switches from the nominal LPC-speed
mode to the HPC-pressure-ratio mode, and switches back as the engine
spools up. Outputs are rendered as ASCII sparklines.

Run:  python examples/switched_simulation.py
"""

import numpy as np

import repro
from repro.engine import OUTPUT_NAMES, THETA

BARS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 72) -> str:
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    lo, hi = float(resampled.min()), float(resampled.max())
    span = (hi - lo) or 1.0
    levels = ((resampled - lo) / span * (len(BARS) - 1)).astype(int)
    return "".join(BARS[level] for level in levels)


def main() -> None:
    plant = repro.build_engine_plant()
    # Cold-start scenario: pick the LPC speed command *below* the speed
    # the pressure-ratio loop would settle at (margin -2 instead of the
    # nominal +1). The limiter mode then hands control back to the
    # nominal mode as the engine spools up, exercising the switch.
    reference = repro.nominal_reference(plant, margin=-2.0)
    system = repro.build_closed_loop(plant, repro.paper_controller(), reference)

    # Engine at rest: every output is zero, so the LPC-speed error
    # r0 - y0 = r0 exceeds Theta and the HPC-pressure-ratio controller
    # (mode 1) takes the fuel loop first.
    w0 = np.zeros(system.dimension)
    assert system.mode_of(w0) == 1
    trajectory = repro.simulate_pwa(system, w0, t_final=25.0, max_step=0.01)

    n = plant.n_states
    y = trajectory.states[:, :n] @ plant.c.T
    print(
        f"simulated {trajectory.times[-1]:.1f}s of engine time, "
        f"{len(trajectory.times)} steps, {trajectory.n_switches} mode "
        f"switch(es) at t = {[round(t, 3) for t in trajectory.switch_times]}"
    )
    print(f"switching margin Theta = {THETA}\n")
    for k, name in enumerate(OUTPUT_NAMES):
        target = reference[k]
        print(f"{name:18s} -> {target:7.3f}  |{sparkline(y[:, k])}|")
    print(f"{'active mode':18s}            |{sparkline(trajectory.modes.astype(float))}|")

    final_y = y[-1]
    print("\nfinal outputs vs reference:")
    for k, name in enumerate(OUTPUT_NAMES):
        print(
            f"  {name:20s} y = {final_y[k]:8.4f}   r = {reference[k]:8.4f}"
            f"   error = {final_y[k] - reference[k]:+.2e}"
        )
    mode_final = system.mode_of(trajectory.final_state)
    print(f"\nfinal operating mode: {mode_final} (nominal = 0)")
    assert trajectory.n_switches >= 1, "the spool-up must hand over modes"
    assert mode_final == 0
    # Mode 0 regulates y0 to r0; verify the engine got there.
    assert abs(final_y[0] - reference[0]) < 1e-2
    print("==> spool-up handover executed; reference tracked in mode 0.")


if __name__ == "__main__":
    main()
