"""Quickstart: prove stability of one operating mode of the engine loop.

Builds the 18-state turbofan plant, closes the loop with the paper's
switched PI controller, synthesizes a quadratic Lyapunov function for
operating mode 0 with the LMI method, and validates it *exactly* (the
verdict is a proof over the rationals, not a float estimate).

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    plant = repro.build_engine_plant()
    controller = repro.paper_controller()
    reference = repro.nominal_reference(plant)
    print(f"plant: {plant}")
    print(f"reference r = {[round(float(x), 3) for x in reference]}")

    switched = repro.build_closed_loop(plant, controller, reference)
    print(
        f"closed loop: {switched.dimension} state variables, "
        f"{switched.n_modes} modes"
    )

    # --- synthesize a candidate Lyapunov function for mode 0 ----------
    a0 = switched.modes[0].flow.a
    candidate = repro.synthesize("lmi-alpha", a0, backend="ipm")
    lo, hi = candidate.eigenvalue_range()
    print(
        f"\ncandidate from {candidate.label}: eigenvalues of P in "
        f"[{lo:.3g}, {hi:.3g}], synthesized in {candidate.synthesis_time:.3f}s"
    )

    # --- validate it exactly -------------------------------------------
    report = repro.validate_candidate(candidate, a0, sigfigs=10)
    print(
        f"validation (Sylvester criterion, 10 significant figures): "
        f"P > 0: {report.positivity.valid}, "
        f"dV/dt < 0: {report.decrease.valid} "
        f"[{report.total_time:.3f}s]"
    )
    assert report.valid, "mode 0 must be provably asymptotically stable"
    print("\n==> operating mode 0 is asymptotically stable (exact proof).")


if __name__ == "__main__":
    main()
