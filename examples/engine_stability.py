"""Engine case study tour: architecture, benchmark ladder, exact proofs.

Walks the paper's Section V setup — the dual-spool turbofan under a
switched PI controller (reproduced below as a block diagram) — then
sweeps the whole benchmark ladder (sizes 3..18, integer variants
included), synthesizing and exactly validating a Lyapunov function for
both operating modes of every case. For the smallest case it goes one
step further than the paper and *proves* Hurwitz stability of the
closed-loop matrix itself with an exact Routh–Hurwitz test.

Run:  python examples/engine_stability.py
"""

import numpy as np

import repro
from repro.engine import MODES, OUTPUT_NAMES
from repro.exact import RationalMatrix, is_hurwitz_matrix

DIAGRAM = r"""
                 +--------------------- UC5 engine control ---------------------+
  r0 (LPC spd) ->| PI LPC-speed  \
                 |                >- min/switch --> u0 fuel flow   -----+       |
  r1 (HPC PR)  ->| PI HPC-PR     /        (mode 0 <-> mode 1)           |       |
                 |                                                      v       |
  r2 (Mach)    ->| PI Mach-exit  ------------------> u1 nozzle --> [ ENGINE ]   |
                 |                                                  18 states   |
  r3 (HPC spd) ->| PI HPC-speed  ------------------> u2 IGV    -->  4 outputs   |
                 +------------------------^-------------------------------------+
                                          |        y = (y0, y1, y2, y3)
                                          +---------------- feedback ----------+
       switching law: mode 0 (nominal) iff r0 - y0 < Theta, Theta = 1
"""


def main() -> None:
    print(DIAGRAM)
    plant = repro.build_engine_plant()
    print("engine outputs:", ", ".join(OUTPUT_NAMES))
    gain = plant.dc_gain()
    print("DC gain (outputs x inputs):")
    for i, name in enumerate(OUTPUT_NAMES):
        row = "  ".join(f"{gain[i, j]:+.3f}" for j in range(3))
        print(f"  {name:20s} {row}")

    print("\nBenchmark ladder (balanced truncation + integer variants):")
    print(f"{'case':8s} {'dim':>4s} {'mode0 valid':>12s} {'mode1 valid':>12s}")
    for case in repro.benchmark_suite():
        verdicts = []
        for mode in MODES:
            a = case.mode_matrix(mode)
            candidate = repro.synthesize("lmi-alpha", a, backend="shift")
            report = repro.validate_candidate(candidate, a)
            verdicts.append(str(report.valid))
        print(
            f"{case.name:8s} {case.closed_loop_dimension:4d} "
            f"{verdicts[0]:>12s} {verdicts[1]:>12s}"
        )

    # Exact Hurwitz proof (beyond the paper) for the integer size-3 case.
    case = repro.case_by_name("size3i")
    a0 = RationalMatrix.from_numpy(case.mode_matrix(0))
    print(
        "\nexact Routh–Hurwitz proof, size3i mode 0 closed loop:",
        "Hurwitz" if is_hurwitz_matrix(a0) else "NOT Hurwitz",
    )

    # Spot-check the verified claim dynamically: simulate mode 0.
    r = case.reference()
    switched = case.switched_system(r)
    w_eq = switched.modes[0].flow.equilibrium()
    rng = np.random.default_rng(7)
    w0 = w_eq + rng.normal(scale=0.05, size=len(w_eq))
    trajectory = repro.simulate_pwa(switched, w0, t_final=20.0)
    err = float(np.linalg.norm(trajectory.final_state - w_eq))
    print(
        f"simulation from a perturbed equilibrium: final error {err:.2e}, "
        f"{trajectory.n_switches} mode switches"
    )


if __name__ == "__main__":
    main()
