"""Certification as a service: cache, dedup, batching, warm workers.

Certifies a small fleet of gain-scheduled PI loops (the paper's Eq.
18-22 closed-loop interconnection under a grid of gains) through one
`CertificationService`, showing each performance layer:

1. cold requests — full synthesis + exact validation per distinct spec;
2. repeat requests — served from the content-addressed certificate
   store (salted task fingerprints; identical spec = identical key);
3. a batched pass — all pending LMI candidate screens resolved through
   one compiled batched-eigh call, bit-identical to the direct path;
4. a persistent store — the cache written as a journal file another
   service instance (or a later run) reads back;
5. a warm-worker pool + asyncio front — resident workers with compiled
   tensors pre-warmed, backpressure, per-request provenance.

Run:  python examples/certification_service.py
"""

import asyncio
import pathlib
import tempfile

import repro
from repro.service import (
    AsyncCertificationService,
    CertificateStore,
    CertificationService,
    WarmPool,
)


def gain_grid():
    """A small gain-schedule sweep around the mode-0 operating point."""
    case = repro.case_by_name("size3")
    plant = case.plant
    for kp_scale in (0.8, 1.0, 1.2):
        for ki_scale in (0.9, 1.1):
            from repro.engine import mode_gains

            base = mode_gains(0)
            yield plant, base.kp * kp_scale, base.ki * ki_scale


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_path = pathlib.Path(tmp) / "certificates.jsonl"

        # -- cold + cached + batched -----------------------------------
        with CertificationService(
            store=CertificateStore(store_path), sigfigs=8
        ) as service:
            requests = [
                service.request(
                    plant.a, plant.b, plant.c, gains=(kp, ki),
                    method="lmi", backend="ipm",
                )
                for plant, kp, ki in gain_grid()
            ]
            certificates = service.certify_many(requests)
            stable = sum(1 for c in certificates if c.valid)
            print(f"[1] batched cold pass: {len(certificates)} gain pairs, "
                  f"{stable} certified stable "
                  f"(one compiled screen, {service.computations} syntheses)")

            repeat = service.certify(requests[0])
            assert repeat.identity() == certificates[0].identity()
            print(f"[2] repeat request: cache hit "
                  f"(hit rate {service.store.hit_rate:.0%}, "
                  f"computations still {service.computations})")

        # -- persistence: a fresh service reads the same store file ----
        with CertificationService(
            store=CertificateStore(store_path), sigfigs=8
        ) as revived:
            again = revived.certify(requests[0])
            assert again.identity() == certificates[0].identity()
            assert revived.computations == 0
            print(f"[3] persistent store: fresh service answered from "
                  f"disk ({revived.store.disk_hits} disk hit, "
                  f"0 recomputations)")

    # -- warm pool + asyncio front ------------------------------------
    async def pooled_fleet():
        with CertificationService(
            pool=WarmPool(jobs=2, warm_sizes=(6,)), sigfigs=8
        ) as service:
            front = AsyncCertificationService(service, max_pending=4)
            requests = [
                service.request(
                    plant.a, plant.b, plant.c, gains=(kp, ki),
                    method="lmi", backend="ipm",
                )
                for plant, kp, ki in gain_grid()
            ]
            certificates = await front.gather(requests)
            return certificates, service.counters()

    certificates, counters = asyncio.run(pooled_fleet())
    workers = {
        pid
        for c in certificates
        for pid in c.provenance["workers"]
    }
    print(f"[4] warm pool: {len(certificates)} requests over "
          f"{counters['pool']['jobs']} resident workers "
          f"(pids {sorted(workers)}), asyncio front with backpressure")

    print("\n==> fleet certified; every layer returned bit-identical "
          "certificates.")


if __name__ == "__main__":
    main()
