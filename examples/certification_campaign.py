"""A miniature certification campaign for the engine control loop.

Chains the library's independent evidence sources the way a
certification workflow would:

1. exact Lyapunov proof of mode stability, requested through the
   certification service (content-addressed: a rerun is a cache hit);
2. a machine-checkable certificate, serialized and re-verified;
3. failure injection: tolerated actuator/sensor degradation margins;
4. Monte Carlo validation of the reference-perturbation radius;
5. a zonotope flowpipe independently confirming region invariance.

Run:  python examples/certification_campaign.py
"""

import numpy as np

import repro
from repro.engine import NO_DESTABILIZING_MARGIN, fault_margin, mode_gains
from repro.exact import RationalMatrix, solve_vector, to_fraction
from repro.reach import Zonotope, verify_invariance
from repro.robust import (
    EpsilonInputs,
    StabilityCertificate,
    certify_mode,
    epsilon_radius,
    monte_carlo_epsilon_check,
    surface_geometry,
)
from repro.service import CertificationService
from repro.systems import closed_loop_matrices


def main() -> None:
    case = repro.case_by_name("size10")
    r = case.reference()
    system = case.switched_system(r)
    mode = 0
    flow = system.modes[mode].flow
    halfspace = system.modes[mode].region.halfspaces[0]
    print(f"campaign target: {case.name}, operating mode {mode}\n")

    # 1. Exact stability proof, via the certification service (the
    #    ad-hoc synthesize+validate pair it replaces lives on as the
    #    service's direct path). The repeat request demonstrates the
    #    content-addressed cache: same spec, zero recomputation.
    service = CertificationService()
    lyap = service.certify(case.mode_matrix(mode), method="lmi-alpha")
    assert lyap.valid
    service.certify(case.mode_matrix(mode), method="lmi-alpha")
    assert service.computations == 1 and service.store.memory_hits == 1
    print(f"[1] Lyapunov proof: valid ({lyap.validator}, "
          f"{lyap.synthesis_time + lyap.validation_time:.2f}s; repeat "
          f"request served from cache {lyap.fingerprint[:12]}...)")
    p_exact = RationalMatrix.from_numpy(lyap.p).symmetrize() \
        .round_sigfigs(10).symmetrize()

    # 2. Certificate round trip.
    certificate = certify_mode(
        flow, halfspace, p_exact,
        provenance={"case": case.name, "method": lyap.method},
    )
    restored = StabilityCertificate.from_json(certificate.to_json())
    assert restored.verify()
    print(f"[2] certificate: k = {float(certificate.k):.4g}, "
          f"JSON round-trip re-verified")

    # 3. Failure injection.
    print("[3] fault margins (severity in [0, 1] keeping both modes stable):")
    for kind, channel, label in (
        ("actuator-effectiveness", 0, "fuel actuator"),
        ("actuator-effectiveness", 1, "nozzle actuator"),
        ("sensor-gain", 0, "LPC speed sensor"),
        ("sensor-gain", 3, "HPC speed sensor"),
    ):
        margin = fault_margin(case.plant, kind, channel)
        if margin == NO_DESTABILIZING_MARGIN:
            print(f"      {label:22s} cannot destabilize the loop")
        else:
            print(f"      {label:22s} tolerates {margin:5.1%} degradation")

    # 4. Monte Carlo epsilon validation.
    w_eq = solve_vector(
        RationalMatrix.from_numpy(flow.a),
        [-to_fraction(v) for v in flow.b.tolist()],
    )
    _, b_cl = closed_loop_matrices(case.plant, mode_gains(mode))
    epsilon = epsilon_radius(
        EpsilonInputs(
            flow_a=flow.a, b_cl=b_cl, p=lyap.p,
            k=float(certificate.k),
            w_eq=np.array([float(v) for v in w_eq]),
            geometry=surface_geometry(halfspace, flow),
        )
    )
    mc = monte_carlo_epsilon_check(
        case.switched_system, r, mode=mode, epsilon=epsilon,
        trials=5, t_final=25.0, seed=2,
    )
    assert mc.all_switch_free and mc.all_converged, mc.failures
    print(f"[4] Monte Carlo: {mc.trials} perturbed references within "
          f"epsilon = {epsilon:.3g}: 0 switches, all converged")

    # 5. Reachability cross-check.
    w_eq_float = np.array([float(v) for v in w_eq])
    mu_max = float(np.linalg.eigvalsh(lyap.p).max())
    radius = 0.4 * np.sqrt(float(certificate.k) / mu_max) / np.sqrt(len(w_eq))
    initial = Zonotope.ball_inf(w_eq_float, radius)
    assert verify_invariance(flow, initial, halfspace, horizon=2.0)
    print(f"[5] flowpipe: box of radius {radius:.3g} around the "
          f"equilibrium provably never crosses the switching surface")

    print("\n==> all five evidence sources agree; campaign complete.")


if __name__ == "__main__":
    main()
