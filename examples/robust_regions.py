"""Robust regions in action: verified invariants meet simulation.

Reproduces the Section VI-C analysis on the size-10 benchmark: for each
operating mode, synthesize a Lyapunov function, compute the exact robust
level ``k`` (the largest sublevel set from which no mode switch can
occur), the truncated-ellipsoid volume, and the reference-perturbation
radius ``epsilon`` — then *demonstrates* the verified claim by
simulation: trajectories started inside the robust region converge to
the equilibrium without ever switching mode.

Run:  python examples/robust_regions.py
"""

import numpy as np

import repro
from repro.engine import MODES, mode_gains
from repro.exact import RationalMatrix, solve_vector, to_fraction
from repro.robust import (
    EpsilonInputs,
    epsilon_radius,
    surface_geometry,
    truncated_ellipsoid_volume,
)
from repro.systems import closed_loop_matrices


def sample_in_sublevel(p, w_eq, k, rng, fraction=0.9):
    """A random point with V(w) = fraction^2 * k (on a shrunken shell)."""
    n = len(w_eq)
    direction = rng.normal(size=n)
    # Normalize in the P-metric: V(w_eq + d) = d^T P d.
    scale = np.sqrt(direction @ p @ direction)
    return w_eq + direction * (fraction * np.sqrt(k) / scale)


def main() -> None:
    case = repro.case_by_name("size10")
    r = case.reference()
    system = case.switched_system(r)
    rng = np.random.default_rng(42)
    print(f"case {case.name}: closed-loop dimension {system.dimension}")
    print(f"reference r = {[round(float(x), 3) for x in r]}\n")

    for mode in MODES:
        flow = system.modes[mode].flow
        halfspace = system.modes[mode].region.halfspaces[0]
        a = case.mode_matrix(mode)
        candidate = repro.synthesize("lmi", a, backend="ipm")
        assert repro.validate_candidate(candidate, a).valid

        p_exact = candidate.exact_p(10)
        region = repro.synthesize_robust_level(flow, halfspace, p_exact)
        w_eq = solve_vector(
            RationalMatrix.from_numpy(flow.a),
            [-to_fraction(x) for x in flow.b.tolist()],
        )
        w_eq_float = np.array([float(x) for x in w_eq])
        k = region.k_float()
        print(f"mode {mode}: robust level k = {k:.4g} ({region.case})")

        volume = truncated_ellipsoid_volume(
            candidate.p, k, w_eq_float,
            halfspace.normal_float(), float(halfspace.offset),
        )
        _, b_cl = closed_loop_matrices(case.plant, mode_gains(mode))
        epsilon = epsilon_radius(
            EpsilonInputs(
                flow_a=flow.a, b_cl=b_cl, p=candidate.p, k=k,
                w_eq=w_eq_float, geometry=surface_geometry(halfspace, flow),
            )
        )
        print(f"         volume(W) = {volume:.3g},  epsilon = {epsilon:.3g}")

        # Verified prediction: start inside {V <= 0.8^2 k}, never switch.
        p_rounded = p_exact.to_numpy()
        switches = []
        for _ in range(5):
            w0 = sample_in_sublevel(p_rounded, w_eq_float, k, rng, fraction=0.8)
            assert halfspace.contains(list(w0)), "sample left the region"
            trajectory = repro.simulate_pwa(system, w0, t_final=15.0)
            switches.append(trajectory.n_switches)
            final_error = float(np.linalg.norm(trajectory.final_state - w_eq_float))
            assert final_error < 1e-3, "trajectory failed to converge"
        print(
            f"         5 simulated trajectories from inside W: "
            f"switch counts {switches} (verified: all zero)\n"
        )
        assert all(s == 0 for s in switches)

    print("==> robust-region predictions confirmed dynamically.")


if __name__ == "__main__":
    main()
