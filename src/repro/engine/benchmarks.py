"""The paper's benchmark suite (Section VI-A).

Eight plant variants derive from the 18-state engine by balanced
truncation — sizes 3, 5, 10, 15 and the full 18 — with additional
integer-rounded ("truncated") versions for sizes 3, 5 and 10. Each
variant pairs with the two operating modes of the switched PI
controller, giving the benchmark matrix of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..reduction import balance
from ..systems import (
    PwaSystem,
    StateSpace,
    build_closed_loop,
    closed_loop_matrices,
    fixed_mode_closed_loop,
)
from .gains import mode_gains, paper_controller
from .model import build_engine_plant
from .references import nominal_reference

__all__ = ["BenchmarkCase", "benchmark_suite", "case_by_name", "MODES"]

MODES = (0, 1)

DEFAULT_SIZES = (3, 5, 10, 15, 18)
INTEGER_SIZES = (3, 5, 10)


@dataclass(frozen=True)
class BenchmarkCase:
    """One plant variant of the benchmark suite."""

    name: str
    size: int
    integer: bool
    plant: StateSpace

    @property
    def closed_loop_dimension(self) -> int:
        """Plant order plus the 3 PI integrator states."""
        return self.size + self.plant.n_inputs

    def mode_matrix(self, mode: int) -> np.ndarray:
        """The closed-loop ``A_i`` of one operating mode (homogeneous part)."""
        a_cl, _ = closed_loop_matrices(self.plant, mode_gains(mode))
        return a_cl

    def mode_affine(self, mode: int, r: np.ndarray):
        """The full affine closed-loop flow ``w' = A_i w + B_i r``."""
        return fixed_mode_closed_loop(self.plant, mode_gains(mode), r)

    def switched_system(self, r: np.ndarray) -> PwaSystem:
        """The full two-mode PWA closed loop at reference ``r``."""
        return build_closed_loop(self.plant, paper_controller(), r)

    def reference(self) -> np.ndarray:
        """The case's nominal reference (equilibria in their own regions)."""
        return nominal_reference(self.plant)

    def is_closed_loop_stable(self) -> bool:
        """Numeric Hurwitz check of both modes."""
        return all(
            float(np.linalg.eigvals(self.mode_matrix(m)).real.max()) < 0
            for m in MODES
        )


@lru_cache(maxsize=1)
def _engine_plant():
    return build_engine_plant()


@lru_cache(maxsize=1)
def _balanced_engine():
    return balance(_engine_plant())


@lru_cache(maxsize=None)
def _make_case(size: int, integer: bool) -> BenchmarkCase:
    full = _engine_plant()
    plant = full if size == full.n_states else _balanced_engine().truncate(size)
    if integer:
        plant = plant.rounded_to_integers()
    name = f"size{size}i" if integer else f"size{size}"
    return BenchmarkCase(name=name, size=size, integer=integer, plant=plant)


@lru_cache(maxsize=None)
def _suite_cached(
    sizes: tuple[int, ...], integer_sizes: tuple[int, ...]
) -> tuple[BenchmarkCase, ...]:
    cases = []
    for size in sorted(sizes):
        if size in integer_sizes:
            cases.append(_make_case(size, True))
        cases.append(_make_case(size, False))
    return tuple(cases)


def benchmark_suite(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    integer_sizes: tuple[int, ...] = INTEGER_SIZES,
) -> list[BenchmarkCase]:
    """All plant variants, smallest first, integer variants before float
    (matching the paper's per-size grouping of 4 or 2 single-mode cases).

    Memoized per process: the engine model and its balanced-truncation
    ladder are built at most once, no matter how many experiments (or
    runner tasks in one worker) request the suite.
    """
    return list(_suite_cached(tuple(sizes), tuple(integer_sizes)))


def case_by_name(name: str) -> BenchmarkCase:
    integer = name.endswith("i")
    size = int(name.removeprefix("size").removesuffix("i"))
    return _make_case(size, integer)
