"""Failure injection for the engine control loop.

Certification campaigns ask "how much degradation does the verified
design tolerate?". This module injects parametric faults into the
plant — actuator effectiveness loss, sensor gain error, sensor bias —
and re-runs the stability analysis under each fault:

* :func:`apply_fault` builds the faulted plant (the controller is never
  touched: it is certified hardware);
* :func:`stability_under_fault` checks both closed-loop modes;
* :func:`fault_margin` bisects the severity of a fault family until the
  loop destabilizes, yielding the tolerated-degradation margin;
* a bias fault moves equilibria rather than poles, so it is analyzed
  through the robust-region machinery instead (`bias_shifts_equilibrium`).

These are the "edge cases" the paper's robustness section gestures at
(variations of the state or references) extended to plant-side faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..systems import StateSpace, closed_loop_matrices
from .gains import mode_gains

__all__ = [
    "Fault",
    "NO_DESTABILIZING_MARGIN",
    "apply_fault",
    "stability_under_fault",
    "fault_margin",
    "bias_shifts_equilibrium",
]

FaultKind = Literal["actuator-effectiveness", "sensor-gain", "sensor-bias"]

#: Sentinel returned by :func:`fault_margin` when even total loss
#: (severity 1) leaves every mode Hurwitz: the fault family cannot
#: destabilize the loop, so no finite margin exists. Compares equal to
#: ``float("inf")`` — callers that used to receive the raw upper bound
#: 1.0 must now test ``margin == NO_DESTABILIZING_MARGIN`` (or
#: ``math.isinf``) instead of the ambiguous ``margin >= 1.0``, which
#: could not distinguish "margin is exactly the cap" from "no margin".
NO_DESTABILIZING_MARGIN = float("inf")


@dataclass(frozen=True)
class Fault:
    """One parametric fault.

    ``severity`` is normalized: 0 = nominal, 1 = total loss (for
    effectiveness/gain faults, the multiplier is ``1 - severity``);
    for bias faults ``severity`` is the raw additive offset on the
    measured output.
    """

    kind: FaultKind
    channel: int
    severity: float

    def __post_init__(self):
        if self.kind not in (
            "actuator-effectiveness", "sensor-gain", "sensor-bias",
        ):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind != "sensor-bias" and not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1] for gain faults")


def apply_fault(plant: StateSpace, fault: Fault) -> StateSpace:
    """The faulted plant (bias faults leave ``(A, B, C)`` unchanged —
    they act on the measured output and are handled separately)."""
    if fault.kind == "actuator-effectiveness":
        if not 0 <= fault.channel < plant.n_inputs:
            raise ValueError("actuator channel out of range")
        b = plant.b.copy()
        b[:, fault.channel] *= 1.0 - fault.severity
        return StateSpace(plant.a.copy(), b, plant.c.copy())
    if fault.kind == "sensor-gain":
        if not 0 <= fault.channel < plant.n_outputs:
            raise ValueError("sensor channel out of range")
        c = plant.c.copy()
        c[fault.channel, :] *= 1.0 - fault.severity
        return StateSpace(plant.a.copy(), plant.b.copy(), c)
    return plant  # sensor-bias: structure unchanged


def stability_under_fault(
    plant: StateSpace, fault: Fault, modes: tuple[int, ...] = (0, 1)
) -> dict[int, float]:
    """Closed-loop spectral abscissa per mode under the fault.

    Negative values mean the mode remains stable."""
    faulted = apply_fault(plant, fault)
    out = {}
    for mode in modes:
        a_cl, _ = closed_loop_matrices(faulted, mode_gains(mode))
        out[mode] = float(np.linalg.eigvals(a_cl).real.max())
    return out


def fault_margin(
    plant: StateSpace,
    kind: FaultKind,
    channel: int,
    modes: tuple[int, ...] = (0, 1),
    tolerance: float = 1e-3,
) -> float:
    """Largest severity in [0, 1] keeping every mode Hurwitz (bisection).

    Returns :data:`NO_DESTABILIZING_MARGIN` when even total loss leaves
    the loop stable (the faulted channel was not load-bearing for
    stability) — the family admits no destabilizing severity, which is
    different from a genuine margin that happens to sit at the cap."""
    if kind == "sensor-bias":
        raise ValueError(
            "bias faults do not destabilize a linear loop; analyze them "
            "with bias_shifts_equilibrium / the robust-region machinery"
        )

    def stable_at(severity: float) -> bool:
        """Is every requested mode Hurwitz at this severity?"""
        abscissas = stability_under_fault(
            plant, Fault(kind, channel, severity), modes
        )
        return max(abscissas.values()) < 0

    if not stable_at(0.0):
        raise ValueError("the nominal loop is already unstable")
    if stable_at(1.0):
        return NO_DESTABILIZING_MARGIN
    low, high = 0.0, 1.0
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if stable_at(mid):
            low = mid
        else:
            high = mid
    return low


def bias_shifts_equilibrium(
    plant: StateSpace, mode: int, channel: int, bias: float, r: np.ndarray
) -> np.ndarray:
    """Equilibrium displacement caused by a sensor bias.

    A constant measurement offset ``b`` on output ``channel`` acts like
    a reference perturbation ``r_channel -> r_channel - b`` (the
    controller sees ``y + b``): the loop converges to a shifted
    equilibrium. Returns ``w_eq(biased) - w_eq(nominal)``, whose norm
    can be compared against the robust-region radius ``epsilon`` from
    :mod:`repro.robust`.
    """
    from ..systems import fixed_mode_closed_loop

    r = np.asarray(r, dtype=float).copy()
    nominal = fixed_mode_closed_loop(plant, mode_gains(mode), r).equilibrium()
    biased_r = r.copy()
    biased_r[channel] -= bias
    biased = fixed_mode_closed_loop(
        plant, mode_gains(mode), biased_r
    ).equilibrium()
    return biased - nominal
