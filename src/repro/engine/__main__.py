"""``python -m repro.engine`` — case-study fact sheet.

Prints the synthetic engine's structure, DC gains, per-loop stability
margins, the benchmark ladder with Hankel singular values, and the
nominal reference/equilibria — the quantities DESIGN.md's substitution
argument rests on.
"""

from __future__ import annotations

import sys

import numpy as np

from ..reduction import balance
from ..systems import loop_margins, transfer_function
from .benchmarks import benchmark_suite
from .gains import THETA, mode_gains
from .model import INPUT_NAMES, OUTPUT_NAMES, STATE_NAMES, build_engine_plant
from .references import equilibrium_output, mode_equilibrium, nominal_reference


def main() -> int:
    """Print the case-study fact sheet; returns the exit code."""
    plant = build_engine_plant()
    print("Synthetic dual-spool turbofan (paper Section V substitution)")
    print(f"  states:  {plant.n_states}   inputs: {plant.n_inputs}   "
          f"outputs: {plant.n_outputs}")
    print(f"  open-loop spectral abscissa: {plant.spectral_abscissa():.3f}")
    print("\nState variables:")
    for index, name in enumerate(STATE_NAMES):
        print(f"  x{index:<3d} {name}")
    print("\nDC gain (outputs x inputs):")
    gain = plant.dc_gain()
    header = " " * 22 + "  ".join(f"{name:>12s}" for name in INPUT_NAMES)
    print(header)
    for i, name in enumerate(OUTPUT_NAMES):
        row = "  ".join(f"{gain[i, j]:12.4f}" for j in range(plant.n_inputs))
        print(f"  {name:20s}{row}")

    print("\nPer-loop stability margins (mode 0 pairing):")
    omegas = np.logspace(-2, 3, 400)
    pairings = [(0, 0, "fuel->LPC speed"), (1, 2, "nozzle->Mach"), (2, 3, "IGV->HPC speed")]
    gains = mode_gains(0)
    for input_index, output_index, label in pairings:
        kp = gains.kp[input_index, output_index]
        ki = gains.ki[input_index, output_index]

        def loop(w, i=input_index, o=output_index, kp=kp, ki=ki):
            s = 1j * w
            return (kp + ki / s) * transfer_function(plant, s)[o, i]

        margins = loop_margins(loop, omegas)
        print(
            f"  {label:18s} PM = {margins.phase_margin_deg:6.1f} deg, "
            f"GM = {margins.gain_margin_db:6.1f} dB"
        )

    print(f"\nSwitching margin Theta = {THETA}")
    r = nominal_reference(plant)
    print(f"nominal reference r = {np.round(r, 4).tolist()}")
    for mode in (0, 1):
        y = equilibrium_output(plant, mode_equilibrium(plant, mode, r))
        print(f"  mode {mode} equilibrium outputs: {np.round(y, 4).tolist()}")

    print("\nBenchmark ladder:")
    hankel = balance(plant).hankel_values
    print(f"  Hankel singular values: {np.round(hankel[:10], 4).tolist()} ...")
    for case in benchmark_suite():
        stable = "stable" if case.is_closed_loop_stable() else "UNSTABLE"
        print(
            f"  {case.name:8s} dim {case.closed_loop_dimension:2d}  "
            f"closed loop {stable} in both modes"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
