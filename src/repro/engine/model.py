"""Synthetic 18-state turbofan engine model (paper Section V).

The paper's engine matrices come from the Spey turbofan model of
Skogestad & Postlethwaite / Samar & Postlethwaite, which is not
redistributable here. This module builds a *synthetic* dual-spool
turbofan with the same interface — 18 internal states, 3 actuation
inputs (fuel flow, nozzle area, IGV angle) and 4 measured outputs (LPC
spool speed, HPC pressure ratio, Mach exit number, HPC spool speed) —
and realistic time-scale separation:

======================  ============================  =============
physical block          states                        poles (rad/s)
======================  ============================  =============
spool inertias          NL, NH                        2.5 – 5
gas path                combustor, HPC PR, Mach exit  30 – 50
actuators (2nd order)   fuel valve, nozzle, IGV       12 – 80
sensors (1st order)     one lag per output            50 – 80
thermal/duct tail       turbine temps, duct pressure  3 – 5
======================  ============================  =============

The constants were tuned (deterministically, values frozen below) so
that the closed loop with the paper's *exact* PI gain matrices is
Hurwitz in both operating modes — for the full model, every balanced
truncation used in the evaluation (15, 10, 5, 3 states) and every
integer-rounded truncation (10, 5, 3). That property is what makes the
model a faithful stand-in: the verification pipeline only ever sees
``(A, B, C)`` plus the published gains.
"""

from __future__ import annotations

import numpy as np

from ..systems import StateSpace

__all__ = ["STATE_NAMES", "INPUT_NAMES", "OUTPUT_NAMES", "build_engine_plant"]

STATE_NAMES = [
    "NL (LPC spool speed)",
    "NH (HPC spool speed)",
    "combustor energy",
    "HPC pressure ratio",
    "fuel valve stage 1",
    "fuel valve stage 2",
    "nozzle actuator stage 1",
    "nozzle actuator stage 2",
    "IGV actuator stage 1",
    "IGV actuator stage 2",
    "sensor y0 (NL)",
    "sensor y1 (HPC PR)",
    "sensor y2 (Mach exit)",
    "sensor y3 (NH)",
    "Mach exit state",
    "turbine temperature 1",
    "turbine temperature 2",
    "duct pressure",
]

INPUT_NAMES = ["fuel flow", "nozzle area", "IGV angle"]

OUTPUT_NAMES = [
    "LPC spool speed",
    "HPC pressure ratio",
    "Mach exit number",
    "HPC spool speed",
]

# State indices (see STATE_NAMES).
_NL, _NH, _COMB, _PR = 0, 1, 2, 3
_FV1, _FV2, _NA1, _NA2, _IG1, _IG2 = 4, 5, 6, 7, 8, 9
_S0, _S1, _S2, _S3 = 10, 11, 12, 13
_MX, _T1, _T2, _P1 = 14, 15, 16, 17


def build_engine_plant() -> StateSpace:
    """The frozen synthetic engine ``(A, B, C)`` as a :class:`StateSpace`."""
    n = 18
    a = np.zeros((n, n))
    b = np.zeros((n, 3))
    c = np.zeros((4, n))

    # Spool dynamics: slow rotor inertias, cross-coupled through the gas
    # path and loaded by the nozzle and IGV positions.
    a[_NL, _NL] = -5.0
    a[_NL, _NH] = 0.4
    a[_NL, _COMB] = 2.8
    a[_NL, _NA2] = 0.3
    a[_NL, _T2] = 0.1
    a[_NH, _NH] = -2.5
    a[_NH, _NL] = 0.3
    a[_NH, _COMB] = 1.5
    a[_NH, _IG2] = 1.8
    a[_NH, _P1] = 0.15

    # Combustor: fast energy storage fed by the fuel valve.
    a[_COMB, _COMB] = -30.0
    a[_COMB, _FV2] = 30.0

    # HPC pressure ratio: driven by combustor energy, HPC speed, IGV.
    a[_PR, _PR] = -30.0
    a[_PR, _COMB] = 6.0
    a[_PR, _NH] = 0.8
    a[_PR, _IG2] = -0.5
    a[_PR, _P1] = 0.2

    # Actuator chains (critically damped second-order pairs).
    a[_FV1, _FV1] = -40.0
    a[_FV2, _FV1] = 40.0
    a[_FV2, _FV2] = -40.0
    b[_FV1, 0] = 40.0
    a[_NA1, _NA1] = -80.0
    a[_NA2, _NA1] = 80.0
    a[_NA2, _NA2] = -80.0
    b[_NA1, 1] = 80.0
    a[_IG1, _IG1] = -12.0
    a[_IG2, _IG1] = 12.0
    a[_IG2, _IG2] = -12.0
    b[_IG1, 2] = 12.0

    # Mach exit number: fast gas-path state driven by the nozzle.
    a[_MX, _MX] = -50.0
    a[_MX, _NA2] = 12.0
    a[_MX, _NL] = 0.5
    a[_MX, _T1] = 0.2

    # Thermal / duct tail states (weak feedback couplings).
    a[_T1, _T1] = -4.0
    a[_T1, _COMB] = 2.0
    a[_T2, _T2] = -3.0
    a[_T2, _T1] = 1.0
    a[_P1, _P1] = -5.0
    a[_P1, _NH] = 1.0
    a[_P1, _NA2] = -0.4

    # Output sensors: first-order lags; the measured outputs are the
    # sensor states themselves.
    a[_S0, _S0] = -50.0
    a[_S0, _NL] = 50.0
    a[_S1, _S1] = -55.0
    a[_S1, _PR] = 55.0
    a[_S2, _S2] = -80.0
    a[_S2, _MX] = 80.0
    a[_S3, _S3] = -45.0
    a[_S3, _NH] = 45.0
    c[0, _S0] = 1.0
    c[1, _S1] = 1.0
    c[2, _S2] = 1.0
    c[3, _S3] = 1.0
    return StateSpace(a, b, c)
