"""The paper's switched PI controller (Section V-B), gains verbatim.

Two operating modes share the Mach-exit and HPC-spool-speed loops; the
fuel-flow loop switches between the LPC spool-speed controller (mode 0,
nominal) and the HPC pressure-ratio controller (mode 1, engaged when the
LPC spool-speed error reaches the safety margin ``Theta = 1``):

    i = 0  if r0 - y0 < Theta,      i = 1  otherwise.
"""

from __future__ import annotations

import numpy as np

from ..systems import OutputGuard, PIGains, SwitchedPIController

__all__ = [
    "THETA",
    "KI_0",
    "KI_1",
    "KP_0",
    "KP_1",
    "mode_gains",
    "paper_controller",
]

#: Safety margin of the switching law (the paper fixes it to 1).
THETA = 1.0

KI_0 = np.array(
    [
        [10.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 100.0, 0.0],
        [0.0, 0.0, 0.0, 2.0],
    ]
)

KI_1 = np.array(
    [
        [0.0, 20.0, 0.0, 0.0],
        [0.0, 0.0, 100.0, 0.0],
        [0.0, 0.0, 0.0, 2.0],
    ]
)

KP_0 = np.array(
    [
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 10.0, 0.0],
        [0.0, 0.0, 0.0, 0.5],
    ]
)

KP_1 = np.array(
    [
        [0.0, 0.1, 0.0, 0.0],
        [0.0, 0.0, 10.0, 0.0],
        [0.0, 0.0, 0.0, 0.5],
    ]
)


def mode_gains(mode: int) -> PIGains:
    """The ``(K_P, K_I)`` pair of operating mode 0 or 1."""
    if mode == 0:
        return PIGains(KP_0, KI_0)
    if mode == 1:
        return PIGains(KP_1, KI_1)
    raise ValueError(f"the case study has modes 0 and 1, not {mode}")


def paper_controller(theta: float = THETA) -> SwitchedPIController:
    """The switched PI controller with the paper's guards.

    Mode 0 is active when ``r0 - y0 < theta`` — as a guard on ``(y, r)``:
    ``y0 - r0 + theta > 0`` (strict). Mode 1 takes the complement
    ``-y0 + r0 - theta >= 0``.
    """
    guard_mode0 = OutputGuard(
        g=[1.0, 0.0, 0.0, 0.0], f=[-1.0, 0.0, 0.0, 0.0], h=theta, strict=True
    )
    guard_mode1 = OutputGuard(
        g=[-1.0, 0.0, 0.0, 0.0], f=[1.0, 0.0, 0.0, 0.0], h=-theta, strict=False
    )
    return SwitchedPIController(
        gains=[mode_gains(0), mode_gains(1)],
        guards=[[guard_mode0], [guard_mode1]],
    )
