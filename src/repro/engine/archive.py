"""Benchmark archival (the paper's first future-work item).

The conclusions announce archiving the case study "for the Competition
on Applied Verification for Continuous and Hybrid Systems" (ARCH-COMP).
This module provides exactly that artefact: a self-contained JSON
description of the hybrid closed-loop system — modes, affine flows,
polyhedral invariants, plus provenance — and a loader that rebuilds a
:class:`~repro.systems.pwa.PwaSystem` from it. Numbers are serialized
as exact rational strings (half-space data) and as floats with full
``repr`` precision (flow matrices, which are float-valued upstream), so
export→import is lossless; the round-trip property is tested.
"""

from __future__ import annotations

import json

import numpy as np

from ..systems import AffineSystem, HalfSpace, PolyhedralRegion, PwaMode, PwaSystem

__all__ = ["export_arch_benchmark", "load_arch_benchmark"]

FORMAT = "repro-arch-benchmark-v1"


def export_arch_benchmark(
    system: PwaSystem,
    name: str,
    reference: np.ndarray | None = None,
    metadata: dict | None = None,
) -> str:
    """Serialize a PWA switched system as a JSON benchmark instance."""
    modes = []
    for mode in system.modes:
        halfspaces = [
            {
                "normal": [str(x) for x in h.normal],
                "offset": str(h.offset),
                "strict": h.strict,
            }
            for h in mode.region.halfspaces
        ]
        modes.append(
            {
                "name": mode.name,
                "a": mode.flow.a.tolist(),
                "b": mode.flow.b.tolist(),
                "invariant": halfspaces,
            }
        )
    payload = {
        "format": FORMAT,
        "name": name,
        "dimension": system.dimension,
        "modes": modes,
        "metadata": metadata or {},
    }
    if reference is not None:
        payload["reference"] = np.asarray(reference, dtype=float).tolist()
    return json.dumps(payload, indent=2)


def load_arch_benchmark(text: str) -> tuple[PwaSystem, dict]:
    """Rebuild the PWA system (and metadata) from an exported instance."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT:
        raise ValueError(f"unknown benchmark format {payload.get('format')!r}")
    modes = []
    for entry in payload["modes"]:
        halfspaces = [
            HalfSpace(
                tuple(h["normal"]), h["offset"], strict=bool(h["strict"])
            )
            for h in entry["invariant"]
        ]
        modes.append(
            PwaMode(
                flow=AffineSystem(
                    np.array(entry["a"], dtype=float),
                    np.array(entry["b"], dtype=float),
                ),
                region=PolyhedralRegion(halfspaces),
                name=entry.get("name", ""),
            )
        )
    system = PwaSystem(modes)
    if system.dimension != payload["dimension"]:
        raise ValueError("dimension mismatch in benchmark instance")
    info = dict(payload.get("metadata") or {})
    if "reference" in payload:
        info["reference"] = np.array(payload["reference"], dtype=float)
    return system, info
