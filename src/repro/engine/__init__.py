"""The industrial case study: a turbofan engine under switched PI control.

``build_engine_plant`` gives the synthetic 18-state plant (a documented
substitution for the paper's proprietary Spey model, see DESIGN.md);
``paper_controller`` carries the published gain matrices verbatim; and
``benchmark_suite`` materializes the size-3/5/10/15/18 reduction ladder
of Section VI-A.
"""

from .archive import export_arch_benchmark, load_arch_benchmark
from .benchmarks import MODES, BenchmarkCase, benchmark_suite, case_by_name
from .faults import (
    NO_DESTABILIZING_MARGIN,
    Fault,
    apply_fault,
    bias_shifts_equilibrium,
    fault_margin,
    stability_under_fault,
)
from .gains import KI_0, KI_1, KP_0, KP_1, THETA, mode_gains, paper_controller
from .model import INPUT_NAMES, OUTPUT_NAMES, STATE_NAMES, build_engine_plant
from .references import (
    ATTRACTING_MARGIN,
    REGIME_MARGINS,
    attracting_reference,
    equilibrium_output,
    mode_equilibrium,
    nominal_reference,
)

__all__ = [
    "build_engine_plant",
    "STATE_NAMES",
    "INPUT_NAMES",
    "OUTPUT_NAMES",
    "THETA",
    "KI_0",
    "KI_1",
    "KP_0",
    "KP_1",
    "mode_gains",
    "paper_controller",
    "mode_equilibrium",
    "equilibrium_output",
    "nominal_reference",
    "attracting_reference",
    "ATTRACTING_MARGIN",
    "REGIME_MARGINS",
    "BenchmarkCase",
    "benchmark_suite",
    "case_by_name",
    "MODES",
    "Fault",
    "apply_fault",
    "stability_under_fault",
    "fault_margin",
    "NO_DESTABILIZING_MARGIN",
    "bias_shifts_equilibrium",
    "export_arch_benchmark",
    "load_arch_benchmark",
]
