"""Reference-value selection for the case study.

The robustness analysis (paper Section VI-C) considers reference
assignments where each mode's closed-loop equilibrium lies in that
mode's own operating region:

* mode 0 regulates ``y0`` to ``r0``, so its equilibrium always satisfies
  the mode-0 guard ``y0 - r0 + Theta = Theta > 0``;
* mode 1 regulates ``(y1, y2, y3)``; its equilibrium's ``y0`` is then
  determined by the plant, and the mode-1 guard needs
  ``y0 <= r0 - Theta``. :func:`nominal_reference` picks ``r0`` above the
  mode-1 equilibrium output with a configurable margin so that both
  equilibria are strictly interior.
"""

from __future__ import annotations

import numpy as np

from ..systems import StateSpace, fixed_mode_closed_loop
from .gains import THETA, mode_gains

__all__ = [
    "mode_equilibrium",
    "equilibrium_output",
    "nominal_reference",
    "attracting_reference",
    "ATTRACTING_MARGIN",
    "REGIME_MARGINS",
]

#: Default setpoints for (HPC pressure ratio, Mach exit, HPC spool speed).
DEFAULT_TAIL = (1.0, 0.5, 2.0)

#: Negative guard margin that makes the mode-1 equilibrium *leave* the
#: mode-1 region, turning the nominal bistable configuration into an
#: attracting one. -1.5 sits inside the feasible window of every
#: benchmark case (size3i/size3/size5/size10); size5's window is the
#: narrowest (infeasible again below about -2.5).
ATTRACTING_MARGIN = -1.5

#: Reference regimes used by the CEGIS experiments: the paper's nominal
#: bistable references (no certificate exists — provably) and the
#: attracting regime where the loop finds validated certificates.
REGIME_MARGINS = {"nominal": 1.0, "attracting": ATTRACTING_MARGIN}


def mode_equilibrium(plant: StateSpace, mode: int, r: np.ndarray) -> np.ndarray:
    """Closed-loop equilibrium ``w_eq = (x_eq, u_eq)`` of one mode."""
    flow = fixed_mode_closed_loop(plant, mode_gains(mode), r)
    return flow.equilibrium()


def equilibrium_output(plant: StateSpace, w_eq: np.ndarray) -> np.ndarray:
    """Plant output at a closed-loop equilibrium point."""
    return plant.c @ w_eq[: plant.n_states]


def nominal_reference(
    plant: StateSpace,
    tail: tuple[float, float, float] = DEFAULT_TAIL,
    theta: float = THETA,
    margin: float = 1.0,
) -> np.ndarray:
    """A reference vector putting both equilibria in their own regions.

    ``tail`` fixes ``(r1, r2, r3)``. The mode-1 equilibrium's ``y0`` does
    not depend on ``r0`` (mode 1 never feeds ``r0`` back), so ``r0`` is
    set to ``y0_eq + theta + margin``.
    """
    probe = np.array([0.0, *tail])
    w_eq1 = mode_equilibrium(plant, 1, probe)
    y0_eq = float(equilibrium_output(plant, w_eq1)[0])
    r = np.array([y0_eq + theta + margin, *tail])
    return r


def attracting_reference(
    plant: StateSpace,
    tail: tuple[float, float, float] = DEFAULT_TAIL,
    theta: float = THETA,
) -> np.ndarray:
    """A reference whose mode-1 equilibrium violates its own guard.

    With ``margin < 0`` the mode-1 equilibrium output sits *above* the
    switching threshold, so trajectories in region 1 are pushed toward
    the surface and the mode-0 equilibrium is the unique attractor —
    the regime where a global piecewise certificate can exist at all
    (at the nominal references the deep-cut ellipsoid method proves
    there is none; see :mod:`repro.lyapunov.cegis`).
    """
    return nominal_reference(plant, tail=tail, theta=theta, margin=ATTRACTING_MARGIN)
