"""Modal-matrix Lyapunov synthesis (paper Section III-E, Eq. 8).

Diagonalize ``A = M D M^{-1}`` and set ``P = (M^{-1})^dagger M^{-1}``.
Then ``A^T P + P A = (M^{-1})^dagger (D + conj(D)) M^{-1}``, which is
negative definite exactly when every eigenvalue has negative real part.
For a real ``A`` the complex eigenvector pairs are conjugate, so ``P``
is real up to floating-point noise; the imaginary residue is dropped
and the result symmetrized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["modal_lyapunov"]


def modal_lyapunov(a: np.ndarray, rcond: float = 1e-10) -> np.ndarray:
    """``P = (M^{-1})^dagger M^{-1}`` from any modal matrix ``M`` of ``A``."""
    a = np.asarray(a, dtype=float)
    eigenvalues, m = np.linalg.eig(a)
    if eigenvalues.real.max() >= 0:
        raise ValueError("A is not Hurwitz: the modal P would not decrease")
    # Guard against defective (non-diagonalizable) A: the eigenvector
    # matrix becomes numerically singular.
    if np.linalg.cond(m) > 1.0 / rcond:
        raise ValueError("A is too close to defective for the modal method")
    m_inv = np.linalg.inv(m)
    p = m_inv.conj().T @ m_inv
    imaginary = float(np.abs(p.imag).max())
    if imaginary > 1e-6 * max(1.0, float(np.abs(p.real).max())):
        raise ValueError(f"modal P has non-negligible imaginary part {imaginary:g}")
    p = p.real
    return 0.5 * (p + p.T)
