"""Certified settling-time bounds from exponential Lyapunov certificates.

The paper (Section III-E) notes that the best decay rate ``alpha`` in
the LMIalpha problem "gives a quantitative measure of the speed of
convergence ... which can be used to estimate the settling time". This
module makes that remark concrete: from ``V' <= -alpha V`` it follows
that

    ||w(t) - w_eq||  <=  sqrt(cond(P)) * e^{-alpha t / 2} * ||w0 - w_eq||,

so the time to enter (and stay in) a ball of radius ``r`` is at most

    T(r)  =  (2 / alpha) * ln( sqrt(cond(P)) * ||w0 - w_eq|| / r ).

The bound is *certified* whenever the underlying candidate validates:
the exponential inequality is the exact negative-definiteness of
``A^T P + P A + alpha P``, checkable with the usual validators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exact import RationalMatrix
from .quadratic import LyapunovCandidate

__all__ = ["SettlingBound", "settling_bound", "verify_decay_rate_exact"]


@dataclass(frozen=True)
class SettlingBound:
    """A certified exponential envelope for one mode."""

    alpha: float
    condition_number: float

    def envelope(self, initial_distance: float, t: float) -> float:
        """Upper bound on ``||w(t) - w_eq||``."""
        return (
            math.sqrt(self.condition_number)
            * math.exp(-0.5 * self.alpha * t)
            * initial_distance
        )

    def settling_time(self, initial_distance: float, radius: float) -> float:
        """Time after which the envelope stays below ``radius``."""
        if radius <= 0:
            raise ValueError("radius must be positive")
        if initial_distance <= 0:
            return 0.0
        ratio = math.sqrt(self.condition_number) * initial_distance / radius
        if ratio <= 1.0:
            return 0.0
        return 2.0 / self.alpha * math.log(ratio)


def settling_bound(candidate: LyapunovCandidate, a: np.ndarray) -> SettlingBound:
    """Build the envelope from a candidate with a decay-rate annotation.

    ``candidate`` must come from the ``lmi-alpha`` / ``lmi-alpha+``
    methods (its ``info['alpha']`` is the certified rate); for other
    candidates the largest numerically-verified ``alpha`` is computed as
    ``-max eig`` of the generalized pencil ``(A^T P + P A, P)``.
    """
    a = np.asarray(a, dtype=float)
    p = candidate.p
    eigenvalues = np.linalg.eigvalsh(p)
    if eigenvalues[0] <= 0:
        raise ValueError("candidate P is not positive definite")
    condition = float(eigenvalues[-1] / eigenvalues[0])
    alpha = candidate.info.get("alpha")
    if alpha is None:
        from scipy.linalg import eigh

        lie = a.T @ p + p @ a
        # V' = w^T lie w <= lambda_max(lie, P) * V.
        pencil_eigenvalues = eigh(lie, p, eigvals_only=True)
        alpha = -float(np.max(pencil_eigenvalues))
    if alpha <= 0:
        raise ValueError("no positive certified decay rate available")
    return SettlingBound(alpha=float(alpha), condition_number=condition)


def verify_decay_rate_exact(
    candidate: LyapunovCandidate,
    a: np.ndarray,
    alpha,
    sigfigs: int | None = 10,
    validator: str = "sylvester",
) -> bool:
    """Exact proof of ``A^T P + P A + alpha P ≺ 0`` for rational ``alpha``.

    This turns the numeric decay-rate annotation into a certificate: the
    settling-time envelope then holds unconditionally.
    """
    from ..exact import to_fraction
    from ..validate.validators import run_validator

    p_exact = candidate.exact_p(sigfigs)
    a_exact = RationalMatrix.from_numpy(np.asarray(a, dtype=float))
    alpha_exact = to_fraction(alpha)
    shifted = (
        (a_exact.T @ p_exact + p_exact @ a_exact)
        + p_exact.scale(alpha_exact)
    ).symmetrize()
    result = run_validator(validator, shifted.scale(-1))
    return result.valid is True
