"""Lyapunov-function synthesis: the paper's six single-mode methods and
the piecewise-quadratic switched-system attempt."""

from .cegis import (
    CegisOutcome,
    CegisRound,
    CegisWitness,
    CenteredLmi,
    CertificateCheck,
    CertificateVerification,
    PiecewiseCertificate,
    assemble_centered_lmi,
    cegis_piecewise,
    refute_certificate,
    seed_directions,
    snap_certificate,
    verify_certificate,
)
from .common import CommonLyapunovResult, synthesize_common
from .discrete import (
    solve_stein_numeric,
    synthesize_discrete,
    validate_discrete_candidate,
)
from .equation import (
    SynthesisTimeout,
    solve_lyapunov_exact,
    solve_lyapunov_numeric,
)
from .modal import modal_lyapunov
from .piecewise import ENCODINGS, SOLVERS, PiecewiseCandidate, synthesize_piecewise
from .quadratic import LyapunovCandidate
from .settling import SettlingBound, settling_bound, verify_decay_rate_exact
from .synthesis import DEFAULT_NU, LMI_METHODS, METHODS, default_alpha, synthesize

__all__ = [
    "LyapunovCandidate",
    "METHODS",
    "LMI_METHODS",
    "DEFAULT_NU",
    "default_alpha",
    "synthesize",
    "SynthesisTimeout",
    "solve_lyapunov_exact",
    "solve_lyapunov_numeric",
    "modal_lyapunov",
    "PiecewiseCandidate",
    "synthesize_piecewise",
    "ENCODINGS",
    "SOLVERS",
    "CommonLyapunovResult",
    "synthesize_common",
    "solve_stein_numeric",
    "synthesize_discrete",
    "validate_discrete_candidate",
    "SettlingBound",
    "settling_bound",
    "verify_decay_rate_exact",
    "CenteredLmi",
    "assemble_centered_lmi",
    "seed_directions",
    "PiecewiseCertificate",
    "snap_certificate",
    "CertificateCheck",
    "CertificateVerification",
    "verify_certificate",
    "CegisWitness",
    "refute_certificate",
    "CegisRound",
    "CegisOutcome",
    "cegis_piecewise",
]
