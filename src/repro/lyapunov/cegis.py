"""Counterexample-guided synthesis of piecewise-quadratic certificates.

The paper's Section VI-B.2 protocol — synthesize a piecewise-quadratic
Lyapunov candidate with an LMI solver, round it, hand it to an SMT
refuter — *always fails*, and the repo's earlier PRs diagnosed two
independent reasons:

1. at the case-study references both modes keep their equilibrium
   strictly inside their own operating region (bistability), so no
   global certificate exists — the deep-cut ellipsoid method *proves*
   the LMI infeasible;
2. even where a certificate exists, rounding the two mode matrices
   independently breaks the exact surface equality ``V_0 = V_1`` that
   the both-directions surface non-increase condition forces, so the
   refuter always finds a surface witness.

This module flips the negative result by closing the loop the paper
left open (Ravanbakhsh & Sankaranarayanan; Ahmed, Peruffo & Abate):

* **centered continuous certificates** — ``V_0`` is parametrized as
  ``(w - w_0)^T S_0 (w - w_0)`` around the *exact rational* mode-0
  equilibrium and ``V_1 = V_0 + 2 (g . w̄)(q . w̄)``, so surface
  equality holds *identically* and the mode-0 conditions become plain
  ``d``-dimensional definiteness checks;
* **structure-preserving exact snap** — only ``S_0`` and ``q`` are
  rounded; ``P̄_1`` is rebuilt from them in rational arithmetic, so
  the continuity identity survives the snap (rounding the two modes
  independently — the paper's protocol — is kept as ``snap=
  "independent"`` and still fails, which the regression suite pins);
* **sound S-procedure verification** — acceptance checks the matrix
  blocks ``N_pos = P̄_1 - E^T U E - eps J_c`` and ``N_dec = -(Ā_1^T
  P̄_1 + P̄_1 Ā_1) - E^T W E - eps J_c`` with the preconditioned
  sphere-ICP definiteness check (pointwise region queries are kept as
  the *refuter* only: cheap SAT witnesses, never the acceptance path);
* **the CEGIS loop** — with ``synthesis="sampled"`` the synthesizer
  never sees the hard ``(d+1)``-dimensional mode-1 matrix blocks: it
  solves a finite relaxation over *sampled directions* (1x1 cuts), the
  verifier checks the full matrices, and every refutation direction
  becomes a new cut, deduplicated by normalized-direction fingerprint.
  ``synthesis="full"`` keeps the matrix blocks in the synthesizer (the
  one-shot path used by the benchmarks).

Outcome on the reproduction ladder: validated certificates on the
reduced 3- and 5-state models (and the 10-state model) at *attracting*
references, with the paper's nominal-reference failure reproduced at
iteration 0.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from ..exact import RationalMatrix, solve_vector, to_fraction
from ..sdp import (
    CompiledLmiSystem,
    LmiBlock,
    solve_lmi_barrier,
    solve_lmi_ellipsoid,
    svec_basis,
)
from ..sdp.generic import cut_fingerprint, sampled_cut
from ..smt import (
    Atom,
    Box,
    IcpSolver,
    IcpStatus,
    Relation,
    Var,
    affine_term,
    check_positive_definite_icp,
    quadratic_form_term,
    witness_point,
)

__all__ = [
    "CenteredLmi",
    "assemble_centered_lmi",
    "PiecewiseCertificate",
    "snap_certificate",
    "CertificateCheck",
    "CertificateVerification",
    "verify_certificate",
    "CegisWitness",
    "refute_certificate",
    "CegisRound",
    "CegisOutcome",
    "cegis_piecewise",
    "seed_directions",
]


# ----------------------------------------------------------------------
# Centered LMI assembly
# ----------------------------------------------------------------------
@dataclass
class CenteredLmi:
    """The centered continuous-encoding S-procedure LMI of one system.

    Decision layout: ``[svec(S0) | q (d+1) | U1 (3) | W1 (3)]`` where
    ``S0`` is the mode-0 *centered* quadratic, ``q`` the surface
    correction, and ``U1``/``W1`` the mode-1 S-procedure multipliers
    (the mode-0 conditions are unconditional after centering, so mode 0
    needs none).
    """

    system: object
    d: int
    da: int
    dim: int
    basis: list
    off_q: int
    off_u1: int
    off_w1: int
    #: exact rational mode-0 closed-loop equilibrium
    w0: list
    w0f: np.ndarray
    #: exact augmented surface vector (normal, offset), length ``da``
    g_exact: list
    g_bar: np.ndarray
    epsilon: float
    delta: float
    cap: float
    #: blocks the synthesizer always sees (mode-0, multipliers, cap)
    base_blocks: list
    #: the two hard mode-1 matrix blocks (sampled or kept whole)
    pos1: LmiBlock
    dec1: LmiBlock
    a1_bar: np.ndarray

    def blocks(self, synthesis: str = "full") -> list[LmiBlock]:
        """Synthesizer block list for ``synthesis`` in {"full","sampled"}."""
        if synthesis == "full":
            return self.base_blocks + [self.pos1, self.dec1]
        if synthesis == "sampled":
            return list(self.base_blocks)
        raise ValueError(f"unknown synthesis mode {synthesis!r}")


def assemble_centered_lmi(
    system,
    epsilon: float = 1e-3,
    delta: float = 1e-3,
    cap: float = 100.0,
) -> CenteredLmi:
    """Compile the centered continuous-encoding LMI for a 2-mode system.

    ``epsilon`` is the quadratic floor coefficient on the mode-1 blocks
    (``eps * (w - w0)^T (w - w0)`` in augmented form), ``delta`` the
    definiteness margin on the mode-0 blocks, and ``cap`` the
    normalization ``S0 ⪯ cap I`` that keeps the feasible cone bounded.
    """
    if len(system.modes) != 2:
        raise ValueError("centered CEGIS assembly needs exactly two modes")
    halfspaces = system.modes[0].region.halfspaces
    if len(halfspaces) != 1:
        raise ValueError("mode-0 region must be a single halfspace")
    d = system.dimension
    da = d + 1
    f0, f1 = system.modes[0].flow, system.modes[1].flow
    w0 = solve_vector(
        RationalMatrix.from_numpy(f0.a),
        [-to_fraction(x) for x in f0.b.tolist()],
    )
    w0f = np.array([float(x) for x in w0])
    h = halfspaces[0]
    g_exact = [to_fraction(x) for x in h.normal] + [to_fraction(h.offset)]
    g_bar = np.append(h.normal_float(), float(h.offset))
    basis = svec_basis(d)
    m_sym = len(basis)
    off_q = m_sym
    off_u1 = off_q + da
    off_w1 = off_u1 + 3
    dim = off_w1 + 3
    # P̄_0(x) = Z^T S0 Z with Z = [I, -w0]: V_0(w) = (w-w0)^T S0 (w-w0).
    z = np.hstack([np.eye(d), -w0f.reshape(-1, 1)])

    def zeros(n):
        return [np.zeros((n, n)) for _ in range(dim)]

    def p1_coefficients():
        out = zeros(da)
        for k, e in enumerate(basis):
            out[k] += z.T @ e @ z
        for k in range(da):
            sym = np.zeros((da, da))
            sym[:, k] += g_bar
            sym[k, :] += g_bar
            out[off_q + k] += sym
        return out

    def subtract_s_procedure(coefficients, offset):
        # Region 1 is the complement halfspace: s = -(g . w̄) >= 0 there.
        rows = [-g_bar, np.eye(da)[-1]]
        for var, r1, r2 in ((0, 0, 0), (1, 0, 1), (2, 1, 1)):
            term = np.outer(rows[r1], rows[r2])
            term = 0.5 * (term + term.T) * (2.0 if r1 != r2 else 1.0)
            coefficients[offset + var] -= term

    j_c = np.zeros((da, da))
    j_c[:d, :d] = np.eye(d)
    j_c[:d, d] = -w0f
    j_c[d, :d] = -w0f
    j_c[d, d] = float(w0f @ w0f)
    a1_bar = np.zeros((da, da))
    a1_bar[:d, :d] = f1.a
    a1_bar[:d, d] = f1.b

    base: list[LmiBlock] = []
    c = zeros(d)
    for k, e in enumerate(basis):
        c[k] += e
    base.append(LmiBlock(np.zeros((d, d)), c, margin=delta, name="pos0"))
    c = zeros(d)
    for k, e in enumerate(basis):
        c[k] += -(f0.a.T @ e + e @ f0.a)
    base.append(LmiBlock(np.zeros((d, d)), c, margin=delta, name="dec0"))
    for offset, prefix in ((off_u1, "u1"), (off_w1, "w1")):
        for k in range(3):
            c1 = [np.zeros((1, 1)) for _ in range(dim)]
            c1[offset + k][0, 0] = 1.0
            base.append(LmiBlock(np.zeros((1, 1)), c1, name=f"{prefix}[{k}]"))
    c = zeros(d)
    for k, e in enumerate(basis):
        c[k] -= e
    base.append(LmiBlock(cap * np.eye(d), c, name="cap"))

    c = p1_coefficients()
    subtract_s_procedure(c, off_u1)
    pos1 = LmiBlock(-epsilon * j_c, c, name="pos1")
    c = [-(a1_bar.T @ m + m @ a1_bar) for m in p1_coefficients()]
    subtract_s_procedure(c, off_w1)
    dec1 = LmiBlock(-epsilon * j_c, c, name="dec1")

    return CenteredLmi(
        system=system, d=d, da=da, dim=dim, basis=basis,
        off_q=off_q, off_u1=off_u1, off_w1=off_w1,
        w0=w0, w0f=w0f, g_exact=g_exact, g_bar=g_bar,
        epsilon=epsilon, delta=delta, cap=cap,
        base_blocks=base, pos1=pos1, dec1=dec1, a1_bar=a1_bar,
    )


def seed_directions(lmi: CenteredLmi) -> list[np.ndarray]:
    """Initial sample directions for the sampled-relaxation synthesizer.

    The augmented coordinate axes plus the two physically meaningful
    rays: the mode-0 equilibrium ``w̄_0`` and the mode-1 *virtual*
    equilibrium ``w̄_1`` (where the mode-1 decrease form is exactly
    singular — without sampling it, early iterates are refuted there
    every time).
    """
    seeds = [np.eye(lmi.da)[i] for i in range(lmi.da)]
    seeds.append(np.append(lmi.w0f, 1.0))
    f1 = lmi.system.modes[1].flow
    try:
        w1 = np.linalg.solve(f1.a, -f1.b)
    except np.linalg.LinAlgError:  # pragma: no cover - singular mode 1
        return seeds
    seeds.append(np.append(w1, 1.0))
    return seeds


# ----------------------------------------------------------------------
# Exact certificates
# ----------------------------------------------------------------------
@dataclass
class PiecewiseCertificate:
    """An exact rational piecewise-quadratic certificate candidate.

    ``p0_bar``/``p1_bar`` are the augmented quadratic matrices of the
    two modes (``V_i(w) = w̄^T P̄_i w̄``); with the ``"structured"``
    snap they satisfy ``P̄_1 = P̄_0 + sym(ḡ q^T)`` *identically*, so
    ``V_0 = V_1`` on the switching surface by construction.
    """

    s0: RationalMatrix
    q: list
    p0_bar: RationalMatrix
    p1_bar: RationalMatrix
    #: mode-1 S-procedure multipliers (positivity / decrease)
    u1: list
    w1: list
    #: the float iterate the certificate was snapped from
    x: np.ndarray
    sigfigs: int
    snap: str
    w0: list
    g: list

    def value(self, mode: int, point) -> Fraction:
        """Exact ``V_mode`` at a rational point ``w`` (length ``d``)."""
        p_bar = self.p0_bar if mode == 0 else self.p1_bar
        w_bar = [to_fraction(v) for v in point] + [Fraction(1)]
        return _augmented_value(p_bar, w_bar)

    def lie_value(self, mode: int, flow, point) -> Fraction:
        """Exact ``d/dt V_mode`` along ``flow`` at a rational point."""
        p_bar = self.p0_bar if mode == 0 else self.p1_bar
        d = len(self.w0)
        a_bar = _augmented_flow_exact(flow, d)
        lie = (a_bar.transpose() @ p_bar + p_bar @ a_bar).symmetrize()
        w_bar = [to_fraction(v) for v in point] + [Fraction(1)]
        return _augmented_value(lie, w_bar)

    def surface_defect(self) -> RationalMatrix:
        """``P̄_1 - P̄_0 - sym(ḡ q^T)`` — exactly zero iff continuity
        survived the snap (always, for the structured snap)."""
        da = self.p0_bar.rows
        correction = RationalMatrix(
            [
                [
                    self.g[i] * self.q[j] + self.q[i] * self.g[j]
                    for j in range(da)
                ]
                for i in range(da)
            ]
        )
        return (self.p1_bar - self.p0_bar - correction).symmetrize()


def _augmented_value(p_bar: RationalMatrix, w_bar: list) -> Fraction:
    total = Fraction(0)
    n = p_bar.rows
    for i in range(n):
        row = sum(p_bar[i, j] * w_bar[j] for j in range(n))
        total += w_bar[i] * row
    return total


def _augmented_flow_exact(flow, d: int) -> RationalMatrix:
    b = [to_fraction(v) for v in flow.b.tolist()]
    rows = [
        [to_fraction(flow.a[i, j]) for j in range(d)] + [b[i]]
        for i in range(d)
    ]
    rows.append([Fraction(0)] * (d + 1))
    return RationalMatrix(rows)


def snap_certificate(
    lmi: CenteredLmi,
    x: np.ndarray,
    sigfigs: int = 10,
    snap: str = "structured",
) -> PiecewiseCertificate:
    """Round a float iterate into an exact rational certificate.

    ``snap="structured"`` (the flip): round only ``S0`` and ``q``, then
    rebuild ``P̄_0`` from the exact equilibrium and ``P̄_1 = P̄_0 +
    sym(ḡ q^T)`` in rational arithmetic — surface continuity is exact
    by construction. ``snap="independent"`` reproduces the paper's
    protocol: the two augmented mode matrices are rounded separately,
    which generically breaks the surface identity and is why the
    Section VI-B.2 validation always fails.
    """
    d, da, basis = lmi.d, lmi.da, lmi.basis
    s0_float = sum(x[k] * e for k, e in enumerate(basis))
    q_float = x[lmi.off_q:lmi.off_q + da]
    u1 = [
        max(Fraction(0), to_fraction(round(float(v), 12)))
        for v in x[lmi.off_u1:lmi.off_u1 + 3]
    ]
    w1 = [
        max(Fraction(0), to_fraction(round(float(v), 12)))
        for v in x[lmi.off_w1:lmi.off_w1 + 3]
    ]
    s0 = RationalMatrix.from_numpy(s0_float).round_sigfigs(
        sigfigs
    ).symmetrize()
    q = [to_fraction(v) for v in np.round(q_float, sigfigs).tolist()]
    if snap == "structured":
        s0_w0 = [
            sum(s0[i, j] * lmi.w0[j] for j in range(d)) for i in range(d)
        ]
        p0_bar = RationalMatrix(
            [[s0[i, j] for j in range(d)] + [-s0_w0[i]] for i in range(d)]
            + [
                [-s0_w0[i] for i in range(d)]
                + [sum(lmi.w0[i] * s0_w0[i] for i in range(d))]
            ]
        )
        correction = RationalMatrix(
            [
                [
                    lmi.g_exact[i] * q[j] + q[i] * lmi.g_exact[j]
                    for j in range(da)
                ]
                for i in range(da)
            ]
        )
        p1_bar = (p0_bar + correction).symmetrize()
    elif snap == "independent":
        # Paper protocol: round each augmented mode matrix on its own.
        z = np.hstack([np.eye(d), -lmi.w0f.reshape(-1, 1)])
        p0_float = z.T @ s0_float @ z
        correction_float = np.outer(lmi.g_bar, q_float)
        p1_float = p0_float + correction_float + correction_float.T
        p0_bar = RationalMatrix.from_numpy(p0_float).round_sigfigs(
            sigfigs
        ).symmetrize()
        p1_bar = RationalMatrix.from_numpy(p1_float).round_sigfigs(
            sigfigs
        ).symmetrize()
    else:
        raise ValueError(f"unknown snap mode {snap!r}")
    return PiecewiseCertificate(
        s0=s0, q=q, p0_bar=p0_bar, p1_bar=p1_bar, u1=u1, w1=w1,
        x=np.asarray(x, dtype=float).copy(), sigfigs=sigfigs, snap=snap,
        w0=list(lmi.w0), g=list(lmi.g_exact),
    )


# ----------------------------------------------------------------------
# Sound verification (acceptance path)
# ----------------------------------------------------------------------
@dataclass
class CertificateCheck:
    """One verification condition: verdict plus refutation direction.

    ``proved`` records whether the verdict came from the sound
    sphere-ICP check (``True``) or only from the float eigenvalue
    screen (``False`` — refutations are allowed to stay float-cheap,
    acceptances are not).
    """

    name: str
    verdict: bool | None
    proved: bool = False
    boxes: int = 0
    direction: np.ndarray | None = None


@dataclass
class CertificateVerification:
    """Aggregate verification outcome of one certificate."""

    checks: list
    time: float = 0.0

    @property
    def valid(self) -> bool | None:
        verdicts = [c.verdict for c in self.checks]
        if all(v is True for v in verdicts):
            return True
        if any(v is False for v in verdicts):
            return False
        return None

    @property
    def failed(self) -> list:
        return [c for c in self.checks if c.verdict is not True]

    def verdict_map(self) -> dict:
        return {c.name: c.verdict for c in self.checks}


def _sphere_check(
    name: str,
    matrix: RationalMatrix,
    max_boxes: int,
    delta: float,
    backend: str,
    screen_tol: float = 1e-9,
) -> CertificateCheck:
    """Preconditioned sphere-ICP definiteness with a float fast-path.

    A float eigenvalue screen refutes hopeless matrices immediately
    (the min eigenvector is the refutation direction — exactly the cut
    the loop needs); only when the float spectrum is comfortably
    positive does the sound, exact-arithmetic check run: congruence by
    a snapped inverse-Cholesky factor (definiteness-preserving for any
    invertible rational ``T``), then the face-wise ICP proof.
    """
    n = matrix.rows
    matrix_float = np.array(
        [[float(matrix[i, j]) for j in range(n)] for i in range(n)]
    )
    eigenvalues, eigenvectors = np.linalg.eigh(matrix_float)
    if eigenvalues[0] < screen_tol:
        return CertificateCheck(
            name=name, verdict=False, proved=False,
            direction=eigenvectors[:, 0],
        )
    preconditioner = None
    try:
        chol = np.linalg.cholesky(matrix_float)
        preconditioner = RationalMatrix.from_numpy(
            np.linalg.inv(chol).T
        ).round_sigfigs(8)
        conditioned = (
            preconditioner.transpose() @ matrix @ preconditioner
        ).symmetrize()
    except np.linalg.LinAlgError:  # pragma: no cover - screen passed
        conditioned = matrix
    outcome = check_positive_definite_icp(
        conditioned, delta=delta, max_boxes=max_boxes, backend=backend
    )
    direction = None
    if outcome.verdict is not True:
        if outcome.counterexample is not None:
            direction = np.array(
                [float(outcome.counterexample[f"w{i}"]) for i in range(n)]
            )
            if preconditioner is not None:
                t_float = np.array(
                    [
                        [float(preconditioner[i, j]) for j in range(n)]
                        for i in range(n)
                    ]
                )
                direction = t_float @ direction
        else:
            direction = eigenvectors[:, 0]
    return CertificateCheck(
        name=name, verdict=outcome.verdict, proved=True,
        boxes=outcome.boxes_explored, direction=direction,
    )


def _s_procedure_matrix(lmi: CenteredLmi, multipliers: list) -> RationalMatrix:
    """``E^T M E`` for the region-1 rows ``E = [-ḡ ; e_last]`` exactly."""
    da = lmi.da
    g = [-v for v in lmi.g_exact]
    e_last = [Fraction(0)] * lmi.d + [Fraction(1)]
    rows = [g, e_last]
    out = RationalMatrix.zeros(da, da)
    for var, r1, r2 in ((0, 0, 0), (1, 0, 1), (2, 1, 1)):
        term = RationalMatrix(
            [
                [
                    rows[r1][i] * rows[r2][j]
                    + (rows[r1][j] * rows[r2][i] if r1 != r2 else 0)
                    for j in range(da)
                ]
                for i in range(da)
            ]
        )
        out = out + term.scale(to_fraction(multipliers[var]))
    return out.symmetrize()


def _distance_form_exact(lmi: CenteredLmi) -> RationalMatrix:
    """``J_c`` for the exact center ``w0``: ``(w-w0)^T(w-w0)`` augmented."""
    d = lmi.d
    rows = [
        [Fraction(1) if i == j else Fraction(0) for j in range(d)]
        + [-lmi.w0[i]]
        for i in range(d)
    ]
    rows.append(
        [-lmi.w0[i] for i in range(d)] + [sum(v * v for v in lmi.w0)]
    )
    return RationalMatrix(rows)


def verify_certificate(
    lmi: CenteredLmi,
    certificate: PiecewiseCertificate,
    max_boxes: int = 20_000,
    delta: float = 1e-7,
    backend: str = "auto",
) -> CertificateVerification:
    """Soundly verify a certificate via the S-procedure matrix blocks.

    The pointwise region-1 conditions follow from ``N_pos ⪰ eps J_c``
    and ``N_dec ⪰ eps J_c`` with exactly-nonnegative multipliers (the
    S-procedure), so verification never needs the intractable pointwise
    region queries — those stay in :func:`refute_certificate`. Checks:

    * ``surface``   — the continuity defect is exactly zero (rational);
    * ``multipliers`` — all six multipliers are exactly nonnegative;
    * ``pos0``/``dec0`` — ``S_0`` and ``-(A_0^T S_0 + S_0 A_0)`` are
      positive definite (``d``-dim sphere-ICP, preconditioned);
    * ``pos1``/``dec1`` — the two augmented S-procedure blocks are
      positive definite (``d+1``-dim sphere-ICP, preconditioned).
    """
    start = time.perf_counter()
    checks: list[CertificateCheck] = []
    defect = certificate.surface_defect()
    surface_ok = all(
        defect[i, j] == 0
        for i in range(defect.rows)
        for j in range(defect.cols)
    )
    checks.append(
        CertificateCheck(name="surface", verdict=surface_ok, proved=True)
    )
    multipliers_ok = all(
        v >= 0 for v in list(certificate.u1) + list(certificate.w1)
    )
    checks.append(
        CertificateCheck(
            name="multipliers", verdict=multipliers_ok, proved=True
        )
    )
    f0 = lmi.system.modes[0].flow
    a0 = RationalMatrix.from_numpy(f0.a)
    checks.append(
        _sphere_check("pos0", certificate.s0, max_boxes, delta, backend)
    )
    checks.append(
        _sphere_check(
            "dec0",
            (a0.transpose() @ certificate.s0 + certificate.s0 @ a0)
            .scale(-1)
            .symmetrize(),
            max_boxes,
            delta,
            backend,
        )
    )
    epsilon = to_fraction(lmi.epsilon)
    j_c = _distance_form_exact(lmi)
    n_pos = (
        certificate.p1_bar
        - _s_procedure_matrix(lmi, certificate.u1)
        - j_c.scale(epsilon)
    ).symmetrize()
    checks.append(_sphere_check("pos1", n_pos, max_boxes, delta, backend))
    a1_bar = _augmented_flow_exact(lmi.system.modes[1].flow, lmi.d)
    lie1 = (
        a1_bar.transpose() @ certificate.p1_bar
        + certificate.p1_bar @ a1_bar
    ).symmetrize()
    n_dec = (
        lie1.scale(-1)
        - _s_procedure_matrix(lmi, certificate.w1)
        - j_c.scale(epsilon)
    ).symmetrize()
    checks.append(_sphere_check("dec1", n_dec, max_boxes, delta, backend))
    return CertificateVerification(
        checks=checks, time=time.perf_counter() - start
    )


# ----------------------------------------------------------------------
# Pointwise refuter (witness path)
# ----------------------------------------------------------------------
@dataclass
class CegisWitness:
    """An exact refutation witness: point, condition, exact violation.

    ``violation`` is computed in rational arithmetic from the exact
    certificate (positive means the Lyapunov condition really fails at
    the point — the property suite asserts this for every witness the
    refuter emits).
    """

    condition: str
    point: dict
    violation: Fraction
    status: str

    def direction(self) -> np.ndarray:
        """The augmented ray ``w̄`` of the witness (for a sampled cut)."""
        names = sorted(self.point, key=lambda s: int(s[1:]))
        return np.array(
            [float(self.point[name]) for name in names] + [1.0]
        )


def refute_certificate(
    certificate: PiecewiseCertificate,
    system,
    box_radius: float = 12.0,
    max_boxes: int = 20_000,
    delta: float = 1e-6,
    backend: str = "auto",
    conditions: tuple = ("pos1", "dec1"),
) -> list[CegisWitness]:
    """Hunt pointwise counterexamples in the mode-1 region via ICP.

    Each query asks for a region-1 point where a Lyapunov condition
    *fails* (``V_1 <= 0`` or ``dV_1/dt >= 0``); a SAT answer yields an
    exact rational witness whose violation is re-derived with
    :mod:`repro.exact` arithmetic before it is trusted. Bounded budget:
    UNSAT/UNKNOWN answers simply produce no witness (the sound
    acceptance path is :func:`verify_certificate`, not this refuter).
    """
    d = len(certificate.w0)
    variables = [Var(f"w{i}") for i in range(d)]
    region = system.modes[1].region.to_atoms(variables)
    box = Box.cube([v.name for v in variables], -box_radius, box_radius)
    solver = IcpSolver(delta=delta, max_boxes=max_boxes, backend=backend)
    flow1 = system.modes[1].flow
    a1_bar = _augmented_flow_exact(flow1, d)
    lie1 = (
        a1_bar.transpose() @ certificate.p1_bar
        + certificate.p1_bar @ a1_bar
    ).symmetrize()
    queries = {
        "pos1": (_augmented_term(certificate.p1_bar, variables), 1),
        "dec1": (_augmented_term(lie1, variables), -1),
    }
    witnesses: list[CegisWitness] = []
    for condition in conditions:
        term, sign = queries[condition]
        # pos1 fails where V1 <= 0; dec1 fails where Lie V1 >= 0.
        query = Atom(term if sign > 0 else -term, Relation.LE)
        result = solver.check(region + [query], box)
        if result.status not in (IcpStatus.SAT, IcpStatus.DELTA_SAT):
            continue
        point = witness_point(result)
        if point is None:  # pragma: no cover - SAT always carries one
            continue
        matrix = certificate.p1_bar if condition == "pos1" else lie1
        w_bar = [point[f"w{i}"] for i in range(d)] + [Fraction(1)]
        value = _augmented_value(matrix, w_bar)
        violation = -value if condition == "pos1" else value
        witnesses.append(
            CegisWitness(
                condition=condition,
                point=point,
                violation=violation,
                status=result.status.name.lower(),
            )
        )
    return witnesses


def _augmented_term(p_bar: RationalMatrix, variables):
    """``w̄^T P̄ w̄`` as an SMT term over the state variables."""
    d = len(variables)
    quadratic = p_bar.submatrix(range(d), range(d))
    linear = [2 * p_bar[i, d] for i in range(d)]
    return quadratic_form_term(quadratic, variables) + affine_term(
        linear, variables, p_bar[d, d]
    )


# ----------------------------------------------------------------------
# The loop
# ----------------------------------------------------------------------
@dataclass
class CegisRound:
    """Provenance of one CEGIS round (synthesize, snap, verify, cut)."""

    index: int
    synth_iterations: int
    synth_time: float
    worst_violation: float
    polished: bool
    proved_infeasible: bool
    checks: dict = field(default_factory=dict)
    witnesses: int = 0
    new_cuts: list = field(default_factory=list)
    cut_total: int = 0
    verify_time: float = 0.0
    refute_time: float = 0.0


@dataclass
class CegisOutcome:
    """Result of a CEGIS campaign on one switched system.

    ``status`` is one of ``"validated"`` (sound certificate found),
    ``"infeasible"`` (the certifying ellipsoid proved the LMI empty —
    the paper's nominal-reference negative result), ``"stalled"``
    (refuted but no new cut available, e.g. the independent-rounding
    protocol whose surface defect no cut can repair) or
    ``"exhausted"`` (round budget spent).
    """

    status: str
    synthesis: str
    snap: str
    rounds: list
    certificate: PiecewiseCertificate | None
    cut_count: int
    total_time: float
    epsilon: float
    delta: float
    cap: float
    #: the accumulated sampled cut blocks (seed + refutation-derived) —
    #: kept on the outcome so soundness harnesses can re-evaluate them
    #: against known-feasible points (cuts must never exclude one).
    cuts: list = field(default_factory=list)

    @property
    def validated(self) -> bool:
        return self.status == "validated"

    def provenance(self) -> dict:
        """Deterministic structural provenance (digest input).

        Wall times, violation floats and solver iteration counts are
        excluded on purpose: the digest must be stable across reruns
        and across BLAS builds, so it covers only the decision
        structure — statuses, per-round verdicts, and the normalized
        cut fingerprints.
        """
        return {
            "status": self.status,
            "synthesis": self.synthesis,
            "snap": self.snap,
            "cut_count": self.cut_count,
            "rounds": [
                {
                    "index": r.index,
                    "proved_infeasible": r.proved_infeasible,
                    "checks": {
                        k: r.checks[k] for k in sorted(r.checks)
                    },
                    "witnesses": r.witnesses,
                    "new_cuts": [
                        [name, list(direction)]
                        for name, direction in r.new_cuts
                    ],
                    "cut_total": r.cut_total,
                }
                for r in self.rounds
            ],
        }

    def digest(self) -> str:
        """SHA-256 of the canonical provenance JSON."""
        payload = json.dumps(
            self.provenance(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def cegis_piecewise(
    system,
    synthesis: str = "sampled",
    snap: str = "structured",
    max_rounds: int = 40,
    sigfigs: int = 10,
    epsilon: float = 1e-3,
    delta: float = 1e-3,
    cap: float = 100.0,
    initial_radius: float = 200.0,
    max_iterations: int = 30_000,
    polish_outer: int = 60,
    target_margin: float = 0.5,
    verify_max_boxes: int = 20_000,
    verify_delta: float = 1e-7,
    refute: bool = False,
    refute_max_boxes: int = 20_000,
    refute_box_radius: float = 12.0,
    icp_backend: str = "auto",
    warm_start: bool = True,
    fingerprint_digits: int = 6,
    lmi: CenteredLmi | None = None,
) -> CegisOutcome:
    """Run the counterexample-guided loop on one 2-mode switched system.

    Per round: (1) synthesize over the current block set — the full
    matrix system (``synthesis="full"``) or the finite sampled
    relaxation (``"sampled"``) — with the deep-cut ellipsoid method
    warm-started from the previous round's iterate, polished by the
    level-shift barrier; (2) snap the iterate to an exact rational
    certificate; (3) soundly verify it (:func:`verify_certificate`);
    (4) on refutation, convert every counterexample direction (sphere
    check refutations, plus pointwise ICP witnesses when ``refute=``)
    into a sampled 1x1 cut, deduplicated by normalized-direction
    fingerprint, and resynthesize.

    An ellipsoid infeasibility proof short-circuits the loop with
    status ``"infeasible"`` — on the paper's nominal references this
    happens in round 1 with zero cuts, which is exactly the Section
    VI-B.2 negative result the regression suite pins.
    """
    start = time.perf_counter()
    if lmi is None:
        lmi = assemble_centered_lmi(
            system, epsilon=epsilon, delta=delta, cap=cap
        )
    cuts: list[LmiBlock] = []
    seen: set = set()
    if synthesis == "sampled":
        for direction in seed_directions(lmi):
            for block in (lmi.pos1, lmi.dec1):
                fingerprint = cut_fingerprint(
                    block.name, direction, digits=fingerprint_digits
                )
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                cuts.append(sampled_cut(block, direction))
    compiled = CompiledLmiSystem(lmi.blocks(synthesis), lmi.dim).with_cuts(
        cuts
    )
    rounds: list[CegisRound] = []
    certificate: PiecewiseCertificate | None = None
    previous_x: np.ndarray | None = None
    status = "exhausted"
    for index in range(1, max_rounds + 1):
        synth_start = time.perf_counter()
        result = solve_lmi_ellipsoid(
            compiled.blocks,
            dimension=lmi.dim,
            initial_radius=initial_radius,
            max_iterations=max_iterations,
            raise_on_infeasible=False,
            compiled=compiled,
            sweep_every=16,
            initial_center=previous_x if warm_start else None,
        )
        x = result.x
        polished = False
        if not result.proved_infeasible and polish_outer > 0:
            polish = solve_lmi_barrier(
                None,
                dimension=lmi.dim,
                radius=initial_radius,
                target_margin=target_margin,
                max_outer=polish_outer,
                initial=x,
                compiled=compiled,
            )
            if -polish.t_star <= result.worst_violation:
                x = polish.x
                polished = True
        synth_time = time.perf_counter() - synth_start
        record = CegisRound(
            index=index,
            synth_iterations=result.iterations,
            synth_time=synth_time,
            worst_violation=float(result.worst_violation),
            polished=polished,
            proved_infeasible=result.proved_infeasible,
            cut_total=len(cuts),
        )
        rounds.append(record)
        if result.proved_infeasible:
            status = "infeasible"
            break
        previous_x = x
        certificate = snap_certificate(lmi, x, sigfigs=sigfigs, snap=snap)
        verification = verify_certificate(
            lmi,
            certificate,
            max_boxes=verify_max_boxes,
            delta=verify_delta,
            backend=icp_backend,
        )
        record.checks = verification.verdict_map()
        record.verify_time = verification.time
        if verification.valid is True:
            status = "validated"
            break
        directions: list[tuple[str, np.ndarray]] = []
        for check in verification.failed:
            if check.direction is not None and check.name in (
                "pos1",
                "dec1",
            ):
                directions.append((check.name, check.direction))
        if refute:
            refute_start = time.perf_counter()
            witnesses = refute_certificate(
                certificate,
                system,
                box_radius=refute_box_radius,
                max_boxes=refute_max_boxes,
                backend=icp_backend,
            )
            record.refute_time = time.perf_counter() - refute_start
            record.witnesses = len(witnesses)
            for witness in witnesses:
                directions.append((witness.condition, witness.direction()))
        new_cuts: list[LmiBlock] = []
        for name, direction in directions:
            block = lmi.pos1 if name == "pos1" else lmi.dec1
            fingerprint = cut_fingerprint(
                block.name, direction, digits=fingerprint_digits
            )
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            new_cuts.append(sampled_cut(block, direction))
            record.new_cuts.append(fingerprint)
        if not new_cuts:
            status = "stalled"
            break
        cuts.extend(new_cuts)
        record.cut_total = len(cuts)
        compiled = compiled.with_cuts(new_cuts)
    return CegisOutcome(
        status=status,
        synthesis=synthesis,
        snap=snap,
        rounds=rounds,
        certificate=certificate,
        cut_count=len(cuts),
        total_time=time.perf_counter() - start,
        epsilon=lmi.epsilon,
        delta=lmi.delta,
        cap=lmi.cap,
        cuts=cuts,
    )
