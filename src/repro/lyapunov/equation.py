"""Lyapunov-equation synthesis: the ``eq-smt`` and ``eq-num`` methods.

Both solve ``A^T P + P A + Q = 0`` with ``Q = I`` (paper Eq. 7):

* ``eq-num`` calls the numeric Bartels--Stewart solver (the paper used
  python-control; we use SciPy's identical algorithm) — fast at every
  size.
* ``eq-smt`` solves the equation *symbolically over the rationals* by
  exact Gaussian elimination on the ``n(n+1)/2``-dimensional linear
  system in the entries of ``P``. Exact arithmetic on float-derived
  rationals blows up combinatorially, which is precisely the scaling
  failure Table I documents (timeouts at sizes 15 and 18); the solver
  therefore takes a deadline and raises :class:`SynthesisTimeout`.
"""

from __future__ import annotations

import time
from fractions import Fraction

import numpy as np
from scipy import linalg

from ..exact import RationalMatrix

__all__ = ["SynthesisTimeout", "solve_lyapunov_numeric", "solve_lyapunov_exact"]


class SynthesisTimeout(RuntimeError):
    """Raised when a synthesis method exceeds its time budget."""


def solve_lyapunov_numeric(
    a: np.ndarray, q: np.ndarray | None = None
) -> np.ndarray:
    """``eq-num``: Bartels--Stewart solve of ``A^T P + P A = -Q``."""
    a = np.asarray(a, dtype=float)
    if q is None:
        q = np.eye(a.shape[0])
    p = linalg.solve_continuous_lyapunov(a.T, -q)
    return 0.5 * (p + p.T)


def _sym_index(n: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(n) for j in range(i, n)]


def solve_lyapunov_exact(
    a: RationalMatrix,
    q: RationalMatrix | None = None,
    deadline: float | None = None,
) -> RationalMatrix:
    """``eq-smt``: exact rational solve of ``A^T P + P A = -Q``.

    ``deadline`` is a wall-clock budget in seconds; exceeding it raises
    :class:`SynthesisTimeout` (checked between elimination pivots, so
    overruns are bounded by one pivot's work).
    """
    if not a.is_square():
        raise ValueError("A must be square")
    n = a.rows
    if q is None:
        q = RationalMatrix.identity(n)
    start = time.perf_counter()

    def check_deadline() -> None:
        if deadline is not None and time.perf_counter() - start > deadline:
            raise SynthesisTimeout(
                f"exact Lyapunov solve exceeded {deadline:.1f}s at size {n}"
            )

    index = _sym_index(n)
    position = {pair: k for k, pair in enumerate(index)}
    m = len(index)
    # Assemble the linear system M p = rhs over the symmetric entries:
    # row (i, j):  sum_k A[k,i] P[k,j] + sum_k P[i,k] A[k,j] = -Q[i,j].
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    for i, j in index:
        check_deadline()
        row = [Fraction(0)] * m
        for k in range(n):
            coeff = a[k, i]
            if coeff:
                row[position[(min(k, j), max(k, j))]] += coeff
            coeff = a[k, j]
            if coeff:
                row[position[(min(i, k), max(i, k))]] += coeff
        rows.append(row)
        rhs.append(-q[i, j])

    # Exact Gaussian elimination with partial pivoting and a deadline
    # check per pivot column.
    aug = [row + [value] for row, value in zip(rows, rhs)]
    for col in range(m):
        check_deadline()
        pivot_row = max(range(col, m), key=lambda r: abs(aug[r][col]))
        if aug[pivot_row][col] == 0:
            raise ValueError("singular Lyapunov operator (A and -A share eigenvalues)")
        if pivot_row != col:
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        for r in range(col + 1, m):
            factor = aug[r][col] / pivot
            if factor == 0:
                continue
            row_r = aug[r]
            row_c = aug[col]
            for c in range(col, m + 1):
                row_r[c] -= factor * row_c[c]
    solution = [Fraction(0)] * m
    for row_index in range(m - 1, -1, -1):
        check_deadline()
        acc = aug[row_index][m]
        for c in range(row_index + 1, m):
            acc -= aug[row_index][c] * solution[c]
        solution[row_index] = acc / aug[row_index][row_index]

    entries = [[Fraction(0)] * n for _ in range(n)]
    for (i, j), value in zip(index, solution):
        entries[i][j] = value
        entries[j][i] = value
    return RationalMatrix(entries)
