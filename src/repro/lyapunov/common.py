"""Common quadratic Lyapunov functions for switched systems.

The paper's related-work section lists *common Lyapunov functions*
[Peleties & DeCarlo 1991] as the simplest certificate for a switched
system: a single ``P ≻ 0`` with ``A_i^T P + P A_i ≺ 0`` for every mode
simultaneously implies global asymptotic stability under arbitrary
switching. This module implements the joint LMI via the deep-cut
ellipsoid method, with the same tri-state outcome the rest of the
library uses: a certified solution, a *proof* of infeasibility within
the search radius, or budget exhaustion.

Note: for the case-study *closed-loop* homogeneous parts, a common
quadratic Lyapunov function concerns stability under arbitrary
switching — a strictly stronger property than the state-dependent
switching law needs, and a useful ablation target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..sdp import LmiBlock, solve_lmi_ellipsoid, svec_basis

__all__ = ["CommonLyapunovResult", "synthesize_common"]


@dataclass
class CommonLyapunovResult:
    """Outcome of the joint-LMI search (candidate + flags)."""
    p: np.ndarray
    feasible: bool
    proved_infeasible: bool
    iterations: int
    worst_violation: float
    synthesis_time: float = 0.0
    info: dict = field(default_factory=dict)


def synthesize_common(
    a_list: Sequence[np.ndarray],
    margin: float = 1e-3,
    radius_cap: float = 100.0,
    max_iterations: int = 60_000,
    initial_radius: float = 50.0,
) -> CommonLyapunovResult:
    """Search for one ``P`` certifying every mode at once.

    The feasibility system is normalized with ``P ⪯ radius_cap I`` and
    ``P ⪰ margin I``, so "infeasible" means: no common quadratic
    certificate with conditioning better than ``radius_cap / margin``.
    """
    matrices = [np.asarray(a, dtype=float) for a in a_list]
    if not matrices:
        raise ValueError("need at least one mode matrix")
    n = matrices[0].shape[0]
    for a in matrices:
        if a.shape != (n, n):
            raise ValueError("mode matrices must share a dimension")
    start = time.perf_counter()
    basis = svec_basis(n)
    dim = len(basis)
    blocks = [
        LmiBlock(
            -margin * np.eye(n), [e.copy() for e in basis], name="P>=mI"
        ),
        LmiBlock(
            radius_cap * np.eye(n), [-e.copy() for e in basis], name="P<=RI"
        ),
    ]
    for index, a in enumerate(matrices):
        blocks.append(
            LmiBlock(
                -margin * np.eye(n),
                [-(a.T @ e + e @ a) for e in basis],
                name=f"decay{index}",
            )
        )
    result = solve_lmi_ellipsoid(
        blocks,
        dimension=dim,
        initial_radius=initial_radius,
        max_iterations=max_iterations,
        raise_on_infeasible=False,
    )
    p = sum(x * e for x, e in zip(result.x, basis))
    p = 0.5 * (p + p.T)
    return CommonLyapunovResult(
        p=p,
        feasible=result.feasible,
        proved_infeasible=result.proved_infeasible,
        iterations=result.iterations,
        worst_violation=result.worst_violation,
        synthesis_time=time.perf_counter() - start,
        info={"modes": len(matrices), "dimension": dim},
    )
