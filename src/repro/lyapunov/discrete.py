"""Discrete-time Lyapunov synthesis and exact validation.

For a Schur-stable ``A_d`` (all eigenvalues inside the unit disc), a
quadratic Lyapunov function satisfies the *Stein* conditions

    P ≻ 0,        P - A_d^T P A_d ≻ 0.

Synthesis uses SciPy's discrete Lyapunov solver; validation routes the
two definiteness checks through the same exact validator registry the
continuous pipeline uses, so a verified discrete certificate carries the
same proof strength.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from ..exact import RationalMatrix
from .quadratic import LyapunovCandidate

if False:  # pragma: no cover - import-time cycle guard, typing only
    from ..validate.validators import ValidatorResult

__all__ = [
    "solve_stein_numeric",
    "synthesize_discrete",
    "validate_discrete_candidate",
]


def solve_stein_numeric(a: np.ndarray, q: np.ndarray | None = None) -> np.ndarray:
    """Solve ``A^T P A - P = -Q`` (defaults ``Q = I``)."""
    a = np.asarray(a, dtype=float)
    if q is None:
        q = np.eye(a.shape[0])
    p = linalg.solve_discrete_lyapunov(a.T, q)
    return 0.5 * (p + p.T)


def synthesize_discrete(a: np.ndarray) -> LyapunovCandidate:
    """A numeric discrete-time Lyapunov candidate for a Schur-stable A."""
    import time

    a = np.asarray(a, dtype=float)
    radius = float(np.abs(np.linalg.eigvals(a)).max())
    if radius >= 1.0:
        raise ValueError(
            f"A is not Schur stable (spectral radius {radius:.4g})"
        )
    start = time.perf_counter()
    p = solve_stein_numeric(a)
    return LyapunovCandidate(
        p=p,
        method="stein-num",
        synthesis_time=time.perf_counter() - start,
        info={"spectral_radius": radius},
    )


def validate_discrete_candidate(
    candidate: LyapunovCandidate,
    a: np.ndarray,
    sigfigs: int | None = 10,
    validator: str = "sylvester",
    **validator_options,
) -> tuple["ValidatorResult", "ValidatorResult"]:
    """Exactly check ``P ≻ 0`` and ``P - A^T P A ≻ 0``.

    Returns the two validator results; both must report ``valid`` for
    the candidate to certify Schur stability.
    """
    # Imported lazily: repro.validate itself imports repro.lyapunov.
    from ..validate.validators import run_validator

    p_exact = candidate.exact_p(sigfigs)
    a_exact = RationalMatrix.from_numpy(np.asarray(a, dtype=float))
    positivity = run_validator(validator, p_exact, **validator_options)
    stein = (p_exact - (a_exact.T @ p_exact @ a_exact)).symmetrize()
    decrease = run_validator(validator, stein, **validator_options)
    return positivity, decrease
