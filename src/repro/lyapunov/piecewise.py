"""Piecewise-quadratic Lyapunov synthesis for the switched system.

This is the paper's Section VI-B.2 experiment: attempt to certify the
*switched* closed loop with a piecewise-quadratic function

    V(w) = w_bar^T P_i w_bar    on region R_i,   w_bar = (w, 1),

synthesized from an S-procedure LMI system (Johansson--Rantzer style,
cf. Oehlerking Thm. 3.10) with two switching-surface encodings:

* ``continuous`` — ``P_1 = P_0 + g_bar q^T + q g_bar^T``: the values
  agree *exactly* on the surface ``g_bar . w_bar = 0``;
* ``relaxed``    — independent ``P_0, P_1`` with Finsler-multiplier
  non-increase constraints across the surface in both directions.

The LMI system is compiled once into stacked coefficient tensors
(:class:`repro.sdp.CompiledLmiSystem`) and solved by a configurable
pipeline: the certifying deep-cut ellipsoid method
(``solver="ellipsoid"``), the level-shift barrier
(``solver="barrier"``), or the default two-stage *hybrid* — an
ellipsoid burn-in (which keeps the power to *prove* infeasibility)
whose best iterate warm-starts a Newton barrier polish via
``initial=``, mirroring :func:`repro.sdp.solve_ipm`'s warm-start
machinery. Like the numerical solvers in the paper,
:func:`synthesize_piecewise` returns its best iterate as a *candidate*
even when convergence is not certified. Exact validation of the
surface condition then fails on rounded candidates — the negative
result the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..sdp import (
    CompiledLmiSystem,
    LmiBlock,
    solve_lmi_barrier,
    solve_lmi_ellipsoid,
    svec_basis,
)
from ..systems import PwaSystem

__all__ = ["PiecewiseCandidate", "synthesize_piecewise", "SOLVERS"]

ENCODINGS = ("continuous", "relaxed")
SOLVERS = ("hybrid", "ellipsoid", "barrier")


@dataclass
class PiecewiseCandidate:
    """A candidate piecewise-quadratic Lyapunov function (augmented form)."""

    p: list  # one (d+1) x (d+1) symmetric matrix per mode
    encoding: str
    feasible: bool
    iterations: int
    worst_violation: float
    synthesis_time: float = 0.0
    info: dict = field(default_factory=dict)

    @property
    def dimension(self) -> int:
        """The underlying (non-augmented) state dimension."""
        return self.p[0].shape[0] - 1

    def value(self, mode: int, w: np.ndarray) -> float:
        """``V_mode(w)`` evaluated on the augmented vector."""
        w_bar = np.append(np.asarray(w, dtype=float), 1.0)
        return float(w_bar @ self.p[mode] @ w_bar)


def _augmented_flow(system: PwaSystem, mode: int) -> np.ndarray:
    flow = system.modes[mode].flow
    d = flow.dimension
    out = np.zeros((d + 1, d + 1))
    out[:d, :d] = flow.a
    out[:d, d] = flow.b
    return out


def _surface_vector(system: PwaSystem) -> np.ndarray:
    """``g_bar`` with region 0 = {g_bar . w_bar > 0} (single half-space)."""
    halfspaces = system.modes[0].region.halfspaces
    if len(halfspaces) != 1:
        raise ValueError(
            "piecewise synthesis expects single-half-space regions "
            f"(mode 0 has {len(halfspaces)})"
        )
    h = halfspaces[0]
    return np.append(h.normal_float(), float(h.offset))


def _distance_form(w_star: np.ndarray) -> np.ndarray:
    """``||w - w*||^2`` as a quadratic form on the augmented vector."""
    d = len(w_star)
    out = np.zeros((d + 1, d + 1))
    out[:d, :d] = np.eye(d)
    out[:d, d] = -w_star
    out[d, :d] = -w_star
    out[d, d] = float(w_star @ w_star)
    return out


def synthesize_piecewise(
    system: PwaSystem,
    encoding: str = "continuous",
    epsilon: float = 1e-3,
    radius_scale: float = 100.0,
    max_iterations: int = 60_000,
    initial_radius: float = 50.0,
    tolerance: float = 1e-6,
    solver: str = "hybrid",
    oracle_batch: bool = True,
    sweep_every: int | None = 16,
    burn_in: int | None = None,
    polish_outer: int = 60,
) -> PiecewiseCandidate:
    """Set up and run the S-procedure LMI system for the switched loop.

    ``tolerance`` relaxes every block to ``F(x) ⪰ -tolerance I``. This
    mirrors the numerical SDP solvers the paper used: the Lyapunov
    decrease condition is *exactly* singular at the equilibrium
    direction, so a strictly feasible point does not exist and solvers
    accept a tolerance-feasible iterate — which exact validation then
    rejects (the paper's Section VI-B.2 observation).

    ``solver`` selects the engine:

    * ``"hybrid"`` (default) — ellipsoid burn-in (up to ``burn_in``
      iterations, default the full ``max_iterations`` budget, exiting
      early on feasibility or an infeasibility proof) followed by a
      warm-started barrier Newton polish of the best iterate
      (``polish_outer`` level-shift rounds). Keeps the ellipsoid's
      power to *prove* emptiness while the polish maximizes the
      candidate's joint margin;
    * ``"ellipsoid"`` — the certifying deep-cut method alone;
    * ``"barrier"`` — the level-shift candidate finder alone (negative
      best margin is evidence, not proof, of infeasibility).

    ``oracle_batch`` toggles the tensorized batched separation oracle
    (``False`` = the original per-block differential oracle), and
    ``sweep_every`` its active-set mode (full violation sweep every K
    iterations; ``None`` = every iteration). Phase wall times are
    reported in ``info["phases"]`` as ``compile_s`` (block construction
    + tensor compilation), ``oracle_s`` (ellipsoid) and ``polish_s``
    (barrier).
    """
    if solver not in SOLVERS:
        raise ValueError(f"solver must be one of {SOLVERS}")
    if encoding not in ENCODINGS:
        raise ValueError(f"encoding must be one of {ENCODINGS}")
    if system.n_modes != 2:
        raise ValueError("the case-study synthesis handles exactly two modes")
    start = time.perf_counter()
    d = system.dimension
    da = d + 1
    g_bar = _surface_vector(system)
    w_star = system.modes[0].flow.equilibrium()
    j_c = _distance_form(w_star)
    basis = svec_basis(da)
    m_sym = len(basis)

    # --- decision-vector layout ---------------------------------------
    # [ svec(P0) | svec(P1) or q | U0 (3) | U1 (3) | W0 (3) | W1 (3)
    #   | m1 (da) m2 (da) (relaxed only) ]
    offsets = {"p0": 0}
    cursor = m_sym
    if encoding == "continuous":
        offsets["q"] = cursor
        cursor += da
    else:
        offsets["p1"] = cursor
        cursor += m_sym
    for name in ("u0", "u1", "w0", "w1"):
        offsets[name] = cursor
        cursor += 3
    if encoding == "relaxed":
        offsets["m1"] = cursor
        cursor += da
        offsets["m2"] = cursor
        cursor += da
    dim = cursor

    def zero_coeffs() -> list[np.ndarray]:
        return [np.zeros((da, da)) for _ in range(dim)]

    def p_coefficients(mode: int, sign: float = 1.0) -> list[np.ndarray]:
        """Coefficient matrices of ``sign * P_mode`` in the decision vars."""
        coeffs = zero_coeffs()
        for k, e in enumerate(basis):
            coeffs[offsets["p0"] + k] += sign * e
        if mode == 1:
            if encoding == "continuous":
                for k in range(da):
                    sym = np.zeros((da, da))
                    sym[:, k] += g_bar
                    sym[k, :] += g_bar
                    coeffs[offsets["q"] + k] += sign * sym
            else:
                coeffs = zero_coeffs()
                for k, e in enumerate(basis):
                    coeffs[offsets["p1"] + k] += sign * e
        return coeffs

    def add_s_procedure(coeffs: list[np.ndarray], slot: str, mode: int) -> None:
        """Subtract ``E_i^T U E_i`` with ``E_i = [s*g_bar; e_last]``."""
        sign = 1.0 if mode == 0 else -1.0
        g = sign * g_bar
        e_last = np.zeros(da)
        e_last[-1] = 1.0
        rows = [g, e_last]
        # U = [[u0, u1], [u1, u2]] with entrywise-nonnegative entries.
        pairs = [(0, 0, 0), (1, 0, 1), (2, 1, 1)]
        for var, r1, r2 in pairs:
            term = np.outer(rows[r1], rows[r2])
            term = 0.5 * (term + term.T) * (2.0 if r1 != r2 else 1.0)
            coeffs[offsets[slot] + var] -= term

    blocks: list[LmiBlock] = []
    # (1) positivity on each region: P_i - E^T U_i E - eps*J_c >= 0.
    for mode in (0, 1):
        coeffs = p_coefficients(mode)
        add_s_procedure(coeffs, f"u{mode}", mode)
        blocks.append(
            LmiBlock(-epsilon * j_c, coeffs, margin=-tolerance, name=f"pos{mode}")
        )
    # (2) decrease along each mode's flow on its region.
    for mode in (0, 1):
        a_bar = _augmented_flow(system, mode)
        coeffs = p_coefficients(mode)
        coeffs = [-(a_bar.T @ c + c @ a_bar) for c in coeffs]
        add_s_procedure(coeffs, f"w{mode}", mode)
        blocks.append(
            LmiBlock(-epsilon * j_c, coeffs, margin=-tolerance, name=f"dec{mode}")
        )
    # (3) relaxed encoding: non-increase across the surface (Finsler).
    if encoding == "relaxed":
        for target, source, slot in ((1, 0, "m1"), (0, 1, "m2")):
            coeffs = [
                c_s - c_t
                for c_t, c_s in zip(
                    p_coefficients(target), p_coefficients(source)
                )
            ]
            for k in range(da):
                sym = np.zeros((da, da))
                sym[:, k] += g_bar
                sym[k, :] += g_bar
                coeffs[offsets[slot] + k] += sym
            blocks.append(
                LmiBlock(
                    np.zeros((da, da)), coeffs, margin=-tolerance, name=f"jump{slot}"
                )
            )
    # (4) multiplier nonnegativity (1x1 blocks).
    for slot in ("u0", "u1", "w0", "w1"):
        for k in range(3):
            coeffs_1 = [np.zeros((1, 1)) for _ in range(dim)]
            coeffs_1[offsets[slot] + k][0, 0] = 1.0
            blocks.append(
                LmiBlock(np.zeros((1, 1)), coeffs_1, name=f"{slot}[{k}]>=0")
            )
    # (5) boundedness: R*J_c-scale cap on each P (keeps the search bounded).
    cap = radius_scale * np.eye(da)
    for mode in (0, 1):
        coeffs = p_coefficients(mode, sign=-1.0)
        blocks.append(LmiBlock(cap, coeffs, name=f"cap{mode}"))

    compiled = CompiledLmiSystem(blocks, dim)
    phases = {
        "compile_s": time.perf_counter() - start,  # blocks + tensors
        "oracle_s": 0.0,
        "polish_s": 0.0,
    }

    # Like the paper's numerical solvers, keep the best iterate as a
    # *candidate* even when the LMI system is (provably) infeasible.
    polish_iterations = 0
    if solver in ("ellipsoid", "hybrid"):
        budget = max_iterations
        if solver == "hybrid" and burn_in is not None:
            budget = min(burn_in, max_iterations)
        phase_started = time.perf_counter()
        result = solve_lmi_ellipsoid(
            blocks,
            dimension=dim,
            initial_radius=initial_radius,
            max_iterations=budget,
            raise_on_infeasible=False,
            batch_oracle=oracle_batch,
            sweep_every=sweep_every if oracle_batch else None,
            compiled=compiled if oracle_batch else None,
        )
        phases["oracle_s"] = time.perf_counter() - phase_started
        x = result.x
        feasible = result.feasible
        iterations = result.iterations
        worst = result.worst_violation
        proved_infeasible = result.proved_infeasible
        if solver == "hybrid" and not proved_infeasible:
            # Polish phase: warm-start the barrier's Newton centering
            # from the burn-in iterate and keep whichever iterate has
            # the better joint margin (t_star = -worst violation).
            phase_started = time.perf_counter()
            polish = solve_lmi_barrier(
                None,
                dimension=dim,
                radius=initial_radius,
                target_margin=0.0,
                max_outer=polish_outer,
                initial=x,
                compiled=compiled,
            )
            phases["polish_s"] = time.perf_counter() - phase_started
            polish_iterations = polish.iterations
            if -polish.t_star <= worst:
                x = polish.x
                worst = -polish.t_star
                feasible = feasible or polish.feasible
    else:
        phase_started = time.perf_counter()
        barrier = solve_lmi_barrier(
            None,
            dimension=dim,
            radius=initial_radius,
            target_margin=0.0,
            compiled=compiled,
        )
        phases["polish_s"] = time.perf_counter() - phase_started
        x = barrier.x
        feasible = barrier.feasible
        iterations = barrier.iterations
        worst = -barrier.t_star
        proved_infeasible = False  # the barrier never proves emptiness

    def unpack(mode: int) -> np.ndarray:
        p = sum(
            x[offsets["p0"] + k] * e for k, e in enumerate(basis)
        )
        if mode == 1:
            if encoding == "continuous":
                q = x[offsets["q"] : offsets["q"] + da]
                p = p + np.outer(g_bar, q) + np.outer(q, g_bar)
            else:
                p = sum(
                    x[offsets["p1"] + k] * e for k, e in enumerate(basis)
                )
        return 0.5 * (p + p.T)

    elapsed = time.perf_counter() - start
    return PiecewiseCandidate(
        p=[unpack(0), unpack(1)],
        encoding=encoding,
        feasible=feasible,
        iterations=iterations,
        worst_violation=worst,
        synthesis_time=elapsed,
        info={
            "dimension": dim,
            "epsilon": epsilon,
            "proved_infeasible": proved_infeasible,
            "solver": solver,
            "oracle_batch": oracle_batch,
            "sweep_every": sweep_every,
            "polish_iterations": polish_iterations,
            "phases": phases,
        },
    )
