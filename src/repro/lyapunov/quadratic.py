"""Quadratic Lyapunov candidates.

A candidate is the numeric output of a synthesis method — a symmetric
matrix ``P`` defining ``V(w) = (w - w_eq)^T P (w - w_eq)`` — together
with provenance (method, backend, synthesis time). Candidates are
*not* trusted: they are rounded at a chosen number of significant
figures and handed to the exact validators in :mod:`repro.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exact import RationalMatrix

__all__ = ["LyapunovCandidate"]


@dataclass
class LyapunovCandidate:
    """A numerically synthesized quadratic Lyapunov function."""

    p: np.ndarray
    method: str
    backend: str | None = None
    synthesis_time: float = 0.0
    info: dict = field(default_factory=dict)

    def __post_init__(self):
        p = np.asarray(self.p, dtype=float)
        if p.ndim != 2 or p.shape[0] != p.shape[1]:
            raise ValueError("P must be square")
        self.p = 0.5 * (p + p.T)

    @property
    def dimension(self) -> int:
        """Dimension of ``P``."""
        return self.p.shape[0]

    @property
    def label(self) -> str:
        """``method/backend`` display label."""
        return f"{self.method}/{self.backend}" if self.backend else self.method

    # ------------------------------------------------------------------
    def value(self, w: np.ndarray, center: np.ndarray | None = None) -> float:
        """``V(w) = (w - center)^T P (w - center)`` (numeric)."""
        w = np.asarray(w, dtype=float)
        if center is not None:
            w = w - np.asarray(center, dtype=float)
        return float(w @ self.p @ w)

    def lie_matrix(self, a: np.ndarray) -> np.ndarray:
        """The derivative quadratic form ``A^T P + P A``."""
        a = np.asarray(a, dtype=float)
        return a.T @ self.p + self.p @ a

    def eigenvalue_range(self) -> tuple[float, float]:
        """``(min, max)`` eigenvalues of ``P`` (numeric)."""
        eigenvalues = np.linalg.eigvalsh(self.p)
        return float(eigenvalues[0]), float(eigenvalues[-1])

    # ------------------------------------------------------------------
    def exact_p(self, sigfigs: int | None = 10) -> RationalMatrix:
        """The candidate rounded at ``sigfigs`` significant figures.

        ``None`` keeps the exact binary values of the floats (no
        rounding at all) — useful for ablations.
        """
        exact = RationalMatrix.from_numpy(self.p).symmetrize()
        if sigfigs is None:
            return exact
        return exact.round_sigfigs(sigfigs).symmetrize()
