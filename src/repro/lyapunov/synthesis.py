"""The synthesis-method registry (paper Table I rows).

Six methods produce quadratic Lyapunov candidates for ``w' = A w``:

==============  ====================================================
``eq-smt``      exact rational solve of the Lyapunov equation
``eq-num``      Bartels--Stewart numeric solve
``modal``       ``P = (M^{-1})^dagger M^{-1}`` from a modal matrix
``lmi``         LMI feasibility (Eq. 9), backend-selectable
``lmi-alpha``   LMI with decay rate ``alpha`` (Eq. 10)
``lmi-alpha+``  LMI-alpha plus the eigenvalue floor ``P - nu I > 0``
==============  ====================================================

The LMI rows accept ``backend`` in ``{"ipm", "shift", "proj"}`` — the
stand-ins for the paper's CVXOPT / Mosek / SMCP columns (``ipm`` is
the size-sensitive expensive one, ``shift`` the fastest, ``proj`` the
boundary-hugging one whose candidates are fragile under rounding).
"""

from __future__ import annotations

import time

import numpy as np

from ..exact import RationalMatrix, fraction_to_float
from ..sdp import solve_lyapunov_lmi
from .equation import SynthesisTimeout, solve_lyapunov_exact, solve_lyapunov_numeric
from .modal import modal_lyapunov
from .quadratic import LyapunovCandidate

__all__ = [
    "METHODS",
    "LMI_METHODS",
    "DEFAULT_NU",
    "default_alpha",
    "synthesize",
    "SynthesisTimeout",
]

METHODS = ("eq-smt", "eq-num", "modal", "lmi", "lmi-alpha", "lmi-alpha+")
LMI_METHODS = ("lmi", "lmi-alpha", "lmi-alpha+")

#: The fixed eigenvalue floor of the ``lmi-alpha+`` method.
DEFAULT_NU = 1.0


def default_alpha(a: np.ndarray) -> float:
    """The fixed decay-rate parameter used for ``lmi-alpha(+)``.

    Half of the system's true decay rate ``-2 max Re(eig A)`` — always
    feasible, yet a nontrivial exponential-stability certificate.
    """
    abscissa = float(np.linalg.eigvals(np.asarray(a, dtype=float)).real.max())
    if abscissa >= 0:
        raise ValueError("A is not Hurwitz")
    return -abscissa


def synthesize(
    method: str,
    a: np.ndarray,
    backend: str = "ipm",
    alpha: float | None = None,
    nu: float | None = None,
    deadline: float | None = None,
    exact_a: RationalMatrix | None = None,
) -> LyapunovCandidate:
    """Run one synthesis method and time it.

    ``exact_a`` feeds ``eq-smt`` (defaults to the exact rationalization
    of ``a``). Raises :class:`SynthesisTimeout` when ``eq-smt`` blows
    its ``deadline``, and ``LmiInfeasibleError``/``ValueError`` when the
    method cannot produce a candidate.
    """
    a = np.asarray(a, dtype=float)
    start = time.perf_counter()
    info: dict = {}
    backend_used: str | None = None
    if method == "eq-smt":
        exact = exact_a if exact_a is not None else RationalMatrix.from_numpy(a)
        p_exact = solve_lyapunov_exact(exact, deadline=deadline)
        p = np.array(
            [[fraction_to_float(x) for x in row] for row in p_exact.tolist()]
        )
        info["exact"] = p_exact
    elif method == "eq-num":
        p = solve_lyapunov_numeric(a)
    elif method == "modal":
        p = modal_lyapunov(a)
    elif method in LMI_METHODS:
        if method == "lmi":
            alpha_used, nu_used = 0.0, None
        elif method == "lmi-alpha":
            alpha_used = default_alpha(a) if alpha is None else alpha
            nu_used = None
        else:
            alpha_used = default_alpha(a) if alpha is None else alpha
            nu_used = DEFAULT_NU if nu is None else nu
        solution = solve_lyapunov_lmi(
            a, alpha=alpha_used, nu=nu_used, backend=backend
        )
        p = solution.p
        backend_used = backend
        info.update(solution.info)
        info["alpha"] = alpha_used
        info["nu"] = nu_used
    else:
        raise KeyError(f"unknown synthesis method {method!r}; known: {METHODS}")
    elapsed = time.perf_counter() - start
    return LyapunovCandidate(
        p=p,
        method=method,
        backend=backend_used,
        synthesis_time=elapsed,
        info=info,
    )
