"""Front-end for the Lyapunov LMI solvers.

``solve_lyapunov_lmi`` dispatches to one of three hand-written backends
(the offline stand-ins for the paper's CVXOPT / Mosek / SMCP columns).
Measured roles on the case-study problems:

========  =======================================  ==========================
backend   algorithm                                measured role
========  =======================================  ==========================
``ipm``   analytic-center damped Newton            costliest, growing with
                                                   size (the CVXOPT/SMCP
                                                   column); best-conditioned
                                                   candidates
``shift`` shifted Lyapunov solve + scaling         fastest (Mosek role)
``proj``  alternating spectral projections         fast but boundary-hugging:
                                                   its candidates are the
                                                   fragile ones under
                                                   aggressive rounding
========  =======================================  ==========================

``best_alpha`` performs the bisection the paper alludes to for the
LMIalpha method: the largest decay rate for which the LMI stays
feasible, which for the Lyapunov family equals twice the spectral
abscissa of ``A`` (up to the bisection tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ipm import solve_ipm
from .problems import LmiInfeasibleError, LyapunovLmiProblem
from .proj import solve_proj
from .shift import solve_shift

__all__ = [
    "LmiSolution",
    "solve_lyapunov_lmi",
    "best_alpha",
    "prewarm_solver",
    "BACKENDS",
]

BACKENDS = {
    "ipm": solve_ipm,
    "shift": solve_shift,
    "proj": solve_proj,
}


@dataclass
class LmiSolution:
    """A solved Lyapunov LMI: candidate ``P`` plus backend metadata."""
    p: np.ndarray
    backend: str
    iterations: int
    info: dict

    @property
    def matrix(self) -> np.ndarray:
        """The candidate ``P`` (alias of ``p``)."""
        return self.p


def solve_lyapunov_lmi(
    a: np.ndarray,
    alpha: float = 0.0,
    nu: float | None = None,
    backend: str = "ipm",
    margin: float = 1e-6,
    **options,
) -> LmiSolution:
    """Solve the LMI family (9)/(10)/(10+floor) for a candidate ``P``.

    Raises
    ------
    LmiInfeasibleError
        When the problem has no strictly feasible point (e.g. ``A`` not
        Hurwitz, or ``alpha`` beyond the system's decay rate).
    KeyError
        For an unknown backend name.
    """
    if backend not in BACKENDS:
        raise KeyError(
            f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
        )
    problem = LyapunovLmiProblem(
        a=np.asarray(a, dtype=float), alpha=alpha, nu=nu, margin=margin
    )
    p, info = BACKENDS[backend](problem, **options)
    return LmiSolution(
        p=p, backend=backend, iterations=info.get("iterations", 0), info=info
    )


def prewarm_solver(n: int, alpha: float = 0.0) -> dict:
    """Populate the per-process caches that dominate cold-solve latency.

    Warms, for size ``n``: the svec basis tensor
    (:func:`repro.sdp.svec.basis_tensor`), the memoized Lyapunov
    coefficient tensor for the stable probe matrix ``-I`` (the key a
    backend's KKT assembly hits first), and — by screening the probe's
    analytic solution ``P = I`` — the one-off LAPACK/gufunc dispatch
    cost of the batched candidate screen. Idempotent and cheap once
    warm; the certification service's :class:`repro.service.WarmupTask`
    runs it in every fresh worker before the worker takes requests.

    Returns a small summary dict (``n``, ``svec_dim``, and the probe's
    ``(floor, decay)`` screen margins) so warm-up can be sanity-checked.
    """
    from .problems import screen_candidates
    from .svec import basis_tensor

    basis = basis_tensor(n)
    probe = LyapunovLmiProblem(a=-np.eye(n), alpha=float(alpha))
    probe.lyap_basis_tensor()
    [margins] = screen_candidates([(probe, np.eye(n))])
    return {"n": n, "svec_dim": basis.shape[0], "screen": margins}


def best_alpha(
    a: np.ndarray,
    tolerance: float = 1e-6,
    backend: str = "shift",
    with_info: bool = False,
) -> float | tuple[float, dict]:
    """Largest ``alpha`` with LMIalpha feasible, by bisection.

    The optimum is ``-2 * max Re(eig(A))``; the bisection exists to
    mirror how one finds it with a feasibility oracle only.

    With the ``ipm`` backend each bisection step is warm-started from
    the previous feasible solution (``initial=``), skipping that step's
    Phase I solve whenever the old center is still strictly feasible.
    ``with_info=True`` additionally returns the bookkeeping dict:
    ``steps``, ``iterations_total``, ``warm_started_steps`` (bisection
    steps that skipped Phase I), and ``iterations_saved`` (Newton
    iterations below the cold-start count of the first step, summed
    over the warm-started steps).
    """
    a = np.asarray(a, dtype=float)
    abscissa = float(np.linalg.eigvals(a).real.max())
    if abscissa >= 0:
        raise LmiInfeasibleError("A is not Hurwitz: every alpha is infeasible")
    low, high = 0.0, -4.0 * abscissa  # upper bound: strictly infeasible
    previous: np.ndarray | None = None
    cold_iterations: int | None = None
    info = {
        "steps": 0,
        "iterations_total": 0,
        "warm_started_steps": 0,
        "iterations_saved": 0,
    }
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        options = {}
        if backend == "ipm" and previous is not None:
            options["initial"] = previous
        try:
            solution = solve_lyapunov_lmi(
                a, alpha=mid, backend=backend, **options
            )
        except LmiInfeasibleError:
            high = mid
        else:
            low = mid
            previous = solution.p
            if solution.info.get("warm_start"):
                info["warm_started_steps"] += 1
                if cold_iterations is not None:
                    info["iterations_saved"] += max(
                        0, cold_iterations - solution.iterations
                    )
            elif cold_iterations is None:
                cold_iterations = solution.iterations
            info["iterations_total"] += solution.iterations
        info["steps"] += 1
    if with_info:
        return low, info
    return low
