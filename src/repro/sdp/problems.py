"""The Lyapunov LMI problem family (paper Section III-E).

Three problems are synthesized from the same data:

* ``LMI``      (Eq. 9):  find ``P = P^T`` with ``P > 0`` and
  ``A^T P + P A < 0``;
* ``LMIalpha`` (Eq. 10): additionally ``A^T P + P A + alpha P < 0``,
  yielding an exponential-stability certificate with rate ``alpha``;
* ``LMIalpha+``: additionally ``P - nu I > 0``, pushing the solution's
  eigenvalues up (better conditioned candidates).

Strict inequalities are handled with explicit margins: the solvers look
for ``P ⪰ (nu + margin) I`` and ``A^T P + P A + alpha P ⪯ -margin I``,
which is how SDP solvers realize strict LMIs in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = [
    "LyapunovLmiProblem",
    "LmiInfeasibleError",
    "lyap_basis_tensor",
    "lyapunov_lmi_blocks",
    "candidate_screen_blocks",
    "screen_candidates",
]


def _lyap_basis_tensor_dense(a: np.ndarray, alpha: float) -> np.ndarray:
    """Dense einsum assembly of the ``L(E_k)`` stack.

    Retained as the differential oracle for the sparse assembly below
    (the agreement test contracts both against random ``A``); the
    production path no longer calls it.
    """
    from .svec import basis_tensor

    basis = basis_tensor(a.shape[0])  # (m, n, n)
    return (
        np.einsum("ab,kbm->kam", a.T, basis)
        + np.einsum("kab,bm->kam", basis, a)
        + alpha * basis
    )


@lru_cache(maxsize=32)
def _lyap_basis_tensor(a_bytes: bytes, n: int, alpha: float) -> np.ndarray:
    """Stacked ``L(E_k) = A^T E_k + E_k A + alpha E_k`` over the svec basis.

    The ``(m, n, n)`` result is the compiled-tensor form of the Lyapunov
    operator: the interior-point KKT assembly contracts against it with
    einsums instead of building ``n^2 x n^2`` Kronecker products.
    Memoized on ``(A, alpha)`` — bisections over ``alpha`` and
    revalidation sweeps hit the same key repeatedly.

    Assembly exploits the svec-basis sparsity: ``E_k`` has at most two
    nonzero entries, so ``A^T E_k + E_k A`` is nonzero only in the rows
    and columns they touch — each block is two (or four) row/column
    updates from rows of ``A``, Θ(m·n) total instead of the Θ(m·n²)
    dense einsum contraction. On the 21-state PWA blocks (m = 231) the
    231 mostly-empty ``L(E_k)`` slabs assemble an order of magnitude
    faster, which matters because every ``alpha`` probe of the
    piecewise bisection compiles a fresh tensor.
    """
    from .svec import svec_dim

    a = np.frombuffer(a_bytes, dtype=float).reshape(n, n)
    m = svec_dim(n)
    out = np.zeros((m, n, n))
    v = 1.0 / np.sqrt(2.0)
    k = 0
    for i in range(n):
        # Diagonal unit E_ii: (A^T E)[:, i] = A[i, :] and
        # (E A)[i, :] = A[i, :].
        block = out[k]
        block[:, i] += a[i, :]
        block[i, :] += a[i, :]
        block[i, i] += alpha
        k += 1
        for j in range(i + 1, n):
            # Off-diagonal unit (E_ij + E_ji)/sqrt(2): one column and
            # one row update per nonzero entry.
            block = out[k]
            block[:, j] += v * a[i, :]
            block[:, i] += v * a[j, :]
            block[i, :] += v * a[j, :]
            block[j, :] += v * a[i, :]
            block[i, j] += alpha * v
            block[j, i] += alpha * v
            k += 1
    out.setflags(write=False)
    return out


def lyap_basis_tensor(a: np.ndarray, alpha: float = 0.0) -> np.ndarray:
    """Public entry to the memoized ``L(E_k)`` tensor for ``(A, alpha)``."""
    a = np.ascontiguousarray(a, dtype=float)
    return _lyap_basis_tensor(a.tobytes(), a.shape[0], float(alpha))


class LmiInfeasibleError(RuntimeError):
    """Raised by a backend that could not find a strictly feasible point."""


@dataclass(frozen=True)
class LyapunovLmiProblem:
    """Data for ``P ⪰ nu_eff I``, ``A^T P + P A + alpha P ⪯ -margin I``.

    Parameters
    ----------
    a:
        The (Hurwitz) system matrix.
    alpha:
        Exponential decay-rate parameter (0 for the plain LMI).
    nu:
        Eigenvalue floor for ``P`` (``LMIalpha+``); ``None`` gives the
        plain floor at ``margin``.
    margin:
        Strictness margin for both inequalities.
    """

    a: np.ndarray
    alpha: float = 0.0
    nu: float | None = None
    margin: float = 1e-6
    radius: float = field(default=1e6)

    def __post_init__(self):
        a = np.asarray(self.a, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("A must be square")
        if self.alpha < 0:
            raise ValueError("alpha must be nonnegative")
        if self.nu is not None and self.nu <= 0:
            raise ValueError("nu must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        object.__setattr__(self, "a", a)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Dimension of ``A`` (and of ``P``)."""
        return self.a.shape[0]

    @property
    def nu_effective(self) -> float:
        """The actual eigenvalue floor used for ``P``."""
        return (self.nu if self.nu is not None else 0.0) + self.margin

    @property
    def shifted_a(self) -> np.ndarray:
        """``A + (alpha/2) I`` — the LMIalpha constraint equals the plain
        Lyapunov inequality for this shifted matrix."""
        return self.a + 0.5 * self.alpha * np.eye(self.n)

    # ------------------------------------------------------------------
    def lyap_operator(self, p: np.ndarray) -> np.ndarray:
        """``L(P) = A^T P + P A + alpha P``."""
        return self.a.T @ p + p @ self.a + self.alpha * p

    def lyap_basis_tensor(self) -> np.ndarray:
        """The stacked ``L(E_k)`` tensor for this problem's ``(A, alpha)``.

        Compiled once per ``(A, alpha)`` (module-level memoization) and
        additionally cached on the problem object, so repeated KKT
        assemblies skip even the cache lookup.
        """
        cached = self.__dict__.get("_lyap_tensor")
        if cached is None:
            cached = lyap_basis_tensor(self.a, self.alpha)
            object.__setattr__(self, "_lyap_tensor", cached)
        return cached

    def constraint_margins(self, p: np.ndarray) -> tuple[float, float]:
        """``(floor_margin, decay_margin)`` — both must be >= 0 at a
        feasible point (computed against the strict margins)."""
        eig_p = np.linalg.eigvalsh(p)
        eig_l = np.linalg.eigvalsh(self.lyap_operator(p))
        return (
            float(eig_p.min() - self.nu_effective),
            float(-eig_l.max() - self.margin),
        )

    def is_strictly_feasible(self, p: np.ndarray, slack: float = 0.0) -> bool:
        """Both constraint margins nonnegative (up to ``slack``)."""
        floor_margin, decay_margin = self.constraint_margins(p)
        return floor_margin >= -slack and decay_margin >= -slack

    def residual(self, p: np.ndarray) -> float:
        """Worst constraint violation (0 when feasible)."""
        floor_margin, decay_margin = self.constraint_margins(p)
        return max(0.0, -floor_margin, -decay_margin)


def lyapunov_lmi_blocks(
    a: np.ndarray,
    alpha: float = 0.0,
    nu: float | None = None,
    margin: float = 1e-6,
) -> list:
    """The Lyapunov LMI family as explicit :class:`~repro.sdp.LmiBlock`\\ s.

    Expresses ``P ⪰ nu_eff I`` and ``-(A^T P + P A + alpha P) ⪰
    margin I`` over the svec coordinates of ``P``, the form the generic
    block-LMI engines (ellipsoid, barrier) consume. Used by the
    metamorphic fuzz layer to assert that feasibility verdicts are
    invariant under block reordering, and handy for composing the
    Lyapunov constraints into larger block systems.
    """
    from .generic import LmiBlock
    from .svec import basis_tensor

    problem = LyapunovLmiProblem(a=a, alpha=alpha, nu=nu, margin=margin)
    n = problem.n
    basis = basis_tensor(n)
    zero = np.zeros((n, n))
    floor = LmiBlock(
        f0=-(problem.nu_effective - problem.margin) * np.eye(n),
        coefficients=list(basis),
        margin=problem.margin,
        name="floor",
    )
    decay = LmiBlock(
        f0=zero,
        coefficients=[-l for l in problem.lyap_basis_tensor()],
        margin=problem.margin,
        name="decay",
    )
    return [floor, decay]


# ----------------------------------------------------------------------
# Batched candidate screening (the service layer's same-shape batching)
# ----------------------------------------------------------------------

def candidate_screen_blocks(problem: LyapunovLmiProblem, p: np.ndarray) -> list:
    """The fixed-candidate feasibility check of ``(problem, p)`` as blocks.

    With ``P`` fixed, the two Lyapunov constraints collapse to constant
    LMI blocks: ``P - nu_eff I ⪰ 0`` (at margin ``nu_effective``) and
    ``-(A^T P + P A + alpha P) ⪰ margin I``. Expressing them as
    :class:`~repro.sdp.LmiBlock`\\ s (decision dimension 1, zero
    coefficient) lets :class:`~repro.sdp.CompiledLmiSystem` stack many
    candidates' blocks by matrix size and resolve them in one batched
    eigh / Cholesky pass — NumPy's gufunc ``eigh`` applies LAPACK per
    stacked matrix, so the batched margins are bit-identical to
    screening each candidate alone through the same compiled path.
    """
    from .generic import LmiBlock

    p = np.asarray(p, dtype=float)
    n = problem.n
    if p.shape != (n, n):
        raise ValueError(f"candidate shape {p.shape} != ({n}, {n})")
    zero = np.zeros((n, n))
    floor = LmiBlock(
        f0=p, coefficients=[zero],
        margin=problem.nu_effective, name="floor",
    )
    decay = LmiBlock(
        f0=-problem.lyap_operator(p), coefficients=[zero],
        margin=problem.margin, name="decay",
    )
    return [floor, decay]


def screen_candidates(items) -> list[tuple[float, float]]:
    """Constraint margins for many ``(problem, p)`` pairs in one pass.

    Returns one ``(floor_margin, decay_margin)`` tuple per item —
    nonnegative means feasible, matching
    :meth:`LyapunovLmiProblem.constraint_margins` semantics (the
    eigenvalues here come from the compiled system's batched ``eigh``
    rather than ``eigvalsh``; both service paths — per-request and
    batched — route through this function, so their margins agree
    bit for bit).
    """
    from .generic import CompiledLmiSystem

    items = list(items)
    if not items:
        return []
    blocks = []
    for problem, p in items:
        blocks.extend(candidate_screen_blocks(problem, p))
    system = CompiledLmiSystem(blocks, dimension=1)
    violations = system.violations(np.zeros(1))
    return [
        (-float(violations[2 * i]), -float(violations[2 * i + 1]))
        for i in range(len(items))
    ]
