"""Alternating-projection backend for the Lyapunov LMI family.

A feasibility iteration in the spirit of von Neumann/Dykstra alternating
projections between the two convex sets

    C1 = { P : P ⪰ nu_eff I }            (spectral clamp)
    C2 = { P : L(P) ⪯ -margin I }        (clamp in the image of the
                                          Lyapunov operator, pulled back
                                          by a Bartels--Stewart solve)

``C1``-projection is the exact Frobenius projection (eigenvalue clamp).
For ``C2`` the exact metric projection has no closed form, so the
iteration clamps the eigenvalues of ``L(P)`` at ``-margin`` and pulls
the clamped matrix back through ``L^{-1}`` — a quasi-projection that
preserves the fixed-point set. On Hurwitz problems it converges in a
few sweeps, landing *on or near the constraint boundary*: the
candidates it returns are the most fragile under rounding (the
invalid-entry generator of the Table I sweep), the counterpart of the
paper's observation that some solver columns lose entries.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from .problems import LmiInfeasibleError, LyapunovLmiProblem

__all__ = ["solve_proj"]


def _clamp_floor(matrix: np.ndarray, floor: float) -> np.ndarray:
    """Frobenius projection onto ``{X : X ⪰ floor I}``."""
    eigenvalues, vectors = np.linalg.eigh(matrix)
    clamped = np.maximum(eigenvalues, floor)
    return (vectors * clamped) @ vectors.T


def _clamp_ceiling(matrix: np.ndarray, ceiling: float) -> np.ndarray:
    eigenvalues, vectors = np.linalg.eigh(matrix)
    clamped = np.minimum(eigenvalues, ceiling)
    return (vectors * clamped) @ vectors.T


def solve_proj(
    problem: LyapunovLmiProblem,
    max_sweeps: int = 500,
) -> tuple[np.ndarray, dict]:
    """Alternate spectral clamps until both LMI blocks are feasible."""
    a_s = problem.shifted_a
    if float(np.linalg.eigvals(a_s).real.max()) >= 0:
        raise LmiInfeasibleError("A + (alpha/2)I is not Hurwitz")
    n = problem.n
    p = np.eye(n)
    sweeps = 0
    for sweeps in range(1, max_sweeps + 1):
        # C2 quasi-projection: clamp the Lyapunov image, pull back.
        image = a_s.T @ p + p @ a_s
        clamped = _clamp_ceiling(image, -2.0 * problem.margin)
        p = linalg.solve_continuous_lyapunov(a_s.T, clamped)
        p = 0.5 * (p + p.T)
        # C1 projection: eigenvalue floor.
        p = _clamp_floor(p, 2.0 * problem.nu_effective)
        if problem.is_strictly_feasible(p):
            break
    else:
        raise LmiInfeasibleError(
            f"alternating projections did not converge in {max_sweeps} sweeps "
            f"(residual {problem.residual(p):.3g})"
        )
    info = {"backend": "proj", "iterations": sweeps, "residual": problem.residual(p)}
    return p, info
