"""Semidefinite programming / LMI solvers, written from scratch.

The paper solves its LMI problems through PICOS with CVXOPT, Mosek and
SMCP backends; none are available offline, so this package provides an
equivalent front-end (:func:`solve_lyapunov_lmi`) over three hand-built
backends with deliberately different cost/conditioning profiles, plus
two generic block-LMI engines (certifying deep-cut ellipsoid, fast
level-shift barrier) for the piecewise-quadratic S-procedure problems.
"""

from .barrier import BarrierResult, solve_lmi_barrier
from .generic import (
    CompiledLmiSystem,
    EllipsoidResult,
    LmiBlock,
    solve_lmi_ellipsoid,
)
from .ipm import solve_ipm
from .problems import (
    LmiInfeasibleError,
    LyapunovLmiProblem,
    candidate_screen_blocks,
    lyap_basis_tensor,
    lyapunov_lmi_blocks,
    screen_candidates,
)
from .proj import solve_proj
from .shift import solve_shift
from .solve import (
    BACKENDS,
    LmiSolution,
    best_alpha,
    prewarm_solver,
    solve_lyapunov_lmi,
)
from .svec import basis_matrix, basis_tensor, smat, svec, svec_basis, svec_dim

__all__ = [
    "LyapunovLmiProblem",
    "LmiInfeasibleError",
    "LmiSolution",
    "solve_lyapunov_lmi",
    "best_alpha",
    "prewarm_solver",
    "BACKENDS",
    "solve_ipm",
    "solve_shift",
    "solve_proj",
    "LmiBlock",
    "CompiledLmiSystem",
    "EllipsoidResult",
    "solve_lmi_ellipsoid",
    "BarrierResult",
    "solve_lmi_barrier",
    "lyap_basis_tensor",
    "lyapunov_lmi_blocks",
    "candidate_screen_blocks",
    "screen_candidates",
    "svec",
    "smat",
    "svec_dim",
    "svec_basis",
    "basis_matrix",
    "basis_tensor",
]
