"""Direct spectral-shift backend for the Lyapunov LMI family.

The LMIalpha constraint ``A^T P + P A + alpha P ⪯ -margin I`` is exactly
the Lyapunov inequality for the shifted matrix ``A_s = A + (alpha/2) I``.
When ``A_s`` is Hurwitz, ``P = lyap(A_s, Q)`` with any ``Q ≻ 0`` solves
it with *equality* ``A_s^T P + P A_s = -Q``; scaling ``P`` by ``c >= 1``
preserves the inequality while lifting the eigenvalue floor to satisfy
``P ⪰ nu_eff I``. This is the fastest backend (one Bartels--Stewart
solve plus one eigenvalue computation) and plays the role of the
commercial-solver column (Mosek) in the paper's tables.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from .problems import LmiInfeasibleError, LyapunovLmiProblem

__all__ = ["solve_shift"]


def solve_shift(
    problem: LyapunovLmiProblem, q: np.ndarray | None = None
) -> tuple[np.ndarray, dict]:
    """Solve the LMI by a shifted Lyapunov equation plus scaling."""
    a_s = problem.shifted_a
    eigenvalues = np.linalg.eigvals(a_s)
    spectral_abscissa = float(eigenvalues.real.max())
    if spectral_abscissa >= 0:
        raise LmiInfeasibleError(
            f"A + (alpha/2)I is not Hurwitz (abscissa {spectral_abscissa:.3g}): "
            "no P satisfies the decay constraint"
        )
    if q is None:
        q = np.eye(problem.n)
    # Bartels--Stewart: A_s^T P + P A_s = -Q.
    p = linalg.solve_continuous_lyapunov(a_s.T, -q)
    p = 0.5 * (p + p.T)
    floor = float(np.linalg.eigvalsh(p).min())
    if floor <= 0:
        # Numerically possible for nearly-unstable A_s.
        raise LmiInfeasibleError("Lyapunov solve returned a non-PD matrix")
    # Scale so that lambda_min(P) >= nu_eff. Scaling by c >= 1 keeps
    # A_s^T P + P A_s = -c Q <= -margin I provided Q >= I-ish; rescale Q
    # margin too by working against lambda_min(Q).
    q_floor = float(np.linalg.eigvalsh(q).min())
    if q_floor <= 0:
        raise ValueError("Q must be positive definite")
    scale = max(
        1.0,
        problem.nu_effective / floor,
        problem.margin / q_floor,
    )
    p = scale * p
    info = {
        "backend": "shift",
        "iterations": 1,
        "scale": scale,
        "spectral_abscissa": spectral_abscissa,
    }
    return p, info
