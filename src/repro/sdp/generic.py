"""Generic LMI feasibility via the deep-cut ellipsoid method.

Solves feasibility problems of the form

    find x in R^d  such that  F_j(x) := F_j0 + sum_i x_i F_ji  ≻  margin_j I
                              for every block j,

which is the shape of the piecewise-quadratic S-procedure synthesis
problems (Section VI-B.2 of the paper): the decision vector collects the
entries of several ``P_i`` matrices and the S-procedure multipliers.

The ellipsoid method needs only a separation oracle: at an infeasible
``x``, the most-violated block has a unit eigenvector ``v`` with
``v^T F_j(x) v < margin_j``, and ``g_i = -v^T F_ji v`` defines a valid
deep cut. Convergence is geometric in volume — slow but extremely
robust, matching the role this solver plays (candidates for a problem
the paper reports as numerically delicate).

The oracle has two implementations:

* the *tensorized* one (default): every block is compiled once into a
  stacked ``(d, n, n)`` coefficient tensor (:class:`CompiledLmiSystem`),
  same-sized blocks are batched, and one iteration is a handful of
  einsum / batched-``eigh`` calls. A Cholesky screen skips the
  eigendecomposition of block groups that are already feasible, and an
  optional *active-set* mode (``sweep_every=K``) re-checks only the
  recently violated blocks between full sweeps;
* the original per-block Python loop (``batch_oracle=False``), kept as
  the differential oracle the property suite compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .problems import LmiInfeasibleError

__all__ = [
    "LmiBlock",
    "CompiledLmiSystem",
    "EllipsoidResult",
    "solve_lmi_ellipsoid",
    "sampled_cut",
    "cut_fingerprint",
]


@dataclass
class LmiBlock:
    """One constraint ``F0 + sum_i x_i F[i] ⪰ margin I`` (symmetric data)."""

    f0: np.ndarray
    coefficients: list[np.ndarray]
    margin: float = 0.0
    name: str = ""

    def __post_init__(self):
        self.f0 = np.asarray(self.f0, dtype=float)
        self.coefficients = [np.asarray(f, dtype=float) for f in self.coefficients]
        size = self.f0.shape[0]
        for f in self.coefficients:
            if f.shape != (size, size):
                raise ValueError("coefficient block size mismatch")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """``F0 + sum_i x_i F_i`` at the point ``x``."""
        matrix = self.f0.copy()
        for value, coefficient in zip(x, self.coefficients):
            if value:
                matrix += value * coefficient
        return matrix

    def violation(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        """``(margin - lambda_min, eigenvector)`` — positive means violated."""
        matrix = self.evaluate(x)
        eigenvalues, vectors = np.linalg.eigh(matrix)
        return self.margin - float(eigenvalues[0]), vectors[:, 0]


def sampled_cut(
    block: LmiBlock, vector: np.ndarray, name: str = ""
) -> LmiBlock:
    """Restrict ``block`` to one direction: ``v^T F(x) v >= margin |v|^2``.

    The returned 1x1 block is *implied* by the matrix constraint, so
    adding it never excludes a point that is margin-feasible for the
    original block — the soundness invariant the CEGIS metamorphic
    fuzz check pins. The direction is normalized so cut fingerprints
    (:func:`cut_fingerprint`) are scale-invariant.
    """
    v = np.asarray(vector, dtype=float)
    norm = float(np.linalg.norm(v))
    if norm <= 0.0 or not np.isfinite(norm):
        raise ValueError("sampled_cut needs a nonzero finite direction")
    v = v / norm
    f0 = np.array([[float(v @ block.f0 @ v)]])
    coefficients = [
        np.array([[float(v @ f @ v)]]) for f in block.coefficients
    ]
    return LmiBlock(
        f0,
        coefficients,
        margin=block.margin,
        name=name or (f"cut:{block.name}" if block.name else "cut"),
    )


def cut_fingerprint(
    block_name: str, vector: np.ndarray, digits: int = 6
) -> tuple:
    """Hashable identity of a sampled cut: block + normalized direction.

    Directions are normalized to unit length, sign-canonicalized (the
    first nonzero component made positive — ``v`` and ``-v`` induce the
    same quadratic cut) and rounded to ``digits`` decimals, so
    near-identical witnesses from different refutation rounds collapse
    to one fingerprint and the loop cannot stall re-adding them.
    """
    v = np.asarray(vector, dtype=float)
    norm = float(np.linalg.norm(v))
    if norm > 0.0 and np.isfinite(norm):
        v = v / norm
    rounded = np.round(v, digits) + 0.0  # fold -0.0 into +0.0
    for component in rounded:
        if component != 0.0:
            if component < 0.0:
                rounded = -rounded + 0.0
            break
    return (block_name, tuple(float(c) for c in rounded))


@dataclass
class _BlockGroup:
    """Same-sized blocks stacked for batched evaluation."""

    size: int
    indices: np.ndarray  # original block indices, shape (B,)
    f0: np.ndarray  # (B, n, n)
    tensor: np.ndarray  # (B, d, n, n)
    margins: np.ndarray  # (B,)
    eye: np.ndarray  # (n, n), shared identity


class CompiledLmiSystem:
    """An LMI block system precompiled into stacked coefficient tensors.

    Each block's coefficient list becomes one ``(d, n, n)`` tensor, and
    blocks of identical matrix size are grouped so the separation oracle
    evaluates them with a single ``tensordot`` and (when needed) one
    batched ``eigh`` per group instead of a Python loop per block.
    """

    def __init__(self, blocks: list[LmiBlock], dimension: int):
        if not blocks:
            raise ValueError(
                "cannot compile an empty LMI system: at least one "
                "LmiBlock is required"
            )
        if dimension < 1:
            raise ValueError("dimension must be positive")
        for block in blocks:
            if len(block.coefficients) != dimension:
                raise ValueError(
                    f"block {block.name!r} has {len(block.coefficients)} "
                    f"coefficients, expected {dimension}"
                )
        self.blocks = list(blocks)
        self.dimension = int(dimension)
        by_size: dict[int, list[int]] = {}
        for index, block in enumerate(blocks):
            by_size.setdefault(block.f0.shape[0], []).append(index)
        self.groups: list[_BlockGroup] = []
        #: block index -> (group position in self.groups, row within group)
        self._where = np.empty((len(blocks), 2), dtype=int)
        for position, (size, indices) in enumerate(sorted(by_size.items())):
            self.groups.append(
                _BlockGroup(
                    size=size,
                    indices=np.asarray(indices, dtype=int),
                    f0=np.stack([blocks[i].f0 for i in indices]),
                    tensor=np.stack(
                        [np.stack(blocks[i].coefficients) for i in indices]
                    ),
                    margins=np.array(
                        [blocks[i].margin for i in indices], dtype=float
                    ),
                    eye=np.eye(size),
                )
            )
            for row, index in enumerate(indices):
                self._where[index] = (position, row)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def with_cuts(self, cuts: list[LmiBlock]) -> "CompiledLmiSystem":
        """A new compiled system with ``cuts`` appended.

        Group tensors for sizes untouched by the cuts are shared with
        ``self`` (no re-stacking); only the groups whose size gains a
        block are rebuilt. This keeps per-round recompilation in a
        CEGIS loop proportional to the number of cuts, not to the size
        of the base system.
        """
        if not cuts:
            return self
        for cut in cuts:
            if len(cut.coefficients) != self.dimension:
                raise ValueError(
                    f"cut {cut.name!r} has {len(cut.coefficients)} "
                    f"coefficients, expected {self.dimension}"
                )
        combined = CompiledLmiSystem.__new__(CompiledLmiSystem)
        combined.blocks = self.blocks + list(cuts)
        combined.dimension = self.dimension
        touched = {cut.f0.shape[0] for cut in cuts}
        by_size: dict[int, list[int]] = {}
        for index, block in enumerate(combined.blocks):
            by_size.setdefault(block.f0.shape[0], []).append(index)
        reusable = {group.size: group for group in self.groups}
        combined.groups = []
        combined._where = np.empty((len(combined.blocks), 2), dtype=int)
        for position, (size, indices) in enumerate(sorted(by_size.items())):
            if size not in touched and size in reusable:
                old = reusable[size]
                group = _BlockGroup(
                    size=size,
                    indices=np.asarray(indices, dtype=int),
                    f0=old.f0,
                    tensor=old.tensor,
                    margins=old.margins,
                    eye=old.eye,
                )
            else:
                group = _BlockGroup(
                    size=size,
                    indices=np.asarray(indices, dtype=int),
                    f0=np.stack(
                        [combined.blocks[i].f0 for i in indices]
                    ),
                    tensor=np.stack(
                        [
                            np.stack(combined.blocks[i].coefficients)
                            for i in indices
                        ]
                    ),
                    margins=np.array(
                        [combined.blocks[i].margin for i in indices],
                        dtype=float,
                    ),
                    eye=np.eye(size),
                )
            combined.groups.append(group)
            for row, index in enumerate(indices):
                combined._where[index] = (position, row)
        return combined

    # ------------------------------------------------------------------
    def _group_values(
        self, group: _BlockGroup, x: np.ndarray, rows: np.ndarray | None
    ) -> np.ndarray:
        """``F_j(x)`` for the (selected rows of the) group, shape (B, n, n)."""
        f0 = group.f0 if rows is None else group.f0[rows]
        tensor = group.tensor if rows is None else group.tensor[rows]
        return f0 + np.tensordot(x, tensor, axes=([0], [1]))

    @staticmethod
    def _group_min_eigen(
        group: _BlockGroup, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched ``(lambda_min, eigenvector)`` per stacked matrix."""
        if group.size == 1:
            return values[:, 0, 0], np.ones((values.shape[0], 1))
        eigenvalues, vectors = np.linalg.eigh(values)
        return eigenvalues[:, 0], vectors[:, :, 0]

    def evaluate(self, index: int, x: np.ndarray) -> np.ndarray:
        """``F_j(x)`` of one block via its compiled tensor (``f0 + x·F``)."""
        position, row = self._where[index]
        group = self.groups[position]
        return group.f0[row] + np.tensordot(
            x, group.tensor[row], axes=([0], [0])
        )

    def violations(self, x: np.ndarray) -> np.ndarray:
        """All block violations ``margin - lambda_min`` in block order."""
        out = np.empty(self.n_blocks)
        for group in self.groups:
            values = self._group_values(group, x, None)
            lambda_min, _ = self._group_min_eigen(group, values)
            out[group.indices] = group.margins - lambda_min
        return out

    def gradient(self, index: int, vector: np.ndarray) -> np.ndarray:
        """Deep-cut gradient ``g_i = -v^T F_ji v`` for block ``index``."""
        position, row = self._where[index]
        tensor = self.groups[position].tensor[row]
        return -np.einsum("inm,n,m->i", tensor, vector, vector)

    def oracle(
        self, x: np.ndarray, active: np.ndarray | None = None
    ) -> tuple[float, np.ndarray, int, np.ndarray]:
        """Most-violated block over the (active subset of) blocks.

        Returns ``(worst, eigenvector, block_index, violations)`` where
        ``violations`` holds ``margin - lambda_min`` per block in
        original order (``-inf`` for blocks that were skipped: inactive
        ones, and — only when some *other* block is violated — blocks
        whose group passed the Cholesky feasibility screen, so their
        exact eigenvalues were never needed).

        A group whose shifted stack ``F_j(x) - margin_j I`` admits a
        batched Cholesky factorization is feasible throughout, so its
        eigendecomposition is skipped entirely; when every group passes
        (the converged case) one exact eigen pass confirms feasibility
        and reports the true worst violation.
        """
        violations = np.full(self.n_blocks, -np.inf)
        vectors: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        screened: list[tuple[int, np.ndarray | None, np.ndarray]] = []
        for position, group in enumerate(self.groups):
            rows: np.ndarray | None = None
            if active is not None:
                mask = active[group.indices]
                if not mask.any():
                    continue
                rows = np.nonzero(mask)[0]
            values = self._group_values(group, x, rows)
            margins = group.margins if rows is None else group.margins[rows]
            shifted = values - margins[:, None, None] * group.eye
            try:
                np.linalg.cholesky(shifted)
            except np.linalg.LinAlgError:
                pass
            else:  # whole group strictly feasible: skip its eigh for now
                screened.append((position, rows, values))
                continue
            lambda_min, group_vectors = self._group_min_eigen(group, values)
            indices = (
                group.indices if rows is None else group.indices[rows]
            )
            violations[indices] = margins - lambda_min
            vectors[position] = (indices, group_vectors)
        if not vectors or violations.max() <= 0.0:
            # Nothing violated among the eigendecomposed groups: resolve
            # the screened groups exactly so the reported worst (and the
            # feasibility verdict) matches the per-block oracle.
            for position, rows, values in screened:
                group = self.groups[position]
                lambda_min, group_vectors = self._group_min_eigen(
                    group, values
                )
                margins = (
                    group.margins if rows is None else group.margins[rows]
                )
                indices = (
                    group.indices if rows is None else group.indices[rows]
                )
                violations[indices] = margins - lambda_min
                vectors[position] = (indices, group_vectors)
        worst_index = int(np.argmax(violations))
        worst = float(violations[worst_index])
        position = int(self._where[worst_index][0])
        indices, group_vectors = vectors[position]
        vector = group_vectors[int(np.nonzero(indices == worst_index)[0][0])]
        return worst, vector, worst_index, violations


@dataclass
class EllipsoidResult:
    """Outcome of an ellipsoid-method run (best iterate + flags)."""
    x: np.ndarray
    feasible: bool
    iterations: int
    worst_violation: float
    history: list[float] = field(default_factory=list)
    proved_infeasible: bool = False


def solve_lmi_ellipsoid(
    blocks: list[LmiBlock],
    dimension: int,
    initial_radius: float = 1e3,
    max_iterations: int = 50_000,
    record_history: bool = False,
    raise_on_infeasible: bool = True,
    batch_oracle: bool = True,
    sweep_every: int | None = None,
    compiled: CompiledLmiSystem | None = None,
    initial_center: np.ndarray | None = None,
) -> EllipsoidResult:
    """Run the deep-cut ellipsoid method until feasibility or collapse.

    ``batch_oracle`` selects the tensorized separation oracle (compiled
    coefficient tensors, batched ``eigh``, Cholesky feasibility screen);
    ``False`` runs the original per-block Python loop, kept as the
    differential oracle. ``sweep_every=K`` (tensorized oracle only)
    enables active-set mode: between full sweeps, only the blocks that
    were violated at the last full sweep are re-checked, with a full
    sweep forced every ``K`` iterations and before any feasibility or
    best-iterate claim. ``compiled`` reuses an existing
    :class:`CompiledLmiSystem` (e.g. shared with the barrier polisher)
    instead of compiling ``blocks`` again. ``initial_center`` recenters
    the starting ellipsoid (default: the origin) — the CEGIS loop's
    resynthesis warm start, which keeps the initial ball around the
    previous round's near-feasible iterate. Note the infeasibility
    certificate (cut depth >= 1) then covers the ball around *that*
    center.

    Raises :class:`LmiInfeasibleError` when the ellipsoid volume shrinks
    below the point where any feasible set of nontrivial volume would
    have been found.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    if not blocks:
        raise ValueError(
            "solve_lmi_ellipsoid needs at least one LmiBlock "
            "(got an empty block list)"
        )
    for block in blocks:
        if len(block.coefficients) != dimension:
            raise ValueError(
                f"block {block.name!r} has {len(block.coefficients)} "
                f"coefficients, expected {dimension}"
            )
    system: CompiledLmiSystem | None = None
    if batch_oracle:
        system = compiled if compiled is not None else CompiledLmiSystem(
            blocks, dimension
        )
    if initial_center is None:
        x = np.zeros(dimension)
    else:
        x = np.asarray(initial_center, dtype=float).copy()
        if x.shape != (dimension,):
            raise ValueError(
                f"initial_center has shape {x.shape}, expected "
                f"({dimension},)"
            )
    shape = (initial_radius**2) * np.eye(dimension)  # ellipsoid matrix
    history: list[float] = []
    best_x = x.copy()
    best_violation = np.inf
    d = float(dimension)
    active: np.ndarray | None = None
    since_sweep = 0
    for iteration in range(1, max_iterations + 1):
        if system is not None:
            full_sweep = (
                sweep_every is None
                or active is None
                or since_sweep >= sweep_every
            )
            worst, gradient_vector, worst_index, violations = system.oracle(
                x, active=None if full_sweep else active
            )
            if not full_sweep and worst <= 0.0:
                # The active subset is satisfied; confirm on everything.
                full_sweep = True
                worst, gradient_vector, worst_index, violations = (
                    system.oracle(x)
                )
            if full_sweep:
                since_sweep = 0
                if sweep_every is not None:
                    active = violations > 0.0
                    active[worst_index] = True
            else:
                since_sweep += 1
        else:
            full_sweep = True
            worst, gradient_vector, worst_block = _most_violated(blocks, x)
        if record_history:
            history.append(worst)
        # Partial (active-set) sweeps underestimate the true violation,
        # so the best-iterate bookkeeping only trusts full sweeps.
        if full_sweep and worst < best_violation:
            best_violation = worst
            best_x = x.copy()
        if worst <= 0.0:
            return EllipsoidResult(x, True, iteration, worst, history)
        # Deep cut: g^T (y - x) + violation <= 0 for all feasible y,
        # where g_i = -v^T F_ji v.
        if system is not None:
            g = system.gradient(worst_index, gradient_vector)
        else:
            g = np.array(
                [
                    -gradient_vector @ coefficient @ gradient_vector
                    for coefficient in worst_block.coefficients
                ]
            )
        g_norm_sq = float(g @ shape @ g)
        if g_norm_sq <= 0 or not np.isfinite(g_norm_sq):
            break
        g_norm = np.sqrt(g_norm_sq)
        # Depth of the cut (normalized); > 1 certifies an empty ellipsoid.
        depth = worst / g_norm
        if depth >= 1.0:
            # The deep cut strips the entire ellipsoid: a proof that no
            # feasible point exists within the initial radius.
            if raise_on_infeasible:
                raise LmiInfeasibleError(
                    f"ellipsoid cut depth {depth:.3g} >= 1: LMI system "
                    f"infeasible within radius {initial_radius:g}"
                )
            return EllipsoidResult(
                best_x, False, iteration, best_violation, history,
                proved_infeasible=True,
            )
        depth = max(depth, 0.0)
        if dimension == 1:
            # Degenerate update: interval bisection on the cut.
            step = shape @ g / g_norm
            x = x - 0.5 * (1 + depth) * step
            shape = np.atleast_2d(shape * (1 - depth) ** 2 / 4.0)
            if shape[0, 0] < 1e-24:
                break
            continue
        tau = (1 + d * depth) / (d + 1)
        delta = (d**2 / (d**2 - 1)) * (1 - depth**2)
        sigma = 2 * (1 + d * depth) / ((d + 1) * (1 + depth))
        step = shape @ g / g_norm
        x = x - tau * step
        shape = delta * (shape - sigma * np.outer(step, step))
        shape = 0.5 * (shape + shape.T)
        if np.trace(shape) < 1e-24:
            break
    return EllipsoidResult(best_x, False, max_iterations, best_violation, history)


def _most_violated(
    blocks: list[LmiBlock], x: np.ndarray
) -> tuple[float, np.ndarray, LmiBlock]:
    if not blocks:
        raise ValueError(
            "separation oracle called with an empty block list: an LMI "
            "system needs at least one LmiBlock"
        )
    worst = -np.inf
    worst_vector = None
    worst_block = None
    for block in blocks:
        violation, vector = block.violation(x)
        if violation > worst:
            worst = violation
            worst_vector = vector
            worst_block = block
    return worst, worst_vector, worst_block
