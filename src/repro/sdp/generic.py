"""Generic LMI feasibility via the deep-cut ellipsoid method.

Solves feasibility problems of the form

    find x in R^d  such that  F_j(x) := F_j0 + sum_i x_i F_ji  ≻  margin_j I
                              for every block j,

which is the shape of the piecewise-quadratic S-procedure synthesis
problems (Section VI-B.2 of the paper): the decision vector collects the
entries of several ``P_i`` matrices and the S-procedure multipliers.

The ellipsoid method needs only a separation oracle: at an infeasible
``x``, the most-violated block has a unit eigenvector ``v`` with
``v^T F_j(x) v < margin_j``, and ``g_i = -v^T F_ji v`` defines a valid
deep cut. Convergence is geometric in volume — slow but extremely
robust, matching the role this solver plays (candidates for a problem
the paper reports as numerically delicate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .problems import LmiInfeasibleError

__all__ = ["LmiBlock", "EllipsoidResult", "solve_lmi_ellipsoid"]


@dataclass
class LmiBlock:
    """One constraint ``F0 + sum_i x_i F[i] ⪰ margin I`` (symmetric data)."""

    f0: np.ndarray
    coefficients: list[np.ndarray]
    margin: float = 0.0
    name: str = ""

    def __post_init__(self):
        self.f0 = np.asarray(self.f0, dtype=float)
        self.coefficients = [np.asarray(f, dtype=float) for f in self.coefficients]
        size = self.f0.shape[0]
        for f in self.coefficients:
            if f.shape != (size, size):
                raise ValueError("coefficient block size mismatch")

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """``F0 + sum_i x_i F_i`` at the point ``x``."""
        matrix = self.f0.copy()
        for value, coefficient in zip(x, self.coefficients):
            if value:
                matrix += value * coefficient
        return matrix

    def violation(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        """``(margin - lambda_min, eigenvector)`` — positive means violated."""
        matrix = self.evaluate(x)
        eigenvalues, vectors = np.linalg.eigh(matrix)
        return self.margin - float(eigenvalues[0]), vectors[:, 0]


@dataclass
class EllipsoidResult:
    """Outcome of an ellipsoid-method run (best iterate + flags)."""
    x: np.ndarray
    feasible: bool
    iterations: int
    worst_violation: float
    history: list[float] = field(default_factory=list)
    proved_infeasible: bool = False


def solve_lmi_ellipsoid(
    blocks: list[LmiBlock],
    dimension: int,
    initial_radius: float = 1e3,
    max_iterations: int = 50_000,
    record_history: bool = False,
    raise_on_infeasible: bool = True,
) -> EllipsoidResult:
    """Run the deep-cut ellipsoid method until feasibility or collapse.

    Raises :class:`LmiInfeasibleError` when the ellipsoid volume shrinks
    below the point where any feasible set of nontrivial volume would
    have been found.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    for block in blocks:
        if len(block.coefficients) != dimension:
            raise ValueError(
                f"block {block.name!r} has {len(block.coefficients)} "
                f"coefficients, expected {dimension}"
            )
    x = np.zeros(dimension)
    shape = (initial_radius**2) * np.eye(dimension)  # ellipsoid matrix
    history: list[float] = []
    best_x = x.copy()
    best_violation = np.inf
    d = float(dimension)
    for iteration in range(1, max_iterations + 1):
        worst, gradient_vector, worst_block = _most_violated(blocks, x)
        if record_history:
            history.append(worst)
        if worst < best_violation:
            best_violation = worst
            best_x = x.copy()
        if worst <= 0.0:
            return EllipsoidResult(x, True, iteration, worst, history)
        # Deep cut: g^T (y - x) + violation <= 0 for all feasible y,
        # where g_i = -v^T F_ji v.
        g = np.array(
            [
                -gradient_vector @ coefficient @ gradient_vector
                for coefficient in worst_block.coefficients
            ]
        )
        g_norm_sq = float(g @ shape @ g)
        if g_norm_sq <= 0 or not np.isfinite(g_norm_sq):
            break
        g_norm = np.sqrt(g_norm_sq)
        # Depth of the cut (normalized); > 1 certifies an empty ellipsoid.
        depth = worst / g_norm
        if depth >= 1.0:
            # The deep cut strips the entire ellipsoid: a proof that no
            # feasible point exists within the initial radius.
            if raise_on_infeasible:
                raise LmiInfeasibleError(
                    f"ellipsoid cut depth {depth:.3g} >= 1: LMI system "
                    f"infeasible within radius {initial_radius:g}"
                )
            return EllipsoidResult(
                best_x, False, iteration, best_violation, history,
                proved_infeasible=True,
            )
        depth = max(depth, 0.0)
        if dimension == 1:
            # Degenerate update: interval bisection on the cut.
            step = shape @ g / g_norm
            x = x - 0.5 * (1 + depth) * step
            shape = np.atleast_2d(shape * (1 - depth) ** 2 / 4.0)
            if shape[0, 0] < 1e-24:
                break
            continue
        tau = (1 + d * depth) / (d + 1)
        delta = (d**2 / (d**2 - 1)) * (1 - depth**2)
        sigma = 2 * (1 + d * depth) / ((d + 1) * (1 + depth))
        step = shape @ g / g_norm
        x = x - tau * step
        shape = delta * (shape - sigma * np.outer(step, step))
        shape = 0.5 * (shape + shape.T)
        if np.trace(shape) < 1e-24:
            break
    return EllipsoidResult(best_x, False, max_iterations, best_violation, history)


def _most_violated(
    blocks: list[LmiBlock], x: np.ndarray
) -> tuple[float, np.ndarray, LmiBlock]:
    worst = -np.inf
    worst_vector = None
    worst_block = None
    for block in blocks:
        violation, vector = block.violation(x)
        if violation > worst:
            worst = violation
            worst_vector = vector
            worst_block = block
    return worst, worst_vector, worst_block
