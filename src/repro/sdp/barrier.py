"""Log-barrier level-shift solver for general block LMIs.

A second engine for the feasibility systems of
:mod:`repro.sdp.generic` (piecewise S-procedure, common Lyapunov). It
maximizes the joint margin ``t`` in

    F_j(x) - t I ⪰ 0  for every block j,      |x_i| <= R,

by *level-shift ascent*: for the current shift ``t`` (strictly below
the incumbent margin, so the shifted blocks are strictly feasible),
Newton-center

    phi_t(x) = - sum_j logdet(F_j(x) - t I) - sum_i log(R^2 - x_i^2),

then pull ``t`` up toward the achieved margin and re-center. Each
centering is a proper, smooth convex problem (the box keeps it
bounded), ``t`` is monotone nondecreasing, and the iteration converges
linearly to the maximal margin within the box.

Roles of the two generic engines (they solve the same systems):

* ``solve_lmi_barrier`` — *fast candidate finder*; a negative final
  margin is strong evidence of infeasibility but **not** a proof;
* :func:`repro.sdp.generic.solve_lmi_ellipsoid` — slow but *certifying*
  (its deep-cut collapse proves emptiness within the search radius).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .generic import LmiBlock

__all__ = ["BarrierResult", "solve_lmi_barrier"]


@dataclass
class BarrierResult:
    """Outcome of the level-shift barrier run."""

    x: np.ndarray
    t_star: float  # best joint margin min_j (lambda_min(F_j) - margin_j)
    feasible: bool  # t_star > 0
    iterations: int
    history: list = field(default_factory=list)


def _joint_margin(blocks: list[LmiBlock], x: np.ndarray) -> float:
    return min(
        float(np.linalg.eigvalsh(block.evaluate(x))[0]) - block.margin
        for block in blocks
    )


def solve_lmi_barrier(
    blocks: list[LmiBlock],
    dimension: int,
    target_margin: float = 0.0,
    radius: float = 1e3,
    pull: float = 0.5,
    stall_tol: float = 1e-9,
    max_outer: int = 200,
    max_newton: int = 30,
    newton_tol: float = 1e-10,
    record_history: bool = False,
) -> BarrierResult:
    """Maximize the joint LMI margin within ``|x_i| <= radius``.

    ``pull`` in (0, 1) sets how aggressively the shift chases the
    incumbent margin each round; the loop stops at ``target_margin``,
    on stall, or after ``max_outer`` rounds.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    if not 0 < pull < 1:
        raise ValueError("pull must be in (0, 1)")
    for block in blocks:
        if len(block.coefficients) != dimension:
            raise ValueError(
                f"block {block.name!r} has {len(block.coefficients)} "
                f"coefficients, expected {dimension}"
            )
    # Margin folded into F0 once: work with G_j(x) = F_j(x) - margin_j I.
    shifted = [
        LmiBlock(
            block.f0 - block.margin * np.eye(block.f0.shape[0]),
            block.coefficients,
            name=block.name,
        )
        for block in blocks
    ]

    def centered_potential(x_vec: np.ndarray, t_val: float) -> float:
        total = 0.0
        for block in shifted:
            g = block.evaluate(x_vec) - t_val * np.eye(block.f0.shape[0])
            sign, logdet = np.linalg.slogdet(g)
            if sign <= 0:
                return np.inf
            total -= logdet
        box = radius * radius - x_vec * x_vec
        if np.any(box <= 0):
            return np.inf
        return total - float(np.sum(np.log(box)))

    x = np.zeros(dimension)
    margin = _joint_margin(shifted, x)
    t = margin - 1.0
    best_margin = margin
    best_x = x.copy()
    history: list[float] = []
    iterations = 0
    for _outer in range(max_outer):
        # --- Newton-center phi_t over x --------------------------------
        for _ in range(max_newton):
            iterations += 1
            gradient = np.zeros(dimension)
            hessian = np.zeros((dimension, dimension))
            for block in shifted:
                size = block.f0.shape[0]
                g = block.evaluate(x) - t * np.eye(size)
                g_inv = np.linalg.inv(g)
                transformed = [g_inv @ c for c in block.coefficients]
                gradient -= np.array([np.trace(m) for m in transformed])
                flat = np.array([m.flatten() for m in transformed])
                flat_t = np.array([m.T.flatten() for m in transformed])
                hessian += flat @ flat_t.T
            box = radius * radius - x * x
            gradient += 2.0 * x / box
            hessian += np.diag(2.0 / box + 4.0 * x * x / box**2)
            hessian = 0.5 * (hessian + hessian.T)
            try:
                step = np.linalg.solve(
                    hessian + 1e-13 * np.eye(dimension), -gradient
                )
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, -gradient, rcond=None)[0]
            if float(-(gradient @ step)) < newton_tol:
                break
            phi_now = centered_potential(x, t)
            alpha = 1.0
            accepted = False
            for _ in range(60):
                candidate = x + alpha * step
                if centered_potential(candidate, t) < phi_now - 1e-14:
                    x = candidate
                    accepted = True
                    break
                alpha *= 0.5
            if not accepted:
                break
        # --- pull the shift up toward the achieved margin ---------------
        margin = _joint_margin(shifted, x)
        if margin > best_margin:
            best_margin = margin
            best_x = x.copy()
        if record_history:
            history.append(margin)
        if best_margin > target_margin:
            break
        new_t = margin - (1.0 - pull) * (margin - t)
        if new_t - t < stall_tol:
            break
        t = new_t
    return BarrierResult(
        x=best_x,
        t_star=best_margin,
        feasible=best_margin > 0,
        iterations=iterations,
        history=history,
    )
