"""Log-barrier level-shift solver for general block LMIs.

A second engine for the feasibility systems of
:mod:`repro.sdp.generic` (piecewise S-procedure, common Lyapunov). It
maximizes the joint margin ``t`` in

    F_j(x) - t I ⪰ 0  for every block j,      |x_i| <= R,

by *level-shift ascent*: for the current shift ``t`` (strictly below
the incumbent margin, so the shifted blocks are strictly feasible),
Newton-center

    phi_t(x) = - sum_j logdet(F_j(x) - t I) - sum_i log(R^2 - x_i^2),

then pull ``t`` up toward the achieved margin and re-center. Each
centering is a proper, smooth convex problem (the box keeps it
bounded), ``t`` is monotone nondecreasing, and the iteration converges
linearly to the maximal margin within the box.

The Newton assembly runs on the precompiled tensors of
:class:`repro.sdp.generic.CompiledLmiSystem`: per block group, the
gradient is one trace einsum and the Hessian one congruence einsum over
the stacked ``(B, d, n, n)`` coefficient tensor, replacing the former
per-coefficient Python loops. ``initial=`` warm-starts the centering
from an external iterate — the hybrid pipeline in
:func:`repro.lyapunov.synthesize_piecewise` hands the ellipsoid
burn-in's best iterate here for polishing, mirroring the ``initial=``
warm-start machinery of :func:`repro.sdp.solve_ipm`.

Roles of the two generic engines (they solve the same systems):

* ``solve_lmi_barrier`` — *fast candidate finder*; a negative final
  margin is strong evidence of infeasibility but **not** a proof;
* :func:`repro.sdp.generic.solve_lmi_ellipsoid` — slow but *certifying*
  (its deep-cut collapse proves emptiness within the search radius).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .generic import CompiledLmiSystem, LmiBlock

__all__ = ["BarrierResult", "solve_lmi_barrier"]


@dataclass
class BarrierResult:
    """Outcome of the level-shift barrier run."""

    x: np.ndarray
    t_star: float  # best joint margin min_j (lambda_min(F_j) - margin_j)
    feasible: bool  # t_star > 0
    iterations: int
    history: list = field(default_factory=list)


def _joint_margin(system: CompiledLmiSystem, x: np.ndarray) -> float:
    """``min_j (lambda_min(F_j(x)) - margin_j)`` via batched eigh."""
    worst = np.inf
    for group in system.groups:
        values = system._group_values(group, x, None)
        lambda_min, _ = system._group_min_eigen(group, values)
        worst = min(worst, float((lambda_min - group.margins).min()))
    return worst


def solve_lmi_barrier(
    blocks: list[LmiBlock] | None,
    dimension: int,
    target_margin: float = 0.0,
    radius: float = 1e3,
    pull: float = 0.5,
    stall_tol: float = 1e-9,
    max_outer: int = 200,
    max_newton: int = 30,
    newton_tol: float = 1e-10,
    record_history: bool = False,
    initial: np.ndarray | None = None,
    compiled: CompiledLmiSystem | None = None,
) -> BarrierResult:
    """Maximize the joint LMI margin within ``|x_i| <= radius``.

    ``pull`` in (0, 1) sets how aggressively the shift chases the
    incumbent margin each round; the loop stops at ``target_margin``,
    on stall, or after ``max_outer`` rounds. ``initial`` warm-starts the
    centering from an external iterate (clipped into the box);
    ``compiled`` reuses an existing :class:`CompiledLmiSystem` instead
    of compiling ``blocks`` again — the compile already validated the
    blocks, so ``blocks`` may then be ``None`` and no per-block check
    is repeated (the hybrid pipeline's polish phase takes this path on
    every call).
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    if not 0 < pull < 1:
        raise ValueError("pull must be in (0, 1)")
    if compiled is not None:
        if compiled.dimension != dimension:
            raise ValueError(
                f"compiled system has dimension {compiled.dimension}, "
                f"expected {dimension}"
            )
        system = compiled
    else:
        if blocks is None:
            raise ValueError("blocks is required without a compiled system")
        for block in blocks:
            if len(block.coefficients) != dimension:
                raise ValueError(
                    f"block {block.name!r} has {len(block.coefficients)} "
                    f"coefficients, expected {dimension}"
                )
        system = CompiledLmiSystem(blocks, dimension)
    # Margins are folded at evaluation time: every shifted block is
    # G_j(x) = F_j(x) - (margin_j + t) I.

    def shifted_values(x_vec: np.ndarray, t_val: float) -> list[np.ndarray]:
        out = []
        for group in system.groups:
            values = system._group_values(group, x_vec, None)
            shift = group.margins + t_val
            out.append(values - shift[:, None, None] * group.eye)
        return out

    def centered_potential(x_vec: np.ndarray, t_val: float) -> float:
        total = 0.0
        for shifted in shifted_values(x_vec, t_val):
            signs, logdets = np.linalg.slogdet(shifted)
            if np.any(signs <= 0):
                return np.inf
            total -= float(logdets.sum())
        box = radius * radius - x_vec * x_vec
        if np.any(box <= 0):
            return np.inf
        return total - float(np.sum(np.log(box)))

    x = np.zeros(dimension)
    if initial is not None:
        x = np.asarray(initial, dtype=float).copy()
        if x.shape != (dimension,):
            raise ValueError(
                f"initial iterate has shape {x.shape}, expected ({dimension},)"
            )
        np.clip(x, -0.999 * radius, 0.999 * radius, out=x)
    margin = _joint_margin(system, x)
    t = margin - 1.0
    best_margin = margin
    best_x = x.copy()
    history: list[float] = []
    iterations = 0
    for _outer in range(max_outer):
        # --- Newton-center phi_t over x --------------------------------
        for _ in range(max_newton):
            iterations += 1
            gradient = np.zeros(dimension)
            hessian = np.zeros((dimension, dimension))
            for group, shifted in zip(
                system.groups, shifted_values(x, t)
            ):
                g_inv = np.linalg.inv(shifted)
                # T[b, i] = G_b(x)^{-1} F_bi : the per-block transformed
                # coefficients, batched over the group.
                transformed = np.einsum(
                    "bac,bicm->biam", g_inv, group.tensor, optimize=True
                )
                gradient -= np.einsum("biaa->i", transformed)
                hessian += np.einsum(
                    "biam,bjma->ij", transformed, transformed, optimize=True
                )
            box = radius * radius - x * x
            gradient += 2.0 * x / box
            hessian += np.diag(2.0 / box + 4.0 * x * x / box**2)
            hessian = 0.5 * (hessian + hessian.T)
            try:
                step = np.linalg.solve(
                    hessian + 1e-13 * np.eye(dimension), -gradient
                )
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, -gradient, rcond=None)[0]
            if float(-(gradient @ step)) < newton_tol:
                break
            phi_now = centered_potential(x, t)
            alpha = 1.0
            accepted = False
            for _ in range(60):
                candidate = x + alpha * step
                if centered_potential(candidate, t) < phi_now - 1e-14:
                    x = candidate
                    accepted = True
                    break
                alpha *= 0.5
            if not accepted:
                break
        # --- pull the shift up toward the achieved margin ---------------
        margin = _joint_margin(system, x)
        if margin > best_margin:
            best_margin = margin
            best_x = x.copy()
        if record_history:
            history.append(margin)
        if best_margin > target_margin:
            break
        new_t = margin - (1.0 - pull) * (margin - t)
        if new_t - t < stall_tol:
            break
        t = new_t
    return BarrierResult(
        x=best_x,
        t_star=best_margin,
        feasible=best_margin > 0,
        iterations=iterations,
        history=history,
    )
