"""Symmetric vectorization utilities for the SDP solvers.

The interior-point backend works on the coordinate vector of a symmetric
matrix in an *orthonormal* basis of the symmetric matrices (so that
Frobenius inner products become dot products): diagonal units ``E_ii``
and scaled off-diagonal units ``(E_ij + E_ji)/sqrt(2)``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "svec_dim",
    "svec",
    "smat",
    "svec_basis",
    "basis_matrix",
    "basis_tensor",
]

_SQRT2 = np.sqrt(2.0)


def svec_dim(n: int) -> int:
    """Dimension of the space of symmetric ``n x n`` matrices."""
    return n * (n + 1) // 2


def svec(matrix: np.ndarray) -> np.ndarray:
    """Orthonormal symmetric vectorization (upper triangle, row-major)."""
    n = matrix.shape[0]
    out = np.empty(svec_dim(n))
    k = 0
    for i in range(n):
        out[k] = matrix[i, i]
        k += 1
        for j in range(i + 1, n):
            out[k] = matrix[i, j] * _SQRT2
            k += 1
    return out


def smat(vector: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`svec`."""
    out = np.zeros((n, n))
    k = 0
    for i in range(n):
        out[i, i] = vector[k]
        k += 1
        for j in range(i + 1, n):
            value = vector[k] / _SQRT2
            out[i, j] = value
            out[j, i] = value
            k += 1
    return out


@lru_cache(maxsize=None)
def svec_basis(n: int) -> tuple[np.ndarray, ...]:
    """The orthonormal basis matrices ``E_k`` with ``svec(E_k) = e_k``.

    Memoized per ``n`` (solver loops rebuild it for every LMI solve);
    the returned arrays are marked read-only — callers that want to
    scale or edit one must copy it, which every current caller does.
    """
    basis = []
    for i in range(n):
        unit = np.zeros((n, n))
        unit[i, i] = 1.0
        basis.append(unit)
        for j in range(i + 1, n):
            unit = np.zeros((n, n))
            unit[i, j] = unit[j, i] = 1.0 / _SQRT2
            basis.append(unit)
    for unit in basis:
        unit.setflags(write=False)
    return tuple(basis)


@lru_cache(maxsize=None)
def basis_tensor(n: int) -> np.ndarray:
    """The basis of :func:`svec_basis` stacked as one ``(m, n, n)`` array.

    This is the shape the tensorized solvers contract against: a
    congruence ``tr(E_k X E_l X)`` Hessian becomes two einsums over this
    tensor instead of ``m`` Python-level matrix products (or an
    ``n^2 x n^2`` Kronecker product). Memoized per ``n``, read-only.
    """
    out = np.stack(svec_basis(n))
    out.setflags(write=False)
    return out


@lru_cache(maxsize=None)
def basis_matrix(n: int) -> np.ndarray:
    """The ``svec_dim(n) x n^2`` matrix ``B`` with ``B @ vec(M) = svec(M)``.

    ``vec`` is column-stacking (Fortran order), matching ``np.kron``
    identities ``vec(A X B) = (B^T kron A) vec(X)``. Memoized per ``n``
    with a read-only result, like :func:`svec_basis`.
    """
    m = svec_dim(n)
    out = np.zeros((m, n * n))
    for k, basis in enumerate(svec_basis(n)):
        out[k] = basis.flatten(order="F")
    out.setflags(write=False)
    return out
