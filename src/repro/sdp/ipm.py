"""Analytic-center interior-point backend for the Lyapunov LMI family.

Finds the analytic center of the (bounded) feasible region

    nu_eff I  ⪯  P  ⪯  R I,      A^T P + P A + alpha P  ⪯  -margin I

by damped Newton minimization of the log-det barrier

    phi(P) = -logdet(P - nu_eff I) - logdet(R I - P)
             - logdet(-(A^T P + P A + alpha P) - margin I).

Gradients and Hessians are assembled with Kronecker-product identities
over the orthonormal svec basis, so each iteration is a dense ``m x m``
Newton solve with ``m = n(n+1)/2``. The analytic center sits deep inside
the feasible region, giving well-conditioned candidates — this backend
plays the CVXOPT role in the paper's tables.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .problems import LmiInfeasibleError, LyapunovLmiProblem
from .shift import solve_shift
from .svec import basis_matrix, smat

__all__ = ["solve_ipm"]


def _chol_or_none(matrix: np.ndarray) -> np.ndarray | None:
    try:
        return np.linalg.cholesky(matrix)
    except np.linalg.LinAlgError:
        return None


@lru_cache(maxsize=32)
def _constraint_cols(a_bytes: bytes, n: int, alpha: float) -> np.ndarray:
    """``vec(L(E_k))`` columns for the Lyapunov operator, memoized.

    Repeated solves on the same mode matrix (bisection over ``alpha``
    rebuilds only per-``alpha`` entries; revalidation sweeps hit the
    same ``(A, alpha)`` again and again) skip the ``n^2 x n^2``
    Kronecker assembly entirely.
    """
    a = np.frombuffer(a_bytes, dtype=float).reshape(n, n)
    basis = basis_matrix(n)  # m x n^2, orthonormal rows
    lyap_mat = (
        np.kron(np.eye(n), a.T) + np.kron(a.T, np.eye(n))
        + alpha * np.eye(n * n)
    )
    cols = lyap_mat @ basis.T  # n^2 x m: vec(L(E_k)) columns
    cols.setflags(write=False)
    return cols


def solve_ipm(
    problem: LyapunovLmiProblem,
    tol: float = 1e-8,
    max_iterations: int = 60,
    initial: np.ndarray | None = None,
) -> tuple[np.ndarray, dict]:
    """Damped-Newton analytic centering; raises when no interior exists.

    ``initial`` warm-starts the centering: when it is strictly feasible
    for *this* problem the Phase I solve is skipped entirely, otherwise
    it is ignored. ``best_alpha`` threads each accepted solution into
    the next bisection step this way.
    """
    n = problem.n
    warm = (
        initial is not None
        and initial.shape == (n, n)
        and problem.is_strictly_feasible(initial, slack=1e-12)
    )
    if warm:
        p0 = 0.5 * (initial + initial.T)
    else:
        # Phase I: a strictly feasible interior point from the direct solver.
        p0, _ = solve_shift(problem)
    radius = max(problem.radius, 10.0 * float(np.linalg.eigvalsh(p0).max()))

    a = problem.a
    eye_n = np.eye(n)
    basis = basis_matrix(n)  # m x n^2, orthonormal rows
    constraint_cols = _constraint_cols(
        np.ascontiguousarray(a, dtype=float).tobytes(), n, float(problem.alpha)
    )

    def blocks(p: np.ndarray):
        """The three barrier blocks at ``p``."""
        t1 = p - problem.nu_effective * eye_n
        t2 = radius * eye_n - p
        s = -problem.lyap_operator(p) - problem.margin * eye_n
        return t1, t2, s

    p = p0
    iterations = 0
    decrement = np.inf
    for iterations in range(1, max_iterations + 1):
        t1, t2, s = blocks(p)
        t1_inv = np.linalg.inv(t1)
        t2_inv = np.linalg.inv(t2)
        s_inv = np.linalg.inv(s)
        gradient = (
            -basis @ t1_inv.flatten(order="F")
            + basis @ t2_inv.flatten(order="F")
            + constraint_cols.T @ s_inv.flatten(order="F")
        )
        hessian = (
            basis @ np.kron(t1_inv, t1_inv) @ basis.T
            + basis @ np.kron(t2_inv, t2_inv) @ basis.T
            + constraint_cols.T @ np.kron(s_inv, s_inv) @ constraint_cols
        )
        hessian = 0.5 * (hessian + hessian.T)
        try:
            step = np.linalg.solve(hessian, -gradient)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(hessian, -gradient, rcond=None)[0]
        decrement = float(np.sqrt(max(0.0, -(gradient @ step))))
        if decrement < tol:
            break
        # Damped line search: stay strictly feasible, ensure descent.
        direction = smat(step, n)
        t = 1.0
        phi_now = _barrier(t1, t2, s)
        accepted = False
        for _ in range(60):
            candidate = p + t * direction
            c1, c2, c3 = blocks(candidate)
            if all(_chol_or_none(b) is not None for b in (c1, c2, c3)):
                if _barrier(c1, c2, c3) < phi_now - 1e-12 * t:
                    p = candidate
                    accepted = True
                    break
            t *= 0.5
        if not accepted:
            break  # no further progress possible at float precision
    p = 0.5 * (p + p.T)
    if not problem.is_strictly_feasible(p, slack=1e-12):
        raise LmiInfeasibleError("interior-point iteration left feasibility")
    info = {
        "backend": "ipm",
        "iterations": iterations,
        "newton_decrement": decrement,
        "radius": radius,
        "warm_start": warm,
    }
    return p, info


def _barrier(t1: np.ndarray, t2: np.ndarray, s: np.ndarray) -> float:
    total = 0.0
    for block in (t1, t2, s):
        sign, logdet = np.linalg.slogdet(block)
        if sign <= 0:
            return np.inf
        total -= logdet
    return total
