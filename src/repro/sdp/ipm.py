"""Analytic-center interior-point backend for the Lyapunov LMI family.

Finds the analytic center of the (bounded) feasible region

    nu_eff I  ⪯  P  ⪯  R I,      A^T P + P A + alpha P  ⪯  -margin I

by damped Newton minimization of the log-det barrier

    phi(P) = -logdet(P - nu_eff I) - logdet(R I - P)
             - logdet(-(A^T P + P A + alpha P) - margin I).

Gradients and Hessians are assembled over the orthonormal svec basis
with precompiled tensor contractions: the basis stack ``(m, n, n)`` of
:func:`repro.sdp.svec.basis_tensor` and the memoized ``L(E_k)`` stack of
:meth:`LyapunovLmiProblem.lyap_basis_tensor` turn every barrier-block
Hessian ``H[k,l] = tr(E_k X E_l X)`` into two einsums — no ``n^2 x n^2``
Kronecker products are ever formed. Each iteration is then a dense
``m x m`` Newton solve with ``m = n(n+1)/2``. The analytic center sits
deep inside the feasible region, giving well-conditioned candidates —
this backend plays the CVXOPT role in the paper's tables.
"""

from __future__ import annotations

import numpy as np

from .problems import LmiInfeasibleError, LyapunovLmiProblem
from .shift import solve_shift
from .svec import basis_tensor, smat

__all__ = ["solve_ipm"]


def _chol_or_none(matrix: np.ndarray) -> np.ndarray | None:
    try:
        return np.linalg.cholesky(matrix)
    except np.linalg.LinAlgError:
        return None


def _barrier_terms(
    stack: np.ndarray, inverse: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gradient/Hessian of ``-logdet`` through a stacked coefficient basis.

    For a stack ``C`` of symmetric coefficient matrices and a symmetric
    ``X = block^{-1}``: returns ``g[k] = tr(C_k X)`` and
    ``H[k,l] = tr(C_k X C_l X)`` — the svec-basis contractions that
    replace ``basis @ kron(X, X) @ basis.T``.
    """
    transformed = stack @ inverse  # (m, n, n): C_k X, batched matmul
    gradient = np.einsum("kaa->k", transformed)
    hessian = np.einsum("kab,lba->kl", transformed, transformed)
    return gradient, hessian


def solve_ipm(
    problem: LyapunovLmiProblem,
    tol: float = 1e-8,
    max_iterations: int = 60,
    initial: np.ndarray | None = None,
) -> tuple[np.ndarray, dict]:
    """Damped-Newton analytic centering; raises when no interior exists.

    ``initial`` warm-starts the centering: when it is strictly feasible
    for *this* problem the Phase I solve is skipped entirely, otherwise
    it is ignored. ``best_alpha`` threads each accepted solution into
    the next bisection step this way.
    """
    n = problem.n
    warm = (
        initial is not None
        and initial.shape == (n, n)
        and problem.is_strictly_feasible(initial, slack=1e-12)
    )
    if warm:
        p0 = 0.5 * (initial + initial.T)
    else:
        # Phase I: a strictly feasible interior point from the direct solver.
        p0, _ = solve_shift(problem)
    radius = max(problem.radius, 10.0 * float(np.linalg.eigvalsh(p0).max()))

    eye_n = np.eye(n)
    basis = basis_tensor(n)  # (m, n, n) orthonormal basis stack
    lyap_stack = problem.lyap_basis_tensor()  # (m, n, n): L(E_k), cached

    def blocks(p: np.ndarray):
        """The three barrier blocks at ``p``."""
        t1 = p - problem.nu_effective * eye_n
        t2 = radius * eye_n - p
        s = -problem.lyap_operator(p) - problem.margin * eye_n
        return t1, t2, s

    p = p0
    iterations = 0
    decrement = np.inf
    for iterations in range(1, max_iterations + 1):
        t1, t2, s = blocks(p)
        g1, h1 = _barrier_terms(basis, np.linalg.inv(t1))
        g2, h2 = _barrier_terms(basis, np.linalg.inv(t2))
        g3, h3 = _barrier_terms(lyap_stack, np.linalg.inv(s))
        gradient = -g1 + g2 + g3
        hessian = h1 + h2 + h3
        hessian = 0.5 * (hessian + hessian.T)
        try:
            step = np.linalg.solve(hessian, -gradient)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(hessian, -gradient, rcond=None)[0]
        decrement = float(np.sqrt(max(0.0, -(gradient @ step))))
        if decrement < tol:
            break
        # Damped line search: stay strictly feasible, ensure descent.
        direction = smat(step, n)
        t = 1.0
        phi_now = _barrier(t1, t2, s)
        accepted = False
        for _ in range(60):
            candidate = p + t * direction
            c1, c2, c3 = blocks(candidate)
            if all(_chol_or_none(b) is not None for b in (c1, c2, c3)):
                if _barrier(c1, c2, c3) < phi_now - 1e-12 * t:
                    p = candidate
                    accepted = True
                    break
            t *= 0.5
        if not accepted:
            break  # no further progress possible at float precision
    p = 0.5 * (p + p.T)
    if not problem.is_strictly_feasible(p, slack=1e-12):
        raise LmiInfeasibleError("interior-point iteration left feasibility")
    info = {
        "backend": "ipm",
        "iterations": iterations,
        "newton_decrement": decrement,
        "radius": radius,
        "warm_start": warm,
    }
    return p, info


def _barrier(t1: np.ndarray, t2: np.ndarray, s: np.ndarray) -> float:
    total = 0.0
    for block in (t1, t2, s):
        sign, logdet = np.linalg.slogdet(block)
        if sign <= 0:
            return np.inf
        total -= logdet
    return total
