"""Balanced-truncation model reduction (the paper's scalability knob)."""

from .balanced import BalancedRealization, balance, balanced_truncation
from .gramians import (
    controllability_gramian,
    hankel_singular_values,
    observability_gramian,
)

__all__ = [
    "BalancedRealization",
    "balance",
    "balanced_truncation",
    "controllability_gramian",
    "observability_gramian",
    "hankel_singular_values",
]
