"""Balanced truncation model reduction (paper Section VI-A).

The square-root algorithm: factor the controllability Gramian
``Wc = R R^T`` (Cholesky), SVD the cross product ``R^T Wo R``, and build
the balancing transformation from the singular vectors. In balanced
coordinates both Gramians equal ``diag(sigma)`` (the Hankel singular
values); truncating to the top ``k`` states preserves stability and
carries the classic ``2 * sum(sigma_tail)`` H-infinity error bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..systems import StateSpace
from .gramians import controllability_gramian, observability_gramian

__all__ = ["BalancedRealization", "balance", "balanced_truncation"]


@dataclass(frozen=True)
class BalancedRealization:
    """A balanced realization plus its transformation data."""

    system: StateSpace
    hankel_values: np.ndarray
    t: np.ndarray
    t_inv: np.ndarray

    def truncate(self, order: int) -> StateSpace:
        """Keep the ``order`` most Hankel-significant states."""
        n = self.system.n_states
        if not 1 <= order <= n:
            raise ValueError(f"order must be in [1, {n}], got {order}")
        a = self.system.a[:order, :order]
        b = self.system.b[:order, :]
        c = self.system.c[:, :order]
        return StateSpace(a, b, c)

    def error_bound(self, order: int) -> float:
        """The ``2 * sum of discarded Hankel values`` H-inf bound."""
        return 2.0 * float(self.hankel_values[order:].sum())


def balance(plant: StateSpace, regularization: float = 1e-12) -> BalancedRealization:
    """Compute a balanced realization via the square-root method."""
    wc = controllability_gramian(plant)
    wo = observability_gramian(plant)
    n = plant.n_states
    # Cholesky with a tiny regularizer: Wc can be numerically singular
    # when some states are nearly uncontrollable.
    r = np.linalg.cholesky(wc + regularization * np.eye(n))
    u, s2, _vt = np.linalg.svd(r.T @ wo @ r)
    hankel = np.sqrt(np.maximum(s2, 1e-300))  # sigma_i
    sqrt_sigma = np.sqrt(hankel)
    # t maps balanced coordinates to original ones; in the new basis both
    # Gramians become diag(hankel).
    t = r @ u / sqrt_sigma
    t_inv = (sqrt_sigma[:, None] * u.T) @ np.linalg.inv(r)
    balanced = StateSpace(t_inv @ plant.a @ t, t_inv @ plant.b, plant.c @ t)
    return BalancedRealization(
        system=balanced, hankel_values=hankel, t=t, t_inv=t_inv
    )


def balanced_truncation(plant: StateSpace, order: int) -> StateSpace:
    """Balanced-truncate ``plant`` to ``order`` states."""
    return balance(plant).truncate(order)
