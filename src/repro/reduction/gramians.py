"""Controllability and observability Gramians of stable linear systems.

For a Hurwitz ``A``, the Gramians solve the Lyapunov equations

    A Wc + Wc A^T + B B^T = 0,        A^T Wo + Wo A + C^T C = 0,

and their product's eigenvalues are the squared Hankel singular values —
the quantities balanced truncation (see :mod:`repro.reduction.balanced`)
ranks states by.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from ..systems import StateSpace

__all__ = [
    "controllability_gramian",
    "observability_gramian",
    "hankel_singular_values",
]


def _require_stable(plant: StateSpace) -> None:
    if not plant.is_stable():
        raise ValueError(
            "Gramians require a Hurwitz A (spectral abscissa "
            f"{plant.spectral_abscissa():.4g})"
        )


def controllability_gramian(plant: StateSpace) -> np.ndarray:
    """``Wc`` with ``A Wc + Wc A^T = -B B^T``."""
    _require_stable(plant)
    wc = linalg.solve_continuous_lyapunov(plant.a, -plant.b @ plant.b.T)
    return 0.5 * (wc + wc.T)


def observability_gramian(plant: StateSpace) -> np.ndarray:
    """``Wo`` with ``A^T Wo + Wo A = -C^T C``."""
    _require_stable(plant)
    wo = linalg.solve_continuous_lyapunov(plant.a.T, -plant.c.T @ plant.c)
    return 0.5 * (wo + wo.T)


def hankel_singular_values(plant: StateSpace) -> np.ndarray:
    """Hankel singular values, descending (sqrt of eig(Wc Wo))."""
    wc = controllability_gramian(plant)
    wo = observability_gramian(plant)
    eigenvalues = np.linalg.eigvals(wc @ wo)
    values = np.sqrt(np.maximum(eigenvalues.real, 0.0))
    return np.sort(values)[::-1]
