"""Replayable failure artifacts for fuzz campaigns.

Every confirmed failure is persisted twice:

* one line in ``failures.jsonl`` — the spec ``(kind, n, seed)`` plus
  the shrunken spec and the disagreement payload, enough to replay the
  case with :func:`replay_spec` (regeneration is exact, so the spec
  *is* the test case);
* one ``.npz`` per case — the float system matrix and witness pair for
  inspection in a plain numpy session, no repro imports needed.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .cegis import CEGIS_KINDS, check_cegis_scenario, generate_cegis_scenario
from .differential import FuzzProfile, check_system
from .generate import generate_system
from .records import FuzzRecord

__all__ = [
    "write_failure",
    "load_failures",
    "replay_spec",
]


def _case_name(spec: dict) -> str:
    return f"{spec['kind']}-n{spec['n']}-s{spec['seed']}"


def write_failure(
    directory: str | Path,
    record: FuzzRecord,
    minimal: dict | None = None,
) -> Path:
    """Persist one failure; returns the ``.npz`` path.

    Appends the JSONL line first (the replayable part), then writes the
    matrix dump — a crash between the two still leaves a usable case.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spec = record.spec()
    entry = {
        "spec": spec,
        "minimal": minimal or spec,
        "stable": record.stable,
        "provenance": record.provenance,
        "disagreements": record.disagreements,
        "harness_errors": record.harness_errors,
    }
    with (directory / "failures.jsonl").open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")

    if record.kind in CEGIS_KINDS:
        scenario = generate_cegis_scenario(record.kind, record.n, record.seed)
        arrays = {"expected": np.array(scenario.expected)}
        for index, mode in enumerate(scenario.system.modes):
            arrays[f"a{index}"] = mode.flow.a
            arrays[f"b{index}"] = mode.flow.b
        if scenario.witness_p is not None:
            arrays["witness_p"] = scenario.witness_p.to_numpy()
    else:
        system = generate_system(record.kind, record.n, record.seed)
        arrays = {"a": system.a_float, "stable": np.array(system.stable)}
        if system.witness_p is not None:
            arrays["witness_p"] = system.witness_p.to_numpy()
            arrays["witness_q"] = system.witness_q.to_numpy()
    path = directory / f"{_case_name(spec)}.npz"
    np.savez(path, **arrays)
    return path


def load_failures(directory: str | Path) -> list[dict]:
    """All recorded failure entries (empty list when none were written)."""
    path = Path(directory) / "failures.jsonl"
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def replay_spec(
    spec: dict, profile: FuzzProfile | None = None
) -> FuzzRecord:
    """Regenerate a spec'd system and re-run the full battery on it."""
    if spec["kind"] in CEGIS_KINDS:
        return check_cegis_scenario(
            spec["kind"], spec["n"], spec["seed"], profile
        )
    system = generate_system(spec["kind"], spec["n"], spec["seed"])
    return check_system(system, profile)
