"""Metamorphic invariants: verdicts must survive exact reshapings.

Each transform here maps a system (or a witness) to an equivalent one
whose verdict is known to be identical, giving test oracles that need
no ground truth at all:

* **similarity** — ``A -> T A T^{-1}`` for unimodular integer ``T``
  preserves the spectrum exactly, so the Hurwitz verdict is invariant
  and a witness transforms along as ``P -> T^{-T} P T^{-1}``;
* **permutation** — the special case ``T = permutation matrix``
  (checked separately because it exercises different pivoting paths);
* **scaling** — positive definiteness is invariant under ``P -> c P``
  for any positive rational ``c`` (and stays refuted for ``-P``);
* **lmi-block-order** — the feasibility verdict of the generic LMI
  engines must not depend on the order blocks are listed in, nor on
  whether the tensorized batch oracle or the per-block differential
  oracle is used.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..exact import inverse, is_hurwitz_matrix
from ..sdp import lyapunov_lmi_blocks, solve_lmi_ellipsoid, svec_dim
from ..validate.pipeline import lie_derivative_exact
from .generate import unimodular_matrix

__all__ = ["metamorphic_checks"]


def _rng(h) -> np.random.Generator:
    # Independent of the generator's own stream but just as deterministic.
    return np.random.default_rng(
        np.random.SeedSequence([101, h.system.n, h.system.seed])
    )


def _similarity(h, transform, tag: str) -> None:
    """Check verdict invariance under one exact similarity transform."""
    system = h.system
    t = transform
    t_inv = inverse(t)
    a_t = t @ system.a @ t_inv
    try:
        got = is_hurwitz_matrix(a_t, backend="auto")
    except Exception as exc:
        h.record.harness_errors.append(
            f"metamorphic-{tag}: {type(exc).__name__}: {exc}"
        )
        return
    h.expect(f"metamorphic-{tag}", "hurwitz", system.stable, got)
    if system.witness_p is None:
        return
    p_t = (t_inv.T @ system.witness_p @ t_inv).symmetrize()
    q_t = (t_inv.T @ system.witness_q @ t_inv).symmetrize()
    # Construction algebra must transform exactly: Lie(P', A') = -2 Q'.
    h.expect(
        f"metamorphic-{tag}", "lie-transform", True,
        lie_derivative_exact(p_t, a_t) == q_t.scale(-2),
    )
    validator = h.profile.validators[0]
    for label, matrix in (("P'", p_t), ("2Q'", q_t.scale(2))):
        h.expect(
            f"metamorphic-{tag}", f"{validator}:{label}", True,
            h._one(validator, matrix, None) is True,
        )


def _check_scaling(h) -> None:
    system = h.system
    if system.witness_p is None:
        return
    rng = _rng(h)
    c = Fraction(int(rng.integers(1, 10)), int(rng.integers(1, 10)))
    for validator in h.profile.validators:
        base = h._one(validator, system.witness_p, None)
        scaled = h._one(validator, system.witness_p.scale(c), None)
        h.expect("metamorphic-scaling", f"{validator} x{c}", base, scaled)
        negated = h._one(validator, system.witness_p.scale(-c), None)
        h.expect("metamorphic-scaling", f"{validator} x-{c}", False, negated)


def _check_block_order(h) -> None:
    """LMI feasibility must survive block reordering and oracle choice."""
    system, profile = h.system, h.profile
    # Restricted to the comfortably-conditioned kinds: the ellipsoid
    # engine's verdict inside a finite iteration budget is only a
    # reliable constant for spectra far from the axis, and a flaky
    # reference would turn order-invariance into a coin flip.
    if (
        system.n > profile.lmi_block_max_n
        or system.kind not in ("stable", "unstable")
    ):
        return
    blocks = lyapunov_lmi_blocks(system.a_float)
    dimension = svec_dim(system.n)

    def feasible(block_list, batch: bool) -> bool | None:
        try:
            result = solve_lmi_ellipsoid(
                block_list, dimension,
                max_iterations=profile.lmi_block_iterations,
                raise_on_infeasible=False, batch_oracle=batch,
            )
        except Exception as exc:
            h.record.harness_errors.append(
                f"metamorphic-lmi-block-order: {type(exc).__name__}: {exc}"
            )
            return None
        return bool(result.feasible)

    reference = feasible(blocks, batch=True)
    if reference is None:
        return
    # A stable system's Lyapunov LMI is strictly feasible; within the
    # iteration budget the ellipsoid engine finds it for the small sizes
    # this check runs at, so the verdict itself is also pinned.
    h.expect(
        "metamorphic-lmi-block-order", "feasible==stable",
        system.stable, reference,
    )
    for tag, batch in (("reversed/batch", True), ("reversed/loop", False)):
        got = feasible(list(reversed(blocks)), batch=batch)
        if got is not None:
            h.expect("metamorphic-lmi-block-order", tag, reference, got)


def metamorphic_checks(h) -> None:
    """Run every metamorphic family against one harness state."""
    rng = _rng(h)
    n = h.system.n
    _similarity(h, unimodular_matrix(n, rng), "similarity")
    perm = [int(i) for i in rng.permutation(n)]
    _similarity(h, h.system.a.identity(n).permute(perm), "permutation")
    _check_scaling(h)
    _check_block_order(h)
