"""The differential harness: fan one system through every combination.

For each :class:`~repro.oracle.generate.GeneratedSystem` the harness
checks four families of invariants, recording one dict per violation:

``hurwitz-backend``
    The exact stability test (:func:`repro.exact.is_hurwitz_matrix`)
    must reproduce the constructed verdict on every kernel backend.

``witness``
    For backwards-constructed systems, the known witness pair
    ``(P, 2Q)`` must be *proved* positive definite by every validator on
    every kernel backend — these matrices are PD by construction, so any
    ``False``/``None`` is a validator soundness/completeness bug.

``candidate-consensus`` / ``unsound-true``
    Every synthesis method that produces a candidate has it validated by
    the full ``validator x kernel-backend`` matrix. Rounded candidates
    may *legitimately* fail validation (the paper's fragile-candidate
    phenomenon), so the invariant is pairwise agreement, not truth; but
    a consensus ``valid=True`` on a system that is unstable by
    construction is a soundness bug (no quadratic Lyapunov certificate
    can exist), reported as ``unsound-true``.

``icp-engine``
    The batched ICP refuter (:mod:`repro.smt.boxes`) must reproduce the
    scalar branch-and-prune engine *exactly* — verdict, counterexample
    and box statistics — on small definiteness queries.

``metamorphic-*``
    Verdict invariance under exact similarity transforms, state
    permutations, positive scaling of ``P``, and LMI block reordering —
    see :mod:`repro.oracle.metamorphic`.

``service-cache``
    The certification service's performance layers must be invisible:
    a cold compute, a cache hit and a same-shape batched screen must
    all return certificates with identical stable payloads
    (:meth:`repro.service.Certificate.identity`) as running the task
    directly, and the repeat request must hit the cache instead of
    recomputing.

Synthesis failures (timeouts, infeasibility, defective-matrix modal
errors) are recorded in :attr:`FuzzRecord.synth` and are never
disagreements. Harness-level exceptions (a validator *crashing*) land
in :attr:`FuzzRecord.harness_errors` — the harness runs with
``fallback=False`` so degradation chains cannot paper over a broken
backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from ..exact import RationalMatrix, gmpy2_available, is_hurwitz_matrix
from ..lyapunov import SynthesisTimeout, synthesize
from ..sdp import LmiInfeasibleError
from ..smt import check_positive_definite_icp
from ..validate import run_validator
from ..validate.pipeline import lie_derivative_exact
from .generate import GeneratedSystem
from .records import FuzzRecord

__all__ = [
    "FuzzProfile",
    "QUICK_PROFILE",
    "LONG_PROFILE",
    "check_system",
]

#: Validators that accept the ``backend=`` kernel option; everything
#: else (sympy, icp, scratch validators) runs once per matrix.
_KERNEL_VALIDATORS = frozenset({"sylvester", "gauss", "ldl"})

#: Default kernel-backend sweep. The optional ``"gmpy2"`` backend joins
#: automatically when the package is importable, so an installed gmpy2
#: is always under differential test against the int/Fraction oracles
#: (and campaigns on machines without it keep their historical grid).
_DEFAULT_KERNEL_BACKENDS = ("fraction", "int", "modular") + (
    ("gmpy2",) if gmpy2_available() else ()
)


@dataclass(frozen=True)
class FuzzProfile:
    """The combination grid one fuzz campaign sweeps.

    Frozen and made of plain tuples/ints/floats so it pickles into
    runner tasks and hashes into journal fingerprints deterministically.
    """

    name: str = "quick"
    sizes: tuple = (1, 2, 3, 4, 5)
    methods: tuple = (
        "eq-smt", "eq-num", "modal", "lmi", "lmi-alpha", "lmi-alpha+",
    )
    lmi_backends: tuple = ("ipm", "shift", "proj")
    validators: tuple = ("sylvester", "gauss", "ldl", "sympy")
    kernel_backends: tuple = _DEFAULT_KERNEL_BACKENDS
    sigfigs: int = 10
    eq_smt_max_n: int = 5
    eq_smt_deadline: float = 5.0
    ipm_max_n: int = 12
    metamorphic: bool = True
    lmi_block_max_n: int = 3
    lmi_block_iterations: int = 4000
    icp_backends: tuple = ("scalar", "batched")
    icp_max_n: int = 3
    icp_max_boxes: int = 4000
    service_checks: bool = True
    service_max_n: int = 3
    #: Run the service-cache family on every k-th system (by seed) —
    #: its four extra synthesis+validation runs per system would
    #: otherwise dominate a quick campaign's budget. 1 = every system.
    service_sample: int = 4

    def spec(self) -> dict:
        """Plain-dict form (picklable task field / fingerprint input)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def method_combos(self, n: int) -> list[tuple[str, str | None]]:
        """The ``(method, lmi_backend)`` grid applicable at size ``n``."""
        combos: list[tuple[str, str | None]] = []
        for method in self.methods:
            if method == "eq-smt" and n > self.eq_smt_max_n:
                continue
            if method.startswith("lmi"):
                for backend in self.lmi_backends:
                    if backend == "ipm" and n > self.ipm_max_n:
                        continue
                    combos.append((method, backend))
            else:
                combos.append((method, None))
        return combos


QUICK_PROFILE = FuzzProfile()

LONG_PROFILE = FuzzProfile(
    name="long",
    sizes=tuple(range(1, 22)),
    eq_smt_max_n=8,
    eq_smt_deadline=30.0,
    lmi_block_max_n=6,
)


# ----------------------------------------------------------------------
# Verdict plumbing
# ----------------------------------------------------------------------

class _Harness:
    """Mutable check/disagreement accumulator for one system."""

    def __init__(self, system: GeneratedSystem, profile: FuzzProfile):
        self.system = system
        self.profile = profile
        self.record = FuzzRecord(
            kind=system.kind, n=system.n, seed=system.seed,
            stable=system.stable, provenance=system.provenance,
        )

    def verdict_matrix(self, matrix: RationalMatrix) -> dict[str, bool | None]:
        """Run every ``validator x kernel-backend`` combo on ``matrix``."""
        verdicts: dict[str, bool | None] = {}
        for validator in self.profile.validators:
            if validator in _KERNEL_VALIDATORS:
                for backend in self.profile.kernel_backends:
                    verdicts[f"{validator}/{backend}"] = self._one(
                        validator, matrix, backend
                    )
            else:
                verdicts[validator] = self._one(validator, matrix, None)
        return verdicts

    def _one(
        self, validator: str, matrix: RationalMatrix, backend: str | None
    ) -> bool | None:
        options = {"backend": backend} if backend is not None else {}
        self.record.checks += 1
        try:
            return run_validator(
                validator, matrix, fallback=False, **options
            ).valid
        except Exception as exc:
            self.record.harness_errors.append(
                f"{validator}"
                f"{'/' + backend if backend else ''}: "
                f"{type(exc).__name__}: {exc}"
            )
            return None

    def disagree(self, check: str, **details) -> None:
        self.record.disagreements.append({"check": check, **details})

    def expect(self, check: str, combo: str, expected, got) -> None:
        self.record.checks += 1
        if got != expected:
            self.disagree(check, combo=combo, expected=expected, got=got)


def _consensus(verdicts: dict[str, bool | None]):
    """``(value, conflicts)`` — the agreed verdict over non-None entries.

    ``None`` entries (undecided validators, crashed combos) do not
    participate; a ``True`` vs ``False`` split returns the conflicting
    combos.
    """
    decided = {k: v for k, v in verdicts.items() if v is not None}
    values = set(decided.values())
    if len(values) > 1:
        return None, decided
    return (next(iter(values)) if decided else None), {}


# ----------------------------------------------------------------------
# Check families
# ----------------------------------------------------------------------

def _check_hurwitz_backends(h: _Harness) -> None:
    for backend in h.profile.kernel_backends:
        try:
            got = is_hurwitz_matrix(h.system.a, backend=backend)
        except Exception as exc:
            h.record.harness_errors.append(
                f"hurwitz/{backend}: {type(exc).__name__}: {exc}"
            )
            continue
        h.expect("hurwitz-backend", backend, h.system.stable, got)


def _check_witness(h: _Harness) -> None:
    system = h.system
    if system.witness_p is None:
        return
    for label, matrix in (
        ("P", system.witness_p),
        ("2Q", system.witness_q.scale(2)),
    ):
        for combo, verdict in h.verdict_matrix(matrix).items():
            if verdict is not True:
                h.disagree(
                    "witness", matrix=label, combo=combo,
                    expected=True, got=verdict,
                )


def _check_candidates(h: _Harness) -> None:
    system, profile = h.system, h.profile
    a_float = system.a_float
    for method, backend in profile.method_combos(system.n):
        label = f"{method}/{backend}" if backend else method
        try:
            candidate = synthesize(
                method, a_float, backend=backend or "ipm",
                deadline=(
                    profile.eq_smt_deadline if method == "eq-smt" else None
                ),
                exact_a=system.a if method == "eq-smt" else None,
            )
        except SynthesisTimeout:
            h.record.synth[label] = "timeout"
            continue
        except (LmiInfeasibleError, ValueError):
            h.record.synth[label] = "infeasible"
            continue
        except Exception as exc:
            h.record.synth[label] = "error"
            h.record.harness_errors.append(
                f"synthesize {label}: {type(exc).__name__}: {exc}"
            )
            continue
        h.record.synth[label] = "ok"
        p_exact = candidate.exact_p(profile.sigfigs)
        positivity = h.verdict_matrix(p_exact)
        pos, conflicts = _consensus(positivity)
        if conflicts:
            h.disagree(
                "candidate-consensus", method=label, stage="positivity",
                verdicts=conflicts,
            )
        lie_neg = lie_derivative_exact(p_exact, system.a).scale(-1)
        decrease = h.verdict_matrix(lie_neg)
        dec, conflicts = _consensus(decrease)
        if conflicts:
            h.disagree(
                "candidate-consensus", method=label, stage="decrease",
                verdicts=conflicts,
            )
        if not system.stable and pos is True and dec is True:
            # No quadratic Lyapunov certificate exists for an unstable
            # system: a unanimous "valid" verdict is a soundness bug.
            h.disagree(
                "unsound-true", method=label,
                expected="not both-True on an unstable system",
                got={"positivity": pos, "decrease": dec},
            )


def _check_icp_engines(h: _Harness) -> None:
    """The scalar and batched ICP engines must be indistinguishable.

    The batched engine (:mod:`repro.smt.boxes`) is specified to replay
    the scalar branch-and-prune *exactly* — same verdicts, same
    counterexamples, same box counts — so any divergence on a fuzzed
    definiteness query is a bug in the vectorized kernels, not noise.
    Small sizes only: the sphere-face query count grows with ``n`` and
    the equivalence is dimension-independent.
    """
    system, profile = h.system, h.profile
    if len(profile.icp_backends) < 2 or system.n > profile.icp_max_n:
        return
    targets = [("A-sym", system.a.symmetrize())]
    if system.witness_p is not None:
        targets.append(("P", system.witness_p))
    for label, matrix in targets:
        outcomes = {}
        for backend in profile.icp_backends:
            try:
                outcomes[backend] = check_positive_definite_icp(
                    matrix,
                    max_boxes=profile.icp_max_boxes,
                    backend=backend,
                )
            except Exception as exc:
                h.record.checks += 1
                h.record.harness_errors.append(
                    f"icp/{backend} on {label}: {type(exc).__name__}: {exc}"
                )
        if len(outcomes) < 2:
            continue
        reference_name = next(iter(outcomes))
        reference = outcomes[reference_name]
        expected = (
            reference.verdict, reference.counterexample,
            reference.faces_checked, reference.boxes_explored,
        )
        for backend, outcome in outcomes.items():
            if backend == reference_name:
                continue
            h.expect(
                "icp-engine",
                f"{label}:{reference_name}-vs-{backend}",
                expected,
                (
                    outcome.verdict, outcome.counterexample,
                    outcome.faces_checked, outcome.boxes_explored,
                ),
            )


def _check_service_cache(h: _Harness) -> None:
    """Direct, cold, cached and batched ``certify`` must agree bit for bit.

    The certification service promises that its performance layers are
    invisible: a cache hit, a single-flight coalesce and a same-shape
    batched screen all return the *same* certificate (same ``P`` bytes,
    verdicts and margins — :meth:`repro.service.Certificate.identity`)
    as running the underlying :class:`~repro.service.CertifyTask`
    directly. This family certifies exactly that on fuzzed systems,
    including unstable ones (whose deterministic infeasible/failed
    certificates must also cache and batch identically).
    """
    system, profile = h.system, h.profile
    if (
        not profile.service_checks
        or system.n > profile.service_max_n
        or system.seed % max(1, profile.service_sample)
    ):
        return
    from ..service import CertificationService

    a = system.a_float
    try:
        with CertificationService(
            sigfigs=profile.sigfigs, fallback=False
        ) as service:
            direct = service.request(a).run()  # no cache in the loop
            cold = service.certify(a)
            warm = service.certify(a)
        with CertificationService(
            sigfigs=profile.sigfigs, fallback=False
        ) as batch_service:
            [batched] = batch_service.certify_many(
                [batch_service.request(a)]
            )
    except Exception as exc:
        h.record.checks += 1
        h.record.harness_errors.append(
            f"service-cache: {type(exc).__name__}: {exc}"
        )
        return
    reference = direct.identity()
    for label, certificate in (
        ("cold", cold), ("warm-cache-hit", warm), ("batched", batched),
    ):
        h.expect("service-cache", label, reference, certificate.identity())
    # The repeat request must be served from the cache, not recomputed.
    h.expect("service-cache", "single-computation", 1, service.computations)
    h.expect(
        "service-cache", "cache-hit", True, service.store.memory_hits >= 1
    )


def check_system(
    system: GeneratedSystem, profile: FuzzProfile | None = None
) -> FuzzRecord:
    """Run the full differential + metamorphic battery on one system."""
    profile = profile or QUICK_PROFILE
    h = _Harness(system, profile)
    _check_hurwitz_backends(h)
    _check_witness(h)
    _check_icp_engines(h)
    _check_candidates(h)
    _check_service_cache(h)
    if profile.metamorphic:
        from .metamorphic import metamorphic_checks

        metamorphic_checks(h)
    return h.record
