"""Shrink a failing fuzz case to the smallest failing dimension.

Failures are regenerated, not mutated: a spec ``(kind, n, seed)`` fully
determines a system, so shrinking means re-running the same seeded
construction at smaller ``n`` and keeping the first dimension that
still fails.  The scan is ascending (``n' = 1, 2, ...``) rather than a
bisection because failure is not monotone in ``n`` — a validator bug
may fire at ``n = 3`` and ``n = 7`` but not ``n = 5`` — and the first
hit of an ascending scan is the true minimum by definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cegis import CEGIS_KINDS, check_cegis_scenario
from .differential import FuzzProfile, check_system
from .generate import generate_system
from .records import FuzzRecord

__all__ = ["ShrinkResult", "shrink_failure"]


@dataclass(frozen=True)
class ShrinkResult:
    """The minimal failing spec found for one original failure."""

    original: dict
    minimal: dict
    record: FuzzRecord
    attempts: int

    @property
    def reduced(self) -> bool:
        """True when shrinking found a strictly smaller dimension."""
        return self.minimal["n"] < self.original["n"]


def shrink_failure(
    record: FuzzRecord, profile: FuzzProfile | None = None
) -> ShrinkResult:
    """Scan ``n' = 1..n`` for the smallest dimension that still fails.

    Every candidate dimension reuses the original ``(kind, seed)`` so
    the reduced case replays with the same construction path.  Falls
    back to the original spec when no smaller dimension reproduces the
    failure (the bug genuinely needs the original size).
    """
    original = record.spec()
    attempts = 0
    for n_small in range(1, record.n + 1):
        attempts += 1
        try:
            if record.kind in CEGIS_KINDS:
                reduced = check_cegis_scenario(
                    record.kind, n_small, record.seed, profile
                )
            else:
                system = generate_system(record.kind, n_small, record.seed)
                reduced = check_system(system, profile)
        except Exception:
            continue  # kind may not exist at this size (e.g. jordan n=1)
        if reduced.failed:
            return ShrinkResult(
                original=original, minimal=reduced.spec(),
                record=reduced, attempts=attempts,
            )
    return ShrinkResult(
        original=original, minimal=original, record=record, attempts=attempts
    )
