"""Plain result dataclasses for the oracle fuzzer.

Kept free of heavy imports so :mod:`repro.runner.journal` can register
them for first-class (inspectable, replayable) JSONL encoding without
pulling the whole oracle package into every journal load.

Determinism contract: a :class:`FuzzRecord` must contain **no wall-clock
times** (and nothing else nondeterministic) — two fuzz runs with the
same seed must journal byte-identical records, which is how the CLI's
journal digest proves reproducibility. Timings ride in the runner's
:class:`~repro.runner.timing.TimingCollector` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FuzzRecord"]


@dataclass
class FuzzRecord:
    """Outcome of pushing one generated system through the full matrix.

    ``disagreements`` holds one dict per broken invariant (see
    :mod:`repro.oracle.differential` for the ``check`` vocabulary);
    ``harness_errors`` holds stringified exceptions out of the harness
    itself (a crashing validator is a failure too, just a different
    kind). ``synth`` maps ``method/backend`` labels to their synthesis
    status (``"ok"``/``"infeasible"``/``"timeout"``/``"error"``) —
    synthesis failures are legitimate outcomes, never disagreements.
    ``checks`` counts the individual verdict comparisons performed.
    """

    kind: str
    n: int
    seed: int
    stable: bool
    provenance: str
    checks: int = 0
    synth: dict = field(default_factory=dict)
    disagreements: list = field(default_factory=list)
    harness_errors: list = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Did this system expose a disagreement or a harness crash?"""
        return bool(self.disagreements or self.harness_errors)

    def spec(self) -> dict:
        """The regeneration key: enough to rebuild the exact system."""
        return {"kind": self.kind, "n": self.n, "seed": self.seed}
