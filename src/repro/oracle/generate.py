"""Seeded ground-truth system generator (the fuzzer's oracle half).

Every generated system carries a *known* stability verdict, obtained
constructively rather than by running the code under test:

``stable`` / ``stable-illcond``
    Built **backwards** from a chosen witness: draw ``P ≻ 0``,
    ``Q ≻ 0`` and a skew-symmetric ``K`` with small rational entries,
    then set ``A = P^{-1} (K - Q)`` (exact rational solve). Then

        ``A^T P + P A = (K - Q)^T + (K - Q) = -2 Q ≺ 0``,

    so ``A`` is Hurwitz *by construction* and ``(P, 2Q)`` is a known
    Lyapunov witness pair. ``stable-illcond`` conjugates by a diagonal
    of powers of two (exact), skewing the condition number while
    transforming the witness along.

``unstable`` / ``marginal`` / ``near-marginal`` / ``jordan``
    Eigenvalue placement: a block-diagonal real matrix with chosen
    rational eigenvalues (1x1 real, 2x2 rotation for complex pairs,
    defective Jordan blocks for ``jordan``), conjugated by a random
    *unimodular integer* matrix — the inverse is exact and integer, so
    the eigenvalues (hence the strict-Hurwitz verdict) are known
    exactly. ``marginal`` places an eigenvalue exactly on the imaginary
    axis (strictly Hurwitz: no), ``near-marginal`` places one a tiny
    rational to its left (yes, barely).

``integer``
    An integer/decimal rounding of a ``stable`` construction. Rounding
    can destroy stability, so the verdict is *recomputed* by the exact
    fraction-backend Routh test and tagged ``provenance="routh"`` —
    still a fixed reference every other backend must reproduce.

``zero``
    The all-zero matrix (every eigenvalue 0): strictly Hurwitz, no.

All draws are keyed by ``(kind, n, seed)`` through
``numpy.random.default_rng`` seed sequences, so generation is exactly
reproducible across processes — a failure replays from its spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from ..exact import RationalMatrix, inverse, is_hurwitz_matrix, solve

__all__ = [
    "KINDS",
    "GeneratedSystem",
    "generate_system",
    "system_specs",
    "unimodular_matrix",
    "random_spd",
]

#: Every generator kind, in the order ``system_specs`` cycles through.
KINDS = (
    "stable",
    "stable-illcond",
    "integer",
    "unstable",
    "marginal",
    "near-marginal",
    "jordan",
    "zero",
)

#: Per-kind tag mixed into the seed sequence so the same integer seed
#: yields independent draws for different kinds.
_KIND_TAG = {kind: index + 1 for index, kind in enumerate(KINDS)}


@dataclass
class GeneratedSystem:
    """A system with a stability verdict known independently of the code
    under test.

    ``witness_p``/``witness_q`` are the constructed Lyapunov pair (with
    ``A^T P + P A = -2 Q`` exactly) for the backwards-constructed kinds,
    ``None`` for placement/recomputed kinds. ``provenance`` names how
    the verdict is known: ``"construction"``, ``"placement"`` or
    ``"routh"``. ``marginal`` flags an eigenvalue exactly on the axis.
    """

    kind: str
    n: int
    seed: int
    a: RationalMatrix
    stable: bool
    marginal: bool = False
    witness_p: RationalMatrix | None = None
    witness_q: RationalMatrix | None = None
    provenance: str = "construction"
    info: dict = field(default_factory=dict)

    @property
    def a_float(self) -> np.ndarray:
        """The float image of ``A`` fed to the numeric synthesis side."""
        return self.a.to_numpy()

    def spec(self) -> dict:
        """The regeneration key (see :func:`generate_system`)."""
        return {"kind": self.kind, "n": self.n, "seed": self.seed}


# ----------------------------------------------------------------------
# Random rational building blocks
# ----------------------------------------------------------------------

def _rng(kind: str, n: int, seed: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([_KIND_TAG[kind], n, seed])
    )


def _small_fraction(rng: np.random.Generator, span: int = 9) -> Fraction:
    return Fraction(
        int(rng.integers(-span, span + 1)), int(rng.integers(1, span + 1))
    )


def _fraction_matrix(n: int, rng: np.random.Generator) -> RationalMatrix:
    return RationalMatrix(
        [[_small_fraction(rng) for _ in range(n)] for _ in range(n)]
    )


def random_spd(n: int, rng: np.random.Generator, shift: int = 0) -> RationalMatrix:
    """A random symmetric positive definite rational matrix.

    ``G G^T + (n + shift) I`` — positive definite for any ``G``, with
    the identity shift keeping the conditioning sane.
    """
    g = _fraction_matrix(n, rng)
    return (g @ g.T + RationalMatrix.identity(n).scale(n + shift)).symmetrize()


def _random_skew(n: int, rng: np.random.Generator) -> RationalMatrix:
    k = _fraction_matrix(n, rng)
    return (k - k.T).scale(Fraction(1, 2))


def unimodular_matrix(n: int, rng: np.random.Generator) -> RationalMatrix:
    """A random integer matrix with determinant ±1 (exact inverse).

    Built as a product of integer row shears and row swaps, so both the
    matrix and its inverse have (small) integer entries — similarity
    transforms through it keep every eigenvalue, and every rational
    computation, exact.
    """
    rows = [
        [Fraction(int(i == j)) for j in range(n)] for i in range(n)
    ]
    for _ in range(2 * n):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        c = Fraction(int(rng.integers(-2, 3)))
        if c:
            rows[int(i)] = [
                x + c * y for x, y in zip(rows[int(i)], rows[int(j)])
            ]
        if rng.integers(0, 4) == 0:
            i2, j2 = int(rng.integers(0, n)), int(rng.integers(0, n))
            rows[i2], rows[j2] = rows[j2], rows[i2]
    return RationalMatrix(rows)


# ----------------------------------------------------------------------
# Constructions
# ----------------------------------------------------------------------

def _stable_construction(
    n: int, rng: np.random.Generator
) -> tuple[RationalMatrix, RationalMatrix, RationalMatrix]:
    """``(A, P, Q)`` with ``A^T P + P A = -2 Q`` exactly."""
    p = random_spd(n, rng)
    q = random_spd(n, rng, shift=1)
    k = _random_skew(n, rng)
    a = solve(p, k - q)
    return a, p, q


def _placement(
    n: int,
    rng: np.random.Generator,
    real_parts: list[Fraction],
    imag: dict[int, Fraction] | None = None,
    defective: set[int] | None = None,
) -> RationalMatrix:
    """Block-diagonal matrix with the given spectrum, conjugated by a
    random unimodular integer matrix (exact similarity).

    ``real_parts`` lists one entry per state; index ``i`` in ``imag``
    turns ``(i, i+1)`` into the complex pair ``re ± im·j`` via a 2x2
    rotation block; index ``i`` in ``defective`` chains state ``i`` to
    ``i+1`` with a Jordan 1 (both must share ``real_parts[i]``).
    """
    imag = imag or {}
    defective = defective or set()
    rows = [[Fraction(0)] * n for _ in range(n)]
    i = 0
    while i < n:
        rows[i][i] = real_parts[i]
        if i in imag:
            rows[i + 1][i + 1] = real_parts[i]
            rows[i][i + 1] = imag[i]
            rows[i + 1][i] = -imag[i]
            i += 2
            continue
        if i in defective:
            rows[i + 1][i + 1] = real_parts[i]
            rows[i][i + 1] = Fraction(1)
            i += 2
            continue
        i += 1
    d = RationalMatrix(rows)
    t = unimodular_matrix(n, rng)
    return t @ d @ inverse(t)


def _negative_real(rng: np.random.Generator) -> Fraction:
    return Fraction(-int(rng.integers(1, 9)), int(rng.integers(1, 5)))


def generate_system(kind: str, n: int, seed: int) -> GeneratedSystem:
    """Build one ground-truth system; deterministic in ``(kind, n, seed)``."""
    if kind not in KINDS:
        raise KeyError(f"unknown system kind {kind!r}; known: {KINDS}")
    if not 1 <= n <= 64:
        raise ValueError(f"dimension n={n} out of range")
    rng = _rng(kind, n, seed)

    if kind in ("stable", "stable-illcond"):
        a, p, q = _stable_construction(n, rng)
        info: dict = {}
        if kind == "stable-illcond":
            # Conjugate by diag(2^k): exact, and the witness transforms
            # along (D^{-1} is its own transpose-inverse pattern here).
            spread = min(1 + n // 3, 6)
            powers = [int(rng.integers(-spread, spread + 1)) for _ in range(n)]
            d = RationalMatrix.diagonal([Fraction(2) ** k for k in powers])
            d_inv = RationalMatrix.diagonal(
                [Fraction(1, 2 ** k) if k >= 0 else Fraction(2 ** -k)
                 for k in powers]
            )
            a = d @ a @ d_inv
            p = (d_inv @ p @ d_inv).symmetrize()
            q = (d_inv @ q @ d_inv).symmetrize()
            info["powers"] = powers
        return GeneratedSystem(
            kind=kind, n=n, seed=seed, a=a, stable=True,
            witness_p=p, witness_q=q, provenance="construction", info=info,
        )

    if kind == "integer":
        a, _p, _q = _stable_construction(n, rng)
        scale = int(rng.choice([1, 10]))
        rounded = a.map(
            lambda x: Fraction(round(x * scale), scale) if x else Fraction(0)
        )
        stable = is_hurwitz_matrix(rounded, backend="fraction")
        return GeneratedSystem(
            kind=kind, n=n, seed=seed, a=rounded, stable=stable,
            provenance="routh", info={"scale": scale},
        )

    if kind == "zero":
        return GeneratedSystem(
            kind=kind, n=n, seed=seed, a=RationalMatrix.zeros(n, n),
            stable=False, marginal=True, provenance="placement",
        )

    # Placement kinds: choose a spectrum, conjugate exactly.
    real_parts = [_negative_real(rng) for _ in range(n)]
    imag: dict[int, Fraction] = {}
    defective: set[int] = set()
    marginal = False
    if kind == "unstable":
        hot = int(rng.integers(0, n))
        real_parts[hot] = Fraction(int(rng.integers(1, 9)), 4)
        if n - hot >= 2 and rng.integers(0, 2):
            imag[hot] = Fraction(int(rng.integers(1, 5)))
            real_parts[hot + 1] = real_parts[hot]
        stable = False
    elif kind == "marginal":
        if n >= 2 and rng.integers(0, 2):
            real_parts[0] = Fraction(0)
            real_parts[1] = Fraction(0)
            imag[0] = Fraction(int(rng.integers(1, 5)))
        else:
            real_parts[0] = Fraction(0)
        stable = False
        marginal = True
    elif kind == "near-marginal":
        real_parts[0] = Fraction(-1, int(rng.choice([64, 256, 1024])))
        stable = True
    elif kind == "jordan":
        if n >= 2:
            shared = _negative_real(rng)
            real_parts[0] = real_parts[1] = shared
            if rng.integers(0, 2):
                defective.add(0)  # defective pair; else semisimple repeat
        stable = True
    else:  # pragma: no cover - guarded by the KINDS check above
        raise AssertionError(kind)
    a = _placement(n, rng, real_parts, imag=imag, defective=defective)
    return GeneratedSystem(
        kind=kind, n=n, seed=seed, a=a, stable=stable, marginal=marginal,
        provenance="placement",
        info={
            "real_parts": [str(x) for x in real_parts],
            "imag": {str(k): str(v) for k, v in imag.items()},
            "defective": sorted(defective),
        },
    )


# ----------------------------------------------------------------------
# Campaign plans
# ----------------------------------------------------------------------

def system_specs(
    count: int,
    seed: int,
    sizes: tuple[int, ...],
    kinds: tuple[str, ...] = KINDS,
) -> list[dict]:
    """A deterministic plan of ``count`` system specs.

    Kinds cycle round-robin (every kind gets coverage even at small
    counts); sizes and per-system seeds are drawn from one master
    ``default_rng(seed)`` stream, so the whole plan — and therefore the
    whole campaign — is a pure function of ``(count, seed, sizes,
    kinds)``.
    """
    if count < 0:
        raise ValueError("count must be nonnegative")
    if not sizes:
        raise ValueError("sizes must be nonempty")
    rng = np.random.default_rng(seed)
    specs = []
    for index in range(count):
        kind = kinds[index % len(kinds)]
        n = int(sizes[int(rng.integers(0, len(sizes)))])
        if kind in ("marginal", "jordan") and n < 2:
            n = max(2, min(sizes))
        specs.append(
            {"kind": kind, "n": n, "seed": int(rng.integers(0, 2**31))}
        )
    return specs
