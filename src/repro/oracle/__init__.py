"""Ground-truth oracle fuzzing: generated systems with known verdicts.

The package builds test oracles the rest of the library cannot fake:

* :mod:`~repro.oracle.generate` constructs systems *backwards* from a
  chosen Lyapunov certificate (``A = P^{-1}(K - Q)``), so stability and
  a rational witness are known exactly by construction — plus unstable,
  marginal and defective systems by eigenvalue placement;
* :mod:`~repro.oracle.differential` fans each system through every
  ``method x validator x kernel-backend`` combination and fails on any
  disagreement;
* :mod:`~repro.oracle.metamorphic` checks verdict invariance under
  exact similarity transforms, permutations, scalings and LMI block
  reordering;
* :mod:`~repro.oracle.shrink` reduces failures to the smallest failing
  dimension, and :mod:`~repro.oracle.artifacts` persists them as
  replayable specs.

``python -m repro.fuzz`` drives campaigns over this package through
the parallel runner.
"""

from .artifacts import load_failures, replay_spec, write_failure
from .cegis import (
    CEGIS_KINDS,
    CegisScenario,
    cegis_specs,
    check_cegis_scenario,
    generate_cegis_scenario,
)
from .differential import (
    FuzzProfile,
    LONG_PROFILE,
    QUICK_PROFILE,
    check_system,
)
from .generate import (
    KINDS,
    GeneratedSystem,
    generate_system,
    random_spd,
    system_specs,
    unimodular_matrix,
)
from .records import FuzzRecord
from .shrink import ShrinkResult, shrink_failure

__all__ = [
    "KINDS",
    "CEGIS_KINDS",
    "CegisScenario",
    "cegis_specs",
    "generate_cegis_scenario",
    "check_cegis_scenario",
    "GeneratedSystem",
    "generate_system",
    "random_spd",
    "system_specs",
    "unimodular_matrix",
    "FuzzProfile",
    "QUICK_PROFILE",
    "LONG_PROFILE",
    "check_system",
    "FuzzRecord",
    "ShrinkResult",
    "shrink_failure",
    "write_failure",
    "load_failures",
    "replay_spec",
]
