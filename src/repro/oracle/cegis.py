"""Ground-truth switched-system scenarios for the CEGIS loop fuzzer.

The ``cegis`` fuzz family stresses the whole counterexample-guided
pipeline (:mod:`repro.lyapunov.cegis`) against scenarios whose verdict
is known *by construction*, the same backwards philosophy as
:mod:`repro.oracle.generate`:

``cegis-shared``
    Both modes are built from **one** witness ``P``: draw ``P ≻ 0``
    and per-mode ``Q_i ≻ 0``, skew ``K_i``, set ``A_i = P^{-1}(K_i -
    Q_i)`` so ``A_i^T P + P A_i = -2 Q_i ≺ 0`` exactly, and give both
    modes the **same** equilibrium strictly inside region 0. The
    centered decision point ``x* = (svec(sigma P), q=0, U=0, W=0)`` is
    then feasible for the full LMI by construction — the loop must
    *validate*, and (the metamorphic invariant) **no sampled cut may
    ever exclude** ``x*``: every cut is a 1x1 section of a matrix
    constraint that ``x*`` satisfies.

``cegis-bistable``
    Independent stable constructions per mode, each equilibrium
    strictly interior to its own region. The mode-1 decrease condition
    ``-dV/dt >= eps |w - w_0|^2`` is violated *at* the mode-1
    equilibrium (where ``dV/dt = 0`` but ``w != w_0``), so no
    certificate exists and the certifying ellipsoid must prove the LMI
    **infeasible** — the synthetic miniature of the paper's negative
    result.

Scenarios are pure functions of ``(kind, n, seed)``; failures shrink
and replay through the standard fuzz artifact machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..exact import RationalMatrix, solve
from ..systems import (
    AffineSystem,
    HalfSpace,
    PolyhedralRegion,
    PwaMode,
    PwaSystem,
)
from .generate import _random_skew, random_spd
from .records import FuzzRecord

__all__ = [
    "CEGIS_KINDS",
    "CegisScenario",
    "generate_cegis_scenario",
    "check_cegis_scenario",
    "cegis_specs",
]

#: The fuzz kinds this module owns (dispatched by ``FuzzTask``,
#: ``shrink_failure`` and ``replay_spec``).
CEGIS_KINDS = ("cegis-shared", "cegis-bistable")

#: Seed-sequence tags, disjoint from ``generate._KIND_TAG`` by offset.
_KIND_TAG = {kind: 101 + index for index, kind in enumerate(CEGIS_KINDS)}


@dataclass
class CegisScenario:
    """A switched system with a CEGIS verdict known by construction."""

    kind: str
    n: int
    seed: int
    system: PwaSystem
    #: "validated" (certificate exists — and ``x_star`` proves it) or
    #: "infeasible" (bistable: provably no certificate).
    expected: str
    #: the shared Lyapunov witness (``cegis-shared`` only)
    witness_p: RationalMatrix | None = None
    #: exact mode equilibria used in the construction
    w_eq0: list | None = None
    w_eq1: list | None = None

    def spec(self) -> dict:
        return {"kind": self.kind, "n": self.n, "seed": self.seed}


def _rng(kind: str, n: int, seed: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([_KIND_TAG[kind], n, seed])
    )


def _interior_point(
    rng: np.random.Generator, n: int, first: Fraction
) -> list[Fraction]:
    """A rational point with a pinned first coordinate (the guard axis)."""
    return [first] + [
        Fraction(int(rng.integers(-2, 3)), int(rng.integers(1, 4)))
        for _ in range(n - 1)
    ]


def _affine_mode(
    a: RationalMatrix, w_eq: list, region: PolyhedralRegion, name: str
) -> PwaMode:
    """Mode with flow ``w' = A (w - w_eq)`` (exact ``b = -A w_eq``)."""
    n = a.rows
    b = [
        -sum(a[i, j] * w_eq[j] for j in range(n)) for i in range(n)
    ]
    return PwaMode(
        flow=AffineSystem(a.to_numpy(), np.array([float(x) for x in b])),
        region=region,
        name=name,
    )


def generate_cegis_scenario(kind: str, n: int, seed: int) -> CegisScenario:
    """Build one scenario; deterministic in ``(kind, n, seed)``."""
    if kind not in CEGIS_KINDS:
        raise KeyError(f"unknown cegis kind {kind!r}; known: {CEGIS_KINDS}")
    if not 1 <= n <= 8:
        raise ValueError(f"cegis scenario dimension n={n} out of range")
    rng = _rng(kind, n, seed)
    # Guard axis: mode 0 owns w[0] > 1, mode 1 the complement w[0] <= 1.
    guard = HalfSpace(
        normal=tuple(
            [Fraction(1)] + [Fraction(0)] * (n - 1)
        ),
        offset=Fraction(-1),
        strict=True,
    )
    region0 = PolyhedralRegion([guard])
    region1 = PolyhedralRegion([guard.complement()])
    p = random_spd(n, rng)
    q0 = random_spd(n, rng, shift=1)
    a0 = solve(p, _random_skew(n, rng) - q0)
    w_eq0 = _interior_point(rng, n, Fraction(2))

    if kind == "cegis-shared":
        # Same witness P, independent dynamics, shared equilibrium.
        q1 = random_spd(n, rng, shift=1)
        a1 = solve(p, _random_skew(n, rng) - q1)
        system = PwaSystem([
            _affine_mode(a0, w_eq0, region0, "mode0"),
            _affine_mode(a1, w_eq0, region1, "mode1"),
        ])
        return CegisScenario(
            kind=kind, n=n, seed=seed, system=system,
            expected="validated", witness_p=p,
            w_eq0=w_eq0, w_eq1=w_eq0,
        )

    # cegis-bistable: an independent witness for mode 1, and its
    # equilibrium strictly inside region 1 (w[0] = 0 < 1).
    p1 = random_spd(n, rng)
    q1 = random_spd(n, rng, shift=1)
    a1 = solve(p1, _random_skew(n, rng) - q1)
    w_eq1 = _interior_point(rng, n, Fraction(0))
    system = PwaSystem([
        _affine_mode(a0, w_eq0, region0, "mode0"),
        _affine_mode(a1, w_eq1, region1, "mode1"),
    ])
    return CegisScenario(
        kind=kind, n=n, seed=seed, system=system,
        expected="infeasible",
        w_eq0=w_eq0, w_eq1=w_eq1,
    )


def cegis_specs(
    count: int, seed: int, sizes: tuple[int, ...] = (1, 2, 3)
) -> list[dict]:
    """A deterministic plan of ``count`` cegis-family specs.

    Same contract as :func:`repro.oracle.generate.system_specs`: kinds
    cycle round-robin, sizes and per-scenario seeds come from one
    master stream, so the plan is a pure function of its arguments.
    Sizes default small — every scenario runs a whole CEGIS campaign.
    """
    if count < 0:
        raise ValueError("count must be nonnegative")
    if not sizes:
        raise ValueError("sizes must be nonempty")
    rng = np.random.default_rng(np.random.SeedSequence([997, seed]))
    specs = []
    for index in range(count):
        kind = CEGIS_KINDS[index % len(CEGIS_KINDS)]
        n = int(sizes[int(rng.integers(0, len(sizes)))])
        specs.append(
            {"kind": kind, "n": n, "seed": int(rng.integers(0, 2**31))}
        )
    return specs


def _feasible_point(
    scenario: CegisScenario, lmi, cap: float
) -> np.ndarray:
    """The known-feasible decision vector ``x*`` of a shared scenario.

    ``sigma P`` with ``sigma`` chosen (from float eigenvalues — only
    the *choice* is float; feasibility has construction-sized margins)
    to sit comfortably inside ``delta I ⪯ S_0 ⪯ cap I``; the surface
    correction and both multiplier triples are zero.
    """
    p_float = scenario.witness_p.to_numpy()
    eigenvalues = np.linalg.eigvalsh(p_float)
    sigma = min(1.0, (0.5 * cap) / float(eigenvalues[-1]))
    x = np.zeros(lmi.dim)
    for k, e in enumerate(lmi.basis):
        x[k] = float(np.sum(e * (sigma * p_float)))
    return x


def check_cegis_scenario(
    kind: str,
    n: int,
    seed: int,
    profile=None,
    max_rounds: int = 40,
    max_iterations: int = 20_000,
    verify_max_boxes: int = 10_000,
) -> FuzzRecord:
    """Run the full loop on one scenario and compare against ground truth.

    Checks (counted in ``FuzzRecord.checks``):

    1. **verdict** — the loop's status equals the constructed one
       (``cegis-shared`` runs the *sampled* synthesis so the cut
       machinery is genuinely engaged; ``cegis-bistable`` runs the
       full-matrix synthesis whose ellipsoid carries the proof);
    2. **cut admissibility** (shared) — every sampled cut accumulated
       during the campaign is satisfied at the known-feasible ``x*``,
       within the parent block's own margin: cuts may prune the search,
       never the answer;
    3. **certificate soundness** (shared, validated) — the accepted
       exact certificate is strictly positive at the constructed
       equilibria's reflections (exact rational evaluation, no floats).
    """
    from ..lyapunov import assemble_centered_lmi, cegis_piecewise

    record = FuzzRecord(
        kind=kind, n=n, seed=seed,
        stable=kind == "cegis-shared",
        provenance="construction",
    )
    try:
        scenario = generate_cegis_scenario(kind, n, seed)
    except Exception as error:  # pragma: no cover - generator bug
        record.harness_errors.append(f"generate: {error!r}")
        return record
    synthesis = "sampled" if kind == "cegis-shared" else "full"
    try:
        lmi = assemble_centered_lmi(scenario.system)
        outcome = cegis_piecewise(
            scenario.system,
            synthesis=synthesis,
            max_rounds=max_rounds,
            max_iterations=max_iterations,
            verify_max_boxes=verify_max_boxes,
            lmi=lmi,
        )
    except Exception as error:
        record.harness_errors.append(f"cegis: {error!r}")
        return record
    record.synth["cegis"] = outcome.status
    record.checks += 1
    if outcome.status != scenario.expected:
        record.disagreements.append({
            "check": "cegis-verdict",
            "expected": scenario.expected,
            "got": outcome.status,
            "rounds": len(outcome.rounds),
            "cuts": outcome.cut_count,
        })
        return record
    if kind != "cegis-shared":
        return record

    x_star = _feasible_point(scenario, lmi, cap=lmi.cap)
    parent_margin = max(
        lmi.pos1.violation(x_star)[0], lmi.dec1.violation(x_star)[0]
    )
    for index, cut in enumerate(outcome.cuts):
        record.checks += 1
        violation, _ = cut.violation(x_star)
        # A 1x1 section of a satisfied matrix constraint is bounded by
        # the parent's own worst violation (Rayleigh quotient).
        if violation > parent_margin + 1e-9:
            record.disagreements.append({
                "check": "cegis-cut-excludes-witness",
                "cut_index": index,
                "cut_name": cut.name,
                "violation": float(violation),
                "parent_margin": float(parent_margin),
            })
    certificate = outcome.certificate
    if certificate is not None:
        record.checks += 1
        # Exact spot soundness: V_0 > 0 away from the equilibrium in
        # region 0, V_1 > 0 in region 1 (rational arithmetic only).
        probe0 = [w + 1 for w in certificate.w0]
        probe1 = [Fraction(0)] + list(certificate.w0[1:])
        if not (
            certificate.value(0, probe0) > 0
            and certificate.value(1, probe1) > 0
        ):
            record.disagreements.append({
                "check": "cegis-certificate-not-positive",
                "v0": str(certificate.value(0, probe0)),
                "v1": str(certificate.value(1, probe1)),
            })
    return record
