"""Exact linear-arithmetic feasibility (QF_LRA) via Fourier--Motzkin.

Decides satisfiability of conjunctions of affine constraints
``c^T x + d {<=, <, =} 0`` over the rationals, exactly, and produces a
rational model when satisfiable. Equalities are eliminated by exact
Gaussian substitution first; the remaining inequalities go through
Fourier--Motzkin elimination, with strictness tracked so that strict
bounds are honoured. Worst-case exponential, but the formulas this
library generates (region membership, flow-direction conditions on a
switching surface) have few constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from .terms import Atom, Relation, poly_is_linear, polynomial_of

__all__ = [
    "LinearConstraint",
    "LinearResult",
    "solve_linear",
    "check_atoms_linear",
    "check_farkas_certificate",
]


@dataclass(frozen=True)
class LinearConstraint:
    """``sum coeffs[v]*v + constant  {<= | < | =}  0``."""

    coeffs: tuple[tuple[str, Fraction], ...]
    constant: Fraction
    relation: Relation

    @classmethod
    def from_atom(cls, atom: Atom) -> "LinearConstraint":
        poly = polynomial_of(atom.lhs)
        if not poly_is_linear(poly):
            raise ValueError(f"non-linear atom: {atom!r}")
        if atom.relation is Relation.NE:
            raise ValueError("disequalities must be case-split before FM")
        coeffs = []
        constant = Fraction(0)
        for mono, coeff in poly.items():
            if mono == ():
                constant = coeff
            else:
                ((var, _exp),) = mono
                coeffs.append((var, coeff))
        return cls(tuple(sorted(coeffs)), constant, atom.relation)

    def coeff_map(self) -> dict[str, Fraction]:
        return dict(self.coeffs)


@dataclass
class LinearResult:
    """Feasibility verdict with evidence.

    Satisfiable: ``model`` is an exact rational solution. Unsatisfiable:
    ``farkas`` maps original-constraint indices to multipliers whose
    combination is the contradiction ``0 <(=) -c`` with ``c >= 0`` —
    check it independently with :func:`check_farkas_certificate`.
    """

    satisfiable: bool
    model: dict[str, Fraction] | None = None
    farkas: dict[int, Fraction] | None = None


def _substitute(
    constraint: "_Row",
    variable: str,
    replacement: dict[str, Fraction],
    const: Fraction,
    eq_combo: dict[int, Fraction],
    eq_pivot: Fraction,
) -> "_Row":
    """Replace ``variable`` by the affine expression ``replacement + const``.

    Provenance: substituting from equality row ``E`` (pivot coefficient
    ``eq_pivot`` on ``variable``) is the combination
    ``row - (row_var / eq_pivot) * E``.
    """
    coeffs = dict(constraint.coeffs)
    factor = coeffs.pop(variable, Fraction(0))
    if factor == 0:
        return constraint
    for var, c in replacement.items():
        coeffs[var] = coeffs.get(var, Fraction(0)) + factor * c
        if coeffs[var] == 0:
            del coeffs[var]
    combo = dict(constraint.combo)
    scale = -factor / eq_pivot
    for index, value in eq_combo.items():
        combo[index] = combo.get(index, Fraction(0)) + scale * value
        if combo[index] == 0:
            del combo[index]
    return _Row(
        coeffs, constraint.constant + factor * const, constraint.strict, combo
    )


@dataclass
class _Row:
    """Internal inequality ``sum coeffs*v + constant (<= or <) 0``.

    ``combo`` tracks provenance: coefficients over the *original*
    constraint list such that this row equals ``sum combo[i] *
    constraint_i`` — the raw material of Farkas infeasibility
    certificates (multipliers must be nonnegative on inequalities, free
    on equalities).
    """

    coeffs: dict[str, Fraction]
    constant: Fraction
    strict: bool
    combo: dict[int, Fraction]


def solve_linear(constraints: Sequence[LinearConstraint]) -> LinearResult:
    """Exact feasibility + model construction for affine constraints."""
    rows = []
    eq_rows = []
    for index, c in enumerate(constraints):
        # Strip explicit zero coefficients: they would later masquerade
        # as live variables during pivot selection and back-substitution.
        coeffs = {v: value for v, value in c.coeff_map().items() if value != 0}
        row = _Row(
            coeffs, c.constant, c.relation is Relation.LT,
            {index: Fraction(1)},
        )
        if c.relation is Relation.EQ:
            eq_rows.append(row)
        else:
            rows.append(row)

    # --- Eliminate equalities by substitution --------------------------
    substitutions: list[tuple[str, dict[str, Fraction], Fraction]] = []
    while eq_rows:
        row = eq_rows.pop()
        if not row.coeffs:
            if row.constant != 0:
                # Certificate: scale so the combined constant is positive.
                sign = 1 if row.constant > 0 else -1
                farkas = {i: sign * v for i, v in row.combo.items()}
                return LinearResult(False, farkas=farkas)
            continue
        variable, pivot = next(iter(row.coeffs.items()))
        assert pivot != 0  # zero entries are stripped at construction
        # variable = -(constant + other coeffs)/pivot
        replacement = {
            v: -c / pivot for v, c in row.coeffs.items() if v != variable
        }
        const = -row.constant / pivot
        substitutions.append((variable, replacement, const))
        eq_rows = [
            _substitute(r, variable, replacement, const, row.combo, pivot)
            for r in eq_rows
        ]
        rows = [
            _substitute(r, variable, replacement, const, row.combo, pivot)
            for r in rows
        ]

    # --- Fourier--Motzkin on the inequalities --------------------------
    variables = sorted({v for r in rows for v in r.coeffs})
    eliminated: list[tuple[str, list[_Row], list[_Row]]] = []
    for variable in variables:
        lowers: list[_Row] = []  # rows giving variable >= bound
        uppers: list[_Row] = []  # rows giving variable <= bound
        others: list[_Row] = []
        for row in rows:
            coeff = row.coeffs.get(variable, Fraction(0))
            if coeff == 0:
                others.append(row)
            elif coeff > 0:
                uppers.append(row)
            else:
                lowers.append(row)
        new_rows = list(others)
        for up in uppers:
            for low in lowers:
                cu = up.coeffs[variable]
                cl = -low.coeffs[variable]
                merged = {
                    v: cl * up.coeffs.get(v, Fraction(0))
                    + cu * low.coeffs.get(v, Fraction(0))
                    for v in set(up.coeffs) | set(low.coeffs)
                    if v != variable
                }
                merged = {v: c for v, c in merged.items() if c != 0}
                provenance = dict()
                for source, scale in ((up, cl), (low, cu)):
                    for i, value in source.combo.items():
                        provenance[i] = (
                            provenance.get(i, Fraction(0)) + scale * value
                        )
                provenance = {i: v for i, v in provenance.items() if v != 0}
                new_rows.append(
                    _Row(
                        merged,
                        cl * up.constant + cu * low.constant,
                        up.strict or low.strict,
                        provenance,
                    )
                )
        eliminated.append((variable, lowers, uppers))
        rows = new_rows

    # --- Constant rows decide feasibility ------------------------------
    for row in rows:
        if row.coeffs:
            raise AssertionError("variable survived elimination")
        if row.constant > 0 or (row.strict and row.constant == 0):
            return LinearResult(False, farkas=dict(row.combo))

    # --- Back-substitute a model ---------------------------------------
    model: dict[str, Fraction] = {}
    for variable, lowers, uppers in reversed(eliminated):
        lo: Fraction | None = None
        lo_strict = False
        hi: Fraction | None = None
        hi_strict = False
        for row in lowers:  # coeff < 0:  variable >= bound
            coeff = row.coeffs[variable]
            bound = (
                row.constant
                + sum(
                    c * model[v]
                    for v, c in row.coeffs.items()
                    if v != variable
                )
            ) / -coeff
            if lo is None or bound > lo or (bound == lo and row.strict):
                lo, lo_strict = bound, row.strict
        for row in uppers:
            coeff = row.coeffs[variable]
            bound = -(
                row.constant
                + sum(
                    c * model[v]
                    for v, c in row.coeffs.items()
                    if v != variable
                )
            ) / coeff
            if hi is None or bound < hi or (bound == hi and row.strict):
                hi, hi_strict = bound, row.strict
        model[variable] = _pick_value(lo, lo_strict, hi, hi_strict)

    for variable, replacement, const in reversed(substitutions):
        model[variable] = (
            sum((c * model.get(v, Fraction(0)) for v, c in replacement.items()), Fraction(0))
            + const
        )
    return LinearResult(True, model)


def _pick_value(
    lo: Fraction | None, lo_strict: bool, hi: Fraction | None, hi_strict: bool
) -> Fraction:
    """A rational point inside the (guaranteed nonempty) interval."""
    if lo is None and hi is None:
        return Fraction(0)
    if lo is None:
        return hi - 1 if hi_strict else hi
    if hi is None:
        return lo + 1 if lo_strict else lo
    if lo == hi:
        return lo  # FM guarantees not both strict here
    return (lo + hi) / 2


def check_farkas_certificate(
    constraints: Sequence[LinearConstraint],
    farkas: dict[int, Fraction],
) -> bool:
    """Independently verify a Farkas infeasibility certificate.

    The certificate is valid when (a) multipliers on inequality
    constraints are nonnegative (equality multipliers are free), (b) the
    weighted combination cancels every variable, and (c) the combined
    constant is strictly positive — or nonnegative while some strict
    inequality carries a positive multiplier (then the combination reads
    ``0 < 0``). Any such combination proves the conjunction empty.
    """
    if not farkas:
        return False
    combined: dict[str, Fraction] = {}
    constant = Fraction(0)
    strict_involved = False
    for index, multiplier in farkas.items():
        if not 0 <= index < len(constraints):
            return False
        constraint = constraints[index]
        if constraint.relation is not Relation.EQ:
            if multiplier < 0:
                return False
            if constraint.relation is Relation.LT and multiplier > 0:
                strict_involved = True
        for var, coeff in constraint.coeffs:
            combined[var] = combined.get(var, Fraction(0)) + multiplier * coeff
        constant += multiplier * constraint.constant
    if any(value != 0 for value in combined.values()):
        return False
    return constant > 0 or (strict_involved and constant == 0)


def check_atoms_linear(atoms: Sequence[Atom]) -> LinearResult:
    """Feasibility of a conjunction of (affine) atoms, with NE case-split.

    Disequalities are handled by trying ``< 0`` then ``> 0`` branches.
    """
    ne_atoms = [a for a in atoms if a.relation is Relation.NE]
    base = [a for a in atoms if a.relation is not Relation.NE]
    if not ne_atoms:
        return solve_linear([LinearConstraint.from_atom(a) for a in base])
    first, rest = ne_atoms[0], ne_atoms[1:]
    for branch in (Atom(first.lhs, Relation.LT), Atom(-first.lhs, Relation.LT)):
        result = check_atoms_linear(list(base) + [branch] + rest)
        if result.satisfiable:
            return result
    return LinearResult(False)
