"""SMT-LIB 2 parser (the inverse of :mod:`repro.smt.smtlib`).

Parses the QF_NRA fragment the exporter emits — ``set-logic``,
``declare-const``, ``assert`` with ``and/or/not``, the relations
``<= < = >= >``, arithmetic ``+ * - /`` and rational/decimal literals —
back into this library's formula objects. Round-tripping export→parse
is exact (rationals never go through floats), which the property tests
exploit; the parser also lets the test-suite consume hand-written
SMT-LIB fixtures.
"""

from __future__ import annotations

from fractions import Fraction

from .terms import Add, And, Atom, Const, Formula, Mul, Not, Or, Relation, Term, Var

__all__ = ["parse_script", "parse_formula", "ParsedScript", "SmtLibParseError"]


class SmtLibParseError(ValueError):
    """Raised on malformed input."""


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    current = []
    in_comment = False
    for char in text:
        if in_comment:
            if char == "\n":
                in_comment = False
            continue
        if char == ";":
            in_comment = True
            continue
        if char in "()":
            if current:
                tokens.append("".join(current))
                current = []
            tokens.append(char)
        elif char.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(char)
    if current:
        tokens.append("".join(current))
    return tokens


def _read_sexpr(tokens: list[str], position: int):
    """Parse one s-expression starting at ``position``; returns (node, next)."""
    if position >= len(tokens):
        raise SmtLibParseError("unexpected end of input")
    token = tokens[position]
    if token == "(":
        items = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            node, position = _read_sexpr(tokens, position)
            items.append(node)
        if position >= len(tokens):
            raise SmtLibParseError("unbalanced parentheses")
        return items, position + 1
    if token == ")":
        raise SmtLibParseError("unexpected ')'")
    return token, position + 1


def _number(token: str) -> Fraction | None:
    try:
        return Fraction(token)
    except (ValueError, ZeroDivisionError):
        return None


def _to_term(node, declared: set[str]) -> Term:
    if isinstance(node, str):
        value = _number(node)
        if value is not None:
            return Const(value)
        if node not in declared:
            raise SmtLibParseError(f"undeclared symbol {node!r}")
        return Var(node)
    if not node:
        raise SmtLibParseError("empty term")
    head, *args = node
    if head == "+":
        return Add(tuple(_to_term(a, declared) for a in args))
    if head == "*":
        return Mul(tuple(_to_term(a, declared) for a in args))
    if head == "-":
        if len(args) == 1:
            return Mul((Const(Fraction(-1)), _to_term(args[0], declared)))
        first = _to_term(args[0], declared)
        rest = Add(tuple(_to_term(a, declared) for a in args[1:]))
        return Add((first, Mul((Const(Fraction(-1)), rest))))
    if head == "/":
        if len(args) != 2:
            raise SmtLibParseError("(/ ...) expects two arguments")
        num = _to_term(args[0], declared)
        den = _to_term(args[1], declared)
        if not isinstance(den, Const) or den.value == 0:
            raise SmtLibParseError("division only by nonzero constants")
        if isinstance(num, Const):
            return Const(num.value / den.value)
        return Mul((Const(1 / den.value), num))
    raise SmtLibParseError(f"unsupported term head {head!r}")


_RELATIONS = {"<=", "<", "=", ">=", ">"}


def _to_formula(node, declared: set[str]) -> Formula:
    if isinstance(node, str):
        raise SmtLibParseError(f"bare symbol {node!r} is not a formula")
    if not node:
        raise SmtLibParseError("empty formula")
    head, *args = node
    if head == "and":
        return And(tuple(_to_formula(a, declared) for a in args))
    if head == "or":
        return Or(tuple(_to_formula(a, declared) for a in args))
    if head == "not":
        if len(args) != 1:
            raise SmtLibParseError("(not ...) expects one argument")
        return Not(_to_formula(args[0], declared))
    if head in _RELATIONS:
        if len(args) != 2:
            raise SmtLibParseError(f"({head} ...) expects two arguments")
        lhs = _to_term(args[0], declared)
        rhs = _to_term(args[1], declared)
        difference = lhs - rhs
        if head == "<=":
            return Atom(difference, Relation.LE)
        if head == "<":
            return Atom(difference, Relation.LT)
        if head == "=":
            return Atom(difference, Relation.EQ)
        if head == ">=":
            return Atom(rhs - lhs, Relation.LE)
        return Atom(rhs - lhs, Relation.LT)
    raise SmtLibParseError(f"unsupported formula head {head!r}")


class ParsedScript:
    """The relevant content of a parsed script."""

    def __init__(self, logic: str | None, variables: list[str], assertions: list[Formula]):
        self.logic = logic
        self.variables = variables
        self.assertions = assertions

    @property
    def formula(self) -> Formula:
        """All assertions conjoined."""
        if len(self.assertions) == 1:
            return self.assertions[0]
        return And(tuple(self.assertions))


def parse_formula(text: str, variables: list[str]) -> Formula:
    """Parse a single formula s-expression with pre-declared variables."""
    tokens = _tokenize(text)
    node, position = _read_sexpr(tokens, 0)
    if position != len(tokens):
        raise SmtLibParseError("trailing tokens after formula")
    return _to_formula(node, set(variables))


def parse_script(text: str) -> ParsedScript:
    """Parse a full script (set-logic / declare-const / assert / ...)."""
    tokens = _tokenize(text)
    position = 0
    logic: str | None = None
    variables: list[str] = []
    assertions: list[Formula] = []
    while position < len(tokens):
        node, position = _read_sexpr(tokens, position)
        if not isinstance(node, list) or not node:
            raise SmtLibParseError(f"unexpected top-level token {node!r}")
        command = node[0]
        if command == "set-logic":
            logic = node[1] if len(node) > 1 else None
        elif command == "declare-const":
            if len(node) != 3 or node[2] != "Real":
                raise SmtLibParseError("only Real constants are supported")
            variables.append(node[1])
        elif command == "declare-fun":
            if len(node) != 4 or node[2] != [] or node[3] != "Real":
                raise SmtLibParseError("only nullary Real functions supported")
            variables.append(node[1])
        elif command == "assert":
            if len(node) != 2:
                raise SmtLibParseError("(assert ...) expects one argument")
            assertions.append(_to_formula(node[1], set(variables)))
        elif command in ("check-sat", "exit", "set-info", "set-option"):
            continue
        else:
            raise SmtLibParseError(f"unsupported command {command!r}")
    return ParsedScript(logic, variables, assertions)
