"""Witness extraction and exact-point evaluation for refutation results.

The CEGIS loop (:mod:`repro.lyapunov.cegis`) drives the ICP refuter
against candidate certificates and must turn every refutation into two
artifacts:

* an *exact rational point* inside the refuting box, suitable for
  re-evaluation with :mod:`repro.exact` arithmetic and for conversion
  into a sampled LMI cut, and
* the *exact violation margins* of the refuted atoms at that point, so
  the soundness test suite can assert (without floats) that the witness
  really falsifies the claimed condition.

Both live here, next to the solver, because they only depend on the
term/ICP layer: a witness is just a complete rational assignment and an
atom is a polynomial constraint, so exactness is one
:func:`~repro.smt.terms.poly_eval` away.
"""

from __future__ import annotations

from fractions import Fraction

from .icp import IcpResult
from .terms import Atom, Relation, poly_eval, polynomial_of

__all__ = [
    "witness_point",
    "atom_violation",
    "witness_violations",
    "point_satisfies",
]


def witness_point(result: IcpResult) -> dict[str, Fraction] | None:
    """The exact rational witness point of a SAT/delta-SAT result.

    Prefers the solver's own certified witness; falls back to the
    midpoint of the undecided witness box (the dReal-style reading of a
    delta-SAT verdict: *some* point of the box is within delta of
    satisfying). Returns ``None`` when the result carries neither.
    """
    if result.witness is not None:
        return {name: Fraction(v) for name, v in result.witness.items()}
    if result.witness_box is not None:
        return result.witness_box.midpoint()
    return None


def atom_violation(atom: Atom, point: dict[str, Fraction]) -> Fraction:
    """Exact signed violation of ``atom`` at ``point``.

    The atom's polynomial ``p`` is evaluated exactly; the returned
    margin is positive iff the atom is *violated*:

    ========  =================  ==================
    relation  atom satisfied     returned margin
    ========  =================  ==================
    ``< 0``   ``p < 0``          ``p``
    ``<= 0``  ``p <= 0``         ``p``
    ``= 0``   ``p = 0``          ``|p|``
    ========  =================  ==================

    so for the inequality relations a nonpositive return value means
    the atom holds at the point (with ``< 0`` additionally requiring a
    strictly negative value).
    """
    value = poly_eval(polynomial_of(atom.lhs), point)
    if atom.relation is Relation.EQ:
        return abs(value)
    return value


def point_satisfies(atom: Atom, point: dict[str, Fraction]) -> bool:
    """Exact satisfaction of one atom at a complete rational point."""
    value = poly_eval(polynomial_of(atom.lhs), point)
    if atom.relation is Relation.EQ:
        return value == 0
    if atom.relation is Relation.LT:
        return value < 0
    return value <= 0


def witness_violations(
    atoms: list[Atom], point: dict[str, Fraction]
) -> list[Fraction]:
    """Exact violation margins of every atom at the witness point.

    A refutation query is a conjunction; the ICP solver's SAT verdict
    claims every atom holds at the witness, i.e. every returned margin
    is nonpositive (strict atoms: negative). The property suite checks
    exactly that, with no float in the chain.
    """
    return [atom_violation(atom, point) for atom in atoms]
