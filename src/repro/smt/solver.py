"""Top-level mini-SMT interface.

Combines the pieces of :mod:`repro.smt` into a small solver for
quantifier-free formulas over polynomial real arithmetic:

* the formula is put in DNF (the library's queries are small),
* purely affine conjunctions are decided *exactly* by Fourier--Motzkin,
* nonlinear conjunctions are decided by the ICP branch-and-prune
  refuter over a caller-supplied bounding box (delta-complete).

``check`` therefore returns SAT with an exact rational model, UNSAT
(a proof over the box for nonlinear queries, unconditional for linear
ones), DELTA_SAT, or UNKNOWN.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .icp import Box, IcpSolver, IcpStatus
from .linear import check_atoms_linear
from .terms import Atom, Formula, Relation, poly_is_linear, polynomial_of, to_dnf

__all__ = ["SmtStatus", "SmtResult", "SmtSolver"]


# Re-export the ICP status vocabulary: the SMT result speaks the same.
SmtStatus = IcpStatus


@dataclass
class SmtResult:
    """Solver outcome: status, exact model (when SAT), statistics."""
    status: SmtStatus
    model: dict[str, Fraction] | None = None
    conjuncts_checked: int = 0
    boxes_explored: int = 0

    @property
    def is_sat(self) -> bool:
        """True when the status is SAT."""
        return self.status is SmtStatus.SAT

    @property
    def is_unsat(self) -> bool:
        """True when the status is UNSAT."""
        return self.status is SmtStatus.UNSAT


@dataclass
class SmtSolver:
    """Decide quantifier-free polynomial formulas.

    Parameters mirror :class:`~repro.smt.icp.IcpSolver`; ``box`` supplies
    the domain for nonlinear queries (ICP needs a bounded search space —
    the library's callers always have a natural one, e.g. the unit-sphere
    faces for definiteness checks).
    """

    delta: float = 1e-7
    max_boxes: int = 200_000
    icp_backend: str = "auto"

    def check(self, formula: Formula, box: Box | None = None) -> SmtResult:
        disjuncts = to_dnf(formula)
        total_boxes = 0
        saw_delta = False
        saw_unknown = False
        for conjunct in disjuncts:
            result = self.check_conjunction(conjunct, box)
            total_boxes += result.boxes_explored
            if result.status is SmtStatus.SAT:
                return SmtResult(
                    SmtStatus.SAT, result.model, len(disjuncts), total_boxes
                )
            if result.status is SmtStatus.DELTA_SAT:
                saw_delta = True
            elif result.status is SmtStatus.UNKNOWN:
                saw_unknown = True
        if saw_delta:
            status = SmtStatus.DELTA_SAT
        elif saw_unknown:
            status = SmtStatus.UNKNOWN
        else:
            status = SmtStatus.UNSAT
        return SmtResult(status, None, len(disjuncts), total_boxes)

    def check_conjunction(
        self, atoms: list[Atom], box: Box | None = None
    ) -> SmtResult:
        """Decide one conjunction of atoms (linear -> FM, else ICP)."""
        if not atoms:
            return SmtResult(SmtStatus.SAT, {})
        if all(poly_is_linear(polynomial_of(a.lhs)) for a in atoms):
            linear = check_atoms_linear(atoms)
            if linear.satisfiable:
                return SmtResult(SmtStatus.SAT, linear.model)
            return SmtResult(SmtStatus.UNSAT)
        if box is None:
            raise ValueError("nonlinear conjunction requires a bounding box")
        # ICP cannot branch on disequalities; case-split them first.
        ne_atoms = [a for a in atoms if a.relation is Relation.NE]
        if ne_atoms:
            base = [a for a in atoms if a.relation is not Relation.NE]
            first, rest = ne_atoms[0], ne_atoms[1:]
            outcomes = []
            for branch in (
                Atom(first.lhs, Relation.LT),
                Atom(-first.lhs, Relation.LT),
            ):
                outcome = self.check_conjunction(base + [branch] + rest, box)
                if outcome.status is SmtStatus.SAT:
                    return outcome
                outcomes.append(outcome)
            worst = max(
                outcomes,
                key=lambda r: [
                    SmtStatus.UNSAT,
                    SmtStatus.UNKNOWN,
                    SmtStatus.DELTA_SAT,
                ].index(r.status),
            )
            return worst
        icp = IcpSolver(
            delta=self.delta,
            max_boxes=self.max_boxes,
            backend=self.icp_backend,
        )
        result = icp.check(atoms, box)
        return SmtResult(
            result.status, result.witness, 1, result.boxes_explored
        )
