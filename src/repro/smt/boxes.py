"""Batched interval arithmetic and the frontier-at-a-time ICP engine.

The scalar solver in :mod:`repro.smt.icp` processes one box at a time
and pays exact-:class:`~fractions.Fraction` bookkeeping on every
interval operation (the conditional outward rounding in
:mod:`repro.smt.interval` keeps dyadic arithmetic tight by comparing
each float result against the exact rational). This module evaluates a
*population* of boxes per NumPy pass — bounds live in ``(B, V, 2)``
arrays (:class:`BoxArray`) — while reproducing the scalar arithmetic
bit for bit, so the batched engine's verdicts, witnesses, witness
boxes and search statistics are identical to the scalar oracle's.

**How the outward-rounding guarantee survives vectorization.** The
scalar rule is *conditional*: a bound is nudged with ``nextafter`` only
when the float operation was inexact, and only toward the outside.
Recomputing the exact rationals per box would forfeit the batch win, so
the batched kernels recover the exactness test from error-free
transforms instead:

* additions use Knuth's TwoSum — ``err`` is exactly ``(a + b) -
  fl(a + b)``, so rounding down iff ``err < 0`` (up iff ``err > 0``)
  coincides with the scalar comparison against the exact sum;
* products use Dekker splitting (no FMA assumed) — same argument, and
  the four endpoint candidates are ordered by the lexicographic pair
  ``(product, err)``, which orders exactly like the scalar's exact
  rational keys because round-to-nearest is monotone;
* powers repeat the scalar's sequential multiply (including the
  even-power floor at zero), and enclosure accumulation follows the
  scalar monomial order — no einsum reassociation, which would change
  rounding.

The transforms are exact only away from overflow/underflow, so any box
that ever touches a magnitude outside ``[2^-500, 2^500]`` (or a
non-finite value) is flagged and *deferred*: it is re-processed from
scratch by the scalar per-box step (``IcpSolver._step``), which is
always correct. In practice no box in the paper's workloads defers.

**Search order.** A naive breadth-first frontier would diverge from the
scalar depth-first engine (different first witness, exponentially worse
on delta-sat instances). Instead the engine keeps a worklist of pending
boxes keyed by their *path* from the root (``'0'`` = low child, ``'1'``
= high child). Lexicographic path order is exactly DFS preorder, and
children of the chunk prepend in order, so the worklist stays sorted
for free. Each round classifies the ``chunk`` lex-least boxes in one
vectorized pass; terminals (SAT / DELTA_SAT) are tracked by lex-min
path and the worklist is pruned behind the best terminal. At the end
the engine returns the lex-least terminal — the one the scalar DFS
would have reached first — and reconstructs the scalar's
``boxes_explored``/``splits`` counters from the recorded paths, so
budget-exhaustion (UNKNOWN) verdicts also coincide.
"""

from __future__ import annotations

import bisect
from fractions import Fraction
from typing import Sequence

import numpy as np

from .icp import (
    Box,
    IcpResult,
    IcpSolver,
    IcpStatus,
    PreparedAtom,
    prepare_atoms,
)
from .interval import Interval
from .terms import Atom, Polynomial, Relation

__all__ = [
    "BoxArray",
    "batched_check",
    "classify_boxes",
    "compile_atoms",
]

#: Dekker splitter for doubles (2^27 + 1).
_SPLIT = 134217729.0
#: Magnitude guards: outside [2^-500, 2^500] the error-free transforms
#: may lose exactness (overflow of the splitting, subnormal products),
#: so such boxes are deferred to the scalar step.
_BIG = 2.0**500
_TINY = 2.0**-500
_CHUNK = 256


# ----------------------------------------------------------------------
# Box populations
# ----------------------------------------------------------------------

class BoxArray:
    """A population of ``B`` boxes over ``V`` named variables.

    ``bounds`` has shape ``(B, V, 2)`` — ``bounds[b, v, 0]`` is the low
    endpoint of variable ``names[v]`` in box ``b``. Variables are
    stored in sorted name order so per-column argmax reproduces the
    scalar solver's sorted-name tie-break.
    """

    __slots__ = ("names", "bounds")

    def __init__(self, names: Sequence[str], bounds: np.ndarray):
        self.names = tuple(names)
        self.bounds = bounds

    @classmethod
    def from_boxes(cls, boxes: Sequence[Box]) -> "BoxArray":
        names = sorted(boxes[0].intervals)
        bounds = np.empty((len(boxes), len(names), 2), dtype=np.float64)
        for b, box in enumerate(boxes):
            for v, name in enumerate(names):
                iv = box[name]
                bounds[b, v, 0] = iv.lo
                bounds[b, v, 1] = iv.hi
        return cls(names, bounds)

    @property
    def lo(self) -> np.ndarray:
        return self.bounds[:, :, 0]

    @property
    def hi(self) -> np.ndarray:
        return self.bounds[:, :, 1]

    def __len__(self) -> int:
        return self.bounds.shape[0]

    def to_boxes(self) -> list[Box]:
        return [
            Box(
                {
                    name: Interval(
                        float(self.bounds[b, v, 0]), float(self.bounds[b, v, 1])
                    )
                    for v, name in enumerate(self.names)
                }
            )
            for b in range(len(self))
        ]


# ----------------------------------------------------------------------
# Error-free transforms and bit-identical interval kernels
# ----------------------------------------------------------------------

def _guard(bad: np.ndarray, x: np.ndarray) -> None:
    """Flag boxes whose value leaves the exactness-safe magnitude band."""
    ax = np.abs(x)
    ok = (x == 0.0) | ((ax >= _TINY) & (ax <= _BIG))
    np.logical_or(bad, ~ok, out=bad)


def _guard_bounds(bad: np.ndarray, arr: np.ndarray) -> None:
    """Per-box guard over a ``(B, V)`` array of endpoint values."""
    ax = np.abs(arr)
    ok = (arr == 0.0) | ((ax >= _TINY) & (ax <= _BIG))
    np.logical_or(bad, ~ok.all(axis=1), out=bad)


def _two_sum(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    s = a + b
    bv = s - a
    av = s - bv
    return s, (a - av) + (b - bv)


def _two_prod(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = a * b
    c = _SPLIT * a
    ahi = c - (c - a)
    alo = a - ahi
    c = _SPLIT * b
    bhi = c - (c - b)
    blo = b - bhi
    err = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo
    return p, err


def _round_lo(value: np.ndarray, err: np.ndarray) -> np.ndarray:
    # Scalar `_lo_of` keeps the float iff Fraction(value) <= exact,
    # i.e. iff the transform error is >= 0.
    return np.where(err < 0.0, np.nextafter(value, -np.inf), value)


def _round_hi(value: np.ndarray, err: np.ndarray) -> np.ndarray:
    return np.where(err > 0.0, np.nextafter(value, np.inf), value)


def _iv_add(lo1, hi1, lo2, hi2, bad):
    s, e = _two_sum(lo1, lo2)
    _guard(bad, s)
    lo = _round_lo(s, e)
    s, e = _two_sum(hi1, hi2)
    _guard(bad, s)
    hi = _round_hi(s, e)
    return lo, hi


def _iv_mul(lo1, hi1, lo2, hi2, bad):
    # Candidate order matches Interval.__mul__; selection by the lex
    # pair (product, err) == selection by the scalar's exact keys.
    ps = []
    es = []
    for a, b in ((lo1, lo2), (lo1, hi2), (hi1, lo2), (hi1, hi2)):
        p, e = _two_prod(a, b)
        _guard(bad, p)
        ps.append(p)
        es.append(e)
    mn_p, mn_e = ps[0], es[0]
    mx_p, mx_e = ps[0], es[0]
    for p, e in zip(ps[1:], es[1:]):
        less = (p < mn_p) | ((p == mn_p) & (e < mn_e))
        mn_p = np.where(less, p, mn_p)
        mn_e = np.where(less, e, mn_e)
        more = (p > mx_p) | ((p == mx_p) & (e > mx_e))
        mx_p = np.where(more, p, mx_p)
        mx_e = np.where(more, e, mx_e)
    return _round_lo(mn_p, mn_e), _round_hi(mx_p, mx_e)


def _iv_pow(lo, hi, exponent, bad):
    if exponent == 0:
        one = np.ones_like(lo)
        return one, one.copy()
    rlo, rhi = lo, hi
    for _ in range(exponent - 1):
        rlo, rhi = _iv_mul(rlo, rhi, lo, hi, bad)
    if exponent % 2 == 0:
        # Even powers are nonnegative; floor at zero exactly like the
        # scalar (`max(result.lo, 0.0)` keeps -0.0, so test `< 0.0`).
        straddle = (lo <= 0.0) & (0.0 <= hi)
        rlo = np.where(straddle & (rlo < 0.0), 0.0, rlo)
    return rlo, rhi


# ----------------------------------------------------------------------
# Compilation: PreparedAtom -> index-based monomial plans
# ----------------------------------------------------------------------

class _CompiledPoly:
    """Monomials as ``(coeff_lo, coeff_hi, ((var_index, exp), ...))`` in
    the polynomial's dict order (the scalar accumulation order)."""

    __slots__ = ("monos",)

    def __init__(self, monos):
        self.monos = monos


class _CompiledAtom:
    __slots__ = ("relation", "poly", "var_mask", "linear")

    def __init__(self, relation, poly, var_mask, linear):
        self.relation = relation
        self.poly = poly
        self.var_mask = var_mask
        self.linear = linear  # [(var_index, coeff_cpoly, rest_cpoly)]


def _safe_bound(x: float) -> bool:
    return x == 0.0 or _TINY <= abs(x) <= _BIG


def _compile_poly(poly: Polynomial, index: dict[str, int]):
    monos = []
    for mono, coeff in poly.items():
        iv = Interval.point(coeff)
        if not (_safe_bound(iv.lo) and _safe_bound(iv.hi)):
            return None
        monos.append(
            (iv.lo, iv.hi, tuple((index[var], exp) for var, exp in mono))
        )
    return _CompiledPoly(monos)


def compile_atoms(
    prepared: Sequence[PreparedAtom], names: Sequence[str]
) -> list[_CompiledAtom] | None:
    """Compile prepared atoms against a sorted variable order.

    Returns ``None`` when a constraint cannot be compiled (a
    coefficient outside the exactness-safe band, or a variable missing
    from the box) — the caller then falls back to the scalar engine.
    """
    index = {name: i for i, name in enumerate(names)}
    compiled = []
    try:
        for atom in prepared:
            poly = _compile_poly(atom.poly, index)
            if poly is None:
                return None
            mask = np.zeros(len(names), dtype=bool)
            for _lo, _hi, mono in poly.monos:
                for vi, _exp in mono:
                    mask[vi] = True
            linear = []
            for variable, coeff_poly, rest_poly in atom.linear:
                cc = _compile_poly(coeff_poly, index)
                rr = _compile_poly(rest_poly, index)
                if cc is None or rr is None:
                    return None
                linear.append((index[variable], cc, rr))
            compiled.append(_CompiledAtom(atom.relation, poly, mask, linear))
    except KeyError:
        return None
    return compiled


def _eval_poly(cpoly: _CompiledPoly, lo, hi, powers, bad):
    """Batched enclosure of a compiled polynomial over ``(B, V)`` bounds.

    Replays the scalar ``eval_poly_interval`` term order exactly:
    ``total = [0,0]``, then per monomial ``part = coeff * prod(powers)``
    accumulated left to right.
    """
    shape = lo.shape[0]
    tlo = np.zeros(shape)
    thi = np.zeros(shape)
    for clo, chi, mono in cpoly.monos:
        plo = np.full(shape, clo)
        phi = np.full(shape, chi)
        for vi, exp in mono:
            power = powers.get((vi, exp))
            if power is None:
                power = _iv_pow(lo[:, vi], hi[:, vi], exp, bad)
                powers[vi, exp] = power
            plo, phi = _iv_mul(plo, phi, power[0], power[1], bad)
        tlo, thi = _iv_add(tlo, thi, plo, phi, bad)
    return tlo, thi


def _violated_mask(elo, ehi, relation):
    if relation is Relation.LE:
        return elo > 0.0
    if relation is Relation.LT:
        return elo >= 0.0
    if relation is Relation.EQ:
        return (elo > 0.0) | (ehi < 0.0)
    return (elo == 0.0) & (ehi == 0.0)


def _satisfied_mask(elo, ehi, relation):
    if relation is Relation.LE:
        return ehi <= 0.0
    if relation is Relation.LT:
        return ehi < 0.0
    if relation is Relation.EQ:
        return (elo == 0.0) & (ehi == 0.0)
    return (elo > 0.0) | (ehi < 0.0)


# ----------------------------------------------------------------------
# Chunk pipeline: contraction, classification, witness, split
# ----------------------------------------------------------------------

def _where_max(a, b):
    """Python ``max(a, b)`` semantics elementwise (first wins ties)."""
    return np.where(b > a, b, a)


def _where_min(a, b):
    return np.where(b < a, b, a)


def _div_up_arr(num, den):
    q = num / den
    q = np.where(np.isnan(q), np.inf, q)
    q = np.where(den == 0.0, np.inf, q)
    return np.where(np.isfinite(q), np.nextafter(q, np.inf), q)


def _div_down_arr(num, den):
    q = num / den
    q = np.where(np.isnan(q), -np.inf, q)
    q = np.where(den == 0.0, -np.inf, q)
    return np.where(np.isfinite(q), np.nextafter(q, -np.inf), q)


def _contract_chunk(solver, compiled, lo, hi, bad):
    """Vectorized HC4 contraction, mutating ``lo``/``hi`` in place.

    Runs every pass unconditionally: contraction is a deterministic
    function of the box, so re-running it on a box the scalar engine
    left alone (its early `no change` break) reproduces the same box.
    """
    n = lo.shape[0]
    empty = np.zeros(n, dtype=bool)
    for _ in range(solver.contraction_passes):
        for atom in compiled:
            is_eq = atom.relation is Relation.EQ
            for vi, coeff_poly, rest_poly in atom.linear:
                powers: dict = {}
                alo, ahi = _eval_poly(coeff_poly, lo, hi, powers, bad)
                blo, bhi = _eval_poly(rest_poly, lo, hi, powers, bad)
                known = ~((alo <= 0.0) & (0.0 <= ahi))
                if not known.any():
                    continue
                pos = alo > 0.0
                nblo = -blo
                nbhi = -bhi
                up_pos = _where_max(
                    _div_up_arr(nblo, alo), _div_up_arr(nblo, ahi)
                )
                lo_neg = _where_min(
                    _div_down_arr(nblo, alo), _div_down_arr(nblo, ahi)
                )
                if is_eq:
                    lo_pos = _where_min(
                        _div_down_arr(nbhi, alo), _div_down_arr(nbhi, ahi)
                    )
                    up_neg = _where_max(
                        _div_up_arr(nbhi, alo), _div_up_arr(nbhi, ahi)
                    )
                else:
                    lo_pos = np.full(n, -np.inf)
                    up_neg = np.full(n, np.inf)
                cand_lo = np.where(pos, lo_pos, lo_neg)
                cand_hi = np.where(pos, up_pos, up_neg)
                cand_empty = known & (cand_lo > cand_hi)
                x_lo = lo[:, vi]
                x_hi = hi[:, vi]
                # Interval.intersect: max(x.lo, c.lo), min(x.hi, c.hi)
                n_lo = np.where(cand_lo > x_lo, cand_lo, x_lo)
                n_hi = np.where(cand_hi < x_hi, cand_hi, x_hi)
                isect_empty = known & ~cand_empty & (n_lo > n_hi)
                empty |= cand_empty | isect_empty
                update = known & ~empty
                lo[:, vi] = np.where(update, n_lo, x_lo)
                hi[:, vi] = np.where(update, n_hi, x_hi)
                # Contracted endpoints are new multiplication operands;
                # re-check they stay inside the exactness band.
                _guard(bad, lo[:, vi])
                _guard(bad, hi[:, vi])
    return empty


def _classify_chunk(compiled, lo, hi, bad):
    n = lo.shape[0]
    powers: dict = {}
    infeasible = np.zeros(n, dtype=bool)
    undecided = []
    for atom in compiled:
        elo, ehi = _eval_poly(atom.poly, lo, hi, powers, bad)
        violated = _violated_mask(elo, ehi, atom.relation)
        satisfied = _satisfied_mask(elo, ehi, atom.relation)
        infeasible |= violated
        undecided.append(~violated & ~satisfied)
    return infeasible, undecided


def _midpoints(lo, hi):
    """Elementwise replica of ``Interval.midpoint``."""
    mid = 0.5 * (lo + hi)
    alt = 0.5 * lo + 0.5 * hi
    mid = np.where(np.isfinite(mid), mid, alt)
    lo_inf = lo == -np.inf
    hi_inf = hi == np.inf
    down = hi - 1.0
    up = lo + 1.0
    mid = np.where(lo_inf & ~hi_inf, np.where(down <= 0.0, down, 0.0), mid)
    mid = np.where(~lo_inf & hi_inf, np.where(up >= 0.0, up, 0.0), mid)
    mid = np.where(lo_inf & hi_inf, 0.0, mid)
    return mid


def _witness_chunk(
    solver, prepared, compiled, order, names, mids, lo, hi, skip, bad
):
    """Batched replica of ``_exact_witness``: screen the scalar's three
    candidate points with degenerate-interval enclosures; only points a
    screen cannot decide fall through to the exact rational check."""
    n = lo.shape[0]
    found = np.zeros(n, dtype=bool)
    witnesses: list[dict | None] = [None] * n
    sorted_pos = [names.index(name) for name in order]
    for candidate in range(3):
        if candidate == 0:
            pts = mids
            eligible = ~skip & ~found
        elif candidate == 1:
            pts = lo
            eligible = ~skip & ~found & np.isfinite(lo).all(axis=1)
        else:
            pts = hi
            eligible = ~skip & ~found & np.isfinite(hi).all(axis=1)
        if not eligible.any():
            continue
        fails = np.zeros(n, dtype=bool)
        unknown = np.zeros(n, dtype=bool)
        powers: dict = {}
        for atom in compiled:
            elo, ehi = _eval_poly(atom.poly, pts, pts, powers, bad)
            violated = _violated_mask(elo, ehi, atom.relation)
            satisfied = _satisfied_mask(elo, ehi, atom.relation)
            fails |= violated
            unknown |= ~violated & ~satisfied
        eligible = eligible & ~bad
        certain = eligible & ~fails & ~unknown
        for i in np.nonzero(certain)[0]:
            found[i] = True
            witnesses[i] = {
                name: Fraction(float(pts[i, vi]))
                for name, vi in zip(order, sorted_pos)
            }
        maybe = eligible & ~fails & unknown
        for i in np.nonzero(maybe)[0]:
            point = {
                name: Fraction(float(pts[i, vi]))
                for name, vi in zip(order, sorted_pos)
            }
            if solver._satisfies_exactly(prepared, point):
                found[i] = True
                witnesses[i] = point
    return found, witnesses


def _make_box(order, names, lo_row, hi_row) -> Box:
    pos = {name: i for i, name in enumerate(names)}
    return Box(
        {
            name: Interval(float(lo_row[pos[name]]), float(hi_row[pos[name]]))
            for name in order
        }
    )


def _process_chunk(solver, prepared, compiled, order, names, lo, hi):
    """Run the scalar per-box step, vectorized, over one chunk.

    Returns one ``(kind, payload)`` outcome per box — ``"drop"``,
    ``("sat", (witness, box))``, ``("delta", box)`` or ``("split",
    (lo_low, hi_low, lo_high, hi_high))`` row arrays. Boxes whose
    arithmetic left the exactness band are recomputed with the scalar
    step on their original bounds.
    """
    n = lo.shape[0]
    orig_lo = lo.copy()
    orig_hi = hi.copy()
    bad = np.zeros(n, dtype=bool)
    with np.errstate(all="ignore"):
        _guard_bounds(bad, lo)
        _guard_bounds(bad, hi)
        empty = _contract_chunk(solver, compiled, lo, hi, bad)
        infeasible, undecided = _classify_chunk(compiled, lo, hi, bad)
        dead = empty | infeasible
        mids = _midpoints(lo, hi)
        _guard_bounds(bad, mids)
        found, witnesses = _witness_chunk(
            solver, prepared, compiled, order, names, mids, lo, hi, dead, bad
        )
        widths = hi - lo
        max_width = widths.max(axis=1) if widths.shape[1] else np.zeros(n)
        is_delta = max_width <= solver.delta
        # Split variable: widest among variables of undecided
        # constraints (sorted-name argmax == the scalar tie-break).
        candidates = np.zeros_like(lo, dtype=bool)
        for atom, mask in zip(compiled, undecided):
            candidates |= mask[:, None] & atom.var_mask[None, :]
        no_candidate = ~candidates.any(axis=1)
        if no_candidate.any():
            candidates[no_candidate, :] = True
        masked = np.where(candidates, widths, -np.inf)
        split_vi = (
            masked.argmax(axis=1)
            if widths.shape[1]
            else np.zeros(n, dtype=int)
        )
    outcomes = []
    for i in range(n):
        if bad[i]:
            kind, payload = solver._step(
                prepared, _make_box(order, names, orig_lo[i], orig_hi[i])
            )
            if kind == "split":
                box, variable = payload
                low, high = box[variable].split()
                lo_low = np.array([box[nm].lo for nm in names])
                hi_low = np.array(
                    [
                        low.hi if nm == variable else box[nm].hi
                        for nm in names
                    ]
                )
                lo_high = np.array(
                    [
                        high.lo if nm == variable else box[nm].lo
                        for nm in names
                    ]
                )
                hi_high = np.array([box[nm].hi for nm in names])
                outcomes.append(("split", (lo_low, hi_low, lo_high, hi_high)))
            else:
                outcomes.append((kind, payload))
            continue
        if dead[i]:
            outcomes.append(("drop", None))
            continue
        if found[i]:
            outcomes.append(
                ("sat", (witnesses[i], _make_box(order, names, lo[i], hi[i])))
            )
            continue
        if is_delta[i]:
            outcomes.append(("delta", _make_box(order, names, lo[i], hi[i])))
            continue
        vi = int(split_vi[i])
        mid = mids[i, vi]
        hi_low = hi[i].copy()
        hi_low[vi] = mid
        lo_high = lo[i].copy()
        lo_high[vi] = mid
        outcomes.append(("split", (lo[i].copy(), hi_low, lo_high, hi[i].copy())))
    return outcomes


# ----------------------------------------------------------------------
# The chunked DFS-equivalent search
# ----------------------------------------------------------------------

def batched_check(
    solver: IcpSolver,
    prepared: list[PreparedAtom],
    box: Box,
    chunk: int = _CHUNK,
) -> IcpResult:
    """Decide a prepared conjunction with the batched frontier engine.

    Equivalence with the scalar DFS (see the module docstring): pending
    boxes are processed in lexicographic path order, every tree box
    preceding the surviving terminal is processed exactly once, and the
    scalar's budget rule is replayed from the recorded paths. Any
    verdict this function returns is the verdict — with the same
    witness, witness box and statistics — that ``_check_scalar`` would
    return.
    """
    order = list(box.intervals)
    names = sorted(order)
    compiled = compile_atoms(prepared, names)
    if compiled is None or not names:
        return solver._check_scalar(prepared, box)
    n_vars = len(names)
    paths: list[str] = [""]
    pend_lo = np.array([[box[name].lo for name in names]])
    pend_hi = np.array([[box[name].hi for name in names]])
    records: list[tuple[str, bool]] = []
    term_path: str | None = None
    term_kind = ""
    term_payload = None
    while paths:
        if term_path is not None:
            cut = bisect.bisect_left(paths, term_path)
            if cut == 0:
                break
            paths = paths[:cut]
            pend_lo = pend_lo[:cut]
            pend_hi = pend_hi[:cut]
        take = min(chunk, len(paths))
        chunk_paths = paths[:take]
        chunk_lo = pend_lo[:take].copy()
        chunk_hi = pend_hi[:take].copy()
        paths = paths[take:]
        pend_lo = pend_lo[take:]
        pend_hi = pend_hi[take:]
        outcomes = _process_chunk(
            solver, prepared, compiled, order, names, chunk_lo, chunk_hi
        )
        child_paths: list[str] = []
        child_lo: list[np.ndarray] = []
        child_hi: list[np.ndarray] = []
        for path, (kind, payload) in zip(chunk_paths, outcomes):
            if kind == "drop":
                records.append((path, False))
            elif kind in ("sat", "delta"):
                records.append((path, False))
                if term_path is None or path < term_path:
                    term_path, term_kind, term_payload = path, kind, payload
            else:
                records.append((path, True))
                lo_low, hi_low, lo_high, hi_high = payload
                child_paths.append(path + "0")
                child_lo.append(lo_low)
                child_hi.append(hi_low)
                child_paths.append(path + "1")
                child_lo.append(lo_high)
                child_hi.append(hi_high)
        if child_paths:
            paths = child_paths + paths
            pend_lo = np.vstack(
                [np.asarray(child_lo).reshape(-1, n_vars), pend_lo]
            )
            pend_hi = np.vstack(
                [np.asarray(child_hi).reshape(-1, n_vars), pend_hi]
            )
        # Budget early-out: once more boxes precede the frontier than
        # the budget allows (and no terminal precedes them), the scalar
        # engine would already have given up.
        if len(records) > solver.max_boxes and paths:
            frontier = paths[0]
            if term_path is None or term_path > frontier:
                below = sum(1 for p, _ in records if p < frontier)
                if below > solver.max_boxes:
                    return _unknown_result(solver, records)
    if term_path is not None:
        explored = sum(1 for p, _ in records if p <= term_path)
        if explored > solver.max_boxes:
            return _unknown_result(solver, records)
        solver._stats_boxes = explored
        solver._stats_splits = sum(
            1 for p, split in records if split and p < term_path
        )
        if term_kind == "sat":
            witness, witness_box = term_payload
            return solver._result(IcpStatus.SAT, witness, witness_box)
        return solver._result(IcpStatus.DELTA_SAT, None, term_payload)
    if len(records) > solver.max_boxes:
        return _unknown_result(solver, records)
    solver._stats_boxes = len(records)
    solver._stats_splits = sum(1 for _, split in records if split)
    return solver._result(IcpStatus.UNSAT, None, None)


def _unknown_result(solver: IcpSolver, records) -> IcpResult:
    ordered = sorted(records)
    solver._stats_boxes = solver.max_boxes + 1
    solver._stats_splits = sum(
        1 for _, split in ordered[: solver.max_boxes] if split
    )
    return solver._result(IcpStatus.UNKNOWN, None, None)


# ----------------------------------------------------------------------
# Population classification (benchmark / differential surface)
# ----------------------------------------------------------------------

def classify_boxes(atoms: Sequence[Atom], boxes: Sequence[Box]) -> list[str]:
    """Classify a population of boxes in one vectorized pass.

    Returns the scalar ``_classify`` verdict (``"infeasible"`` /
    ``"satisfied"`` / ``"undecided"``) per box; boxes outside the
    exactness band are classified by the scalar path. This is the
    surface the ICP throughput benchmark measures.
    """
    prepared = prepare_atoms(atoms)
    arr = BoxArray.from_boxes(boxes)
    compiled = compile_atoms(prepared, arr.names)
    solver = IcpSolver(backend="scalar")
    if compiled is None:
        return [
            solver._classify(prepared, box)[0] for box in boxes
        ]
    n = len(arr)
    lo = np.ascontiguousarray(arr.lo)
    hi = np.ascontiguousarray(arr.hi)
    bad = np.zeros(n, dtype=bool)
    with np.errstate(all="ignore"):
        _guard_bounds(bad, lo)
        _guard_bounds(bad, hi)
        infeasible, undecided_masks = _classify_chunk(compiled, lo, hi, bad)
    undecided = np.zeros(n, dtype=bool)
    for mask in undecided_masks:
        undecided |= mask
    out = []
    for i in range(n):
        if bad[i]:
            out.append(solver._classify(prepared, boxes[i])[0])
        elif infeasible[i]:
            out.append("infeasible")
        elif undecided[i]:
            out.append("undecided")
        else:
            out.append("satisfied")
    return out
