"""Term and formula language for the mini-SMT layer (QF_NRA fragment).

The library's symbolic validation queries — "is this quadratic form
positive on the unit sphere?", "does the flow point inward on this part
of the switching surface?" — are expressed as quantifier-free formulas
over polynomial real arithmetic. This module provides the term AST,
formula connectives, exact evaluation, and normalization of terms into
sparse polynomials (monomial dictionaries), which is the form the
decision procedures in :mod:`repro.smt.icp` and
:mod:`repro.smt.linear` consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Mapping, Sequence, Union

from ..exact.rational import Number, to_fraction

__all__ = [
    "Term",
    "Var",
    "Const",
    "Add",
    "Mul",
    "Pow",
    "Relation",
    "Atom",
    "Formula",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "Polynomial",
    "Monomial",
    "polynomial_of",
    "poly_degree",
    "poly_is_linear",
    "poly_eval",
    "poly_free_vars",
    "quadratic_form_term",
    "affine_term",
    "to_nnf",
    "to_dnf",
]


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------
class Term:
    """Base class for arithmetic terms."""

    def __add__(self, other: "TermLike") -> "Term":
        return Add((self, _term(other)))

    def __radd__(self, other: "TermLike") -> "Term":
        return Add((_term(other), self))

    def __sub__(self, other: "TermLike") -> "Term":
        return Add((self, Mul((Const(-1), _term(other)))))

    def __rsub__(self, other: "TermLike") -> "Term":
        return Add((_term(other), Mul((Const(-1), self))))

    def __mul__(self, other: "TermLike") -> "Term":
        return Mul((self, _term(other)))

    def __rmul__(self, other: "TermLike") -> "Term":
        return Mul((_term(other), self))

    def __neg__(self) -> "Term":
        return Mul((Const(-1), self))

    def __pow__(self, exponent: int) -> "Term":
        return Pow(self, exponent)

    # Relational sugar. Note: ``==`` builds an Atom, so terms are
    # compared for *structural* equality with ``equal_terms``.
    def __le__(self, other: "TermLike") -> "Atom":
        return Atom(self - _term(other), Relation.LE)

    def __lt__(self, other: "TermLike") -> "Atom":
        return Atom(self - _term(other), Relation.LT)

    def __ge__(self, other: "TermLike") -> "Atom":
        return Atom(_term(other) - self, Relation.LE)

    def __gt__(self, other: "TermLike") -> "Atom":
        return Atom(_term(other) - self, Relation.LT)

    def eq(self, other: "TermLike") -> "Atom":
        """The equality atom ``self = other``."""
        return Atom(self - _term(other), Relation.EQ)


TermLike = Union[Term, int, float, str, Fraction]


def _term(value: TermLike) -> Term:
    if isinstance(value, Term):
        return value
    return Const(to_fraction(value))


@dataclass(frozen=True)
class Var(Term):
    """A real-valued variable, identified by name."""
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """An exact rational constant."""
    value: Fraction

    def __post_init__(self):
        object.__setattr__(self, "value", to_fraction(self.value))

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Add(Term):
    """An n-ary sum of terms."""
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Mul(Term):
    """An n-ary product of terms."""
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Pow(Term):
    """A nonnegative integer power of a term."""
    base: Term
    exponent: int

    def __post_init__(self):
        if self.exponent < 0:
            raise ValueError("only nonnegative integer exponents are supported")

    def __repr__(self) -> str:
        return f"{self.base!r}^{self.exponent}"


# ----------------------------------------------------------------------
# Atoms and formulas
# ----------------------------------------------------------------------
class Relation(Enum):
    """Relations are normalized to ``term <rel> 0``."""

    LE = "<="
    LT = "<"
    EQ = "="
    NE = "!="


@dataclass(frozen=True)
class Atom:
    """An atomic constraint ``lhs <relation> 0``."""

    lhs: Term
    relation: Relation

    def negate(self) -> "Atom":
        """The negated atom (relation flipped, strictness dualized)."""
        lhs = self.lhs
        if self.relation is Relation.LE:  # not (t <= 0)  <=>  -t < 0
            return Atom(Mul((Const(-1), lhs)), Relation.LT)
        if self.relation is Relation.LT:  # not (t < 0)   <=>  -t <= 0
            return Atom(Mul((Const(-1), lhs)), Relation.LE)
        if self.relation is Relation.EQ:
            return Atom(lhs, Relation.NE)
        return Atom(lhs, Relation.EQ)

    def __repr__(self) -> str:
        return f"{self.lhs!r} {self.relation.value} 0"


@dataclass(frozen=True)
class And:
    """Conjunction of formulas."""
    args: tuple["Formula", ...]

    def __repr__(self) -> str:
        return "(and " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Or:
    """Disjunction of formulas."""
    args: tuple["Formula", ...]

    def __repr__(self) -> str:
        return "(or " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Not:
    """Negation of a formula."""
    arg: "Formula"

    def __repr__(self) -> str:
        return f"(not {self.arg!r})"


@dataclass(frozen=True)
class _Bool:
    value: bool

    def __repr__(self) -> str:
        return "true" if self.value else "false"


TRUE = _Bool(True)
FALSE = _Bool(False)

Formula = Union[Atom, And, Or, Not, _Bool]


# ----------------------------------------------------------------------
# Polynomial normal form
# ----------------------------------------------------------------------
#: A monomial is a sorted tuple of (variable name, positive exponent).
Monomial = tuple[tuple[str, int], ...]
#: A polynomial is a map from monomial to nonzero rational coefficient.
Polynomial = dict[Monomial, Fraction]

_ONE: Monomial = ()


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    exps: dict[str, int] = dict(a)
    for var, e in b:
        exps[var] = exps.get(var, 0) + e
    return tuple(sorted(exps.items()))


def _poly_add(a: Polynomial, b: Polynomial) -> Polynomial:
    out = dict(a)
    for mono, coeff in b.items():
        new = out.get(mono, Fraction(0)) + coeff
        if new:
            out[mono] = new
        else:
            out.pop(mono, None)
    return out


def _poly_mul(a: Polynomial, b: Polynomial) -> Polynomial:
    out: Polynomial = {}
    for mono_a, coeff_a in a.items():
        for mono_b, coeff_b in b.items():
            mono = _mono_mul(mono_a, mono_b)
            new = out.get(mono, Fraction(0)) + coeff_a * coeff_b
            if new:
                out[mono] = new
            else:
                out.pop(mono, None)
    return out


def polynomial_of(term: Term) -> Polynomial:
    """Expand ``term`` into sparse-polynomial normal form."""
    if isinstance(term, Const):
        return {_ONE: term.value} if term.value else {}
    if isinstance(term, Var):
        return {((term.name, 1),): Fraction(1)}
    if isinstance(term, Add):
        out: Polynomial = {}
        for arg in term.args:
            out = _poly_add(out, polynomial_of(arg))
        return out
    if isinstance(term, Mul):
        out = {_ONE: Fraction(1)}
        for arg in term.args:
            out = _poly_mul(out, polynomial_of(arg))
        return out
    if isinstance(term, Pow):
        base = polynomial_of(term.base)
        out = {_ONE: Fraction(1)}
        for _ in range(term.exponent):
            out = _poly_mul(out, base)
        return out
    raise TypeError(f"not a term: {term!r}")


def poly_degree(poly: Polynomial) -> int:
    if not poly:
        return 0
    return max(sum(e for _, e in mono) for mono in poly)


def poly_is_linear(poly: Polynomial) -> bool:
    return poly_degree(poly) <= 1


def poly_free_vars(poly: Polynomial) -> set[str]:
    return {var for mono in poly for var, _ in mono}


def poly_eval(poly: Polynomial, assignment: Mapping[str, Number]) -> Fraction:
    """Exact evaluation under a (complete) variable assignment."""
    total = Fraction(0)
    for mono, coeff in poly.items():
        value = coeff
        for var, exp in mono:
            value *= to_fraction(assignment[var]) ** exp
        total += value
    return total


# ----------------------------------------------------------------------
# Convenience builders
# ----------------------------------------------------------------------
def quadratic_form_term(
    matrix, variables: Sequence[Var], center: Sequence[Number] | None = None
) -> Term:
    """Build ``(w - c)^T M (w - c)`` as a term.

    ``matrix`` is a :class:`~repro.exact.matrix.RationalMatrix`;
    ``variables`` supplies the ``w`` coordinates.
    """
    n = len(variables)
    if matrix.shape != (n, n):
        raise ValueError("matrix/variable dimension mismatch")
    shifted: list[Term] = []
    for i, var in enumerate(variables):
        if center is not None and to_fraction(center[i]) != 0:
            shifted.append(var - Const(to_fraction(center[i])))
        else:
            shifted.append(var)
    parts: list[Term] = []
    for i in range(n):
        for j in range(n):
            coeff = matrix[i, j]
            if coeff:
                parts.append(Mul((Const(coeff), shifted[i], shifted[j])))
    if not parts:
        return Const(Fraction(0))
    return Add(tuple(parts))


def affine_term(
    coefficients: Sequence[Number],
    variables: Sequence[Var],
    constant: Number = 0,
) -> Term:
    """Build ``c^T w + h`` as a term."""
    if len(coefficients) != len(variables):
        raise ValueError("coefficient/variable length mismatch")
    parts: list[Term] = [
        Mul((Const(to_fraction(c)), v))
        for c, v in zip(coefficients, variables)
        if to_fraction(c) != 0
    ]
    constant = to_fraction(constant)
    if constant or not parts:
        parts.append(Const(constant))
    return Add(tuple(parts)) if len(parts) > 1 else parts[0]


# ----------------------------------------------------------------------
# Normal forms
# ----------------------------------------------------------------------
def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form (negations pushed onto atoms)."""
    if isinstance(formula, _Bool):
        return _Bool(formula.value != negate)
    if isinstance(formula, Atom):
        return formula.negate() if negate else formula
    if isinstance(formula, Not):
        return to_nnf(formula.arg, not negate)
    if isinstance(formula, And):
        args = tuple(to_nnf(a, negate) for a in formula.args)
        return Or(args) if negate else And(args)
    if isinstance(formula, Or):
        args = tuple(to_nnf(a, negate) for a in formula.args)
        return And(args) if negate else Or(args)
    raise TypeError(f"not a formula: {formula!r}")


def to_dnf(formula: Formula) -> list[list[Atom]]:
    """Disjunctive normal form as a list of conjunctions of atoms.

    Constants are simplified away; an empty list means FALSE, and a
    disjunct that is an empty list means TRUE. Worst-case exponential —
    the validation formulas this library generates are small.
    """
    nnf = to_nnf(formula)

    def walk(f: Formula) -> list[list[Atom]]:
        if isinstance(f, _Bool):
            return [[]] if f.value else []
        if isinstance(f, Atom):
            return [[f]]
        if isinstance(f, Or):
            out: list[list[Atom]] = []
            for arg in f.args:
                out.extend(walk(arg))
            return out
        if isinstance(f, And):
            disjuncts: list[list[Atom]] = [[]]
            for arg in f.args:
                arg_disjuncts = walk(arg)
                disjuncts = [
                    d + a for d in disjuncts for a in arg_disjuncts
                ]
                if not disjuncts:
                    return []
            return disjuncts
        raise TypeError(f"unexpected node in NNF: {f!r}")

    return walk(nnf)
