"""SMT encodings of the Lyapunov validation conditions.

The paper validates a candidate Lyapunov function ``V(w) = w^T P w`` by
checking, with an SMT solver, the two conditions of Section III-D:

1. ``forall w != 0 : w^T P w > 0``
2. ``forall w != 0 : w^T (A^T P + P A) w < 0``

Both reduce to *positive definiteness on the unit sphere*: a quadratic
form is scale-invariant in sign, so ``q(w) > 0`` for all ``w != 0`` iff
``q(w) > 0`` on ``||w||_inf = 1``, and by evenness it suffices to check
the ``n`` faces ``w_i = 1, w_j in [-1, 1]``. Each face is a bounded
nonlinear UNSAT query for the ICP solver.

The paper's "+ det" option replaces the strict check with
``forall w : q(w) >= 0  and  det(P) != 0``; here the refutation query
becomes the *open* condition ``q(w) < 0`` (easier to refute) and the
determinant is evaluated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exact.factor import bareiss_determinant
from ..exact.matrix import RationalMatrix
from .icp import Box, IcpSolver, IcpStatus
from .terms import Atom, Relation, Var, quadratic_form_term

__all__ = ["SphereCheckOutcome", "check_positive_definite_icp"]


@dataclass
class SphereCheckOutcome:
    """Result of an ICP definiteness check.

    ``verdict`` is ``True`` (proved positive definite), ``False``
    (refuted, with a rational counterexample when available), or
    ``None`` (undecided within budget / delta).
    """

    verdict: bool | None
    counterexample: dict | None = None
    faces_checked: int = 0
    boxes_explored: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.verdict is True


def check_positive_definite_icp(
    matrix: RationalMatrix,
    plus_det: bool = False,
    delta: float = 1e-7,
    max_boxes: int = 200_000,
    backend: str = "auto",
) -> SphereCheckOutcome:
    """Decide ``matrix ≻ 0`` by refuting violations on unit-sphere faces.

    With ``plus_det`` the encoding is
    ``(forall w: q(w) >= 0) and det != 0``: the per-face refutation
    target becomes the open set ``q(w) < 0`` and a zero determinant
    short-circuits to "not definite".
    """
    if not matrix.is_symmetric():
        raise ValueError("definiteness check requires a symmetric matrix")
    n = matrix.rows
    if plus_det and bareiss_determinant(matrix) == 0:
        return SphereCheckOutcome(verdict=False, counterexample=None)
    names = [f"w{i}" for i in range(n)]
    variables = [Var(name) for name in names]
    form = quadratic_form_term(matrix, variables)
    violation = Atom(form, Relation.LT if plus_det else Relation.LE)
    solver = IcpSolver(delta=delta, max_boxes=max_boxes, backend=backend)
    total_boxes = 0
    undecided = False
    for face in range(n):
        box = Box.cube(names, -1.0, 1.0).with_interval(
            names[face], _unit_interval()
        )
        result = solver.check([violation], box)
        total_boxes += result.boxes_explored
        if result.status is IcpStatus.SAT:
            return SphereCheckOutcome(
                verdict=False,
                counterexample=result.witness,
                faces_checked=face + 1,
                boxes_explored=total_boxes,
            )
        if result.status in (IcpStatus.DELTA_SAT, IcpStatus.UNKNOWN):
            undecided = True
    if undecided:
        return SphereCheckOutcome(
            verdict=None, faces_checked=n, boxes_explored=total_boxes
        )
    return SphereCheckOutcome(
        verdict=True, faces_checked=n, boxes_explored=total_boxes
    )


def _unit_interval():
    from .interval import Interval

    return Interval(1.0, 1.0)
