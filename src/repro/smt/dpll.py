"""Lazy DPLL(T): a SAT-driven alternative to DNF expansion.

The default :class:`~repro.smt.solver.SmtSolver` expands formulas to
DNF, which is exponential in the worst case. This module implements the
standard lazy SMT architecture instead:

1. **Tseitin transformation** — linear-size CNF over fresh selector
   variables for every connective;
2. **DPLL** — unit propagation + branching + chronological backtracking
   over the boolean abstraction;
3. **theory consultation** — each boolean model's asserted atoms go to
   the same theory layer (exact Fourier–Motzkin for affine conjunctions,
   ICP for polynomial ones); theory-UNSAT models are excluded with a
   blocking clause and the search resumes.

Verdicts match the DNF engine (the property tests check exactly that);
the difference is scaling on formulas with many shared subformulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .icp import Box, IcpStatus
from .solver import SmtResult, SmtSolver, SmtStatus
from .terms import And, Atom, Formula, Not, Or, _Bool

__all__ = ["tseitin_cnf", "DpllSolver"]

Literal = int  # +-(variable index + 1)
Clause = tuple[Literal, ...]


@dataclass
class _CnfBuilder:
    clauses: list[Clause] = field(default_factory=list)
    atom_of_variable: dict[int, Atom] = field(default_factory=dict)
    variable_of_atom: dict[Atom, int] = field(default_factory=dict)
    n_variables: int = 0

    def fresh(self, atom: Atom | None = None) -> int:
        """Allocate a new boolean variable (optionally bound to an atom)."""
        self.n_variables += 1
        index = self.n_variables
        if atom is not None:
            self.atom_of_variable[index] = atom
            self.variable_of_atom[atom] = index
        return index

    def variable_for_atom(self, atom: Atom) -> int:
        """The boolean variable of an atom (allocating on first use)."""
        existing = self.variable_of_atom.get(atom)
        if existing is not None:
            return existing
        return self.fresh(atom)

    def add(self, *literals: Literal) -> None:
        """Append a clause."""
        self.clauses.append(tuple(literals))


def _encode(formula: Formula, builder: _CnfBuilder) -> Literal:
    """Return a literal equisatisfiably representing ``formula``."""
    if isinstance(formula, _Bool):
        selector = builder.fresh()
        if formula.value:
            builder.add(selector)
        else:
            builder.add(-selector)
        return selector
    if isinstance(formula, Atom):
        return builder.variable_for_atom(formula)
    if isinstance(formula, Not):
        return -_encode(formula.arg, builder)
    if isinstance(formula, (And, Or)):
        child_literals = [_encode(arg, builder) for arg in formula.args]
        selector = builder.fresh()
        if isinstance(formula, And):
            # selector -> child_i ; (and children) -> selector
            for child in child_literals:
                builder.add(-selector, child)
            builder.add(selector, *(-c for c in child_literals))
        else:
            # selector -> (or children); child_i -> selector
            builder.add(-selector, *child_literals)
            for child in child_literals:
                builder.add(-child, selector)
        return selector
    raise TypeError(f"not a formula: {formula!r}")


def tseitin_cnf(formula: Formula) -> tuple[list[Clause], dict[int, Atom], int]:
    """Linear-size equisatisfiable CNF.

    Returns ``(clauses, atom map, variable count)``; the root selector
    is asserted as a unit clause.
    """
    builder = _CnfBuilder()
    root = _encode(formula, builder)
    builder.add(root)
    return builder.clauses, builder.atom_of_variable, builder.n_variables


def _unit_propagate(
    clauses: list[Clause], assignment: dict[int, bool]
) -> bool:
    """Propagate to fixpoint in-place; ``False`` on conflict."""
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned = None
            satisfied = False
            count = 0
            for literal in clause:
                variable = abs(literal)
                value = assignment.get(variable)
                if value is None:
                    unassigned = literal
                    count += 1
                elif value == (literal > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if count == 0:
                return False
            if count == 1:
                assignment[abs(unassigned)] = unassigned > 0
                changed = True
    return True


@dataclass
class DpllSolver:
    """Lazy DPLL(T) with the library's theory layer underneath."""

    delta: float = 1e-7
    max_boxes: int = 200_000
    max_theory_calls: int = 10_000

    def check(self, formula: Formula, box: Box | None = None) -> SmtResult:
        """Decide ``formula`` (box required for nonlinear atoms)."""
        clauses, atoms, _n = tseitin_cnf(formula)
        clauses = list(clauses)
        theory = SmtSolver(delta=self.delta, max_boxes=self.max_boxes)
        theory_calls = 0
        saw_delta = False
        saw_unknown = False
        boxes_total = 0

        def search(assignment: dict[int, bool]) -> SmtResult | None:
            nonlocal theory_calls, saw_delta, saw_unknown, boxes_total
            assignment = dict(assignment)
            if not _unit_propagate(clauses, assignment):
                return None
            undecided = self._pick_variable(clauses, assignment)
            if undecided is None:
                # Full (relevant) boolean model: consult the theory.
                theory_calls += 1
                if theory_calls > self.max_theory_calls:
                    saw_unknown = True
                    return None
                asserted = [
                    atoms[v] if value else atoms[v].negate()
                    for v, value in assignment.items()
                    if v in atoms
                ]
                result = theory.check_conjunction(asserted, box)
                boxes_total += result.boxes_explored
                if result.status is SmtStatus.SAT:
                    return result
                if result.status is IcpStatus.DELTA_SAT:
                    saw_delta = True
                elif result.status is IcpStatus.UNKNOWN:
                    saw_unknown = True
                # Block this boolean model (only over theory atoms).
                blocking = tuple(
                    -v if value else v
                    for v, value in assignment.items()
                    if v in atoms
                )
                if blocking:
                    clauses.append(blocking)
                else:
                    # No theory atoms at all: pure boolean SAT.
                    return SmtResult(SmtStatus.SAT, {}, 1, boxes_total)
                return None
            for choice in (True, False):
                assignment[undecided] = choice
                outcome = search(assignment)
                if outcome is not None:
                    return outcome
                del assignment[undecided]
            return None

        outcome = search({})
        if outcome is not None:
            return SmtResult(
                SmtStatus.SAT, outcome.model, theory_calls, boxes_total
            )
        if saw_delta:
            status = SmtStatus.DELTA_SAT
        elif saw_unknown:
            status = SmtStatus.UNKNOWN
        else:
            status = SmtStatus.UNSAT
        return SmtResult(status, None, theory_calls, boxes_total)

    @staticmethod
    def _pick_variable(
        clauses: list[Clause], assignment: dict[int, bool]
    ) -> int | None:
        """First unassigned variable appearing in a non-satisfied clause."""
        for clause in clauses:
            satisfied = any(
                assignment.get(abs(l)) == (l > 0)
                for l in clause
                if abs(l) in assignment
            )
            if satisfied:
                continue
            for literal in clause:
                if abs(literal) not in assignment:
                    return abs(literal)
        return None
