"""SMT-LIB 2 export of terms and formulas.

The paper ran its validation conditions through Z3 and CVC5; this
module serializes the exact same queries in SMT-LIB 2 (logic
``QF_NRA``), so the library's verdicts can be cross-checked against any
external SMT solver when one is available. The printer is exact:
rational constants become ``(/ p q)`` terms, never decimal
approximations.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .icp import Box
from .terms import (
    polynomial_of,
    Add,
    Atom,
    Const,
    Formula,
    Mul,
    Not,
    Or,
    And,
    Pow,
    Relation,
    Term,
    Var,
    _Bool,
)

__all__ = ["term_to_smtlib", "formula_to_smtlib", "script_for_refutation"]


def _rational(value: Fraction) -> str:
    if value.denominator == 1:
        if value.numerator < 0:
            return f"(- {-value.numerator})"
        return str(value.numerator)
    sign = "-" if value.numerator < 0 else ""
    body = f"(/ {abs(value.numerator)} {value.denominator})"
    return f"(- {body})" if sign else body


def term_to_smtlib(term: Term, canonical: bool = True) -> str:
    """Serialize a term as an SMT-LIB s-expression.

    With ``canonical`` (the default) the term is first expanded into
    sparse-polynomial normal form, giving compact, deterministic output
    (exactly equal as a real function); ``canonical=False`` prints the
    raw AST structure.
    """
    if canonical:
        return _poly_to_smtlib(polynomial_of(term))
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return _rational(term.value)
    if isinstance(term, Add):
        if len(term.args) == 1:
            return term_to_smtlib(term.args[0], canonical=False)
        return "(+ " + " ".join(term_to_smtlib(a, canonical=False) for a in term.args) + ")"
    if isinstance(term, Mul):
        if len(term.args) == 1:
            return term_to_smtlib(term.args[0], canonical=False)
        return "(* " + " ".join(term_to_smtlib(a, canonical=False) for a in term.args) + ")"
    if isinstance(term, Pow):
        base = term_to_smtlib(term.base, canonical=False)
        if term.exponent == 0:
            return "1"
        return "(* " + " ".join([base] * term.exponent) + ")"
    raise TypeError(f"not a term: {term!r}")


def _poly_to_smtlib(poly) -> str:
    if not poly:
        return "0"
    monomials = []
    for mono, coeff in sorted(poly.items()):
        factors = []
        for var, exp in mono:
            factors.extend([var] * exp)
        if coeff != 1 or not factors:
            factors.insert(0, _rational(coeff))
        if len(factors) == 1:
            monomials.append(factors[0])
        else:
            monomials.append("(* " + " ".join(factors) + ")")
    if len(monomials) == 1:
        return monomials[0]
    return "(+ " + " ".join(monomials) + ")"


_RELATION_SYMBOL = {
    Relation.LE: "<=",
    Relation.LT: "<",
    Relation.EQ: "=",
}


def formula_to_smtlib(formula: Formula) -> str:
    """Serialize a formula as an SMT-LIB s-expression."""
    if isinstance(formula, _Bool):
        return "true" if formula.value else "false"
    if isinstance(formula, Atom):
        lhs = term_to_smtlib(formula.lhs)
        if formula.relation is Relation.NE:
            return f"(not (= {lhs} 0))"
        return f"({_RELATION_SYMBOL[formula.relation]} {lhs} 0)"
    if isinstance(formula, Not):
        return f"(not {formula_to_smtlib(formula.arg)})"
    if isinstance(formula, And):
        return "(and " + " ".join(map(formula_to_smtlib, formula.args)) + ")"
    if isinstance(formula, Or):
        return "(or " + " ".join(map(formula_to_smtlib, formula.args)) + ")"
    raise TypeError(f"not a formula: {formula!r}")


def _collect_vars(formula: Formula, out: set[str]) -> None:
    if isinstance(formula, Atom):
        _collect_term_vars(formula.lhs, out)
    elif isinstance(formula, Not):
        _collect_vars(formula.arg, out)
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect_vars(arg, out)


def _collect_term_vars(term: Term, out: set[str]) -> None:
    if isinstance(term, Var):
        out.add(term.name)
    elif isinstance(term, (Add, Mul)):
        for arg in term.args:
            _collect_term_vars(arg, out)
    elif isinstance(term, Pow):
        _collect_term_vars(term.base, out)


def script_for_refutation(
    atoms: Sequence[Atom] | Formula,
    box: Box | None = None,
    logic: str = "QF_NRA",
    comment: str | None = None,
) -> str:
    """A complete ``check-sat`` script for a refutation query.

    ``unsat`` from an external solver certifies the same fact this
    library's ICP refuter proves: the violation set is empty (within
    ``box`` when provided — the box becomes explicit bound assertions).
    """
    if isinstance(atoms, (list, tuple)):
        formula: Formula = And(tuple(atoms))
    else:
        formula = atoms
    names: set[str] = set()
    _collect_vars(formula, names)
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"; {row}")
    lines.append(f"(set-logic {logic})")
    for name in sorted(names):
        lines.append(f"(declare-const {name} Real)")
    if box is not None:
        for name in sorted(names):
            interval = box.intervals.get(name)
            if interval is None:
                continue
            lo = Fraction(interval.lo) if interval.lo != float("-inf") else None
            hi = Fraction(interval.hi) if interval.hi != float("inf") else None
            if lo is not None:
                lines.append(f"(assert (<= {_rational(lo)} {name}))")
            if hi is not None:
                lines.append(f"(assert (<= {name} {_rational(hi)}))")
    lines.append(f"(assert {formula_to_smtlib(formula)})")
    lines.append("(check-sat)")
    lines.append("(exit)")
    return "\n".join(lines) + "\n"
