"""Interval-constraint-propagation (ICP) branch-and-prune solver.

A delta-complete decision procedure for conjunctions of polynomial
constraints over a bounding box, in the style of dReal: it either

* proves the conjunction UNSAT over the box (a sound proof, thanks to
  outward-rounded interval arithmetic),
* finds a box over which every constraint *certainly* holds (SAT, with
  an exact rational witness point), or
* narrows down to a box smaller than ``delta`` that it can neither
  verify nor refute (DELTA_SAT — "satisfiable up to delta"), or
* exhausts its branching budget (UNKNOWN).

The solver interleaves HC4-style linear contraction with bisection on
the widest undecided variable.

Two engines share this front door (``IcpSolver.backend``):

``"scalar"``
    the historical one-box-at-a-time depth-first loop in this module —
    pure Python, ``Interval`` arithmetic, the differential oracle;
``"batched"``
    the vectorized frontier engine in :mod:`repro.smt.boxes`, which
    classifies whole populations of boxes per NumPy pass while
    reproducing the scalar engine's arithmetic bit for bit (see that
    module's docstring for the equivalence argument);
``"auto"``
    ``"batched"`` when NumPy imports, ``"scalar"`` otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Mapping, Sequence

from .interval import Interval
from .terms import Atom, Polynomial, Relation, poly_eval, polynomial_of

__all__ = [
    "Box",
    "ICP_BACKENDS",
    "IcpStatus",
    "IcpResult",
    "IcpSolver",
    "eval_poly_interval",
    "resolve_icp_backend",
    "split_linear",
]

ICP_BACKENDS = ("auto", "scalar", "batched")


def resolve_icp_backend(backend: str) -> str:
    """Resolve ``"auto"`` to a concrete ICP engine.

    ``"auto"`` picks the batched engine whenever NumPy is importable and
    degrades silently to the scalar loop otherwise — mirroring the
    kernel-backend convention in :mod:`repro.exact.kernels`.
    """
    if backend not in ICP_BACKENDS:
        raise KeyError(
            f"unknown ICP backend {backend!r}; known: {ICP_BACKENDS}"
        )
    if backend != "auto":
        return backend
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - NumPy is a hard dep here
        return "scalar"
    return "batched"


class Box:
    """A product of named intervals."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Mapping[str, Interval]):
        self.intervals = dict(intervals)

    @classmethod
    def cube(cls, names: Sequence[str], lo: float, hi: float) -> "Box":
        """The box ``[lo, hi]^n`` over the given variable names."""
        return cls({name: Interval(lo, hi) for name in names})

    def __getitem__(self, name: str) -> Interval:
        return self.intervals[name]

    def with_interval(self, name: str, interval: Interval) -> "Box":
        """Copy of the box with one interval replaced."""
        out = dict(self.intervals)
        out[name] = interval
        return Box(out)

    def widest(self) -> tuple[str, float]:
        """``(variable, width)`` of the widest interval, in one pass.

        Ties break to the lexicographically smallest variable name, so
        the split order is deterministic regardless of dict insertion
        order (the batched engine relies on exactly this tie-break).
        """
        best_name = ""
        best_width = -math.inf
        for name in sorted(self.intervals):
            width = self.intervals[name].width
            if width > best_width:
                best_name, best_width = name, width
        return best_name, best_width

    def max_width(self) -> float:
        """Width of the widest interval."""
        return self.widest()[1]

    def widest_variable(self) -> str:
        """Name of the widest interval's variable."""
        return self.widest()[0]

    def midpoint(self) -> dict[str, Fraction]:
        """The exact rational center point of the box."""
        return {
            name: Fraction(iv.midpoint) for name, iv in self.intervals.items()
        }

    def __repr__(self) -> str:
        body = ", ".join(f"{k}: {v!r}" for k, v in sorted(self.intervals.items()))
        return f"Box({body})"


def eval_poly_interval(
    poly: Polynomial,
    box: Box,
    powers: dict[tuple[str, int], Interval] | None = None,
) -> Interval:
    """Interval enclosure of a polynomial over a box.

    ``powers`` optionally shares a ``(variable, exponent) -> Interval``
    power table across several evaluations of the *same box* (one
    classification sweep touches every constraint): each distinct power
    is computed once instead of once per monomial occurrence. Cached
    powers are the exact same ``Interval.__pow__`` results, so
    enclosures are unchanged — a regression test pins this.
    """
    if powers is None:
        powers = {}
    total = Interval.point(0)
    for mono, coeff in poly.items():
        part = Interval.point(coeff)
        for var, exp in mono:
            power = powers.get((var, exp))
            if power is None:
                power = box[var] ** exp
                powers[var, exp] = power
            part = part * power
        total = total + part
    return total


def split_linear(
    poly: Polynomial, variable: str
) -> tuple[Polynomial, Polynomial] | None:
    """Split ``poly`` as ``coeff(x_others) * variable + rest(others)``.

    Returns ``(coeff_poly, rest_poly)``, or ``None`` when some monomial
    carries the variable with exponent > 1 (not linear after all). The
    scalar contractor and the batched compiler share this helper so both
    engines contract from identical decompositions.
    """
    coeff_poly: Polynomial = {}
    rest_poly: Polynomial = {}
    for mono, coeff in poly.items():
        exps = dict(mono)
        exp = exps.pop(variable, 0)
        if exp == 0:
            rest_poly[mono] = coeff
        elif exp == 1:
            key = tuple(sorted(exps.items()))
            coeff_poly[key] = coeff_poly.get(key, Fraction(0)) + coeff
        else:
            return None
    return coeff_poly, rest_poly


@dataclass
class PreparedAtom:
    """One constraint, preprocessed once per ``check`` call.

    ``linear`` lists ``(variable, coeff_poly, rest_poly)`` contraction
    plans for every variable that is linear in the polynomial — the
    scalar loop used to rebuild these dicts for every box.
    """

    poly: Polynomial
    relation: Relation
    linear: list[tuple[str, Polynomial, Polynomial]]


def prepare_atoms(atoms: Sequence[Atom]) -> list[PreparedAtom]:
    """Normalize atoms into polynomials plus contraction plans."""
    prepared = []
    for atom in atoms:
        poly = polynomial_of(atom.lhs)
        linear: list[tuple[str, Polynomial, Polynomial]] = []
        if atom.relation is not Relation.NE:
            for variable in _linear_variables(poly):
                plan = split_linear(poly, variable)
                if plan is not None:
                    linear.append((variable, plan[0], plan[1]))
        prepared.append(PreparedAtom(poly, atom.relation, linear))
    return prepared


class IcpStatus(Enum):
    """Verdict vocabulary: UNSAT / SAT / DELTA_SAT / UNKNOWN."""
    UNSAT = "unsat"
    SAT = "sat"
    DELTA_SAT = "delta-sat"
    UNKNOWN = "unknown"


@dataclass
class IcpResult:
    """Outcome of an ICP run: status, witness, search statistics."""
    status: IcpStatus
    witness: dict[str, Fraction] | None = None
    witness_box: Box | None = None
    boxes_explored: int = 0
    splits: int = 0


@dataclass
class IcpSolver:
    """Branch-and-prune over a conjunction of polynomial atoms.

    Parameters
    ----------
    delta:
        Width threshold below which an undecided box is reported as
        DELTA_SAT.
    max_boxes:
        Branching budget; exceeding it yields UNKNOWN.
    contraction_passes:
        HC4-style contraction sweeps per box before splitting.
    backend:
        ``"scalar"`` | ``"batched"`` | ``"auto"`` — see the module
        docstring. Both engines return identical verdicts, witnesses
        and statistics; the scalar loop is the differential oracle.
    """

    delta: float = 1e-7
    max_boxes: int = 200_000
    contraction_passes: int = 2
    backend: str = "auto"
    _stats_boxes: int = field(default=0, repr=False)
    _stats_splits: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    def check(self, atoms: Sequence[Atom], box: Box) -> IcpResult:
        """Decide the conjunction of ``atoms`` over ``box``."""
        prepared = prepare_atoms(atoms)
        if resolve_icp_backend(self.backend) == "batched":
            from .boxes import batched_check

            return batched_check(self, prepared, box)
        return self._check_scalar(prepared, box)

    def _check_scalar(
        self, prepared: list[PreparedAtom], box: Box
    ) -> IcpResult:
        self._stats_boxes = 0
        self._stats_splits = 0
        stack = [box]
        while stack:
            current = stack.pop()
            self._stats_boxes += 1
            if self._stats_boxes > self.max_boxes:
                return self._result(IcpStatus.UNKNOWN, None, None)
            kind, payload = self._step(prepared, current)
            if kind == "drop":
                continue
            if kind == "sat":
                witness, witness_box = payload
                return self._result(IcpStatus.SAT, witness, witness_box)
            if kind == "delta":
                return self._result(IcpStatus.DELTA_SAT, None, payload)
            current, variable = payload
            low, high = current[variable].split()
            self._stats_splits += 1
            stack.append(current.with_interval(variable, high))
            stack.append(current.with_interval(variable, low))
        return self._result(IcpStatus.UNSAT, None, None)

    # ------------------------------------------------------------------
    def _step(
        self, prepared: list[PreparedAtom], box: Box
    ) -> tuple[str, object]:
        """One scalar branch-and-prune step on a single box.

        Returns ``(kind, payload)`` with kind one of ``"drop"`` (box
        proven empty), ``"sat"`` (payload ``(witness, box)``),
        ``"delta"`` (payload the sub-delta box) or ``"split"`` (payload
        ``(contracted_box, variable)``). The batched engine calls this
        for boxes it defers (extreme magnitudes), so the scalar step is
        the single source of truth for per-box semantics.
        """
        contracted = self._contract(prepared, box)
        if contracted is None:
            return "drop", None
        current = contracted
        verdict, undecided = self._classify(prepared, current)
        if verdict == "infeasible":
            return "drop", None
        # Exact witness attempt: interval enclosures are outward
        # rounded, so a feasible boundary point (e.g. x = 1/2 for
        # 1/2 - x <= 0) never becomes "certainly satisfied"; checking
        # a few candidate points with rational arithmetic settles
        # such boxes as SAT instead of splitting to delta width.
        witness = self._exact_witness(prepared, current)
        if witness is not None:
            return "sat", (witness, current)
        if current.max_width() <= self.delta:
            return "delta", current
        variable = self._pick_split_variable(current, undecided)
        return "split", (current, variable)

    def _result(
        self,
        status: IcpStatus,
        witness: dict[str, Fraction] | None,
        box: Box | None,
    ) -> IcpResult:
        return IcpResult(
            status=status,
            witness=witness,
            witness_box=box,
            boxes_explored=self._stats_boxes,
            splits=self._stats_splits,
        )

    def _classify(
        self,
        prepared: list[PreparedAtom],
        box: Box,
    ) -> tuple[str, list[PreparedAtom]]:
        """Classify a box: 'infeasible', 'satisfied', or 'undecided'."""
        undecided = []
        powers: dict[tuple[str, int], Interval] = {}
        for atom in prepared:
            enclosure = eval_poly_interval(atom.poly, box, powers)
            if self._certainly_violated(enclosure, atom.relation):
                return "infeasible", []
            if not self._certainly_satisfied(enclosure, atom.relation):
                undecided.append(atom)
        if not undecided:
            return "satisfied", []
        return "undecided", undecided

    @staticmethod
    def _certainly_violated(enclosure: Interval, relation: Relation) -> bool:
        if relation is Relation.LE:
            return enclosure.certainly_positive()
        if relation is Relation.LT:
            return enclosure.certainly_nonnegative()
        if relation is Relation.EQ:
            return enclosure.certainly_nonzero()
        # NE is violated only when the enclosure is exactly {0}.
        return enclosure.lo == 0.0 and enclosure.hi == 0.0

    @staticmethod
    def _certainly_satisfied(enclosure: Interval, relation: Relation) -> bool:
        if relation is Relation.LE:
            return enclosure.certainly_nonpositive()
        if relation is Relation.LT:
            return enclosure.certainly_negative()
        if relation is Relation.EQ:
            return enclosure.lo == 0.0 and enclosure.hi == 0.0
        return enclosure.certainly_nonzero()

    def _exact_witness(
        self,
        prepared: list[PreparedAtom],
        box: Box,
    ) -> dict[str, Fraction] | None:
        """Try a few candidate points in the box, exactly (rational arithmetic)."""
        candidates = [box.midpoint()]
        if all(math.isfinite(iv.lo) for iv in box.intervals.values()):
            candidates.append(
                {name: Fraction(iv.lo) for name, iv in box.intervals.items()}
            )
        if all(math.isfinite(iv.hi) for iv in box.intervals.values()):
            candidates.append(
                {name: Fraction(iv.hi) for name, iv in box.intervals.items()}
            )
        for point in candidates:
            if self._satisfies_exactly(prepared, point):
                return point
        return None

    @staticmethod
    def _satisfies_exactly(
        prepared: list[PreparedAtom],
        point: dict[str, Fraction],
    ) -> bool:
        for atom in prepared:
            value = poly_eval(atom.poly, point)
            relation = atom.relation
            satisfied = (
                (relation is Relation.LE and value <= 0)
                or (relation is Relation.LT and value < 0)
                or (relation is Relation.EQ and value == 0)
                or (relation is Relation.NE and value != 0)
            )
            if not satisfied:
                return False
        return True

    def _pick_split_variable(
        self,
        box: Box,
        undecided: list[PreparedAtom],
    ) -> str:
        """Split the widest variable occurring in an undecided constraint.

        Candidates are scanned in sorted name order and the first
        maximal width wins — the deterministic tie-break shared with the
        batched engine's per-column argmax.
        """
        candidates: set[str] = set()
        for atom in undecided:
            for mono in atom.poly:
                for var, _exp in mono:
                    candidates.add(var)
        if not candidates:
            candidates = set(box.intervals)
        return max(sorted(candidates), key=lambda name: box[name].width)

    # ------------------------------------------------------------------
    # HC4-style contraction
    # ------------------------------------------------------------------
    def _contract(
        self,
        prepared: list[PreparedAtom],
        box: Box,
    ) -> Box | None:
        """Shrink ``box`` without losing solutions; ``None`` if emptied."""
        current = box
        for _ in range(self.contraction_passes):
            changed = False
            for atom in prepared:
                for variable, coeff_poly, rest_poly in atom.linear:
                    shrunk = self._contract_one(
                        coeff_poly, rest_poly, atom.relation, variable, current
                    )
                    if shrunk is None:
                        return None
                    if shrunk is not current:
                        current = shrunk
                        changed = True
            if not changed:
                break
        return current

    def _contract_one(
        self,
        coeff_poly: Polynomial,
        rest_poly: Polynomial,
        relation: Relation,
        variable: str,
        box: Box,
    ) -> Box | None:
        """Contract ``variable`` using ``poly = a*x + b`` (a, b interval-valued).

        ``coeff_poly``/``rest_poly`` come from :func:`split_linear`;
        when the enclosure of ``a`` has constant sign, the relation is
        solved for ``x``.
        """
        powers: dict[tuple[str, int], Interval] = {}
        a = eval_poly_interval(coeff_poly, box, powers)
        b = eval_poly_interval(rest_poly, box, powers)
        if a.lo <= 0.0 <= a.hi:
            return box  # coefficient sign unknown: skip
        x = box[variable]
        # Solve a*x + b <= / < / = 0 for x soundly: x stays feasible when
        # min over realizations of a*x + b can be <= 0 (resp. >= 0 for the
        # other side of EQ). Taking the loosest of the endpoint quotients
        # is a sound over-approximation whatever the sign of x.
        if a.lo > 0.0:
            upper = max(_div_up(-b.lo, a.lo), _div_up(-b.lo, a.hi))
            lower = (
                min(_div_down(-b.hi, a.lo), _div_down(-b.hi, a.hi))
                if relation is Relation.EQ
                else -math.inf
            )
        else:  # a.hi < 0
            lower = min(_div_down(-b.lo, a.lo), _div_down(-b.lo, a.hi))
            upper = (
                max(_div_up(-b.hi, a.lo), _div_up(-b.hi, a.hi))
                if relation is Relation.EQ
                else math.inf
            )
        candidate = Interval(lower, upper) if lower <= upper else None
        if candidate is None:
            return None
        shrunk = x.intersect(candidate)
        if shrunk is None:
            return None
        if shrunk.lo == x.lo and shrunk.hi == x.hi:
            return box
        return box.with_interval(variable, shrunk)


def _linear_variables(poly: Polynomial):
    """Variables that appear only with exponent 1 in every monomial."""
    seen: dict[str, bool] = {}
    for mono in poly:
        for var, exp in mono:
            if exp > 1:
                seen[var] = False
            elif var not in seen:
                seen[var] = True
    return [var for var, linear in seen.items() if linear]


def _div_up(num: float, den: float) -> float:
    if den == 0.0:
        return math.inf
    q = num / den
    if math.isnan(q):
        return math.inf
    return math.nextafter(q, math.inf) if math.isfinite(q) else q


def _div_down(num: float, den: float) -> float:
    if den == 0.0:
        return -math.inf
    q = num / den
    if math.isnan(q):
        return -math.inf
    return math.nextafter(q, -math.inf) if math.isfinite(q) else q
