"""Interval-constraint-propagation (ICP) branch-and-prune solver.

A delta-complete decision procedure for conjunctions of polynomial
constraints over a bounding box, in the style of dReal: it either

* proves the conjunction UNSAT over the box (a sound proof, thanks to
  outward-rounded interval arithmetic),
* finds a box over which every constraint *certainly* holds (SAT, with
  an exact rational witness point), or
* narrows down to a box smaller than ``delta`` that it can neither
  verify nor refute (DELTA_SAT — "satisfiable up to delta"), or
* exhausts its branching budget (UNKNOWN).

The solver interleaves HC4-style linear contraction with bisection on
the widest undecided variable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Mapping, Sequence

from .interval import Interval
from .terms import Atom, Polynomial, Relation, poly_eval, polynomial_of

__all__ = ["Box", "IcpStatus", "IcpResult", "IcpSolver", "eval_poly_interval"]


class Box:
    """A product of named intervals."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Mapping[str, Interval]):
        self.intervals = dict(intervals)

    @classmethod
    def cube(cls, names: Sequence[str], lo: float, hi: float) -> "Box":
        """The box ``[lo, hi]^n`` over the given variable names."""
        return cls({name: Interval(lo, hi) for name in names})

    def __getitem__(self, name: str) -> Interval:
        return self.intervals[name]

    def with_interval(self, name: str, interval: Interval) -> "Box":
        """Copy of the box with one interval replaced."""
        out = dict(self.intervals)
        out[name] = interval
        return Box(out)

    def max_width(self) -> float:
        """Width of the widest interval."""
        return max(iv.width for iv in self.intervals.values())

    def widest_variable(self) -> str:
        """Name of the widest interval's variable."""
        return max(self.intervals, key=lambda name: self.intervals[name].width)

    def midpoint(self) -> dict[str, Fraction]:
        """The exact rational center point of the box."""
        return {
            name: Fraction(iv.midpoint) for name, iv in self.intervals.items()
        }

    def __repr__(self) -> str:
        body = ", ".join(f"{k}: {v!r}" for k, v in sorted(self.intervals.items()))
        return f"Box({body})"


def eval_poly_interval(poly: Polynomial, box: Box) -> Interval:
    """Interval enclosure of a polynomial over a box."""
    total = Interval.point(0)
    for mono, coeff in poly.items():
        part = Interval.point(coeff)
        for var, exp in mono:
            part = part * (box[var] ** exp)
        total = total + part
    return total


class IcpStatus(Enum):
    """Verdict vocabulary: UNSAT / SAT / DELTA_SAT / UNKNOWN."""
    UNSAT = "unsat"
    SAT = "sat"
    DELTA_SAT = "delta-sat"
    UNKNOWN = "unknown"


@dataclass
class IcpResult:
    """Outcome of an ICP run: status, witness, search statistics."""
    status: IcpStatus
    witness: dict[str, Fraction] | None = None
    witness_box: Box | None = None
    boxes_explored: int = 0
    splits: int = 0


@dataclass
class IcpSolver:
    """Branch-and-prune over a conjunction of polynomial atoms.

    Parameters
    ----------
    delta:
        Width threshold below which an undecided box is reported as
        DELTA_SAT.
    max_boxes:
        Branching budget; exceeding it yields UNKNOWN.
    contraction_passes:
        HC4-style contraction sweeps per box before splitting.
    """

    delta: float = 1e-7
    max_boxes: int = 200_000
    contraction_passes: int = 2
    _stats_boxes: int = field(default=0, repr=False)
    _stats_splits: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    def check(self, atoms: Sequence[Atom], box: Box) -> IcpResult:
        """Decide the conjunction of ``atoms`` over ``box``."""
        constraints = [(polynomial_of(a.lhs), a.relation) for a in atoms]
        self._stats_boxes = 0
        self._stats_splits = 0
        stack = [box]
        smallest_undecided: Box | None = None
        while stack:
            current = stack.pop()
            self._stats_boxes += 1
            if self._stats_boxes > self.max_boxes:
                return self._result(IcpStatus.UNKNOWN, None, smallest_undecided)
            contracted = self._contract(constraints, current)
            if contracted is None:
                continue  # proven empty
            current = contracted
            verdict, undecided = self._classify(constraints, current)
            if verdict == "infeasible":
                continue
            # Exact witness attempt: interval enclosures are outward
            # rounded, so a feasible boundary point (e.g. x = 1/2 for
            # 1/2 - x <= 0) never becomes "certainly satisfied"; checking
            # a few candidate points with rational arithmetic settles
            # such boxes as SAT instead of splitting to delta width.
            witness = self._exact_witness(constraints, current)
            if witness is not None:
                return self._result(IcpStatus.SAT, witness, current)
            if current.max_width() <= self.delta:
                smallest_undecided = current
                return self._result(IcpStatus.DELTA_SAT, None, current)
            variable = self._pick_split_variable(current, undecided)
            low, high = current[variable].split()
            self._stats_splits += 1
            stack.append(current.with_interval(variable, high))
            stack.append(current.with_interval(variable, low))
        return self._result(IcpStatus.UNSAT, None, None)

    # ------------------------------------------------------------------
    def _result(
        self,
        status: IcpStatus,
        witness: dict[str, Fraction] | None,
        box: Box | None,
    ) -> IcpResult:
        return IcpResult(
            status=status,
            witness=witness,
            witness_box=box,
            boxes_explored=self._stats_boxes,
            splits=self._stats_splits,
        )

    def _classify(
        self,
        constraints: list[tuple[Polynomial, Relation]],
        box: Box,
    ) -> tuple[str, list[tuple[Polynomial, Relation]]]:
        """Classify a box: 'infeasible', 'satisfied', or 'undecided'."""
        undecided = []
        for poly, relation in constraints:
            enclosure = eval_poly_interval(poly, box)
            if self._certainly_violated(enclosure, relation):
                return "infeasible", []
            if not self._certainly_satisfied(enclosure, relation):
                undecided.append((poly, relation))
        if not undecided:
            return "satisfied", []
        return "undecided", undecided

    @staticmethod
    def _certainly_violated(enclosure: Interval, relation: Relation) -> bool:
        if relation is Relation.LE:
            return enclosure.certainly_positive()
        if relation is Relation.LT:
            return enclosure.certainly_nonnegative()
        if relation is Relation.EQ:
            return enclosure.certainly_nonzero()
        # NE is violated only when the enclosure is exactly {0}.
        return enclosure.lo == 0.0 and enclosure.hi == 0.0

    @staticmethod
    def _certainly_satisfied(enclosure: Interval, relation: Relation) -> bool:
        if relation is Relation.LE:
            return enclosure.certainly_nonpositive()
        if relation is Relation.LT:
            return enclosure.certainly_negative()
        if relation is Relation.EQ:
            return enclosure.lo == 0.0 and enclosure.hi == 0.0
        return enclosure.certainly_nonzero()

    def _exact_witness(
        self,
        constraints: list[tuple[Polynomial, Relation]],
        box: Box,
    ) -> dict[str, Fraction] | None:
        """Try a few candidate points in the box, exactly (rational arithmetic)."""
        candidates = [box.midpoint()]
        if all(math.isfinite(iv.lo) for iv in box.intervals.values()):
            candidates.append(
                {name: Fraction(iv.lo) for name, iv in box.intervals.items()}
            )
        if all(math.isfinite(iv.hi) for iv in box.intervals.values()):
            candidates.append(
                {name: Fraction(iv.hi) for name, iv in box.intervals.items()}
            )
        for point in candidates:
            if self._satisfies_exactly(constraints, point):
                return point
        return None

    @staticmethod
    def _satisfies_exactly(
        constraints: list[tuple[Polynomial, Relation]],
        point: dict[str, Fraction],
    ) -> bool:
        for poly, relation in constraints:
            value = poly_eval(poly, point)
            satisfied = (
                (relation is Relation.LE and value <= 0)
                or (relation is Relation.LT and value < 0)
                or (relation is Relation.EQ and value == 0)
                or (relation is Relation.NE and value != 0)
            )
            if not satisfied:
                return False
        return True

    def _pick_split_variable(
        self,
        box: Box,
        undecided: list[tuple[Polynomial, Relation]],
    ) -> str:
        """Split the widest variable occurring in an undecided constraint."""
        candidates: set[str] = set()
        for poly, _ in undecided:
            for mono in poly:
                for var, _exp in mono:
                    candidates.add(var)
        if not candidates:
            candidates = set(box.intervals)
        return max(candidates, key=lambda name: box[name].width)

    # ------------------------------------------------------------------
    # HC4-style contraction
    # ------------------------------------------------------------------
    def _contract(
        self,
        constraints: list[tuple[Polynomial, Relation]],
        box: Box,
    ) -> Box | None:
        """Shrink ``box`` without losing solutions; ``None`` if emptied."""
        current = box
        for _ in range(self.contraction_passes):
            changed = False
            for poly, relation in constraints:
                if relation is Relation.NE:
                    continue  # no useful interval contraction
                for variable in _linear_variables(poly):
                    shrunk = self._contract_one(poly, relation, variable, current)
                    if shrunk is None:
                        return None
                    if shrunk is not current:
                        current = shrunk
                        changed = True
            if not changed:
                break
        return current

    def _contract_one(
        self,
        poly: Polynomial,
        relation: Relation,
        variable: str,
        box: Box,
    ) -> Box | None:
        """Contract ``variable`` using ``poly = a*x + b`` (a, b interval-valued).

        Splits the polynomial as ``a(x_others) * x + b(others)`` and, when
        the enclosure of ``a`` has constant sign, solves the relation
        for ``x``.
        """
        coeff_poly: Polynomial = {}
        rest_poly: Polynomial = {}
        for mono, coeff in poly.items():
            exps = dict(mono)
            exp = exps.pop(variable, 0)
            if exp == 0:
                rest_poly[mono] = coeff
            elif exp == 1:
                coeff_poly[tuple(sorted(exps.items()))] = (
                    coeff_poly.get(tuple(sorted(exps.items())), Fraction(0)) + coeff
                )
            else:
                return box  # not linear in this variable after all
        a = eval_poly_interval(coeff_poly, box)
        b = eval_poly_interval(rest_poly, box)
        if a.lo <= 0.0 <= a.hi:
            return box  # coefficient sign unknown: skip
        x = box[variable]
        # Solve a*x + b <= / < / = 0 for x soundly: x stays feasible when
        # min over realizations of a*x + b can be <= 0 (resp. >= 0 for the
        # other side of EQ). Taking the loosest of the endpoint quotients
        # is a sound over-approximation whatever the sign of x.
        if a.lo > 0.0:
            upper = max(_div_up(-b.lo, a.lo), _div_up(-b.lo, a.hi))
            lower = (
                min(_div_down(-b.hi, a.lo), _div_down(-b.hi, a.hi))
                if relation is Relation.EQ
                else -math.inf
            )
        else:  # a.hi < 0
            lower = min(_div_down(-b.lo, a.lo), _div_down(-b.lo, a.hi))
            upper = (
                max(_div_up(-b.hi, a.lo), _div_up(-b.hi, a.hi))
                if relation is Relation.EQ
                else math.inf
            )
        candidate = Interval(lower, upper) if lower <= upper else None
        if candidate is None:
            return None
        shrunk = x.intersect(candidate)
        if shrunk is None:
            return None
        if shrunk.lo == x.lo and shrunk.hi == x.hi:
            return box
        return box.with_interval(variable, shrunk)


def _linear_variables(poly: Polynomial):
    """Variables that appear only with exponent 1 in every monomial."""
    seen: dict[str, bool] = {}
    for mono in poly:
        for var, exp in mono:
            if exp > 1:
                seen[var] = False
            elif var not in seen:
                seen[var] = True
    return [var for var, linear in seen.items() if linear]


def _div_up(num: float, den: float) -> float:
    if den == 0.0:
        return math.inf
    q = num / den
    if math.isnan(q):
        return math.inf
    return math.nextafter(q, math.inf) if math.isfinite(q) else q


def _div_down(num: float, den: float) -> float:
    if den == 0.0:
        return -math.inf
    q = num / den
    if math.isnan(q):
        return -math.inf
    return math.nextafter(q, -math.inf) if math.isfinite(q) else q
