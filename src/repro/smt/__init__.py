"""A small SMT layer for quantifier-free polynomial real arithmetic.

Built from scratch for this reproduction (the paper used Z3, CVC5 and
Mathematica, which are unavailable offline): a term/formula AST,
sound floating-point interval arithmetic, an ICP branch-and-prune
refuter (delta-complete, dReal-style), exact Fourier--Motzkin linear
feasibility, and the definiteness encodings used to validate Lyapunov
candidates.
"""

from .boxes import BoxArray, classify_boxes
from .dpll import DpllSolver, tseitin_cnf
from .encodings import SphereCheckOutcome, check_positive_definite_icp
from .icp import (
    ICP_BACKENDS,
    Box,
    IcpResult,
    IcpSolver,
    IcpStatus,
    eval_poly_interval,
    resolve_icp_backend,
    split_linear,
)
from .interval import Interval
from .linear import LinearConstraint, LinearResult, check_atoms_linear, solve_linear
from .parser import ParsedScript, SmtLibParseError, parse_formula, parse_script
from .smtlib import formula_to_smtlib, script_for_refutation, term_to_smtlib
from .solver import SmtResult, SmtSolver, SmtStatus
from .terms import (
    FALSE,
    TRUE,
    Add,
    And,
    Atom,
    Const,
    Formula,
    Mul,
    Not,
    Or,
    Pow,
    Relation,
    Term,
    Var,
    affine_term,
    poly_degree,
    poly_eval,
    poly_free_vars,
    poly_is_linear,
    polynomial_of,
    quadratic_form_term,
    to_dnf,
    to_nnf,
)
from .witness import (
    atom_violation,
    point_satisfies,
    witness_point,
    witness_violations,
)

__all__ = [
    "Term",
    "Var",
    "Const",
    "Add",
    "Mul",
    "Pow",
    "Atom",
    "Relation",
    "Formula",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "polynomial_of",
    "poly_degree",
    "poly_is_linear",
    "poly_eval",
    "poly_free_vars",
    "quadratic_form_term",
    "affine_term",
    "to_nnf",
    "to_dnf",
    "Interval",
    "Box",
    "BoxArray",
    "ICP_BACKENDS",
    "IcpSolver",
    "IcpResult",
    "IcpStatus",
    "classify_boxes",
    "eval_poly_interval",
    "resolve_icp_backend",
    "split_linear",
    "LinearConstraint",
    "LinearResult",
    "solve_linear",
    "check_atoms_linear",
    "SmtSolver",
    "SmtResult",
    "SmtStatus",
    "SphereCheckOutcome",
    "check_positive_definite_icp",
    "witness_point",
    "atom_violation",
    "witness_violations",
    "point_satisfies",
    "term_to_smtlib",
    "formula_to_smtlib",
    "script_for_refutation",
    "parse_formula",
    "parse_script",
    "ParsedScript",
    "SmtLibParseError",
    "DpllSolver",
    "tseitin_cnf",
]
