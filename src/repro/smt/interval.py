"""Sound floating-point interval arithmetic.

Used by the ICP refuter (:mod:`repro.smt.icp`). Bounds are binary
doubles, and every operation rounds *outward* with ``math.nextafter``,
so an interval always encloses the exact real result. This keeps the
refuter fast (hardware floats) while its UNSAT verdicts stay sound;
exact rational arithmetic is only needed when a verdict must be an
equality-tight proof, which the :mod:`repro.exact` layer handles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..exact.rational import Number, to_fraction

__all__ = ["Interval"]

_INF = math.inf


def _down(x: float) -> float:
    """Next float toward -inf (identity on infinities)."""
    if x == -_INF or x == _INF:
        return x
    return math.nextafter(x, -_INF)


def _up(x: float) -> float:
    if x == -_INF or x == _INF:
        return x
    return math.nextafter(x, _INF)


_MAX = math.nextafter(_INF, 0.0)


def _lo_of(value: float, exact: Fraction | None) -> float:
    """A float <= the exact real ``exact``, given its rounded value.

    When the float operation was exact no adjustment is made, which keeps
    dyadic arithmetic (the common case in ICP boxes) perfectly tight.
    """
    if value == -_INF:
        return value
    if value == _INF:
        # The exact result overflowed: the largest finite float is still
        # a sound lower bound.
        return _MAX
    if exact is None or Fraction(value) <= exact:
        return value
    return _down(value)


def _hi_of(value: float, exact: Fraction | None) -> float:
    if value == _INF:
        return value
    if value == -_INF:
        return -_MAX
    if exact is None or Fraction(value) >= exact:
        return value
    return _up(value)


def _exact_sum(a: float, b: float) -> Fraction | None:
    if math.isfinite(a) and math.isfinite(b):
        return Fraction(a) + Fraction(b)
    return None


def _exact_product(a: float, b: float) -> Fraction | None:
    if math.isfinite(a) and math.isfinite(b):
        return Fraction(a) * Fraction(b)
    return None


def _frac_lo(q: Fraction) -> float:
    """A float lower bound on an exact rational."""
    f = q.numerator / q.denominator
    return f if Fraction(f) <= q else _down(f)


def _frac_hi(q: Fraction) -> float:
    f = q.numerator / q.denominator
    return f if Fraction(f) >= q else _up(f)


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` with outward-rounded endpoints."""

    lo: float
    hi: float

    def __post_init__(self):
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("NaN interval endpoint")
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: Number) -> "Interval":
        """A degenerate interval enclosing one exact value."""
        q = to_fraction(value)
        return cls(_frac_lo(q), _frac_hi(q))

    @classmethod
    def make(cls, lo: Number, hi: Number) -> "Interval":
        """An interval with outward-rounded rational endpoints."""
        return cls(_frac_lo(to_fraction(lo)), _frac_hi(to_fraction(hi)))

    @classmethod
    def whole(cls) -> "Interval":
        """The whole real line."""
        return cls(-_INF, _INF)

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """``hi - lo`` in float arithmetic."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """A finite representative point (midpoint-ish for infinite intervals)."""
        if self.lo == -_INF and self.hi == _INF:
            return 0.0
        if self.lo == -_INF:
            return min(self.hi - 1.0, 0.0)
        if self.hi == _INF:
            return max(self.lo + 1.0, 0.0)
        mid = 0.5 * (self.lo + self.hi)
        if not math.isfinite(mid):
            mid = 0.5 * self.lo + 0.5 * self.hi
        return mid

    def contains(self, value: Number) -> bool:
        """Exact membership test for a rational value."""
        q = to_fraction(value)
        lo_ok = self.lo == -_INF or Fraction(self.lo) <= q
        hi_ok = self.hi == _INF or q <= Fraction(self.hi)
        return lo_ok and hi_ok

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection, or ``None`` when empty."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def split(self) -> tuple["Interval", "Interval"]:
        """Bisect at the midpoint into two covering halves."""
        mid = self.midpoint
        return Interval(self.lo, mid), Interval(mid, self.hi)

    # ------------------------------------------------------------------
    # Arithmetic (outward rounded)
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(
            _lo_of(self.lo + other.lo, _exact_sum(self.lo, other.lo)),
            _hi_of(self.hi + other.hi, _exact_sum(self.hi, other.hi)),
        )

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(
            _lo_of(self.lo - other.hi, _exact_sum(self.lo, -other.hi)),
            _hi_of(self.hi - other.lo, _exact_sum(self.hi, -other.lo)),
        )

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        candidates = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                p = a * b
                if math.isnan(p):  # 0 * inf — the exact product of a zero
                    p, exact = 0.0, Fraction(0)  # endpoint is 0: sound
                else:
                    exact = _exact_product(a, b)
                # Selection key: the exact product when available, so that
                # float ties (underflow to 0.0, etc.) break correctly.
                key = exact if exact is not None else p
                candidates.append((key, p, exact))
        _, lo_val, lo_exact = min(candidates, key=lambda t: t[0])
        _, hi_val, hi_exact = max(candidates, key=lambda t: t[0])
        return Interval(_lo_of(lo_val, lo_exact), _hi_of(hi_val, hi_exact))

    def scale(self, k: Number) -> "Interval":
        """Multiply by an exact scalar (outward rounded)."""
        return self * Interval.point(k)

    def __pow__(self, exponent: int) -> "Interval":
        if exponent < 0:
            raise ValueError("negative exponents unsupported")
        if exponent == 0:
            return Interval(1.0, 1.0)
        result = self
        for _ in range(exponent - 1):
            result = result * self
        if exponent % 2 == 0 and self.lo <= 0.0 <= self.hi:
            # Even powers are nonnegative; the product recursion cannot
            # know that, so floor the result at zero.
            result = Interval(max(result.lo, 0.0), result.hi)
        return result

    # ------------------------------------------------------------------
    # Sign queries (used by the refuter)
    # ------------------------------------------------------------------
    def certainly_positive(self) -> bool:
        """``lo > 0`` — every point is positive."""
        return self.lo > 0.0

    def certainly_nonnegative(self) -> bool:
        """``lo >= 0``."""
        return self.lo >= 0.0

    def certainly_negative(self) -> bool:
        """``hi < 0``."""
        return self.hi < 0.0

    def certainly_nonpositive(self) -> bool:
        """``hi <= 0``."""
        return self.hi <= 0.0

    def certainly_nonzero(self) -> bool:
        """The interval excludes zero."""
        return self.lo > 0.0 or self.hi < 0.0

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"
