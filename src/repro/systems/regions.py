"""Half-spaces and convex polyhedral operating regions (Section III-C).

Regions partition the closed-loop state space; each is an intersection
of half-spaces ``normal . w + offset {>, >=} 0``. They evaluate
numerically (simulation, synthesis) and convert to exact atoms for the
SMT layer (validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from ..exact import to_fraction
from ..smt import Atom, Relation, Var, affine_term

__all__ = ["HalfSpace", "PolyhedralRegion"]


@dataclass(frozen=True)
class HalfSpace:
    """``normal . w + offset > 0`` (strict) or ``>= 0`` (non-strict)."""

    normal: tuple
    offset: object
    strict: bool = False

    def __post_init__(self):
        object.__setattr__(
            self, "normal", tuple(to_fraction(x) for x in self.normal)
        )
        object.__setattr__(self, "offset", to_fraction(self.offset))

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return len(self.normal)

    # ------------------------------------------------------------------
    def value(self, point: Sequence) -> Fraction:
        """Exact evaluation of ``normal . point + offset``."""
        if len(point) != self.dimension:
            raise ValueError("dimension mismatch")
        return (
            sum(
                (g * to_fraction(x) for g, x in zip(self.normal, point)),
                Fraction(0),
            )
            + self.offset
        )

    def value_float(self, point: np.ndarray) -> float:
        """Float evaluation of ``normal . point + offset``."""
        return float(
            np.dot(np.array([float(g) for g in self.normal]), point)
            + float(self.offset)
        )

    def contains(self, point: Sequence) -> bool:
        """Exact membership test."""
        v = self.value(point)
        return v > 0 if self.strict else v >= 0

    def complement(self) -> "HalfSpace":
        """The complementary half-space (``not contains``)."""
        return HalfSpace(
            tuple(-g for g in self.normal), -self.offset, strict=not self.strict
        )

    def boundary_atom(self, variables: Sequence[Var]) -> Atom:
        """``normal . w + offset = 0`` as an SMT atom."""
        return Atom(
            affine_term(list(self.normal), variables, self.offset), Relation.EQ
        )

    def to_atom(self, variables: Sequence[Var]) -> Atom:
        """Membership (``> / >= 0``) as an SMT atom, normalized to ``< / <= 0``."""
        term = affine_term(
            [-g for g in self.normal], variables, -self.offset
        )
        # normal.w + offset > 0  <=>  -(normal.w) - offset < 0
        return Atom(term, Relation.LT if self.strict else Relation.LE)

    def normal_float(self) -> np.ndarray:
        """The normal vector as a float array."""
        return np.array([float(g) for g in self.normal])


@dataclass(frozen=True)
class PolyhedralRegion:
    """A convex intersection of half-spaces."""

    halfspaces: tuple

    def __init__(self, halfspaces: Sequence[HalfSpace]):
        halfspaces = tuple(halfspaces)
        if not halfspaces:
            raise ValueError("a region needs at least one half-space")
        dims = {h.dimension for h in halfspaces}
        if len(dims) != 1:
            raise ValueError("mixed half-space dimensions")
        object.__setattr__(self, "halfspaces", halfspaces)

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return self.halfspaces[0].dimension

    def contains(self, point: Sequence) -> bool:
        """Exact membership test."""
        return all(h.contains(point) for h in self.halfspaces)

    def to_atoms(self, variables: Sequence[Var]) -> list[Atom]:
        """Membership conditions as SMT atoms."""
        return [h.to_atom(variables) for h in self.halfspaces]

    def margin(self, point: np.ndarray) -> float:
        """Smallest (float) half-space value — positive strictly inside."""
        return min(h.value_float(point) for h in self.halfspaces)
