"""Dynamical-systems substrate: plants, PI control, PWA systems, simulation."""

from .analysis import (
    KalmanDecomposition,
    controllability_matrix,
    is_controllable,
    is_minimal,
    is_observable,
    kalman_decomposition,
    observability_matrix,
    pbh_uncontrollable_eigenvalues,
    pbh_unobservable_eigenvalues,
)
from .closedloop import (
    build_closed_loop,
    closed_loop_matrices,
    fixed_mode_closed_loop,
    lift_guard,
)
from .discretize import DiscreteStateSpace, discretize_zoh
from .frequency import (
    LoopMargins,
    frequency_response,
    loop_margins,
    sigma_max_response,
    transfer_function,
)
from .pi import OutputGuard, PIGains, SwitchedPIController
from .pwa import PwaMode, PwaSystem
from .regions import HalfSpace, PolyhedralRegion
from .simulate import (
    Trajectory,
    rk45_step,
    settling_time,
    simulate_affine,
    simulate_pwa,
)
from .statespace import AffineSystem, StateSpace

__all__ = [
    "StateSpace",
    "AffineSystem",
    "PIGains",
    "OutputGuard",
    "SwitchedPIController",
    "HalfSpace",
    "PolyhedralRegion",
    "PwaMode",
    "PwaSystem",
    "closed_loop_matrices",
    "fixed_mode_closed_loop",
    "build_closed_loop",
    "lift_guard",
    "Trajectory",
    "rk45_step",
    "simulate_affine",
    "simulate_pwa",
    "settling_time",
    "transfer_function",
    "frequency_response",
    "sigma_max_response",
    "LoopMargins",
    "loop_margins",
    "DiscreteStateSpace",
    "discretize_zoh",
    "controllability_matrix",
    "observability_matrix",
    "is_controllable",
    "is_observable",
    "is_minimal",
    "KalmanDecomposition",
    "kalman_decomposition",
    "pbh_uncontrollable_eigenvalues",
    "pbh_unobservable_eigenvalues",
]
