"""Numerical simulation of affine and PWA systems.

An adaptive Dormand--Prince RK45 integrator (written here, no scipy
dependency in the hot loop) with event detection for switching-surface
crossings: when a step leaves the current operating region, the crossing
time is located by bisection on the region margin, the state is advanced
to the boundary, and integration resumes under the new mode's flow.
Trajectories record states, active modes and switch events, which the
examples and integration tests use to confirm the verified predictions
(convergence without switching from inside a robust region, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .pwa import PwaSystem
from .statespace import AffineSystem

__all__ = ["Trajectory", "rk45_step", "simulate_affine", "simulate_pwa", "settling_time"]

# Dormand–Prince (RK45) Butcher tableau.
_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_A = [
    np.array([]),
    np.array([1 / 5]),
    np.array([3 / 40, 9 / 40]),
    np.array([44 / 45, -56 / 15, 32 / 9]),
    np.array([19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]),
    np.array([9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656]),
    np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84]),
]
_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0])
_B4 = np.array(
    [5179 / 57600, 0.0, 7571 / 16695, 393 / 640, -92097 / 339200, 187 / 2100, 1 / 40]
)


def rk45_step(
    f: Callable[[np.ndarray], np.ndarray], y: np.ndarray, h: float
) -> tuple[np.ndarray, float]:
    """One Dormand--Prince step; returns ``(y_next, error_estimate)``."""
    k = []
    for stage in range(7):
        y_stage = y.copy()
        for coeff, k_prev in zip(_A[stage], k):
            y_stage = y_stage + h * coeff * k_prev
        k.append(f(y_stage))
    k = np.array(k)
    y5 = y + h * (_B5 @ k)
    y4 = y + h * (_B4 @ k)
    error = float(np.linalg.norm(y5 - y4))
    return y5, error


@dataclass
class Trajectory:
    """A simulated trajectory with mode bookkeeping.

    ``completed`` is ``False`` when the integration was truncated by the
    Zeno protection (too many switching events — the trajectory entered
    a sliding/chattering regime that state-dependent switching cannot
    resolve without Filippov semantics).
    """

    times: np.ndarray
    states: np.ndarray
    modes: np.ndarray = field(default=None)
    switch_times: list = field(default_factory=list)
    completed: bool = True

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1]

    @property
    def n_switches(self) -> int:
        return len(self.switch_times)

    def state_at(self, t: float) -> np.ndarray:
        """Linear interpolation between stored samples."""
        index = int(np.searchsorted(self.times, t))
        if index <= 0:
            return self.states[0]
        if index >= len(self.times):
            return self.states[-1]
        t0, t1 = self.times[index - 1], self.times[index]
        frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
        return (1 - frac) * self.states[index - 1] + frac * self.states[index]


def _adaptive_steps(
    f: Callable[[np.ndarray], np.ndarray],
    w0: np.ndarray,
    t0: float,
    t_final: float,
    rtol: float,
    atol: float,
    max_step: float,
):
    """Yield ``(t, w)`` samples of an adaptive RK45 integration."""
    t = t0
    w = np.asarray(w0, dtype=float).copy()
    h = min(max_step, max((t_final - t0) / 100.0, 1e-6))
    while t < t_final:
        h = min(h, t_final - t, max_step)
        w_next, error = rk45_step(f, w, h)
        scale = atol + rtol * max(
            float(np.linalg.norm(w)), float(np.linalg.norm(w_next))
        )
        if error <= scale or h <= 1e-12:
            t += h
            w = w_next
            yield t, w
            growth = 2.0 if error == 0 else min(2.0, 0.9 * (scale / error) ** 0.2)
            h *= growth
        else:
            h *= max(0.1, 0.9 * (scale / error) ** 0.25)


def simulate_affine(
    system: AffineSystem,
    w0: Sequence[float],
    t_final: float,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    max_step: float = np.inf,
) -> Trajectory:
    """Integrate a single affine system."""
    times = [0.0]
    states = [np.asarray(w0, dtype=float)]
    for t, w in _adaptive_steps(
        system.derivative, states[0], 0.0, t_final, rtol, atol, max_step
    ):
        times.append(t)
        states.append(w)
    return Trajectory(np.array(times), np.array(states))


def simulate_pwa(
    system: PwaSystem,
    w0: Sequence[float],
    t_final: float,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    max_step: float = np.inf,
    boundary_tol: float = 1e-10,
    max_switches: int = 10_000,
) -> Trajectory:
    """Integrate a PWA system with switching-event detection.

    Within a mode, steps follow that mode's affine flow. When a step
    lands outside the current region, bisection on the step size locates
    the boundary crossing to ``boundary_tol``, the crossing is recorded,
    and the active mode is re-evaluated just past the boundary.

    Trajectories entering a sliding regime would switch infinitely often
    (Zeno); after ``max_switches`` events the integration stops and the
    returned trajectory has ``completed = False``.
    """
    w = np.asarray(w0, dtype=float).copy()
    t = 0.0
    mode = system.mode_of(w)
    times = [0.0]
    states = [w.copy()]
    modes = [mode]
    switch_times: list[float] = []
    h = min(max_step, max(t_final / 100.0, 1e-6))
    completed = True
    while t < t_final:
        if len(switch_times) >= max_switches:
            completed = False
            break
        flow = system.modes[mode].flow
        region = system.modes[mode].region
        h = min(h, t_final - t, max_step)
        w_next, error = rk45_step(flow.derivative, w, h)
        scale = atol + rtol * max(
            float(np.linalg.norm(w)), float(np.linalg.norm(w_next))
        )
        if error > scale and h > 1e-12:
            h *= max(0.1, 0.9 * (scale / error) ** 0.25)
            continue
        if region.contains(list(w_next)):
            t += h
            w = w_next
            times.append(t)
            states.append(w.copy())
            modes.append(mode)
            h *= 2.0 if error == 0 else min(2.0, 0.9 * (scale / error) ** 0.2)
            continue
        # The step crossed the switching surface: bisect on step size.
        lo, hi = 0.0, h
        for _ in range(80):
            if hi - lo <= boundary_tol * max(1.0, h):
                break
            mid = 0.5 * (lo + hi)
            w_mid, _ = rk45_step(flow.derivative, w, mid)
            if region.contains(list(w_mid)):
                lo = mid
            else:
                hi = mid
        if hi < 1e-14:
            # Stall guard: the state sits numerically on the surface.
            # Push through with a tiny Euler step so time always advances.
            hi = 1e-12 * max(1.0, t_final)
            w_boundary = w + hi * flow.derivative(w)
        else:
            w_boundary, _ = rk45_step(flow.derivative, w, hi)
        t += hi
        w = w_boundary
        times.append(t)
        states.append(w.copy())
        new_mode = system.mode_of(w)
        if new_mode != mode:
            switch_times.append(t)
            mode = new_mode
        modes.append(mode)
        # Keep h adaptive (do not collapse it): the bisection above only
        # advanced to the boundary, so the next step restarts from there.
    return Trajectory(
        np.array(times),
        np.array(states),
        np.array(modes),
        switch_times,
        completed,
    )


def settling_time(
    trajectory: Trajectory, target: np.ndarray, tolerance: float
) -> float | None:
    """First time after which the state stays within ``tolerance`` of
    ``target``; ``None`` if it never settles."""
    target = np.asarray(target, dtype=float)
    distances = np.linalg.norm(trajectory.states - target, axis=1)
    inside = distances <= tolerance
    if not inside[-1]:
        return None
    # Walk backwards to the first index of the final inside-streak.
    index = len(inside) - 1
    while index > 0 and inside[index - 1]:
        index -= 1
    return float(trajectory.times[index])
