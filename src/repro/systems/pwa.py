"""Piecewise-affine (PWA) switched systems (Section III-C, Equation 4).

A :class:`PwaSystem` is a finite set of modes, each an affine flow
``w' = A_i w + b_i`` active on a convex polyhedral region ``R_i``. The
switching law is state-dependent, autonomous and continuous (no state
jumps), exactly the class the paper verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .regions import PolyhedralRegion
from .statespace import AffineSystem

__all__ = ["PwaMode", "PwaSystem"]


@dataclass(frozen=True)
class PwaMode:
    """One operating mode: flow + region + optional name."""

    flow: AffineSystem
    region: PolyhedralRegion
    name: str = ""

    def __post_init__(self):
        if self.flow.dimension != self.region.dimension:
            raise ValueError("flow/region dimension mismatch")

    @property
    def dimension(self) -> int:
        """State-space dimension shared by all modes."""
        return self.flow.dimension

    def equilibrium(self) -> np.ndarray:
        """The mode's affine-flow equilibrium ``-A^{-1} b``."""
        return self.flow.equilibrium()

    def equilibrium_in_region(self) -> bool:
        """Does this mode's equilibrium lie in its own region?"""
        return self.region.contains(list(self.equilibrium()))


@dataclass(frozen=True)
class PwaSystem:
    """An autonomous switched system over polyhedral regions."""

    modes: tuple

    def __init__(self, modes: Sequence[PwaMode]):
        modes = tuple(modes)
        if not modes:
            raise ValueError("need at least one mode")
        dims = {m.dimension for m in modes}
        if len(dims) != 1:
            raise ValueError("mode dimension mismatch")
        object.__setattr__(self, "modes", modes)

    @property
    def dimension(self) -> int:
        """State-space dimension shared by all modes."""
        return self.modes[0].dimension

    @property
    def n_modes(self) -> int:
        """Number of modes."""
        return len(self.modes)

    def mode_of(self, w: np.ndarray) -> int:
        """Index of the first mode whose region contains ``w``."""
        point = list(np.asarray(w, dtype=float))
        for index, mode in enumerate(self.modes):
            if mode.region.contains(point):
                return index
        raise ValueError(f"no region contains {w}: regions do not cover")

    def derivative(self, w: np.ndarray) -> np.ndarray:
        """Flow of the active mode at ``w``."""
        return self.modes[self.mode_of(w)].flow.derivative(w)

    def equilibria(self) -> list[np.ndarray]:
        """Per-mode equilibrium points."""
        return [mode.equilibrium() for mode in self.modes]

    def check_cover(
        self, points: np.ndarray | None = None, seed: int = 0, samples: int = 512
    ) -> bool:
        """Sample-based sanity check that the regions cover the space.

        Not a proof (the exact cover check for the two-mode case-study
        regions is trivial because they are complementary half-spaces);
        used as a guard in tests and examples.
        """
        if points is None:
            rng = np.random.default_rng(seed)
            points = rng.normal(scale=100.0, size=(samples, self.dimension))
        for point in points:
            try:
                self.mode_of(point)
            except ValueError:
                return False
        return True
