"""Closed-loop reformulation of a switched PI loop (Section IV-B).

Given the open-loop plant ``S = (A, B, C)`` and a switched PI controller
``pi``, the feedback interconnection becomes an *autonomous* PWA system
over the extended state ``w = (x, u)``:

    w' = [[A,   B  ],   w + [[0     ],   r
          [N_i, M_i]]        [K_{I,i}]]

with ``N_i = -K_{P,i} C A - K_{I,i} C`` and ``M_i = -K_{P,i} C B``
(Equations 18–22). The operating regions are the controller guards
lifted through ``y = C x`` (Equations 14–16).
"""

from __future__ import annotations

import numpy as np

from .pi import PIGains, SwitchedPIController
from .pwa import PwaMode, PwaSystem
from .regions import HalfSpace, PolyhedralRegion
from .statespace import AffineSystem, StateSpace

__all__ = [
    "closed_loop_matrices",
    "fixed_mode_closed_loop",
    "build_closed_loop",
    "lift_guard",
]


def closed_loop_matrices(
    plant: StateSpace, gains: PIGains
) -> tuple[np.ndarray, np.ndarray]:
    """``(A_cl, B_cl)`` with ``w' = A_cl w + B_cl r`` for one mode.

    ``A_cl`` is ``(n+m) x (n+m)`` over ``w = (x, u)``; ``B_cl`` maps the
    constant reference vector ``r``.
    """
    if gains.n_outputs != plant.n_outputs:
        raise ValueError("gain/output dimension mismatch")
    if gains.n_inputs != plant.n_inputs:
        raise ValueError("gain/input dimension mismatch")
    a, b, c = plant.a, plant.b, plant.c
    n_upper = -gains.kp @ c @ a - gains.ki @ c
    m_lower = -gains.kp @ c @ b
    a_cl = np.block([[a, b], [n_upper, m_lower]])
    b_cl = np.vstack([np.zeros((plant.n_states, plant.n_outputs)), gains.ki])
    return a_cl, b_cl


def fixed_mode_closed_loop(
    plant: StateSpace, gains: PIGains, r: np.ndarray
) -> AffineSystem:
    """The (non-switched) closed loop as an autonomous affine system."""
    a_cl, b_cl = closed_loop_matrices(plant, gains)
    r = np.asarray(r, dtype=float).reshape(plant.n_outputs)
    return AffineSystem(a_cl, b_cl @ r)


def lift_guard(plant: StateSpace, guard, r: np.ndarray) -> HalfSpace:
    """Rewrite an output guard as a half-space over ``w = (x, u)``.

    ``g . y + f . r + h > 0`` with ``y = C x`` becomes
    ``(C^T g, 0) . w + (f . r + h) > 0``.
    """
    r = np.asarray(r, dtype=float).reshape(plant.n_outputs)
    normal = np.concatenate(
        [plant.c.T @ guard.g, np.zeros(plant.n_inputs)]
    )
    offset = float(guard.f @ r + guard.h)
    return HalfSpace(tuple(normal), offset, strict=guard.strict)


def build_closed_loop(
    plant: StateSpace,
    controller: SwitchedPIController,
    r: np.ndarray,
) -> PwaSystem:
    """The full Section IV-B reformulation: an autonomous PWA system."""
    if controller.n_outputs != plant.n_outputs:
        raise ValueError("controller/plant output mismatch")
    if controller.n_inputs != plant.n_inputs:
        raise ValueError("controller/plant input mismatch")
    r = np.asarray(r, dtype=float).reshape(plant.n_outputs)
    modes = []
    for index, gains in enumerate(controller.gains):
        flow = fixed_mode_closed_loop(plant, gains, r)
        halfspaces = [
            lift_guard(plant, guard, r) for guard in controller.guards[index]
        ]
        region = PolyhedralRegion(halfspaces)
        modes.append(PwaMode(flow=flow, region=region, name=f"mode{index}"))
    return PwaSystem(modes)
