"""Continuous-time linear state-space models (paper Section III-A).

``StateSpace`` is the ``(A, B, C)`` triple of Equation (1):

    x' = A x + B u,    y = C x.

It carries the numerical representation (numpy) used by synthesis and
simulation; :meth:`StateSpace.exact` converts losslessly to the rational
world when a proof is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exact import RationalMatrix

__all__ = ["StateSpace", "AffineSystem"]


@dataclass(frozen=True)
class StateSpace:
    """A linear system ``x' = A x + B u``, ``y = C x``."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    def __post_init__(self):
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.atleast_2d(np.asarray(self.b, dtype=float))
        c = np.atleast_2d(np.asarray(self.c, dtype=float))
        if a.shape[0] != a.shape[1]:
            raise ValueError("A must be square")
        if b.shape[0] != a.shape[0]:
            raise ValueError(f"B has {b.shape[0]} rows, expected {a.shape[0]}")
        if c.shape[1] != a.shape[0]:
            raise ValueError(f"C has {c.shape[1]} columns, expected {a.shape[0]}")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """State dimension ``n``."""
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        """Input dimension ``m``."""
        return self.b.shape[1]

    @property
    def n_outputs(self) -> int:
        """Output dimension ``p``."""
        return self.c.shape[0]

    # ------------------------------------------------------------------
    def poles(self) -> np.ndarray:
        """Eigenvalues of ``A`` (numeric)."""
        return np.linalg.eigvals(self.a)

    def spectral_abscissa(self) -> float:
        """``max Re(eig(A))`` — negative means stable."""
        return float(self.poles().real.max())

    def is_stable(self) -> bool:
        """Numerical Hurwitz check; use :meth:`exact` + Routh for a proof."""
        return self.spectral_abscissa() < 0

    def dc_gain(self) -> np.ndarray:
        """Steady-state gain ``-C A^{-1} B`` (A must be invertible)."""
        return -self.c @ np.linalg.solve(self.a, self.b)

    def equilibrium(self, u: np.ndarray) -> np.ndarray:
        """The state ``x`` with ``A x + B u = 0`` for a constant input."""
        u = np.asarray(u, dtype=float).reshape(self.n_inputs)
        return -np.linalg.solve(self.a, self.b @ u)

    def output(self, x: np.ndarray) -> np.ndarray:
        """``y = C x``."""
        return self.c @ np.asarray(x, dtype=float)

    def derivative(self, x: np.ndarray, u: np.ndarray) -> np.ndarray:
        """``x' = A x + B u``."""
        return self.a @ np.asarray(x, dtype=float) + self.b @ np.asarray(
            u, dtype=float
        )

    # ------------------------------------------------------------------
    def exact(self) -> tuple[RationalMatrix, RationalMatrix, RationalMatrix]:
        """Lossless conversion of ``(A, B, C)`` to rational matrices."""
        return (
            RationalMatrix.from_numpy(self.a),
            RationalMatrix.from_numpy(self.b),
            RationalMatrix.from_numpy(self.c),
        )

    def rounded_to_integers(self) -> "StateSpace":
        """The paper's 'truncated' variant: entries rounded to integers."""
        return StateSpace(
            np.round(self.a), np.round(self.b), np.round(self.c)
        )

    def __repr__(self) -> str:
        return (
            f"StateSpace(n={self.n_states}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs})"
        )


@dataclass(frozen=True)
class AffineSystem:
    """An autonomous affine system ``w' = A w + b``."""

    a: np.ndarray
    b: np.ndarray

    def __post_init__(self):
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.asarray(self.b, dtype=float).reshape(-1)
        if a.shape[0] != a.shape[1]:
            raise ValueError("A must be square")
        if b.shape[0] != a.shape[0]:
            raise ValueError("b dimension mismatch")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @property
    def dimension(self) -> int:
        """State dimension."""
        return self.a.shape[0]

    def derivative(self, w: np.ndarray) -> np.ndarray:
        """``w' = A w + b``."""
        return self.a @ np.asarray(w, dtype=float) + self.b

    def equilibrium(self) -> np.ndarray:
        """``-A^{-1} b`` (A must be invertible)."""
        return -np.linalg.solve(self.a, self.b)

    def is_stable(self) -> bool:
        """Numeric Hurwitz check of ``A``."""
        return float(np.linalg.eigvals(self.a).real.max()) < 0

    def exact(self) -> tuple[RationalMatrix, RationalMatrix]:
        """Lossless conversion to rational matrices."""
        return (
            RationalMatrix.from_numpy(self.a),
            RationalMatrix.from_numpy(self.b.reshape(-1, 1)),
        )
