"""Structural analysis of linear systems.

Controllability/observability tests (PBH eigenvalue tests — numerically
robust for stiff systems, where the classic Krylov-matrix rank underflows),
Kalman decomposition (Gramian-subspace based for stable systems), and
minimality checks. Used to justify the balanced-truncation orders of the
benchmark ladder: a reduction below the strongly reachable-and-observable
order breaks a control channel — exactly the failure mode the
integer-rounded size-3 model exhibited during design (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .statespace import StateSpace

__all__ = [
    "controllability_matrix",
    "observability_matrix",
    "pbh_uncontrollable_eigenvalues",
    "pbh_unobservable_eigenvalues",
    "is_controllable",
    "is_observable",
    "is_minimal",
    "KalmanDecomposition",
    "kalman_decomposition",
]


def controllability_matrix(plant: StateSpace) -> np.ndarray:
    """``[B, AB, ..., A^{n-1} B]`` (n x n*m).

    Note: for stiff systems the high powers dwarf ``B`` and the numeric
    rank of this matrix underflows — prefer the PBH predicates below for
    yes/no questions.
    """
    blocks = []
    current = plant.b
    for _ in range(plant.n_states):
        blocks.append(current)
        current = plant.a @ current
    return np.hstack(blocks)


def observability_matrix(plant: StateSpace) -> np.ndarray:
    """``[C; CA; ...; C A^{n-1}]`` (n*p x n); see the stiffness caveat
    on :func:`controllability_matrix`."""
    blocks = []
    current = plant.c
    for _ in range(plant.n_states):
        blocks.append(current)
        current = current @ plant.a
    return np.vstack(blocks)


def _pbh_deficient(
    a: np.ndarray, other: np.ndarray, stack_rows: bool, tol: float
) -> list[complex]:
    """Eigenvalues where ``[A - lambda I | B]`` (or the row-stacked dual)
    loses rank — the Popov–Belevitch–Hautus test."""
    n = a.shape[0]
    scale = max(float(np.linalg.norm(a, 2)), 1.0)
    deficient = []
    for eigenvalue in np.linalg.eigvals(a):
        shifted = a - eigenvalue * np.eye(n)
        pencil = (
            np.vstack([shifted, other]) if stack_rows
            else np.hstack([shifted, other])
        )
        s = np.linalg.svd(pencil, compute_uv=False)
        if s[n - 1] <= tol * scale:
            deficient.append(complex(eigenvalue))
    return deficient


def pbh_uncontrollable_eigenvalues(
    plant: StateSpace, tol: float = 1e-9
) -> list[complex]:
    """Eigenvalues failing the controllability PBH test (empty = controllable)."""
    return _pbh_deficient(plant.a, plant.b, stack_rows=False, tol=tol)


def pbh_unobservable_eigenvalues(
    plant: StateSpace, tol: float = 1e-9
) -> list[complex]:
    """Eigenvalues failing the observability PBH test (empty = observable)."""
    return _pbh_deficient(plant.a, plant.c, stack_rows=True, tol=tol)


def is_controllable(plant: StateSpace, tol: float = 1e-9) -> bool:
    return not pbh_uncontrollable_eigenvalues(plant, tol)


def is_observable(plant: StateSpace, tol: float = 1e-9) -> bool:
    return not pbh_unobservable_eigenvalues(plant, tol)


def is_minimal(plant: StateSpace, tol: float = 1e-9) -> bool:
    """Minimal iff controllable and observable."""
    return is_controllable(plant, tol) and is_observable(plant, tol)


@dataclass(frozen=True)
class KalmanDecomposition:
    """Subspace dimensions plus an orthonormal basis ordered with the
    controllable-and-observable directions first."""

    transform: np.ndarray
    n_controllable: int
    n_observable: int
    n_co: int  # controllable AND observable

    @property
    def minimal_order(self) -> int:
        return self.n_co


def _subspace_bases(plant: StateSpace, tol: float):
    """(controllable basis, unobservable basis) — Gramian ranges for
    stable systems (well-scaled), Krylov ranges otherwise."""
    n = plant.n_states
    if plant.is_stable():
        from ..reduction import controllability_gramian, observability_gramian

        wc = controllability_gramian(plant)
        wo = observability_gramian(plant)
        u, s, _ = np.linalg.svd(wc)
        n_c = int(np.sum(s > tol * max(s[0], 1e-300)))
        basis_c = u[:, :n_c]
        u2, s2, _ = np.linalg.svd(wo)
        n_o = int(np.sum(s2 > tol * max(s2[0], 1e-300)))
        null_o = u2[:, n_o:]
        return basis_c, null_o, n_c, n_o
    ctrb = controllability_matrix(plant)
    obsv = observability_matrix(plant)
    u, s, _ = np.linalg.svd(ctrb, full_matrices=True)
    n_c = int(np.sum(s > tol * max(s[0] if len(s) else 1.0, 1.0)))
    u2, s2, vt2 = np.linalg.svd(obsv, full_matrices=True)
    n_o = int(np.sum(s2 > tol * max(s2[0] if len(s2) else 1.0, 1.0)))
    return u[:, :n_c], vt2[n_o:, :].T, n_c, n_o


def kalman_decomposition(
    plant: StateSpace, tol: float = 1e-9
) -> KalmanDecomposition:
    """Numeric Kalman analysis.

    For stable plants the controllable subspace is ``range(Wc)`` and the
    unobservable one ``null(Wo)`` (Gramians are far better scaled than
    Krylov matrices on stiff dynamics); the dimensions combine to the
    controllable-and-observable order — the least order any realization
    of the same I/O behaviour can have.
    """
    n = plant.n_states
    basis_c, null_o, n_c, n_o = _subspace_bases(plant, tol)
    if null_o.shape[1] == 0 or n_c == 0:
        intersection = 0
    else:
        stacked = np.hstack([basis_c, null_o])
        rank = int(np.linalg.matrix_rank(stacked, tol=tol))
        intersection = n_c + null_o.shape[1] - rank
    n_co = n_c - intersection
    # Basis assembly: project the unobservable part out of the
    # controllable directions, orthonormalize, complete.
    if n_co > 0:
        projector = (
            null_o @ null_o.T if null_o.shape[1] else np.zeros((n, n))
        )
        candidates = basis_c - projector @ basis_c
        q, r = np.linalg.qr(candidates)
        keep = np.abs(np.diag(r)) > tol
        co_basis = q[:, : min(n_co, int(keep.sum()))]
    else:
        co_basis = np.zeros((n, 0))
    q_full, _ = np.linalg.qr(np.hstack([co_basis, np.eye(n)]))
    transform = q_full[:, :n]
    return KalmanDecomposition(
        transform=transform,
        n_controllable=n_c,
        n_observable=n_o,
        n_co=n_co,
    )
