"""Zero-order-hold discretization of continuous-time systems.

The paper verifies the continuous-time design; an embedded controller
executes a sampled version. This module provides the standard exact ZOH
map

    A_d = e^{A T},     B_d = (integral_0^T e^{A s} ds) B

computed through the block-matrix exponential trick (no invertibility
assumption on ``A``), plus a discrete-time state-space container with
simulation. Discrete-time Lyapunov verification lives in
:mod:`repro.lyapunov.discrete`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from .statespace import StateSpace

__all__ = ["DiscreteStateSpace", "discretize_zoh"]


@dataclass(frozen=True)
class DiscreteStateSpace:
    """``x[k+1] = A_d x[k] + B_d u[k]``, ``y[k] = C x[k]`` at period ``dt``."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    dt: float

    def __post_init__(self):
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.atleast_2d(np.asarray(self.b, dtype=float))
        c = np.atleast_2d(np.asarray(self.c, dtype=float))
        if a.shape[0] != a.shape[1] or b.shape[0] != a.shape[0]:
            raise ValueError("A must be square and B row-compatible")
        if c.shape[1] != a.shape[0]:
            raise ValueError("C column mismatch")
        if self.dt <= 0:
            raise ValueError("sampling period must be positive")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)

    @property
    def n_states(self) -> int:
        """State dimension."""
        return self.a.shape[0]

    def spectral_radius(self) -> float:
        """Largest eigenvalue magnitude of ``A_d``."""
        return float(np.abs(np.linalg.eigvals(self.a)).max())

    def is_stable(self) -> bool:
        """Schur stability: every eigenvalue strictly inside the unit disc."""
        return self.spectral_radius() < 1.0

    def step(self, x: np.ndarray, u: np.ndarray) -> np.ndarray:
        """One sample-period update ``A_d x + B_d u``."""
        return self.a @ np.asarray(x, dtype=float) + self.b @ np.asarray(
            u, dtype=float
        )

    def simulate(self, x0: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """States ``x[0..K]`` under an input sequence of length ``K``."""
        x = np.asarray(x0, dtype=float)
        states = [x.copy()]
        for u in np.atleast_2d(inputs):
            x = self.step(x, u)
            states.append(x.copy())
        return np.array(states)


def discretize_zoh(plant: StateSpace, dt: float) -> DiscreteStateSpace:
    """Exact zero-order-hold discretization at period ``dt``.

    Uses ``expm([[A, B], [0, 0]] dt) = [[A_d, B_d], [0, I]]``, which is
    valid for any ``A`` (singular included).
    """
    if dt <= 0:
        raise ValueError("sampling period must be positive")
    n, m = plant.n_states, plant.n_inputs
    block = np.zeros((n + m, n + m))
    block[:n, :n] = plant.a
    block[:n, n:] = plant.b
    exp_block = expm(block * dt)
    return DiscreteStateSpace(
        a=exp_block[:n, :n], b=exp_block[:n, n:], c=plant.c.copy(), dt=dt
    )
