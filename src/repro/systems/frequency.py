"""Frequency-domain analysis of linear systems.

Transfer-function evaluation ``G(s) = C (sI - A)^{-1} B``, Bode data,
and classical gain/phase margins per SISO loop. Used to document and
sanity-check the engine design (each PI loop's phase margin) and by the
tests that pin the balanced-truncation H-infinity error bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .statespace import StateSpace

__all__ = [
    "transfer_function",
    "frequency_response",
    "sigma_max_response",
    "LoopMargins",
    "loop_margins",
]


def transfer_function(plant: StateSpace, s: complex) -> np.ndarray:
    """``G(s) = C (sI - A)^{-1} B`` at one complex frequency."""
    n = plant.n_states
    resolvent = np.linalg.solve(
        s * np.eye(n) - plant.a, plant.b.astype(complex)
    )
    return plant.c @ resolvent


def frequency_response(
    plant: StateSpace, omegas: np.ndarray
) -> np.ndarray:
    """``G(j omega)`` for an array of frequencies; shape (len, p, m)."""
    return np.array(
        [transfer_function(plant, 1j * float(w)) for w in omegas]
    )


def sigma_max_response(plant: StateSpace, omegas: np.ndarray) -> np.ndarray:
    """Largest singular value of ``G(j omega)`` per frequency."""
    response = frequency_response(plant, omegas)
    return np.array([np.linalg.svd(g, compute_uv=False)[0] for g in response])


@dataclass(frozen=True)
class LoopMargins:
    """Classical stability margins of one SISO loop transfer."""

    gain_margin_db: float  # inf when phase never crosses -180 deg
    phase_margin_deg: float  # inf when |L| never crosses 1
    gain_crossover: float | None
    phase_crossover: float | None


def loop_margins(
    loop_gain, omegas: np.ndarray
) -> LoopMargins:
    """Margins of a SISO loop ``L(j omega)`` given as a callable.

    ``loop_gain`` maps a (positive) frequency to a complex number.
    Crossings are located by sign-change bisection on the sampled grid,
    so the grid should bracket the crossovers.
    """
    omegas = np.asarray(omegas, dtype=float)
    values = np.array([loop_gain(w) for w in omegas])
    magnitude = np.abs(values)
    phase = np.unwrap(np.angle(values))

    gain_crossover = _crossing(omegas, magnitude - 1.0, loop_gain, "mag")
    phase_crossover = _crossing(
        omegas, phase + np.pi, loop_gain, "phase"
    )

    if gain_crossover is None:
        phase_margin = float("inf")
    else:
        phase_at = np.angle(loop_gain(gain_crossover))
        phase_margin = float(np.degrees(phase_at + np.pi))
        # Normalize to (-180, 180].
        while phase_margin > 180.0:
            phase_margin -= 360.0
        while phase_margin <= -180.0:
            phase_margin += 360.0
    if phase_crossover is None:
        gain_margin = float("inf")
    else:
        magnitude_at = abs(loop_gain(phase_crossover))
        gain_margin = float(-20.0 * np.log10(magnitude_at))
    return LoopMargins(
        gain_margin_db=gain_margin,
        phase_margin_deg=phase_margin,
        gain_crossover=gain_crossover,
        phase_crossover=phase_crossover,
    )


def _crossing(omegas, signal, loop_gain, kind) -> float | None:
    """First sign change of ``signal`` refined by bisection."""
    signs = np.sign(signal)
    changes = np.nonzero(np.diff(signs) != 0)[0]
    if len(changes) == 0:
        return None
    lo, hi = float(omegas[changes[0]]), float(omegas[changes[0] + 1])

    def residual(w: float) -> float:
        value = loop_gain(w)
        if kind == "mag":
            return abs(value) - 1.0
        angle = float(np.angle(value))
        if angle > 0:  # unwrap: loop phases of interest live in (-2pi, 0]
            angle -= 2.0 * np.pi
        return angle + np.pi

    r_lo = residual(lo)
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        r_mid = residual(mid)
        if r_lo * r_mid <= 0:
            hi = mid
        else:
            lo, r_lo = mid, r_mid
    return 0.5 * (lo + hi)
