"""PI controllers and switched PI controllers (Sections III-B, IV-A).

A PI controller realizes ``u = K_P e + K_I \\int e dt`` for the error
``e = r - y``. A *switched* PI controller holds one gain pair per
operating mode plus a mode-selection law expressed as affine guards on
the outputs and references (Equation 13, with the reference entering
the constant term as in the case study's ``r0 - y0 < Theta``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PIGains", "OutputGuard", "SwitchedPIController"]


@dataclass(frozen=True)
class PIGains:
    """One mode's gain pair ``(K_P, K_I)``, both ``r x p`` matrices."""

    kp: np.ndarray
    ki: np.ndarray

    def __post_init__(self):
        kp = np.atleast_2d(np.asarray(self.kp, dtype=float))
        ki = np.atleast_2d(np.asarray(self.ki, dtype=float))
        if kp.shape != ki.shape:
            raise ValueError(f"K_P {kp.shape} and K_I {ki.shape} shape mismatch")
        object.__setattr__(self, "kp", kp)
        object.__setattr__(self, "ki", ki)

    @property
    def n_inputs(self) -> int:
        """Number of actuation inputs ``r``."""
        return self.kp.shape[0]

    @property
    def n_outputs(self) -> int:
        """Number of measured outputs ``p``."""
        return self.kp.shape[1]


@dataclass(frozen=True)
class OutputGuard:
    """An activating condition ``g . y + f . r + h {>, >=} 0``.

    ``g`` weights the measured outputs, ``f`` the reference values (the
    case study's guard ``r0 - y0 < Theta`` has the reference in its
    constant part), and ``h`` is a scalar offset.
    """

    g: np.ndarray
    f: np.ndarray
    h: float
    strict: bool = False

    def __post_init__(self):
        g = np.asarray(self.g, dtype=float).reshape(-1)
        f = np.asarray(self.f, dtype=float).reshape(-1)
        object.__setattr__(self, "g", g)
        object.__setattr__(self, "f", f)
        object.__setattr__(self, "h", float(self.h))

    def holds(self, y: np.ndarray, r: np.ndarray) -> bool:
        """Evaluate the guard at ``(y, r)``."""
        value = float(self.g @ y + self.f @ r + self.h)
        return value > 0 if self.strict else value >= 0


@dataclass(frozen=True)
class SwitchedPIController:
    """A finite family of PI gain pairs with guard-based mode selection.

    ``guards[i]`` lists the conditions (all must hold) activating mode
    ``i``. Guards should partition the output space for every reference;
    :meth:`mode_of` returns the first mode whose guards all hold.
    """

    gains: tuple
    guards: tuple

    def __init__(
        self,
        gains: Sequence[PIGains],
        guards: Sequence[Sequence[OutputGuard]],
    ):
        gains = tuple(gains)
        guards = tuple(tuple(gs) for gs in guards)
        if not gains:
            raise ValueError("need at least one mode")
        if len(gains) != len(guards):
            raise ValueError("one guard list per mode required")
        shapes = {(g.kp.shape) for g in gains}
        if len(shapes) != 1:
            raise ValueError("all modes must share the gain shape")
        object.__setattr__(self, "gains", gains)
        object.__setattr__(self, "guards", guards)

    @property
    def n_modes(self) -> int:
        """Number of operating modes."""
        return len(self.gains)

    @property
    def n_inputs(self) -> int:
        """Number of actuation inputs ``r``."""
        return self.gains[0].n_inputs

    @property
    def n_outputs(self) -> int:
        """Number of measured outputs ``p``."""
        return self.gains[0].n_outputs

    def mode_of(self, y: np.ndarray, r: np.ndarray) -> int:
        """Index of the first mode whose guards all hold at ``(y, r)``."""
        y = np.asarray(y, dtype=float).reshape(-1)
        r = np.asarray(r, dtype=float).reshape(-1)
        for mode, conditions in enumerate(self.guards):
            if all(c.holds(y, r) for c in conditions):
                return mode
        raise ValueError(f"no mode active at y={y}, r={r}: guards do not cover")
