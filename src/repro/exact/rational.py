"""Exact rational scalar utilities.

Everything in :mod:`repro.exact` computes over :class:`fractions.Fraction`
so that validation verdicts are *proofs*, not floating-point estimates.
This module holds the scalar-level helpers: conversions from ambient
numeric types (including binary floats, converted exactly) and the
significant-figure rounding used by the paper's validation pipeline
(candidates synthesized numerically are rounded at the 10th -- and, for
the robustness study, the 6th and 4th -- significant figure before the
symbolic checks run).
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Integral, Rational
from typing import Union

Number = Union[int, float, str, Fraction]

__all__ = [
    "Number",
    "to_fraction",
    "decimal_exponent",
    "round_sigfigs",
    "round_to_int",
    "fraction_to_float",
]


def to_fraction(value: Number) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Binary floats are converted *exactly* (``Fraction(0.1)`` is the true
    binary value of ``0.1``, not ``1/10``); pass a string such as
    ``"0.1"`` to get the decimal reading. NumPy scalar types are accepted
    through their ``item()`` coercion.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, Integral):
        return Fraction(int(value))
    if isinstance(value, Rational):
        return Fraction(value.numerator, value.denominator)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value)
    item = getattr(value, "item", None)
    if item is not None:
        return to_fraction(item())
    raise TypeError(f"cannot convert {type(value).__name__} to Fraction")


def _ndigits(n: int) -> int:
    """Number of decimal digits of a positive integer."""
    return len(str(n))


def decimal_exponent(q: Fraction) -> int:
    """Return ``e`` such that ``10**e <= |q| < 10**(e+1)``.

    Exact integer computation (no logarithms); ``q`` must be nonzero.
    """
    if q == 0:
        raise ValueError("decimal_exponent of zero is undefined")
    q = abs(q)
    e = _ndigits(q.numerator) - _ndigits(q.denominator)
    # The digit-count estimate is off by at most one; fix up exactly.
    while _pow10(e) > q:
        e -= 1
    while _pow10(e + 1) <= q:
        e += 1
    return e


def _pow10(e: int) -> Fraction:
    if e >= 0:
        return Fraction(10**e)
    return Fraction(1, 10**-e)


def round_sigfigs(q: Fraction, sigfigs: int) -> Fraction:
    """Round ``q`` to ``sigfigs`` significant decimal figures, exactly.

    This mirrors the paper's Section VI-B: numerically synthesized
    Lyapunov matrices are rounded at the 10th (and, to probe robustness,
    6th and 4th) significant figure before exact validation. Rounding is
    round-half-to-even, matching IEEE/Python semantics.
    """
    if sigfigs < 1:
        raise ValueError("sigfigs must be >= 1")
    if q == 0:
        return Fraction(0)
    e = decimal_exponent(q)
    scale = _pow10(sigfigs - 1 - e)
    scaled = q * scale
    # Fraction has exact round-half-even through round().
    return Fraction(round(scaled)) / scale


def round_to_int(q: Number) -> int:
    """Round to the nearest integer (half-to-even), exactly."""
    return round(to_fraction(q))


def fraction_to_float(q: Fraction) -> float:
    """Nearest binary double to ``q`` (the only lossy direction)."""
    return q.numerator / q.denominator
