"""Exact characteristic polynomials and Routh--Hurwitz stability.

The characteristic polynomial is computed with the Faddeev--LeVerrier
recurrence (exact over the rationals), and Hurwitz stability of a matrix
is decided with the Routh array, including the classic epsilon-free
handling of zero first-column entries: a zero anywhere in the first
column of the Routh array already refutes *strict* Hurwitz stability,
which is the only question this library asks.

Both :func:`charpoly` and :func:`routh_table` dispatch over the kernel
layer (:mod:`repro.exact.kernels`): the ``"int"`` path clears
denominators once and runs the identical recurrences over plain
integers — Faddeev--LeVerrier divisions by ``k`` are exact for integer
matrices, and the Routh recurrence is tracked fraction-free with one
per-row scale, dividing back to exact rationals only when emitting the
table. ``"fraction"`` is the historical oracle; values are identical.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from . import kernels
from .matrix import RationalMatrix
from .rational import Number, to_fraction

__all__ = [
    "charpoly",
    "poly_eval",
    "routh_table",
    "is_hurwitz_polynomial",
    "is_hurwitz_matrix",
]


def charpoly(matrix: RationalMatrix, backend: str = "auto") -> list[Fraction]:
    """Coefficients of ``det(sI - M)``, highest degree first (monic).

    Uses Faddeev--LeVerrier: ``c_0 = 1``, ``M_1 = M``,
    ``c_k = -tr(M_k)/k``, ``M_{k+1} = M (M_k + c_k I)``.

    The integer kernel computes the charpoly of the cleared matrix
    ``N = den * M`` (all intermediates integral, all divisions exact)
    and rescales: ``det(sI - M)`` has coefficient ``c_k / den^k`` at
    degree ``n - k``.
    """
    if not matrix.is_square():
        raise ValueError("charpoly of a non-square matrix")
    mode = kernels.resolve_backend(backend, matrix.rows, op="charpoly")
    if mode != "fraction":
        rows, den = kernels.normalized(matrix)
        if mode == "gmpy2":
            ints = kernels.gmpy2_charpoly(rows)
        else:
            ints = kernels.int_charpoly(rows)
        scale = 1
        coeffs = []
        for c in ints:
            coeffs.append(Fraction(c, scale))
            scale *= den
        return coeffs
    n = matrix.rows
    coeffs = [Fraction(1)]
    mk = matrix
    identity = RationalMatrix.identity(n)
    for k in range(1, n + 1):
        ck = -mk.trace() / k
        coeffs.append(ck)
        if k < n:
            mk = matrix @ (mk + identity.scale(ck))
    return coeffs


def poly_eval(coeffs: Sequence[Number], x: Number) -> Fraction:
    """Horner evaluation of a polynomial given highest-degree-first coefficients."""
    x = to_fraction(x)
    acc = Fraction(0)
    for c in coeffs:
        acc = acc * x + to_fraction(c)
    return acc


def routh_table(
    coeffs: Sequence[Number], backend: str = "auto"
) -> list[list[Fraction]]:
    """Build the Routh array for a polynomial (highest degree first).

    Raises :class:`ZeroDivisionError`-free: when a first-column zero
    appears mid-table the construction stops early and the partial table
    is returned — callers interpret a zero first-column entry as
    "not strictly Hurwitz", which is sound (strict Hurwitz requires all
    first-column entries nonzero and of equal sign).

    The integer kernel clears the coefficient denominators once and
    runs the recurrence fraction-free — each working row is the true
    row times a tracked scalar (``new_int_j = B_0 A_{j+1} - A_0
    B_{j+1}`` with scale ``s_new = s_above * B_0``) — then divides back
    to exact Fractions only when emitting the table.
    """
    c = [to_fraction(v) for v in coeffs]
    if not c or c[0] == 0:
        raise ValueError("leading coefficient must be nonzero")
    degree = len(c) - 1
    if degree == 0:
        return [[c[0]]]
    mode = kernels.resolve_backend(backend, len(c), op="routh")
    if mode != "fraction":
        return _int_routh_table(c)
    row0 = c[0::2]
    row1 = c[1::2]
    width = len(row0)
    row1 += [Fraction(0)] * (width - len(row1))
    table = [row0, row1]
    for _ in range(degree - 1):
        above = table[-2]
        pivot_row = table[-1]
        pivot = pivot_row[0]
        if pivot == 0:
            break
        new_row = []
        for j in range(width - 1):
            a = above[j + 1] if j + 1 < len(above) else Fraction(0)
            b = pivot_row[j + 1] if j + 1 < len(pivot_row) else Fraction(0)
            new_row.append((pivot * a - above[0] * b) / pivot)
        new_row.append(Fraction(0))
        table.append(new_row)
    return table


def _int_routh_table(c: list[Fraction]) -> list[list[Fraction]]:
    """Fraction-free Routh construction (identical values to the oracle).

    Works on integer rows with one scalar per row: ``int_row == s *
    true_row`` with ``s`` a nonzero integer (possibly negative — the
    final division restores signs exactly).
    """
    degree = len(c) - 1
    den = 1
    for x in c:
        d = x.denominator
        den = den * (d // math.gcd(den, d))
    ints = [x.numerator * (den // x.denominator) for x in c]
    row0 = ints[0::2]
    row1 = ints[1::2]
    width = len(row0)
    row1 += [0] * (width - len(row1))
    int_rows = [row0, row1]
    scales = [den, den]
    for _ in range(degree - 1):
        above = int_rows[-2]
        pivot_row = int_rows[-1]
        pivot = pivot_row[0]
        if pivot == 0:
            break
        new_row = []
        for j in range(width - 1):
            a = above[j + 1] if j + 1 < len(above) else 0
            b = pivot_row[j + 1] if j + 1 < len(pivot_row) else 0
            new_row.append(pivot * a - above[0] * b)
        new_row.append(0)
        new_scale = scales[-2] * pivot
        # Curb entry growth: strip the content of the row (the scale
        # absorbs it; gcd is cheap on machine-sized ints, and the final
        # division is exact either way).
        g = 0
        for value in new_row:
            g = math.gcd(g, value)
        if g > 1 and new_scale % g == 0:
            new_row = [value // g for value in new_row]
            new_scale //= g
        int_rows.append(new_row)
        scales.append(new_scale)
    return [
        [Fraction(value, scale) for value in row]
        for row, scale in zip(int_rows, scales)
    ]


def is_hurwitz_polynomial(
    coeffs: Sequence[Number], backend: str = "auto"
) -> bool:
    """Decide whether all roots have strictly negative real part.

    Normalizes the sign of the leading coefficient, then requires every
    first-column Routh entry to be strictly positive. Exact, hence a
    proof for rational coefficients.
    """
    c = [to_fraction(v) for v in coeffs]
    if not c:
        raise ValueError("empty polynomial")
    if c[0] == 0:
        raise ValueError("leading coefficient must be nonzero")
    if c[0] < 0:
        c = [-v for v in c]
    # A strictly Hurwitz polynomial has all coefficients positive.
    if any(v <= 0 for v in c):
        return False
    table = routh_table(c, backend=backend)
    if len(table) < len(c):  # construction aborted on a zero pivot
        return False
    return all(row[0] > 0 for row in table)


def is_hurwitz_matrix(matrix: RationalMatrix, backend: str = "auto") -> bool:
    """Exact proof that every eigenvalue of ``matrix`` has negative real part."""
    return is_hurwitz_polynomial(
        charpoly(matrix, backend=backend), backend=backend
    )
