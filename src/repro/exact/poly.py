"""Exact characteristic polynomials and Routh--Hurwitz stability.

The characteristic polynomial is computed with the Faddeev--LeVerrier
recurrence (exact over the rationals), and Hurwitz stability of a matrix
is decided with the Routh array, including the classic epsilon-free
handling of zero first-column entries: a zero anywhere in the first
column of the Routh array already refutes *strict* Hurwitz stability,
which is the only question this library asks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .matrix import RationalMatrix
from .rational import Number, to_fraction

__all__ = [
    "charpoly",
    "poly_eval",
    "routh_table",
    "is_hurwitz_polynomial",
    "is_hurwitz_matrix",
]


def charpoly(matrix: RationalMatrix) -> list[Fraction]:
    """Coefficients of ``det(sI - M)``, highest degree first (monic).

    Uses Faddeev--LeVerrier: ``c_0 = 1``, ``M_1 = M``,
    ``c_k = -tr(M_k)/k``, ``M_{k+1} = M (M_k + c_k I)``.
    """
    if not matrix.is_square():
        raise ValueError("charpoly of a non-square matrix")
    n = matrix.rows
    coeffs = [Fraction(1)]
    mk = matrix
    identity = RationalMatrix.identity(n)
    for k in range(1, n + 1):
        ck = -mk.trace() / k
        coeffs.append(ck)
        if k < n:
            mk = matrix @ (mk + identity.scale(ck))
    return coeffs


def poly_eval(coeffs: Sequence[Number], x: Number) -> Fraction:
    """Horner evaluation of a polynomial given highest-degree-first coefficients."""
    x = to_fraction(x)
    acc = Fraction(0)
    for c in coeffs:
        acc = acc * x + to_fraction(c)
    return acc


def routh_table(coeffs: Sequence[Number]) -> list[list[Fraction]]:
    """Build the Routh array for a polynomial (highest degree first).

    Raises :class:`ZeroDivisionError`-free: when a first-column zero
    appears mid-table the construction stops early and the partial table
    is returned — callers interpret a zero first-column entry as
    "not strictly Hurwitz", which is sound (strict Hurwitz requires all
    first-column entries nonzero and of equal sign).
    """
    c = [to_fraction(v) for v in coeffs]
    if not c or c[0] == 0:
        raise ValueError("leading coefficient must be nonzero")
    degree = len(c) - 1
    if degree == 0:
        return [[c[0]]]
    row0 = c[0::2]
    row1 = c[1::2]
    width = len(row0)
    row1 += [Fraction(0)] * (width - len(row1))
    table = [row0, row1]
    for _ in range(degree - 1):
        above = table[-2]
        pivot_row = table[-1]
        pivot = pivot_row[0]
        if pivot == 0:
            break
        new_row = []
        for j in range(width - 1):
            a = above[j + 1] if j + 1 < len(above) else Fraction(0)
            b = pivot_row[j + 1] if j + 1 < len(pivot_row) else Fraction(0)
            new_row.append((pivot * a - above[0] * b) / pivot)
        new_row.append(Fraction(0))
        table.append(new_row)
    return table


def is_hurwitz_polynomial(coeffs: Sequence[Number]) -> bool:
    """Decide whether all roots have strictly negative real part.

    Normalizes the sign of the leading coefficient, then requires every
    first-column Routh entry to be strictly positive. Exact, hence a
    proof for rational coefficients.
    """
    c = [to_fraction(v) for v in coeffs]
    if not c:
        raise ValueError("empty polynomial")
    if c[0] == 0:
        raise ValueError("leading coefficient must be nonzero")
    if c[0] < 0:
        c = [-v for v in c]
    # A strictly Hurwitz polynomial has all coefficients positive.
    if any(v <= 0 for v in c):
        return False
    table = routh_table(c)
    if len(table) < len(c):  # construction aborted on a zero pivot
        return False
    return all(row[0] > 0 for row in table)


def is_hurwitz_matrix(matrix: RationalMatrix) -> bool:
    """Exact proof that every eigenvalue of ``matrix`` has negative real part."""
    return is_hurwitz_polynomial(charpoly(matrix))
