"""Kharitonov's theorem: exact robust stability of interval polynomials.

A whole family of characteristic polynomials with coefficients in
intervals ``[lo_i, hi_i]`` is Hurwitz iff the *four* Kharitonov corner
polynomials are. Combined with the exact Routh test from
:mod:`repro.exact.poly`, this gives a *proof* of robust stability under
coefficient uncertainty — the exact-arithmetic counterpart of the
fault-injection margins in :mod:`repro.engine.faults` (which perturb
matrix entries rather than characteristic coefficients).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .poly import is_hurwitz_polynomial
from .rational import Number, to_fraction

__all__ = [
    "kharitonov_polynomials",
    "interval_polynomial_is_hurwitz",
    "stability_radius_coefficients",
]


def _normalize(
    lower: Sequence[Number], upper: Sequence[Number]
) -> tuple[list[Fraction], list[Fraction]]:
    lo = [to_fraction(x) for x in lower]
    hi = [to_fraction(x) for x in upper]
    if len(lo) != len(hi):
        raise ValueError("coefficient bound lists must have equal length")
    if not lo:
        raise ValueError("empty polynomial")
    if any(a > b for a, b in zip(lo, hi)):
        raise ValueError("lower bound exceeds upper bound")
    return lo, hi


def kharitonov_polynomials(
    lower: Sequence[Number], upper: Sequence[Number]
) -> list[list[Fraction]]:
    """The four Kharitonov corner polynomials.

    Coefficients are given highest degree first (matching
    :func:`repro.exact.poly.is_hurwitz_polynomial`); the classical
    corner patterns are defined lowest-degree-first, so the selection is
    applied to the reversed lists and flipped back.
    """
    lo, hi = _normalize(lower, upper)
    lo_asc = lo[::-1]
    hi_asc = hi[::-1]
    # The two classical square-wave sign patterns and their swaps:
    # K1 = lo lo hi hi ..., K2 = hi hi lo lo ...,
    # K3 = lo hi hi lo ..., K4 = hi lo lo hi ...
    patterns = [
        ("llhh", lambda k: lo_asc[k] if k % 4 in (0, 1) else hi_asc[k]),
        ("hhll", lambda k: hi_asc[k] if k % 4 in (0, 1) else lo_asc[k]),
        ("lhhl", lambda k: lo_asc[k] if k % 4 in (0, 3) else hi_asc[k]),
        ("hllh", lambda k: hi_asc[k] if k % 4 in (0, 3) else lo_asc[k]),
    ]
    corners = []
    for _name, select in patterns:
        ascending = [select(k) for k in range(len(lo_asc))]
        corners.append(ascending[::-1])
    return corners


def interval_polynomial_is_hurwitz(
    lower: Sequence[Number], upper: Sequence[Number]
) -> bool:
    """Kharitonov's criterion, decided exactly.

    Requires a sign-definite leading coefficient interval (the family
    must not contain degree drops); the standard theorem also assumes
    all-positive coefficient intervals for a Hurwitz family, which the
    Routh test enforces implicitly.
    """
    lo, hi = _normalize(lower, upper)
    if lo[0] <= 0 < hi[0] or (lo[0] < 0 <= hi[0]):
        return False  # leading coefficient can vanish: degree drop
    return all(
        is_hurwitz_polynomial(corner)
        for corner in kharitonov_polynomials(lo, hi)
    )


def stability_radius_coefficients(
    coefficients: Sequence[Number],
    tolerance: Fraction = Fraction(1, 1000),
    max_radius: Fraction = Fraction(10),
) -> Fraction:
    """Largest symmetric relative coefficient perturbation kept Hurwitz.

    Finds (by exact bisection, up to ``tolerance``) the largest ``rho``
    such that every polynomial with coefficients in
    ``[(1-rho) c_i, (1+rho) c_i]`` is Hurwitz. Returns 0 when the
    nominal polynomial itself is not Hurwitz.
    """
    c = [to_fraction(x) for x in coefficients]
    if not is_hurwitz_polynomial(c):
        return Fraction(0)

    def robust_at(rho: Fraction) -> bool:
        lower = [x - abs(x) * rho for x in c]
        upper = [x + abs(x) * rho for x in c]
        return interval_polynomial_is_hurwitz(lower, upper)

    low = Fraction(0)
    high = max_radius
    if robust_at(high):
        return high
    while high - low > tolerance:
        mid = (low + high) / 2
        if robust_at(mid):
            low = mid
        else:
            high = mid
    return low
