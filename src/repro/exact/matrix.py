"""Dense matrices over exact rational numbers.

:class:`RationalMatrix` is a small, dependency-free dense matrix type
over :class:`fractions.Fraction`. It exists because every *verdict* in
this library (positive definiteness, Hurwitz stability, robust-region
optimality) must be an exact proof; numpy arrays feed the numerical
synthesis side, and are converted here (exactly) for validation.

The class is immutable by convention: operations return new matrices.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Iterator, Sequence

from .rational import Number, fraction_to_float, round_sigfigs, to_fraction

__all__ = ["RationalMatrix"]


class RationalMatrix:
    """A dense ``rows x cols`` matrix of :class:`Fraction` entries."""

    __slots__ = ("_data", "rows", "cols")

    def __init__(self, data: Sequence[Sequence[Number]]):
        rows = [[to_fraction(x) for x in row] for row in data]
        if not rows or not rows[0]:
            raise ValueError("matrix must have at least one row and column")
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise ValueError("ragged rows in matrix literal")
        self._data = rows
        self.rows = len(rows)
        self.cols = width

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[Number]]) -> "RationalMatrix":
        """Build from a sequence of rows (alias of the constructor)."""
        return cls(rows)

    @classmethod
    def from_numpy(cls, array) -> "RationalMatrix":
        """Exact conversion of a 1-D or 2-D numpy array (floats kept exactly)."""
        if getattr(array, "ndim", None) == 1:
            return cls([[x] for x in array.tolist()])
        return cls([list(row) for row in array.tolist()])

    @classmethod
    def identity(cls, n: int) -> "RationalMatrix":
        """The n x n identity matrix."""
        return cls([[Fraction(int(i == j)) for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "RationalMatrix":
        """An all-zero matrix of the given shape."""
        return cls([[Fraction(0)] * cols for _ in range(rows)])

    @classmethod
    def column(cls, entries: Sequence[Number]) -> "RationalMatrix":
        """A single-column matrix from a vector."""
        return cls([[x] for x in entries])

    @classmethod
    def diagonal(cls, entries: Sequence[Number]) -> "RationalMatrix":
        """A diagonal matrix with the given entries."""
        n = len(entries)
        out = [[Fraction(0)] * n for _ in range(n)]
        for i, x in enumerate(entries):
            out[i][i] = to_fraction(x)
        return cls(out)

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> Fraction:
        i, j = key
        return self._data[i][j]

    def row(self, i: int) -> list[Fraction]:
        """Row ``i`` as a list of Fractions (a copy)."""
        return list(self._data[i])

    def col(self, j: int) -> list[Fraction]:
        """Column ``j`` as a list of Fractions."""
        return [self._data[i][j] for i in range(self.rows)]

    def iter_entries(self) -> Iterator[Fraction]:
        """Iterate over all entries, row-major."""
        for row in self._data:
            yield from row

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, cols)``."""
        return (self.rows, self.cols)

    def tolist(self) -> list[list[Fraction]]:
        """Nested lists of Fractions (copies)."""
        return [list(row) for row in self._data]

    def to_float(self) -> list[list[float]]:
        """Nested lists of nearest binary doubles (lossy)."""
        return [[fraction_to_float(x) for x in row] for row in self._data]

    def to_numpy(self):
        """Dense float ndarray (lossy)."""
        import numpy as np

        return np.array(self.to_float(), dtype=float)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def transpose(self) -> "RationalMatrix":
        """The transposed matrix."""
        return RationalMatrix(
            [[self._data[i][j] for i in range(self.rows)] for j in range(self.cols)]
        )

    @property
    def T(self) -> "RationalMatrix":
        """Transpose (property shorthand)."""
        return self.transpose()

    def submatrix(self, rows: Iterable[int], cols: Iterable[int]) -> "RationalMatrix":
        """The submatrix with the given row/column indices."""
        rows = list(rows)
        cols = list(cols)
        return RationalMatrix([[self._data[i][j] for j in cols] for i in rows])

    def permute(self, perm: Sequence[int]) -> "RationalMatrix":
        """Symmetric row/column permutation ``M[perm][:, perm]``.

        For a square matrix this is the exact similarity (and congruence)
        transform by the permutation matrix of ``perm`` — the verdict-
        preserving reshaping the metamorphic test layer exercises.
        """
        perm = list(perm)
        if sorted(perm) != list(range(self.rows)) or self.rows != self.cols:
            raise ValueError("perm must permute the rows of a square matrix")
        return self.submatrix(perm, perm)

    def leading_principal(self, k: int) -> "RationalMatrix":
        """Top-left ``k x k`` block (the ``k``-th leading principal submatrix)."""
        if not 1 <= k <= min(self.rows, self.cols):
            raise ValueError(f"k={k} out of range")
        idx = range(k)
        return self.submatrix(idx, idx)

    def hstack(self, other: "RationalMatrix") -> "RationalMatrix":
        """Concatenate columns (``[self | other]``)."""
        if self.rows != other.rows:
            raise ValueError("hstack: row mismatch")
        return RationalMatrix(
            [self._data[i] + other._data[i] for i in range(self.rows)]
        )

    def vstack(self, other: "RationalMatrix") -> "RationalMatrix":
        """Concatenate rows (``[self; other]``)."""
        if self.cols != other.cols:
            raise ValueError("vstack: column mismatch")
        return RationalMatrix(self._data + other._data)

    def map(self, fn: Callable[[Fraction], Number]) -> "RationalMatrix":
        """Apply ``fn`` entrywise, returning a new matrix."""
        return RationalMatrix([[fn(x) for x in row] for row in self._data])

    def round_sigfigs(self, sigfigs: int) -> "RationalMatrix":
        """Entrywise significant-figure rounding (the validation pipeline's knob)."""
        return self.map(lambda x: round_sigfigs(x, sigfigs) if x else Fraction(0))

    def symmetrize(self) -> "RationalMatrix":
        """Return ``(M + M^T) / 2``."""
        if self.rows != self.cols:
            raise ValueError("symmetrize requires a square matrix")
        h = Fraction(1, 2)
        return RationalMatrix(
            [
                [(self._data[i][j] + self._data[j][i]) * h for j in range(self.cols)]
                for i in range(self.rows)
            ]
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def is_square(self) -> bool:
        """True when rows == cols."""
        return self.rows == self.cols

    def is_symmetric(self) -> bool:
        """Exact symmetry test (square and M[i,j] == M[j,i])."""
        if not self.is_square():
            return False
        return all(
            self._data[i][j] == self._data[j][i]
            for i in range(self.rows)
            for j in range(i + 1, self.cols)
        )

    def is_zero(self) -> bool:
        """True when every entry is exactly zero."""
        return all(x == 0 for x in self.iter_entries())

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check_same_shape(self, other: "RationalMatrix") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    def __add__(self, other: "RationalMatrix") -> "RationalMatrix":
        self._check_same_shape(other)
        return RationalMatrix(
            [
                [a + b for a, b in zip(r1, r2)]
                for r1, r2 in zip(self._data, other._data)
            ]
        )

    def __sub__(self, other: "RationalMatrix") -> "RationalMatrix":
        self._check_same_shape(other)
        return RationalMatrix(
            [
                [a - b for a, b in zip(r1, r2)]
                for r1, r2 in zip(self._data, other._data)
            ]
        )

    def __neg__(self) -> "RationalMatrix":
        return self.map(lambda x: -x)

    def scale(self, k: Number) -> "RationalMatrix":
        """Multiply every entry by the scalar ``k``."""
        k = to_fraction(k)
        return self.map(lambda x: x * k)

    def __mul__(self, k: Number) -> "RationalMatrix":
        return self.scale(k)

    def __rmul__(self, k: Number) -> "RationalMatrix":
        return self.scale(k)

    def __matmul__(self, other: "RationalMatrix") -> "RationalMatrix":
        if self.cols != other.rows:
            raise ValueError(f"matmul mismatch: {self.shape} @ {other.shape}")
        other_t = other.transpose()._data
        return RationalMatrix(
            [
                [sum(a * b for a, b in zip(row, col)) for col in other_t]
                for row in self._data
            ]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RationalMatrix):
            return NotImplemented
        return self.shape == other.shape and self._data == other._data

    def __hash__(self) -> int:
        return hash(tuple(tuple(row) for row in self._data))

    def trace(self) -> Fraction:
        """Sum of diagonal entries (exact)."""
        if not self.is_square():
            raise ValueError("trace of a non-square matrix")
        return sum((self._data[i][i] for i in range(self.rows)), Fraction(0))

    def quadratic_form(self, vector: Sequence[Number]) -> Fraction:
        """Evaluate ``v^T M v`` exactly."""
        v = [to_fraction(x) for x in vector]
        if len(v) != self.rows or not self.is_square():
            raise ValueError("quadratic_form dimension mismatch")
        total = Fraction(0)
        for i, row in enumerate(self._data):
            total += v[i] * sum(a * b for a, b in zip(row, v))
        return total

    def dot(self, vector: Sequence[Number]) -> list[Fraction]:
        """Matrix-vector product as a plain list."""
        v = [to_fraction(x) for x in vector]
        if len(v) != self.cols:
            raise ValueError("dot dimension mismatch")
        return [sum(a * b for a, b in zip(row, v)) for row in self._data]

    def max_abs(self) -> Fraction:
        """Largest absolute entry (exact)."""
        return max(abs(x) for x in self.iter_entries())

    def __repr__(self) -> str:
        if self.rows * self.cols <= 36:
            body = "; ".join(
                " ".join(str(x) for x in row) for row in self._data
            )
            return f"RationalMatrix({self.rows}x{self.cols}: {body})"
        return f"RationalMatrix({self.rows}x{self.cols})"
