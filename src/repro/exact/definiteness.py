"""Exact definiteness certificates for symmetric rational matrices.

Three independent decision procedures are provided, mirroring the
validator families compared in the paper's Figure 3:

* :func:`sylvester_positive_definite` — Sylvester's criterion: positivity
  of every leading principal minor, with all minors produced by a
  *single* fraction-free Bareiss pass (the paper's fastest validator;
  historically this implementation recomputed each minor from scratch —
  Θ(n⁴) — and lost to the elimination checks below).
* :func:`gauss_positive_definite` — SymPy-style check: Gaussian
  elimination without row renormalization, then positivity of the
  diagonal pivots.
* :func:`ldl_positive_definite` — LDL^T pivots (an ablation variant).

Semidefinite variants support the "+ det" encoding: ``M ≻ 0`` iff
``M ⪰ 0 ∧ det(M) ≠ 0``.

Every check accepts ``backend="auto"|"fraction"|"int"|"modular"``
(:mod:`repro.exact.kernels`): the fast paths clear denominators once
and decide the verdict from *integer* signs directly — the denominator
scale is positive, so no rational is ever reconstructed on the verdict
path. ``"fraction"`` preserves the historical entry-by-entry oracle.
Verdicts are identical across backends; all functions require symmetric
input and raise otherwise.
"""

from __future__ import annotations

from fractions import Fraction

from . import kernels
from .factor import gauss_pivots, iter_leading_principal_minors, ldl
from .matrix import RationalMatrix

__all__ = [
    "sylvester_positive_definite",
    "gauss_positive_definite",
    "ldl_positive_definite",
    "is_positive_semidefinite",
    "is_negative_definite",
    "is_negative_semidefinite",
    "definiteness_counterexample",
]


def _require_symmetric(matrix: RationalMatrix) -> None:
    if not matrix.is_symmetric():
        raise ValueError("definiteness checks require a symmetric matrix")


def _int_minor_stream(matrix: RationalMatrix, mode: str):
    """Integer leading-minor stream for a kernel-backed verdict."""
    rows, _den = kernels.normalized(matrix)
    if mode == "modular":
        return iter(kernels.modular_leading_principal_minors(rows))
    if mode == "gmpy2":
        return kernels.iter_gmpy2_leading_principal_minors(rows)
    return kernels.iter_int_leading_principal_minors(rows)


def sylvester_positive_definite(
    matrix: RationalMatrix, backend: str = "auto"
) -> bool:
    """Sylvester's criterion with exact Bareiss minors.

    ``M ≻ 0`` iff all ``n`` leading principal minors are strictly
    positive ([Horn & Johnson, Thm. 7.2.5]). All minors come from one
    fraction-free elimination pass (Bareiss pivots *are* ratios of
    consecutive minors), streamed smallest first so an early
    negative/zero minor short-circuits the elimination itself. With an
    integer kernel the verdict is read off integer signs — the cleared
    denominator is positive, so no rational is reconstructed at all.
    """
    _require_symmetric(matrix)
    mode = kernels.resolve_backend(backend, matrix.rows, op="minors")
    if mode == "fraction":
        minors = iter_leading_principal_minors(matrix, backend="fraction")
    else:
        minors = _int_minor_stream(matrix, mode)
    for minor in minors:
        if minor <= 0:
            return False
    return True


def gauss_positive_definite(
    matrix: RationalMatrix, backend: str = "auto"
) -> bool:
    """SymPy-flavoured check: elimination pivots all strictly positive.

    For symmetric ``M``, elimination without row exchange either hits a
    zero pivot (then ``M`` is not definite) or produces pivots whose
    signs match the ``D`` of the LDL^T factorization. The kernel paths
    decide the same question from the integer minor stream (pivot ``k``
    is the ratio of consecutive minors, so "all pivots positive" and
    "all minors positive" are the same verdict, and a zero minor is
    exactly the zero-pivot bail-out).
    """
    _require_symmetric(matrix)
    mode = kernels.resolve_backend(backend, matrix.rows, op="minors")
    if mode == "fraction":
        pivots = gauss_pivots(matrix)
        if pivots is None:
            return False
        return all(p > 0 for p in pivots)
    for minor in _int_minor_stream(matrix, mode):
        if minor <= 0:
            return False
    return True


def ldl_positive_definite(
    matrix: RationalMatrix, backend: str = "auto"
) -> bool:
    """LDL^T-based check (ablation variant of the Gauss check).

    The kernel paths run the fraction-free LDL^T
    (:func:`repro.exact.kernels.int_ldlt`) and judge the integer pivot
    signs — rational reconstruction of ``L``/``D`` happens only when a
    caller asks for the factors, never for the verdict.
    """
    _require_symmetric(matrix)
    mode = kernels.resolve_backend(backend, matrix.rows, op="ldl")
    if mode != "fraction":
        rows, _den = kernels.normalized(matrix)
        if mode == "gmpy2":
            data = kernels.gmpy2_ldlt(rows)
        else:
            data = kernels.int_ldlt(rows)
        if data is None:
            return False
        _columns, minors = data
        return all(m > 0 for m in minors)
    factorization = ldl(matrix, backend="fraction")
    if factorization is None:
        return False
    _lower, diag = factorization
    return all(d > 0 for d in diag)


def is_positive_semidefinite(
    matrix: RationalMatrix, backend: str = "auto"
) -> bool:
    """Exact PSD test: every *principal* minor is nonnegative.

    Implemented as the standard perturbation argument instead of the
    exponential all-principal-minors test: ``M ⪰ 0`` iff
    ``M + t I ≻ 0`` for all ``t > 0``; with exact arithmetic it is
    enough to check that the characteristic polynomial of ``-M`` has no
    positive root, which we decide via the sign structure of
    ``det(M + t I)`` — equivalently, all coefficients of
    ``det(tI + M)`` (a polynomial in ``t`` with rational coefficients)
    are nonnegative iff no eigenvalue of ``M`` is negative *given M is
    symmetric* (all eigenvalues real, so the polynomial has only real
    roots and Descartes' rule is exact).
    """
    _require_symmetric(matrix)
    from .poly import charpoly

    # charpoly(-M) = det(sI + M); symmetric M has only real eigenvalues,
    # which appear as roots s = -lambda. M >= 0 iff no root is positive,
    # and for a polynomial with all-real roots that holds iff the
    # coefficients (monic, highest first) have no sign change.
    coeffs = charpoly(matrix.scale(-1), backend=backend)
    return all(c >= 0 for c in coeffs)


def is_negative_definite(
    matrix: RationalMatrix, backend: str = "auto"
) -> bool:
    return sylvester_positive_definite(matrix.scale(-1), backend=backend)


def is_negative_semidefinite(
    matrix: RationalMatrix, backend: str = "auto"
) -> bool:
    return is_positive_semidefinite(matrix.scale(-1), backend=backend)


def definiteness_counterexample(matrix: RationalMatrix) -> list[Fraction] | None:
    """A vector ``v`` with ``v^T M v <= 0`` when ``M`` is not PD, else ``None``.

    The witness is extracted from the failing stage of the LDL^T
    factorization; it turns every "invalid Lyapunov candidate" verdict
    into a concrete refutation the caller can evaluate.
    """
    _require_symmetric(matrix)
    n = matrix.rows
    a = [row[:] for row in matrix.tolist()]
    # Track the congruence transform: after k steps, current block equals
    # E_k ... E_1 M E_1^T ... E_k^T restricted to trailing coordinates.
    transform = [[Fraction(int(i == j)) for j in range(n)] for i in range(n)]
    for k in range(n):
        pivot = a[k][k]
        if pivot <= 0:
            # v = e_k pulled back through the accumulated transform:
            # v^T M v equals the current pivot (or 0 when pivot == 0).
            v = transform[k][:]
            return v
        for i in range(k + 1, n):
            factor = a[i][k] / pivot
            if factor != 0:
                for j in range(n):
                    transform[i][j] -= factor * transform[k][j]
            for j in range(k, n):
                a[i][j] -= factor * a[k][j]
        for i in range(k + 1, n):  # restore symmetry of trailing block
            for j in range(k + 1, n):
                a[j][i] = a[i][j]
    return None
