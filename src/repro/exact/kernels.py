"""Fast exact linear-algebra kernels: integers and multimodular CRT.

Every verdict in this library bottoms out in exact linear algebra, and
the historical implementation did all of it entry-by-entry over
:class:`fractions.Fraction` — paying a GCD on every operation, with
intermediate numerators exploding on the 18/21-state candidates. This
module is the fast path under :mod:`repro.exact.factor` /
:mod:`repro.exact.definiteness` / :mod:`repro.exact.poly`:

* :func:`clear_denominators` normalizes a :class:`RationalMatrix` once
  into a plain integer matrix plus a single denominator scale
  (``M == N / den`` entrywise), memoized per process in a small LRU
  keyed by the (immutable) matrix — see :func:`normalized`.
* **Integer Bareiss** kernels (:func:`int_bareiss_determinant`,
  :func:`iter_int_leading_principal_minors`, :func:`int_solve_columns`,
  :func:`int_rank`) run fraction-free elimination over machine/big
  Python ``int``s: every division in the Bareiss recurrence is exact,
  so there is no rational normalization anywhere in the loop.
* **Multimodular** kernels (:func:`modular_determinant`,
  :func:`modular_leading_principal_minors`) eliminate over ``Z/p`` and
  CRT-reconstruct the integer result, *certified* against the Hadamard
  bound: the prime product strictly exceeds twice the bound, so the
  symmetric-range lift (which also recovers the sign) is the exact
  value, not a heuristic. Two elimination regimes share that driver:
  large matrices vectorize one division-free Gauss pass across *all*
  31-bit primes at once as an int64 NumPy batch (products stay under
  2^62, so machine arithmetic is exact), everything else runs a scalar
  pass per 256-bit prime — in CPython the interpreter overhead per op
  dwarfs the bigint limb work, so fewer scalar passes over larger
  primes beat word-sized ones (measured ~2x over 62-bit primes).
* :func:`int_ldlt` is a fraction-free LDL^T: the elimination runs over
  integers and rationals are reconstructed only at verdict time
  (``L[i][k] = m_ik / minor_k`` and ``d_k = minor_k / (den *
  minor_{k-1})`` from recorded Bareiss intermediates).

All kernels return plain integers (scaled by powers of ``den``); the
public wrappers in :mod:`repro.exact.factor` convert back to
:class:`~fractions.Fraction` where the API promises rationals. Verdict
paths (:mod:`repro.exact.definiteness`) consume the integer streams
directly — the denominator is positive, so signs need no
reconstruction at all.

Backend names (shared by every dispatching wrapper)::

    "auto"      int for streamed minors, multimodular for large dets
    "fraction"  the historical Fraction path (differential oracle)
    "int"       fraction-free Bareiss over Python ints
    "gmpy2"     the same Bareiss recurrences over GMP ``mpz`` limbs
                (optional; resolves to "int" when gmpy2 is missing)
    "modular"   multimodular CRT under the Hadamard bound

The ``"gmpy2"`` backend reuses the *same* integer kernels — they are
duck-typed over any exact integer scalar — seeded with ``mpz`` entries,
and converts results back to plain ``int`` at the boundary, so its
outputs are bit-identical to ``"int"`` by construction (the fuzzer
still checks). GMP's subquadratic multiplication wins once Bareiss
intermediates reach thousands of bits, i.e. on the n=18/21 candidates.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from fractions import Fraction
from typing import Iterator, Sequence

from .matrix import RationalMatrix

try:  # only the batched modular kernels want NumPy; degrade to scalar
    import numpy as _np
except ImportError:  # pragma: no cover - NumPy is a hard dependency here
    _np = None

try:  # optional: GMP limbs for the bignum Bareiss hot path
    import gmpy2 as _gmpy2
except ImportError:
    _gmpy2 = None

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_FALLBACKS",
    "fallback_backend",
    "gmpy2_available",
    "resolve_backend",
    "clear_denominators",
    "normalized",
    "kernel_cache_info",
    "clear_kernel_cache",
    "hadamard_bound",
    "int_bareiss_determinant",
    "iter_int_leading_principal_minors",
    "int_rank",
    "int_solve_columns",
    "int_ldlt",
    "int_charpoly",
    "gmpy2_bareiss_determinant",
    "iter_gmpy2_leading_principal_minors",
    "gmpy2_rank",
    "gmpy2_solve_columns",
    "gmpy2_ldlt",
    "gmpy2_charpoly",
    "modular_determinant",
    "modular_leading_principal_minors",
    "kernel_primes",
]

KERNEL_BACKENDS = ("auto", "fraction", "int", "gmpy2", "modular")

#: Graceful-degradation order for kernel failures: an unexpected error
#: in the multimodular path falls back to the plain integer Bareiss,
#: which in turn falls back to the entry-by-entry Fraction oracle (the
#: slowest but most battle-tested implementation). ``fraction`` is the
#: end of the chain; ``gmpy2`` degrades sideways into ``int`` (same
#: recurrences, plain Python bignums). Consumers (the validators,
#: chiefly) record every hop so degraded verdicts stay distinguishable
#: from clean ones.
KERNEL_FALLBACKS = {"modular": "int", "gmpy2": "int", "int": "fraction"}


def fallback_backend(mode: str) -> str | None:
    """The next backend to try after ``mode`` fails (``None`` at the end
    of the ``modular -> int -> fraction`` chain)."""
    return KERNEL_FALLBACKS.get(mode)


def gmpy2_available() -> bool:
    """Is the optional gmpy2 package importable in this process?"""
    return _gmpy2 is not None

#: Below this dimension the plain integer Bareiss beats the CRT path
#: (prime reductions plus one elimination per prime), so "auto" routes
#: smaller determinants there; the crossover was measured on the
#: benchmark-family matrices (10-sigfig candidates against float-exact
#: closed-loop modes).
MODULAR_MIN_N = 18

#: Dimension from which the modular kernels vectorize the whole prime
#: batch with NumPy; below it one scalar pass per 256-bit prime wins.
_BATCH_MIN_N = 8


def resolve_backend(backend: str, n: int | None = None, op: str = "det") -> str:
    """Resolve ``"auto"`` to a concrete backend for the given operation.

    ``op`` is ``"det"`` (one number: multimodular wins at size) or
    ``"minors"``/anything streamed (integer Bareiss: it short-circuits,
    which a CRT reconstruction cannot).
    """
    if backend not in KERNEL_BACKENDS:
        raise KeyError(
            f"unknown kernel backend {backend!r}; known: {KERNEL_BACKENDS}"
        )
    if backend == "gmpy2" and _gmpy2 is None:
        # Optional dependency missing: degrade silently to the plain
        # integer kernels, which compute the identical results.
        return "int"
    if backend != "auto":
        return backend
    if op == "det" and n is not None and n >= MODULAR_MIN_N:
        return "modular"
    return "int"


# ----------------------------------------------------------------------
# Normalization: RationalMatrix -> integer rows + one denominator
# ----------------------------------------------------------------------

def clear_denominators(
    matrix: RationalMatrix,
) -> tuple[list[list[int]], int]:
    """``(rows, den)`` with ``matrix[i, j] == rows[i][j] / den`` exactly.

    ``den`` is the LCM of every entry denominator (so it is positive,
    and 1 for an integer matrix). The returned rows are fresh lists the
    caller may consume but must not mutate (they may be cached — copy
    before eliminating in place).
    """
    den = 1
    for x in matrix.iter_entries():
        d = x.denominator
        den = den * (d // math.gcd(den, d))
    rows = [
        [x.numerator * (den // x.denominator) for x in row]
        for row in matrix.tolist()
    ]
    return rows, den


#: Per-process normalization cache. Keyed by the matrix itself
#: (RationalMatrix is immutable-by-convention and hashable), so equal
#: matrices rebuilt in different tasks of one runner worker share a
#: single cleared form. Bounded LRU; stats via kernel_cache_info().
_NORMALIZED_CACHE: OrderedDict[RationalMatrix, tuple[list[list[int]], int]]
_NORMALIZED_CACHE = OrderedDict()
_CACHE_MAX = 128
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def normalized(matrix: RationalMatrix) -> tuple[list[list[int]], int]:
    """Memoized :func:`clear_denominators` (per process, LRU-bounded).

    Returns the cached ``(rows, den)``; treat ``rows`` as read-only and
    copy before in-place elimination.
    """
    cached = _NORMALIZED_CACHE.get(matrix)
    if cached is not None:
        _CACHE_STATS["hits"] += 1
        _NORMALIZED_CACHE.move_to_end(matrix)
        return cached
    _CACHE_STATS["misses"] += 1
    value = clear_denominators(matrix)
    _NORMALIZED_CACHE[matrix] = value
    if len(_NORMALIZED_CACHE) > _CACHE_MAX:
        _NORMALIZED_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
    return value


def kernel_cache_info() -> dict:
    """Hit/miss/eviction counters and current size of the kernel cache."""
    return dict(_CACHE_STATS, size=len(_NORMALIZED_CACHE))


def clear_kernel_cache() -> None:
    """Drop all cached normalizations and reset the counters."""
    _NORMALIZED_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


# ----------------------------------------------------------------------
# Integer Bareiss kernels
# ----------------------------------------------------------------------

def int_bareiss_determinant(rows: Sequence[Sequence[int]]) -> int:
    """Determinant of an integer matrix by fraction-free Bareiss.

    All intermediate entries are (signed) minors of the input, so every
    division by the previous pivot is exact integer division; row swaps
    flip the sign.
    """
    n = len(rows)
    m = [list(row) for row in rows]
    sign = 1
    prev = 1
    for k in range(n - 1):
        if m[k][k] == 0:
            pivot_row = next((i for i in range(k + 1, n) if m[i][k]), None)
            if pivot_row is None:
                return 0
            m[k], m[pivot_row] = m[pivot_row], m[k]
            sign = -sign
        pivot = m[k][k]
        row_k = m[k]
        for i in range(k + 1, n):
            row_i = m[i]
            m_ik = row_i[k]
            for j in range(k + 1, n):
                row_i[j] = (row_i[j] * pivot - m_ik * row_k[j]) // prev
            row_i[k] = 0
        prev = pivot
    return sign * m[n - 1][n - 1]


def iter_int_leading_principal_minors(
    rows: Sequence[Sequence[int]],
) -> Iterator[int]:
    """Stream all ``n`` leading principal minors of an integer matrix.

    Single fraction-free Bareiss pass *without row exchanges* (swaps
    would change which minors appear); symmetric input keeps the working
    matrix symmetric, so only the lower triangle is eliminated and
    mirrored. A zero minor stalls the recurrence; the remaining minors
    then come from independent per-``k`` Bareiss determinants, exactly
    like the Fraction implementation it replaces.
    """
    n = len(rows)
    m = [list(row) for row in rows]
    symmetric = all(
        m[i][j] == m[j][i] for i in range(n) for j in range(i + 1, n)
    )
    prev = 1
    for k in range(n):
        pivot = m[k][k]
        yield pivot
        if k == n - 1:
            return
        if pivot == 0:
            for j in range(k + 2, n + 1):
                yield int_bareiss_determinant(
                    [row[:j] for row in rows[:j]]
                )
            return
        row_k = m[k]
        for i in range(k + 1, n):
            row_i = m[i]
            m_ik = row_i[k]
            stop = (i + 1) if symmetric else n
            for j in range(k + 1, stop):
                row_i[j] = (row_i[j] * pivot - m_ik * row_k[j]) // prev
            row_i[k] = 0
        if symmetric:
            for i in range(k + 1, n):
                row_i = m[i]
                for j in range(i + 1, n):
                    row_i[j] = m[j][i]
        prev = pivot


def int_rank(rows: Sequence[Sequence[int]]) -> int:
    """Rank by fraction-free row echelon (row swaps + column skips).

    Fraction-free elimination stays exact under arbitrary pivot
    selection (the entries remain minors of row/column subsets); the
    exactness of each division is asserted, with a defensive remainder
    check that can never fire for integer input.
    """
    if not rows:
        return 0
    m = [list(row) for row in rows]
    n_rows, n_cols = len(m), len(m[0])
    prev = 1
    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        best = next(
            (i for i in range(pivot_row, n_rows) if m[i][col]), None
        )
        if best is None:
            continue
        if best != pivot_row:
            m[pivot_row], m[best] = m[best], m[pivot_row]
        pivot = m[pivot_row][col]
        for i in range(pivot_row + 1, n_rows):
            row_i = m[i]
            m_ic = row_i[col]
            for j in range(col, n_cols):
                value = row_i[j] * pivot - m_ic * m[pivot_row][j]
                quotient, remainder = divmod(value, prev)
                if remainder:  # pragma: no cover - mathematically impossible
                    raise ArithmeticError("inexact fraction-free division")
                row_i[j] = quotient
        prev = pivot
        pivot_row += 1
    return pivot_row


def _bareiss_forward(aug: list[list], n: int, width: int) -> None:
    """Fraction-free forward elimination of an ``n x (n + width)``
    augmented matrix, in place (any exact integer scalar type).

    Raises :class:`ValueError` when the leading ``n`` columns are
    singular.
    """
    prev = 1
    for k in range(n - 1):
        if aug[k][k] == 0:
            pivot_row = next(
                (i for i in range(k + 1, n) if aug[i][k]), None
            )
            if pivot_row is None:
                raise ValueError("matrix is singular")
            aug[k], aug[pivot_row] = aug[pivot_row], aug[k]
        pivot = aug[k][k]
        row_k = aug[k]
        for i in range(k + 1, n):
            row_i = aug[i]
            m_ik = row_i[k]
            for j in range(k + 1, n + width):
                row_i[j] = (row_i[j] * pivot - m_ik * row_k[j]) // prev
            row_i[k] = 0
        prev = pivot
    if aug[n - 1][n - 1] == 0:
        raise ValueError("matrix is singular")


def _back_substitute(
    aug: list[list[int]], n: int, width: int
) -> list[list[Fraction]]:
    """Rational back-substitution over an eliminated augmented matrix."""
    x: list[list[Fraction]] = [[Fraction(0)] * width for _ in range(n)]
    for i in range(n - 1, -1, -1):
        row_i = aug[i]
        for b in range(width):
            acc = Fraction(row_i[n + b])
            for j in range(i + 1, n):
                acc -= row_i[j] * x[j][b]
            x[i][b] = acc / row_i[i]
    return x


def int_solve_columns(
    a_rows: Sequence[Sequence[int]], b_rows: Sequence[Sequence[int]]
) -> list[list[Fraction]]:
    """Solve ``A X = B`` for integer ``A`` (square, invertible) and ``B``.

    Forward elimination is fraction-free Bareiss on the augmented matrix
    (integer arithmetic only); rationals appear solely in the O(n^2 w)
    back-substitution, after the expensive O(n^3) phase is done.

    Raises :class:`ValueError` when ``A`` is singular.
    """
    n = len(a_rows)
    width = len(b_rows[0]) if b_rows else 0
    aug = [list(a_rows[i]) + list(b_rows[i]) for i in range(n)]
    _bareiss_forward(aug, n, width)
    return _back_substitute(aug, n, width)


def int_ldlt(
    rows: Sequence[Sequence[int]],
) -> tuple[list[list[int]], list[int]] | None:
    """Fraction-free LDL^T data for a symmetric integer matrix.

    One symmetric Bareiss pass records, for each stage ``k``, the pivot
    (``minors[k]``, the ``k+1``-th leading minor) and the subdiagonal
    column right before elimination. Returns ``(columns, minors)``
    where ``columns[k][i-k-1]`` is the recorded ``m[i][k]`` (``i > k``)
    and the true rational factors are reconstructed as ``L[i][k] =
    columns[k][i-k-1] / minors[k]`` and (for ``M = N / den``)
    ``d_k = minors[k] / (den * minors[k-1])`` — rationals appear only
    at that final step, never inside the elimination.

    Returns ``None`` on a zero pivot (matching :func:`repro.exact.factor.ldl`:
    the strict definiteness question is already settled there).
    """
    n = len(rows)
    m = [list(row) for row in rows]
    columns: list[list[int]] = []
    minors: list[int] = []
    prev = 1
    for k in range(n):
        pivot = m[k][k]
        if pivot == 0:
            return None
        minors.append(pivot)
        columns.append([m[i][k] for i in range(k + 1, n)])
        row_k = m[k]
        for i in range(k + 1, n):
            row_i = m[i]
            m_ik = row_i[k]
            for j in range(k + 1, i + 1):
                row_i[j] = (row_i[j] * pivot - m_ik * row_k[j]) // prev
            row_i[k] = 0
        for i in range(k + 1, n):
            row_i = m[i]
            for j in range(i + 1, n):
                row_i[j] = m[j][i]
        prev = pivot
    return columns, minors


def int_charpoly(rows: Sequence[Sequence[int]]) -> list[int]:
    """Coefficients of ``det(sI - N)`` for integer ``N`` (monic, ints).

    Faddeev--LeVerrier over the integers: ``c_k = -tr(M_k) / k`` is an
    exact division (the coefficients are elementary symmetric functions
    of the eigenvalues, hence integers, and every ``M_k`` stays an
    integer matrix).
    """
    n = len(rows)
    coeffs = [1]
    mk = [list(row) for row in rows]
    for k in range(1, n + 1):
        trace = sum(mk[i][i] for i in range(n))
        ck, remainder = divmod(-trace, k)
        if remainder:  # pragma: no cover - mathematically impossible
            raise ArithmeticError("inexact Faddeev-LeVerrier division")
        coeffs.append(ck)
        if k < n:
            for i in range(n):
                mk[i][i] += ck
            mk = [
                [
                    sum(rows[i][l] * mk[l][j] for l in range(n))
                    for j in range(n)
                ]
                for i in range(n)
            ]
    return coeffs


# ----------------------------------------------------------------------
# gmpy2 kernels: the integer kernels seeded with GMP mpz limbs
# ----------------------------------------------------------------------
#
# The Bareiss/LDL^T/Faddeev-LeVerrier kernels above are duck-typed over
# any exact integer scalar (*, -, //, divmod, comparison against 0), so
# the gmpy2 backend is a thin boundary layer: convert inputs to ``mpz``
# once, run the identical recurrences on GMP limbs, convert results back
# to plain ``int``. Equality with the "int" backend is therefore by
# construction (same code path), and the conversions keep mpz objects
# from leaking into Fraction arithmetic or pickled records downstream.

def _require_gmpy2() -> None:
    if _gmpy2 is None:  # pragma: no cover - callers resolve to "int" first
        raise RuntimeError(
            "gmpy2 backend requested but gmpy2 is not installed"
        )


def _mpz_rows(rows: Sequence[Sequence[int]]) -> list[list]:
    mpz = _gmpy2.mpz
    return [[mpz(x) for x in row] for row in rows]


def gmpy2_bareiss_determinant(rows: Sequence[Sequence[int]]) -> int:
    """:func:`int_bareiss_determinant` on GMP ``mpz`` entries."""
    _require_gmpy2()
    return int(int_bareiss_determinant(_mpz_rows(rows)))


def iter_gmpy2_leading_principal_minors(
    rows: Sequence[Sequence[int]],
) -> Iterator[int]:
    """:func:`iter_int_leading_principal_minors` on GMP ``mpz`` entries."""
    _require_gmpy2()
    for minor in iter_int_leading_principal_minors(_mpz_rows(rows)):
        yield int(minor)


def gmpy2_rank(rows: Sequence[Sequence[int]]) -> int:
    """:func:`int_rank` on GMP ``mpz`` entries."""
    _require_gmpy2()
    return int_rank(_mpz_rows(rows))


def gmpy2_solve_columns(
    a_rows: Sequence[Sequence[int]], b_rows: Sequence[Sequence[int]]
) -> list[list[Fraction]]:
    """:func:`int_solve_columns` with the O(n^3) elimination on ``mpz``.

    The eliminated augmented matrix is converted back to plain ints
    before the rational back-substitution, so the Fraction arithmetic
    never sees an mpz operand.
    """
    _require_gmpy2()
    n = len(a_rows)
    width = len(b_rows[0]) if b_rows else 0
    mpz = _gmpy2.mpz
    aug = [
        [mpz(x) for x in a_rows[i]] + [mpz(x) for x in b_rows[i]]
        for i in range(n)
    ]
    _bareiss_forward(aug, n, width)
    ints = [[int(x) for x in row] for row in aug]
    return _back_substitute(ints, n, width)


def gmpy2_ldlt(
    rows: Sequence[Sequence[int]],
) -> tuple[list[list[int]], list[int]] | None:
    """:func:`int_ldlt` on GMP ``mpz`` entries."""
    _require_gmpy2()
    result = int_ldlt(_mpz_rows(rows))
    if result is None:
        return None
    columns, minors = result
    return (
        [[int(x) for x in column] for column in columns],
        [int(x) for x in minors],
    )


def gmpy2_charpoly(rows: Sequence[Sequence[int]]) -> list[int]:
    """:func:`int_charpoly` on GMP ``mpz`` entries."""
    _require_gmpy2()
    return [int(c) for c in int_charpoly(_mpz_rows(rows))]


# ----------------------------------------------------------------------
# Multimodular kernels (CRT under the Hadamard bound)
# ----------------------------------------------------------------------

# Miller-Rabin witness bases; testing all of them is *deterministic*
# (a proof of primality) for every n < 3.3 * 10^24 [Sorenson & Webster].
# Above that the fixed bases alone are only a strong probable-prime
# test, so _is_prime additionally requires a strong Lucas test — the
# Baillie-PSW combination, which has no known counterexample and is
# what PARI/FLINT use for CRT primes of this size.
_MR_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_MR_LIMIT = 3_317_044_064_679_887_385_961_981


def _jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd positive ``n``."""
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def _strong_lucas_prp(n: int) -> bool:
    """Strong Lucas probable-prime test (Selfridge parameters).

    Assumes ``n`` is odd, > 2, and not divisible by the small trial
    primes. A perfect square can never pass the Jacobi search, so it is
    rejected up front.
    """
    root = math.isqrt(n)
    if root * root == n:
        return False
    d = 5
    while True:
        j = _jacobi(d % n, n)
        if j == -1:
            break
        if j == 0:
            return False
        d = -d - 2 if d > 0 else -d + 2
    p, q = 1, (1 - d) // 4
    s = n + 1
    r = 0
    while s % 2 == 0:
        s //= 2
        r += 1
    u, v, qk = 1, p, q % n  # U_1, V_1, Q^1 for the Lucas sequence
    for bit in bin(s)[3:]:
        u = u * v % n
        v = (v * v - 2 * qk) % n
        qk = qk * qk % n
        if bit == "1":
            u, v = p * u + v, d * u + p * v
            if u & 1:
                u += n
            if v & 1:
                v += n
            u = u // 2 % n
            v = v // 2 % n
            qk = qk * q % n
    if u == 0 or v == 0:
        return True
    for _ in range(r - 1):
        v = (v * v - 2 * qk) % n
        if v == 0:
            return True
        qk = qk * qk % n
    return False


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_BASES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    if n < _DETERMINISTIC_MR_LIMIT:
        return True
    return _strong_lucas_prp(n)


_PRIMES: list[int] = []
#: Scan downward from just under 2^256. Larger primes mean fewer
#: elimination passes; in CPython the pass count dominates the per-op
#: bigint cost, and a sweep over {62, 128, 256, 512}-bit primes on the
#: 18-state benchmark put the optimum at 128-256 bits.
_PRIME_FLOOR = (1 << 256) - 1


def kernel_primes(count: int) -> list[int]:
    """The first ``count`` 256-bit CRT primes (deterministic, cached)."""
    candidate = (_PRIMES[-1] if _PRIMES else _PRIME_FLOOR + 2) - 2
    while len(_PRIMES) < count:
        if _is_prime(candidate):
            _PRIMES.append(candidate)
        candidate -= 2
    return _PRIMES[:count]


_BATCH_PRIMES: list[int] = []
#: 31-bit primes for the vectorized batch: every product of two residues
#: stays below 2^62, so int64 NumPy arithmetic never overflows.
_BATCH_PRIME_FLOOR = (1 << 31) - 1  # itself a (Mersenne) prime


def _batch_primes(count: int) -> list[int]:
    """The first ``count`` 31-bit batch primes (deterministic, cached)."""
    candidate = (
        _BATCH_PRIMES[-1] if _BATCH_PRIMES else _BATCH_PRIME_FLOOR + 2
    ) - 2
    while len(_BATCH_PRIMES) < count:
        if _is_prime(candidate):
            _BATCH_PRIMES.append(candidate)
        candidate -= 2
    return _BATCH_PRIMES[:count]


def _batch_reduce(rows: Sequence[Sequence[int]], primes: Sequence[int]):
    """Reduce integer ``rows`` modulo every prime at once.

    Returns ``(layers, pvec)`` with ``layers`` an int64 array of shape
    ``(P, n, n)`` — layer ``i`` is ``rows mod primes[i]`` — built by
    base-2^30 digit accumulation so each intermediate stays below 2^62.
    """
    n = len(rows)
    flat = [x for row in rows for x in row]
    pvec = _np.array(primes, dtype=_np.int64)
    mask = (1 << 30) - 1
    digit_lists: list[list[int]] = []
    negative = []
    for x in flat:
        neg = x < 0
        a = -x if neg else x
        digits = []
        while True:
            digits.append(a & mask)
            a >>= 30
            if not a:
                break
        digit_lists.append(digits)
        negative.append(neg)
    width = max(len(d) for d in digit_lists)
    digit_mat = _np.zeros((len(flat), width), dtype=_np.int64)
    for e, digits in enumerate(digit_lists):
        digit_mat[e, : len(digits)] = digits
    acc = _np.zeros((len(flat), len(primes)), dtype=_np.int64)
    radix = _np.full(len(primes), 1 << 30, dtype=_np.int64) % pvec
    power = _np.ones(len(primes), dtype=_np.int64)
    for t in range(width):
        acc = (acc + digit_mat[:, t, None] * power[None, :]) % pvec[None, :]
        power = power * radix % pvec
    neg_mask = _np.array(negative)
    if neg_mask.any():
        acc[neg_mask] = (pvec[None, :] - acc[neg_mask]) % pvec[None, :]
    return acc.T.reshape(len(primes), n, n).copy(), pvec


def _batch_diagonals(layers, pvec):
    """Division-free Gauss on the whole prime batch, in place.

    At stage ``k`` every trailing row is updated as ``row_i <- pivot *
    row_i - m_ik * row_k`` (mod p) — no modular inverses anywhere, one
    vectorized update across all primes per stage. Returns the int64
    array ``diag`` of shape ``(P, n)`` of pre-update pivots; stage ``k``'s
    pivot equals ``T_k * minor_{k+1} (mod p)`` for the cumulative scale
    ``T_{k+1} = T_k^2 * minor_k`` (``T_0 = 1``) that
    :func:`_minors_from_diagonal` divides back out per layer.
    """
    count, n, _ = layers.shape
    diag = _np.zeros((count, n), dtype=_np.int64)
    mod = pvec[:, None, None]
    for k in range(n):
        diag[:, k] = layers[:, k, k]
        if k == n - 1:
            break
        pivot = layers[:, k, k][:, None, None]
        col = layers[:, k + 1 :, k][:, :, None]
        row_k = layers[:, k, k + 1 :][:, None, :]
        layers[:, k + 1 :, k + 1 :] = (
            pivot * layers[:, k + 1 :, k + 1 :] - col * row_k
        ) % mod
    return diag


def _minors_from_diagonal(diag_row, p: int) -> list[int]:
    """Partial leading-minor list mod ``p`` from a division-free diagonal.

    Same contract as :func:`_minors_mod`: stops right after the first
    zero minor (whose stage the stalled elimination cannot pass).
    """
    minors: list[int] = []
    scale = 1
    n = len(diag_row)
    for k in range(n):
        minor = int(diag_row[k]) * pow(scale, -1, p) % p
        minors.append(minor)
        if minor == 0 or k == n - 1:
            return minors
        scale = scale * scale % p * (minors[k - 1] if k else 1) % p
    return minors


def _scalar_minor_stream(rows):
    """Endless ``(p, minors mod p)`` stream over the 256-bit primes."""
    index = 0
    while True:
        p = kernel_primes(index + 1)[index]
        index += 1
        yield p, _minors_mod(rows, p)


def _batched_minor_stream(rows, estimate: int):
    """Endless ``(p, minors mod p)`` stream over batched 31-bit primes.

    Serves ``estimate`` primes from one vectorized elimination, then
    tops up in blocks of 8 (only unlucky primes ever need the top-up).
    """
    served = 0
    while True:
        count = max(estimate, served + 8)
        primes = _batch_primes(count)[served:]
        layers, pvec = _batch_reduce(rows, primes)
        diag = _batch_diagonals(layers, pvec)
        for i, p in enumerate(primes):
            yield p, _minors_from_diagonal(diag[i], p)
        served = count


def hadamard_bound(rows: Sequence[Sequence[int]]) -> int:
    """An integer ``H`` with ``|det| <= H`` (Hadamard's row-norm bound).

    ``H = prod_i ceil(||row_i||_2)``; a zero row yields ``H = 0``
    (the determinant is then exactly zero).
    """
    bound = 1
    for row in rows:
        norm_sq = sum(x * x for x in row)
        if norm_sq == 0:
            return 0
        root = math.isqrt(norm_sq)
        if root * root < norm_sq:
            root += 1
        bound *= root
    return bound


def _det_mod(rows: Sequence[Sequence[int]], p: int) -> int:
    """Determinant of ``rows`` modulo the prime ``p`` (Gauss over Z/p)."""
    n = len(rows)
    m = [[x % p for x in row] for row in rows]
    det = 1
    for k in range(n):
        pivot_row = next((i for i in range(k, n) if m[i][k]), None)
        if pivot_row is None:
            return 0
        if pivot_row != k:
            m[k], m[pivot_row] = m[pivot_row], m[k]
            det = p - det
        pivot = m[k][k]
        det = det * pivot % p
        inv = pow(pivot, -1, p)
        tail = m[k][k + 1 :]
        for i in range(k + 1, n):
            row_i = m[i]
            factor = row_i[k] * inv % p
            if factor:
                row_i[k + 1 :] = [
                    (x - factor * y) % p for x, y in zip(row_i[k + 1 :], tail)
                ]
    return det


def _crt_append(residue: int, modulus: int, r: int, p: int) -> int:
    """Extend a CRT residue from ``mod modulus`` to ``mod modulus * p``."""
    delta = (r - residue) * pow(modulus % p, -1, p) % p
    return residue + modulus * delta


def _symmetric_lift(residue: int, modulus: int) -> int:
    """Map a residue in ``[0, modulus)`` to ``(-modulus/2, modulus/2]``."""
    if residue > modulus // 2:
        return residue - modulus
    return residue


def _use_batch(rows, primes) -> bool:
    """Whether the vectorized 31-bit batch should serve this request."""
    return (
        primes is None and _np is not None and len(rows) >= _BATCH_MIN_N
    )


def _prime_estimate(target: int) -> int:
    """Primes needed for ``prod > target`` (31-bit batch, safe excess)."""
    return target.bit_length() // 30 + 2


def modular_determinant(
    rows: Sequence[Sequence[int]], primes: Sequence[int] | None = None
) -> int:
    """Exact determinant via CRT over machine-checked primes.

    Eliminates modulo enough primes that their product strictly exceeds
    ``2 * hadamard_bound(rows)``, then lifts the CRT residue to the
    symmetric range — certified exact (and sign-correct) because the
    true determinant lies inside that range. Large matrices run one
    vectorized batch over 31-bit primes (a layer that stalls on a
    ``0 (mod p)`` pivot falls back to the scalar row-swapping
    elimination for that prime alone); ``primes`` overrides the default
    prime stream (used by the tests to force small primes) and always
    takes the scalar path.
    """
    bound = hadamard_bound(rows)
    if bound == 0:
        return 0
    n = len(rows)
    target = 2 * bound + 1
    if _use_batch(rows, primes):
        stream = (
            (p, minors[-1] if len(minors) == n else _det_mod(rows, p))
            for p, minors in _batched_minor_stream(
                rows, _prime_estimate(target)
            )
        )
    elif primes is None:
        stream = ((p, _det_mod(rows, p)) for p in _scalar_prime_stream())
    else:
        stream = ((p, _det_mod(rows, p)) for p in primes)
    residue, modulus = 0, 1
    for p, det_p in stream:
        residue = _crt_append(residue, modulus, det_p, p)
        modulus *= p
        if modulus >= target:
            return _symmetric_lift(residue, modulus)
    raise ValueError("not enough primes to certify the Hadamard bound")


def _scalar_prime_stream():
    """Endless stream of the cached 256-bit CRT primes."""
    index = 0
    while True:
        yield kernel_primes(index + 1)[index]
        index += 1


def _minors_mod(rows: Sequence[Sequence[int]], p: int) -> list[int]:
    """Leading principal minors modulo ``p`` from one no-swap Gauss pass.

    The ``k``-th leading minor is the product of the first ``k`` Gauss
    pivots (no row exchanges), so one multiply per eliminated entry
    suffices — a third of the Bareiss update cost. Returns a (possibly
    partial) list: a pivot that is ``0 (mod p)`` stalls the elimination,
    so the stream stops right after yielding the zero minor — the caller
    decides whether the stall is a genuinely zero minor or an unlucky
    prime.
    """
    n = len(rows)
    m = [[x % p for x in row] for row in rows]
    minors: list[int] = []
    acc = 1
    for k in range(n):
        pivot = m[k][k]
        acc = acc * pivot % p
        minors.append(acc)
        if k == n - 1 or pivot == 0:
            return minors
        inv = pow(pivot, -1, p)
        tail = m[k][k + 1 :]
        for i in range(k + 1, n):
            row_i = m[i]
            factor = row_i[k] * inv % p
            if factor:
                row_i[k + 1 :] = [
                    (x - factor * y) % p for x, y in zip(row_i[k + 1 :], tail)
                ]
    return minors


def modular_leading_principal_minors(
    rows: Sequence[Sequence[int]], primes: Sequence[int] | None = None
) -> list[int]:
    """All leading principal minors via multimodular Gauss + CRT.

    Every usable prime contributes residues for *all* minors from one
    ``O(n^3)`` elimination mod ``p``. The full-matrix Hadamard bound
    certifies every leading minor at once (each per-row factor is at
    least 1 and column restriction only shrinks norms). Large matrices
    run the whole prime batch as one vectorized division-free
    elimination (:func:`_batch_diagonals`); ``primes`` overrides force
    the scalar pass.

    A prime whose elimination pass stalls on a ``0 (mod p)`` pivot is
    adjudicated with one exact integer determinant of the stalled
    leading block: a genuinely zero minor means *every* prime stalls
    there, so the tail minors are computed by exact integer Bareiss
    (mirroring the Fraction oracle's fallback); a nonzero minor means
    the prime was unlucky and is simply replaced.
    """
    n = len(rows)
    bound = max(1, hadamard_bound(rows))
    target = 2 * bound + 1
    if _use_batch(rows, primes):
        stream = _batched_minor_stream(rows, _prime_estimate(target))
    elif primes is None:
        stream = _scalar_minor_stream(rows)
    else:
        stream = ((p, _minors_mod(rows, p)) for p in primes)
    residues = [0] * n
    modulus = 1
    exact_tail: list[int] | None = None
    zero_stage = n + 1  # 1-based stage of the first genuinely zero minor
    unlucky = 0
    for p, minors_p in stream:
        stage = len(minors_p)  # 1-based stage the pass reached
        if stage < n and minors_p[-1] == 0 and stage < zero_stage:
            # Stalled before the known-zero stage: adjudicate with one
            # exact integer determinant of the stalled leading block.
            exact_minor = int_bareiss_determinant(
                [row[:stage] for row in rows[:stage]]
            )
            if exact_minor != 0:
                unlucky += 1
                if unlucky > 32:  # pragma: no cover - probabilistic
                    raise ArithmeticError(
                        "too many unlucky CRT primes; matrix adversarial"
                    )
                continue  # unlucky prime: replace it, modulus unchanged
            # Genuine zero: every subsequent prime stalls here too. The
            # tail minors come from exact integer Bareiss, CRT covers
            # only the prefix (which every usable prime fully produces).
            zero_stage = stage
            exact_tail = [
                int_bareiss_determinant([row[:j] for row in rows[:j]])
                for j in range(stage + 1, n + 1)
            ]
        prefix = min(stage, zero_stage)
        # One modulus inverse per prime, shared by every minor's lift.
        inv_mod = pow(modulus % p, -1, p)
        for k in range(prefix):
            residue = residues[k]
            residues[k] = (
                residue + modulus * ((minors_p[k] - residue) * inv_mod % p)
            )
        modulus *= p
        if modulus >= target:
            break
    if modulus < target:
        raise ValueError("not enough primes to certify the Hadamard bound")
    prefix = min(n, zero_stage)
    result = [_symmetric_lift(residues[k], modulus) for k in range(prefix)]
    if exact_tail is not None:
        result.extend(exact_tail)
    return result
