"""Exact factorizations and elimination over the rationals.

Provides the determinant (Bareiss fraction-free algorithm), all leading
principal minors in a single fraction-free pass, exact Gaussian
elimination with partial pivoting (solve / inverse / rank),
fraction-free elimination pivots (the SymPy-style definiteness check),
and an LDL^T factorization for symmetric matrices.

Every public entry point dispatches over the kernel layer
(:mod:`repro.exact.kernels`) via ``backend="auto"|"fraction"|"int"|
"gmpy2"|"modular"``: the historical entry-by-entry Fraction algorithms
are kept verbatim as the ``"fraction"`` differential-testing oracle,
while the integer and multimodular kernels do the same work 10-100x
faster by clearing denominators once and eliminating over plain Python
ints (or GMP ``mpz`` limbs, or over ``Z/p`` with CRT reconstruction
certified against the Hadamard bound). Results are bit-identical
across backends.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Optional, Sequence

from . import kernels
from .matrix import RationalMatrix
from .rational import Number, to_fraction

__all__ = [
    "bareiss_determinant",
    "determinant",
    "leading_principal_minors",
    "iter_leading_principal_minors",
    "gauss_pivots",
    "solve",
    "inverse",
    "rank",
    "ldl",
]


def bareiss_determinant(
    matrix: RationalMatrix, backend: str = "auto"
) -> Fraction:
    """Exact determinant via fraction-free elimination.

    Bareiss keeps intermediate entries as (rational multiples of)
    subdeterminants, which bounds coefficient growth much better than
    naive elimination; on integer matrices all intermediates stay
    integral. Row swaps flip the sign.

    ``backend`` selects the kernel: ``"fraction"`` is the historical
    Fraction-by-Fraction pass, ``"int"`` clears denominators once and
    runs integer Bareiss, ``"modular"`` reconstructs the integer
    determinant from word-sized primes under the Hadamard bound, and
    ``"auto"`` picks between the latter two by size.
    """
    if not matrix.is_square():
        raise ValueError("determinant of a non-square matrix")
    mode = kernels.resolve_backend(backend, matrix.rows, op="det")
    if mode == "fraction":
        return _fraction_bareiss_determinant(matrix)
    rows, den = kernels.normalized(matrix)
    if mode == "int":
        det_int = kernels.int_bareiss_determinant(rows)
    elif mode == "gmpy2":
        det_int = kernels.gmpy2_bareiss_determinant(rows)
    else:
        det_int = kernels.modular_determinant(rows)
    return Fraction(det_int, den ** matrix.rows)


def _fraction_bareiss_determinant(matrix: RationalMatrix) -> Fraction:
    """The historical Fraction-arithmetic Bareiss pass (the oracle)."""
    n = matrix.rows
    m = [row[:] for row in matrix.tolist()]
    sign = 1
    prev = Fraction(1)
    for k in range(n - 1):
        if m[k][k] == 0:
            pivot_row = next((i for i in range(k + 1, n) if m[i][k] != 0), None)
            if pivot_row is None:
                return Fraction(0)
            m[k], m[pivot_row] = m[pivot_row], m[k]
            sign = -sign
        pivot = m[k][k]
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                m[i][j] = (m[i][j] * pivot - m[i][k] * m[k][j]) / prev
            m[i][k] = Fraction(0)
        prev = pivot
    return sign * m[n - 1][n - 1]


def determinant(matrix: RationalMatrix, backend: str = "auto") -> Fraction:
    """Alias for :func:`bareiss_determinant` (the library's default)."""
    return bareiss_determinant(matrix, backend=backend)


def iter_leading_principal_minors(
    matrix: RationalMatrix, backend: str = "auto"
) -> Iterator[Fraction]:
    """Yield all ``n`` leading principal minors, smallest first, from one
    fraction-free elimination pass.

    In fraction-free Bareiss elimination *without row exchanges*, the
    diagonal entry at position ``k`` right before stage ``k`` equals the
    determinant of the leading ``(k+1) x (k+1)`` submatrix, so one
    elimination yields every minor as a by-product — Θ(n³) total versus
    Θ(n⁴) for ``n`` independent determinants. Consumers that stop early
    (Sylvester's criterion on the first non-positive minor) pay only for
    the stages they consume. Symmetric input keeps the working matrix
    symmetric, so only the lower triangle is eliminated and mirrored.

    A zero minor stalls the fraction-free recurrence (no pivoting is
    allowed — row swaps would change *which* minors appear); the
    remaining minors are then produced by independent per-``k``
    determinants, preserving exactness on singular leading blocks.

    ``backend="int"`` (the ``"auto"`` choice — it streams and can
    short-circuit) clears denominators once and runs the identical
    recurrence over integers; ``"modular"`` CRT-reconstructs all minors
    from per-prime passes under the Hadamard bound.
    """
    if not matrix.is_square():
        raise ValueError("leading principal minors of a non-square matrix")
    mode = kernels.resolve_backend(backend, matrix.rows, op="minors")
    if mode == "fraction":
        yield from _fraction_iter_minors(matrix)
        return
    rows, den = kernels.normalized(matrix)
    if mode == "int":
        stream: Iterator[int] = kernels.iter_int_leading_principal_minors(rows)
    elif mode == "gmpy2":
        stream = kernels.iter_gmpy2_leading_principal_minors(rows)
    else:
        stream = iter(kernels.modular_leading_principal_minors(rows))
    scale = 1
    for minor_int in stream:
        scale *= den
        yield Fraction(minor_int, scale)


def _fraction_iter_minors(matrix: RationalMatrix) -> Iterator[Fraction]:
    """The historical Fraction-arithmetic minor stream (the oracle)."""
    n = matrix.rows
    m = [row[:] for row in matrix.tolist()]
    symmetric = matrix.is_symmetric()
    prev = Fraction(1)
    for k in range(n):
        pivot = m[k][k]
        yield pivot
        if k == n - 1:
            return
        if pivot == 0:
            for j in range(k + 2, n + 1):
                yield _fraction_bareiss_determinant(matrix.leading_principal(j))
            return
        row_k = m[k]
        for i in range(k + 1, n):
            row_i = m[i]
            m_ik = row_i[k]
            stop = (i + 1) if symmetric else n
            for j in range(k + 1, stop):
                row_i[j] = (row_i[j] * pivot - m_ik * row_k[j]) / prev
            row_i[k] = Fraction(0)
        if symmetric:
            for i in range(k + 1, n):
                row_i = m[i]
                for j in range(i + 1, n):
                    row_i[j] = m[j][i]
        prev = pivot


def leading_principal_minors(
    matrix: RationalMatrix, backend: str = "auto"
) -> list[Fraction]:
    """All ``n`` leading principal minors of a square matrix.

    Single-pass Bareiss (see :func:`iter_leading_principal_minors`);
    ``leading_principal_minors(m)[k - 1] ==
    bareiss_determinant(m.leading_principal(k))`` for every ``k``.
    """
    return list(iter_leading_principal_minors(matrix, backend=backend))


def gauss_pivots(matrix: RationalMatrix) -> Optional[list[Fraction]]:
    """Diagonal pivots after Gaussian elimination *without row exchanges*.

    This mirrors SymPy's ``is_positive_definite`` fast path: eliminate
    below the diagonal without renormalizing rows and report the diagonal
    entries. Returns ``None`` when a zero pivot is hit (the method is then
    inconclusive — for a symmetric matrix that already refutes *definite*,
    but callers decide). For a symmetric matrix the pivots are all
    positive iff the matrix is positive definite.
    """
    if not matrix.is_square():
        raise ValueError("gauss_pivots requires a square matrix")
    n = matrix.rows
    m = [row[:] for row in matrix.tolist()]
    pivots: list[Fraction] = []
    for k in range(n):
        pivot = m[k][k]
        if pivot == 0:
            return None
        pivots.append(pivot)
        for i in range(k + 1, n):
            factor = m[i][k] / pivot
            if factor == 0:
                continue
            for j in range(k, n):
                m[i][j] -= factor * m[k][j]
    return pivots


def _eliminate(aug: list[list[Fraction]], rows: int, cols: int) -> tuple[int, int]:
    """In-place row echelon with partial (max-|entry|) pivoting.

    Returns ``(rank, sign)`` where ``sign`` tracks row swaps.
    """
    sign = 1
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        best = max(
            range(pivot_row, rows), key=lambda r: abs(aug[r][col])
        )
        if aug[best][col] == 0:
            continue
        if best != pivot_row:
            aug[pivot_row], aug[best] = aug[best], aug[pivot_row]
            sign = -sign
        pivot = aug[pivot_row][col]
        for r in range(pivot_row + 1, rows):
            factor = aug[r][col] / pivot
            if factor == 0:
                continue
            for c in range(col, len(aug[r])):
                aug[r][c] -= factor * aug[pivot_row][c]
        pivot_row += 1
    return pivot_row, sign


def solve(
    matrix: RationalMatrix, rhs: RationalMatrix, backend: str = "auto"
) -> RationalMatrix:
    """Solve ``matrix @ X = rhs`` exactly (matrix must be invertible).

    The integer path clears denominators of both sides once, runs
    fraction-free Bareiss forward elimination over ints (the Θ(n³)
    phase), and reconstructs rationals only during back-substitution.
    """
    if not matrix.is_square():
        raise ValueError("solve requires a square matrix")
    if matrix.rows != rhs.rows:
        raise ValueError("solve: right-hand side row mismatch")
    mode = kernels.resolve_backend(backend, matrix.rows, op="solve")
    if mode != "fraction":
        a_rows, a_den = kernels.normalized(matrix)
        b_rows, b_den = kernels.normalized(rhs)
        if mode == "gmpy2":
            x = kernels.gmpy2_solve_columns(a_rows, b_rows)
        else:
            x = kernels.int_solve_columns(a_rows, b_rows)
        # (N_A / a_den) X = N_B / b_den  =>  X = (a_den / b_den) * X_int.
        rescale = Fraction(a_den, b_den)
        if rescale != 1:
            x = [[value * rescale for value in row] for row in x]
        return RationalMatrix(x)
    n = matrix.rows
    width = rhs.cols
    aug = [matrix.row(i) + rhs.row(i) for i in range(n)]
    rank_, _sign = _eliminate(aug, n, n)
    if rank_ < n:
        raise ValueError("matrix is singular")
    # Back substitution.
    x = [[Fraction(0)] * width for _ in range(n)]
    for i in range(n - 1, -1, -1):
        for b in range(width):
            acc = aug[i][n + b]
            for j in range(i + 1, n):
                acc -= aug[i][j] * x[j][b]
            x[i][b] = acc / aug[i][i]
    return RationalMatrix(x)


def solve_vector(
    matrix: RationalMatrix, rhs: Sequence[Number], backend: str = "auto"
) -> list[Fraction]:
    """Solve ``matrix @ x = rhs`` for a plain vector right-hand side."""
    col = RationalMatrix.column([to_fraction(v) for v in rhs])
    return [row[0] for row in solve(matrix, col, backend=backend).tolist()]


def inverse(matrix: RationalMatrix, backend: str = "auto") -> RationalMatrix:
    """Exact inverse via augmented elimination."""
    return solve(matrix, RationalMatrix.identity(matrix.rows), backend=backend)


def rank(matrix: RationalMatrix, backend: str = "auto") -> int:
    """Rank over the rationals (fraction-free integer echelon by default)."""
    mode = kernels.resolve_backend(backend, matrix.rows, op="rank")
    if mode != "fraction":
        rows, _den = kernels.normalized(matrix)
        if mode == "gmpy2":
            return kernels.gmpy2_rank(rows)
        return kernels.int_rank(rows)
    aug = [matrix.row(i) for i in range(matrix.rows)]
    rank_, _ = _eliminate(aug, matrix.rows, matrix.cols)
    return rank_


def ldl(
    matrix: RationalMatrix, backend: str = "auto"
) -> Optional[tuple[RationalMatrix, list[Fraction]]]:
    """LDL^T factorization of a symmetric matrix, if it exists pivot-free.

    Returns ``(L, d)`` with ``L`` unit lower triangular and ``d`` the
    diagonal of ``D`` such that ``matrix == L D L^T``; ``None`` when a
    zero pivot occurs (no pivoting is performed — the factorization is
    used for definiteness certificates, where encountering a zero pivot
    already settles the strict question for symmetric inputs).

    Non-fraction backends run the elimination fraction-free over
    integers (:func:`repro.exact.kernels.int_ldlt`) and reconstruct the
    rational ``L`` and ``d`` only at the end.
    """
    if not matrix.is_symmetric():
        raise ValueError("ldl requires a symmetric matrix")
    mode = kernels.resolve_backend(backend, matrix.rows, op="ldl")
    if mode != "fraction":
        rows, den = kernels.normalized(matrix)
        if mode == "gmpy2":
            data = kernels.gmpy2_ldlt(rows)
        else:
            data = kernels.int_ldlt(rows)
        if data is None:
            return None
        columns, minors = data
        n = matrix.rows
        lower = [
            [Fraction(int(i == j)) for j in range(n)] for i in range(n)
        ]
        for k in range(n):
            pivot = minors[k]
            for offset, value in enumerate(columns[k]):
                lower[k + 1 + offset][k] = Fraction(value, pivot)
        diag = [
            Fraction(minors[k], den * (minors[k - 1] if k else 1))
            for k in range(n)
        ]
        return RationalMatrix(lower), diag
    n = matrix.rows
    a = [row[:] for row in matrix.tolist()]
    lower = [[Fraction(int(i == j)) for j in range(n)] for i in range(n)]
    diag: list[Fraction] = []
    for k in range(n):
        pivot = a[k][k]
        if pivot == 0:
            return None
        diag.append(pivot)
        for i in range(k + 1, n):
            lower[i][k] = a[i][k] / pivot
        for i in range(k + 1, n):
            for j in range(k + 1, i + 1):
                a[i][j] -= lower[i][k] * pivot * lower[j][k]
                a[j][i] = a[i][j]
    return RationalMatrix(lower), diag
