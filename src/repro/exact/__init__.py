"""Exact rational linear algebra (the proof substrate).

Everything downstream that claims a *verdict* — a Lyapunov candidate is
valid, a matrix is Hurwitz, a robust-region level is optimal — routes
through this package, with no floating point anywhere. Hot paths run on
the integer/multimodular kernel layer (:mod:`repro.exact.kernels`,
selected per call via ``backend="auto"|"fraction"|"int"|"modular"``);
the historical entry-by-entry :class:`fractions.Fraction` algorithms
remain available as the ``"fraction"`` differential-testing oracle.
"""

from .kernels import (
    KERNEL_BACKENDS,
    KERNEL_FALLBACKS,
    clear_denominators,
    clear_kernel_cache,
    fallback_backend,
    gmpy2_available,
    hadamard_bound,
    kernel_cache_info,
    resolve_backend,
)
from .definiteness import (
    definiteness_counterexample,
    gauss_positive_definite,
    is_negative_definite,
    is_negative_semidefinite,
    is_positive_semidefinite,
    ldl_positive_definite,
    sylvester_positive_definite,
)
from .kharitonov import (
    interval_polynomial_is_hurwitz,
    kharitonov_polynomials,
    stability_radius_coefficients,
)
from .factor import (
    bareiss_determinant,
    determinant,
    gauss_pivots,
    inverse,
    iter_leading_principal_minors,
    ldl,
    leading_principal_minors,
    rank,
    solve,
    solve_vector,
)
from .matrix import RationalMatrix
from .poly import charpoly, is_hurwitz_matrix, is_hurwitz_polynomial, poly_eval, routh_table
from .sturm import (
    count_real_roots,
    eigenvalue_intervals,
    isolate_real_roots,
    lambda_min_bounds,
    sturm_sequence,
)
from .rational import (
    Number,
    decimal_exponent,
    fraction_to_float,
    round_sigfigs,
    round_to_int,
    to_fraction,
)

__all__ = [
    "RationalMatrix",
    "KERNEL_BACKENDS",
    "KERNEL_FALLBACKS",
    "fallback_backend",
    "gmpy2_available",
    "clear_denominators",
    "clear_kernel_cache",
    "hadamard_bound",
    "kernel_cache_info",
    "resolve_backend",
    "Number",
    "to_fraction",
    "decimal_exponent",
    "round_sigfigs",
    "round_to_int",
    "fraction_to_float",
    "bareiss_determinant",
    "determinant",
    "leading_principal_minors",
    "iter_leading_principal_minors",
    "gauss_pivots",
    "solve",
    "solve_vector",
    "inverse",
    "rank",
    "ldl",
    "charpoly",
    "poly_eval",
    "routh_table",
    "is_hurwitz_polynomial",
    "is_hurwitz_matrix",
    "sylvester_positive_definite",
    "gauss_positive_definite",
    "ldl_positive_definite",
    "is_positive_semidefinite",
    "is_negative_definite",
    "is_negative_semidefinite",
    "definiteness_counterexample",
    "kharitonov_polynomials",
    "interval_polynomial_is_hurwitz",
    "stability_radius_coefficients",
    "sturm_sequence",
    "count_real_roots",
    "isolate_real_roots",
    "eigenvalue_intervals",
    "lambda_min_bounds",
]
