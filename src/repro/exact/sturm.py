"""Exact real-root counting and isolation via Sturm sequences.

For a polynomial with rational coefficients, the Sturm sequence counts
real roots in any interval exactly; bisection then isolates each root
to arbitrary rational precision. Applied to characteristic polynomials
of *symmetric* rational matrices (all roots real), this yields exact
two-sided bounds on eigenvalues — in particular on ``lambda_min``,
which quantifies *how* positive definite a validated Lyapunov matrix
is (the margin that survives rounding, cf. the Table I sweep).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .matrix import RationalMatrix
from .poly import charpoly
from .rational import Number, to_fraction

__all__ = [
    "sturm_sequence",
    "count_real_roots",
    "isolate_real_roots",
    "eigenvalue_intervals",
    "lambda_min_bounds",
]


def _trim(poly: list[Fraction]) -> list[Fraction]:
    index = 0
    while index < len(poly) and poly[index] == 0:
        index += 1
    return poly[index:] or [Fraction(0)]


def _poly_div(num: list[Fraction], den: list[Fraction]) -> list[Fraction]:
    """Remainder of exact polynomial division (highest degree first)."""
    num = _trim(num[:])
    den = _trim(den)
    if den == [Fraction(0)]:
        raise ZeroDivisionError("polynomial division by zero")
    while len(num) >= len(den) and num != [Fraction(0)]:
        factor = num[0] / den[0]
        for i, coefficient in enumerate(den):
            num[i] -= factor * coefficient
        # The leading term cancels exactly; drop it (and any further
        # accidental cancellations).
        num = _trim(num[1:])
    return num


def _derivative(poly: Sequence[Fraction]) -> list[Fraction]:
    degree = len(poly) - 1
    if degree <= 0:
        return [Fraction(0)]
    return [c * (degree - i) for i, c in enumerate(poly[:-1])]


def _eval(poly: Sequence[Fraction], x: Fraction) -> Fraction:
    acc = Fraction(0)
    for c in poly:
        acc = acc * x + c
    return acc


def sturm_sequence(coefficients: Sequence[Number]) -> list[list[Fraction]]:
    """The canonical Sturm chain ``p, p', -rem(p, p'), ...``."""
    p0 = _trim([to_fraction(c) for c in coefficients])
    if p0 == [Fraction(0)]:
        raise ValueError("zero polynomial")
    chain = [p0]
    p1 = _trim(_derivative(p0))
    if p1 != [Fraction(0)]:
        chain.append(p1)
        while True:
            remainder = _poly_div(chain[-2], chain[-1])
            if remainder == [Fraction(0)]:
                break
            chain.append([-c for c in remainder])
            if len(chain[-1]) == 1:
                break
    return chain


def _sign_changes(chain: list[list[Fraction]], x: Fraction) -> int:
    signs = []
    for poly in chain:
        value = _eval(poly, x)
        if value != 0:
            signs.append(1 if value > 0 else -1)
    changes = 0
    for a, b in zip(signs, signs[1:]):
        if a != b:
            changes += 1
    return changes


def count_real_roots(
    coefficients: Sequence[Number], low: Number, high: Number
) -> int:
    """Number of *distinct* real roots in ``(low, high]``, exactly."""
    low = to_fraction(low)
    high = to_fraction(high)
    if low > high:
        raise ValueError("empty interval")
    chain = sturm_sequence(coefficients)
    return _sign_changes(chain, low) - _sign_changes(chain, high)


def _cauchy_bound(poly: list[Fraction]) -> Fraction:
    lead = abs(poly[0])
    if lead == 0:
        raise ValueError("zero leading coefficient")
    return 1 + max((abs(c) / lead for c in poly[1:]), default=Fraction(0))


def isolate_real_roots(
    coefficients: Sequence[Number],
    precision: Fraction = Fraction(1, 10**6),
) -> list[tuple[Fraction, Fraction]]:
    """Disjoint rational intervals, one per distinct real root, each of
    width at most ``precision``, sorted ascending."""
    poly = _trim([to_fraction(c) for c in coefficients])
    if len(poly) == 1:
        return []
    chain = sturm_sequence(poly)
    bound = _cauchy_bound(poly)

    def roots_in(lo: Fraction, hi: Fraction) -> int:
        return _sign_changes(chain, lo) - _sign_changes(chain, hi)

    intervals: list[tuple[Fraction, Fraction]] = []
    stack = [(-bound, bound)]
    while stack:
        lo, hi = stack.pop()
        count = roots_in(lo, hi)
        if count == 0:
            continue
        if count == 1 and hi - lo <= precision:
            intervals.append((lo, hi))
            continue
        # Sturm counts roots in half-open intervals (lo, hi], so a root
        # landing exactly on ``mid`` is attributed to the left half and
        # bisection still converges (with the root at the endpoint).
        mid = (lo + hi) / 2
        stack.append((lo, mid))
        stack.append((mid, hi))
    return sorted(intervals)


def eigenvalue_intervals(
    matrix: RationalMatrix, precision: Fraction = Fraction(1, 10**6)
) -> list[tuple[Fraction, Fraction]]:
    """Exact isolating intervals for the (distinct) eigenvalues of a
    symmetric rational matrix."""
    if not matrix.is_symmetric():
        raise ValueError("eigenvalue isolation requires a symmetric matrix")
    return isolate_real_roots(charpoly(matrix), precision)


def lambda_min_bounds(
    matrix: RationalMatrix, precision: Fraction = Fraction(1, 10**6)
) -> tuple[Fraction, Fraction]:
    """Rational lower/upper bounds on the smallest eigenvalue.

    The returned interval certifies definiteness margins: a positive
    lower bound is an exact proof of ``matrix ⪰ lo I``.
    """
    intervals = eigenvalue_intervals(matrix, precision)
    if not intervals:
        raise ValueError("matrix has no eigenvalues?")
    return intervals[0]
