"""The candidate-validation pipeline (paper Section VI-B).

A numerically synthesized candidate ``P`` is rounded at ``sigfigs``
significant figures (the paper uses 10, and probes robustness at 6 and
4), and both Lyapunov conditions are then checked *exactly*:

1. ``P ≻ 0``;
2. ``-(A^T P + P A) ≻ 0``  (the Lie derivative is negative definite),

where ``A`` enters exactly (the benchmark model's own matrix). The two
checks run on the configured validator from :mod:`repro.validate.validators`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exact import RationalMatrix
from ..lyapunov import LyapunovCandidate
from .validators import ValidatorResult, run_validator

__all__ = ["ValidationReport", "validate_candidate", "lie_derivative_exact"]


def lie_derivative_exact(
    p: RationalMatrix, a: RationalMatrix
) -> RationalMatrix:
    """``A^T P + P A`` over the rationals."""
    return (a.T @ p + p @ a).symmetrize()


@dataclass
class ValidationReport:
    """Joint outcome of the positivity and decrease checks."""

    validator: str
    sigfigs: int | None
    positivity: ValidatorResult
    decrease: ValidatorResult
    extra: dict = field(default_factory=dict)

    @property
    def valid(self) -> bool | None:
        """``True`` when both conditions are proved; ``False`` when either
        is refuted; ``None`` when undecided."""
        verdicts = (self.positivity.valid, self.decrease.valid)
        if False in verdicts:
            return False
        if None in verdicts:
            return None
        return True

    @property
    def total_time(self) -> float:
        """Sum of the two checks' wall-clock times."""
        return self.positivity.time + self.decrease.time

    @property
    def degraded(self) -> list[dict]:
        """Fallback/escalation provenance aggregated over both checks.

        One entry per degradation hop, each tagged with the check stage
        (``"positivity"``/``"decrease"``); empty for a clean run. See
        :mod:`repro.validate.validators` for the per-check encoding.
        """
        hops: list[dict] = []
        for stage, result in (
            ("positivity", self.positivity),
            ("decrease", self.decrease),
        ):
            for hop in result.extra.get("backend_fallbacks", ()):
                hops.append(
                    {
                        "stage": stage,
                        "kind": "kernel-backend",
                        "failed": hop["backend"],
                        "used": result.extra.get("backend"),
                        "error": hop["error"],
                    }
                )
            if "escalated_from" in result.extra:
                hops.append(
                    {
                        "stage": stage,
                        "kind": "validator",
                        "failed": result.extra["escalated_from"],
                        "used": result.validator,
                        "error": result.extra.get("escalation_error"),
                    }
                )
        return hops


def validate_candidate(
    candidate: LyapunovCandidate,
    a: np.ndarray,
    sigfigs: int | None = 10,
    validator: str = "sylvester",
    exact_a: RationalMatrix | None = None,
    fallback: bool = True,
    **validator_options,
) -> ValidationReport:
    """Round the candidate and prove (or refute) both Lyapunov conditions.

    ``fallback`` arms the validator degradation chains (kernel-backend
    fallback, sylvester→sympy escalation); pass ``False`` to let
    validator errors propagate instead. Any degradation that occurred
    is visible in :attr:`ValidationReport.degraded`.
    """
    p_exact = candidate.exact_p(sigfigs)
    a_exact = (
        exact_a
        if exact_a is not None
        else RationalMatrix.from_numpy(np.asarray(a, dtype=float))
    )
    if a_exact.shape != p_exact.shape:
        raise ValueError(
            f"A {a_exact.shape} and P {p_exact.shape} dimension mismatch"
        )
    positivity = run_validator(
        validator, p_exact, fallback=fallback, **validator_options
    )
    if positivity.valid is False:
        # Short-circuit like the paper's pipeline: an invalid P already
        # settles the verdict; record a zero-cost decrease result.
        decrease = ValidatorResult(
            validator=validator, valid=None, time=0.0,
            extra={"skipped": "positivity refuted"},
        )
    else:
        lie = lie_derivative_exact(p_exact, a_exact)
        decrease = run_validator(
            validator, lie.scale(-1), fallback=fallback, **validator_options
        )
    return ValidationReport(
        validator=validator,
        sigfigs=sigfigs,
        positivity=positivity,
        decrease=decrease,
        extra={"method": candidate.method, "backend": candidate.backend},
    )
