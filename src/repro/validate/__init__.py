"""Exact validation of numerically synthesized Lyapunov candidates."""

from .piecewise import PiecewiseValidation, validate_piecewise
from .pipeline import ValidationReport, lie_derivative_exact, validate_candidate
from .validators import (
    VALIDATORS,
    ValidatorResult,
    run_validator,
    temporary_validator,
)

__all__ = [
    "VALIDATORS",
    "ValidatorResult",
    "run_validator",
    "temporary_validator",
    "ValidationReport",
    "validate_candidate",
    "lie_derivative_exact",
    "PiecewiseValidation",
    "validate_piecewise",
]
