"""The symbolic validator registry (paper Figure 3).

Each validator decides, with a *proof*, whether a symmetric rational
matrix is positive definite. The registry mirrors the solver families
the paper compares:

==============  ====================================================
``sylvester``   all leading principal minors streamed from a single
                Bareiss elimination pass (the paper's fastest
                validator; the single-pass rewrite put it back in the
                same league as ``gauss``/``ldl`` — see EXPERIMENTS.md)
``gauss``       fraction-free Gaussian elimination pivots (SymPy's
                ``is_positive_definite`` strategy, reimplemented)
``ldl``         exact LDL^T pivots (ablation variant)
``sympy``       the actual SymPy ``is_positive_definite`` on an exact
                Rational matrix
``icp``         the ICP/SMT refuter on unit-sphere faces (the
                Z3/CVC5/Mathematica stand-in; may return *unknown*)
``icp+det``     the "+ det" encoding: non-strict refutation plus an
                exact determinant test
==============  ====================================================

The three exact validators accept a ``backend`` option
(``"auto"|"fraction"|"int"|"gmpy2"|"modular"``, forwarded to
:mod:`repro.exact.kernels`): ``run_validator(name, matrix,
backend="int")`` decides the same verdict from integer kernels after a
single denominator clearing, while ``backend="fraction"`` pins the
historical Fraction oracle — the pair powers the differential tests.
``"gmpy2"`` runs the same integer elimination on GMP ``mpz`` limbs when
the optional gmpy2 package is installed and resolves silently to
``"int"`` when it is not. The ICP validators accept ``icp_backend``
(``"auto"|"scalar"|"batched"``) selecting the refuter engine.

**Graceful degradation.** Verdicts must survive a flaky backend, so
failures degrade along two chains (opt out with ``fallback=False``,
the CLI's ``--no-fallback``):

* a kernel backend that *raises* falls back ``modular -> int ->
  fraction`` (and ``gmpy2 -> int -> fraction``; see
  :data:`repro.exact.kernels.KERNEL_FALLBACKS`) inside the same
  validator;
* a validator whose every backend failed escalates to the independent
  ``sympy`` implementation (:data:`VALIDATOR_ESCALATION`).

Every hop is recorded in :attr:`ValidatorResult.extra` so degraded
results stay distinguishable from clean ones:
``extra["backend_fallbacks"]`` is the list of
``{"backend", "error"}`` hops that *failed* (with ``extra["backend"]``
then naming the backend that actually decided), and
``extra["escalated_from"]``/``extra["escalation_error"]`` mark a
validator swap (``ValidatorResult.validator`` then names the validator
that produced the verdict). A clean run carries none of these keys.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from ..exact import (
    RationalMatrix,
    definiteness_counterexample,
    fallback_backend,
    gauss_positive_definite,
    ldl_positive_definite,
    resolve_backend,
    sylvester_positive_definite,
)
from ..smt import check_positive_definite_icp

__all__ = [
    "ValidatorResult",
    "VALIDATORS",
    "VALIDATOR_ESCALATION",
    "run_validator",
    "temporary_validator",
]


@dataclass
class ValidatorResult:
    """Outcome of one definiteness check.

    ``valid`` is ``True``/``False`` for a proof either way and ``None``
    when the validator could not decide (ICP budget exhausted).
    ``extra`` carries validator statistics and, for degraded runs, the
    fallback/escalation provenance described in the module docstring.
    """

    validator: str
    valid: bool | None
    time: float
    counterexample: list | None = None
    extra: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Did a backend fallback or validator escalation occur?"""
        return bool(
            self.extra.get("backend_fallbacks")
            or self.extra.get("escalated_from")
        )


def _with_witness(check: Callable[..., bool]):
    def run(
        matrix: RationalMatrix,
        backend: str = "auto",
        fallback: bool = True,
        **_options,
    ) -> tuple[bool, list | None, dict]:
        mode = resolve_backend(backend, matrix.rows, op="minors")
        hops: list[dict] = []
        while True:
            try:
                verdict = check(matrix, backend=mode)
                break
            except Exception as exc:
                nxt = fallback_backend(mode) if fallback else None
                if nxt is None:
                    raise
                hops.append(
                    {
                        "backend": mode,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                mode = nxt
        witness = None if verdict else definiteness_counterexample(matrix)
        extra: dict = {} if backend == "auto" else {"backend": backend}
        if hops:
            extra["backend"] = mode  # the backend that actually decided
            extra["backend_fallbacks"] = hops
        return verdict, witness, extra

    return run


def _sympy_validator(matrix: RationalMatrix, **_options):
    import sympy

    sym = sympy.Matrix(
        [[sympy.Rational(x.numerator, x.denominator) for x in row]
         for row in matrix.tolist()]
    )
    verdict = bool(sym.is_positive_definite)
    witness = None if verdict else definiteness_counterexample(matrix)
    return verdict, witness, {}


def _icp_validator(plus_det: bool):
    def run(
        matrix: RationalMatrix,
        max_boxes: int = 200_000,
        delta: float = 1e-7,
        icp_backend: str = "auto",
        **_options,
    ):
        outcome = check_positive_definite_icp(
            matrix,
            plus_det=plus_det,
            delta=delta,
            max_boxes=max_boxes,
            backend=icp_backend,
        )
        witness = None
        if outcome.counterexample is not None:
            witness = [
                outcome.counterexample[f"w{i}"] for i in range(matrix.rows)
            ]
        return outcome.verdict, witness, {
            "faces": outcome.faces_checked,
            "boxes": outcome.boxes_explored,
        }

    return run


VALIDATORS: dict[str, Callable] = {
    "sylvester": _with_witness(sylvester_positive_definite),
    "gauss": _with_witness(gauss_positive_definite),
    "ldl": _with_witness(ldl_positive_definite),
    "sympy": _sympy_validator,
    "icp": _icp_validator(plus_det=False),
    "icp+det": _icp_validator(plus_det=True),
}

#: When an exact validator fails outright (even its last kernel backend
#: raised, or the implementation itself broke), the verdict escalates to
#: the independent SymPy implementation rather than aborting the task.
VALIDATOR_ESCALATION: dict[str, str] = {
    "sylvester": "sympy",
    "gauss": "sympy",
    "ldl": "sympy",
}


@contextmanager
def temporary_validator(name: str, fn: Callable):
    """Register (or shadow) a validator for the duration of a block.

    The fuzz test suite uses this to plant deliberately broken
    validators — e.g. a sign-flipped ``sylvester`` — and assert the
    differential harness catches and shrinks them.  Restores the
    previous registry state (including a shadowed original) on exit.
    """
    sentinel = object()
    previous = VALIDATORS.get(name, sentinel)
    VALIDATORS[name] = fn
    try:
        yield
    finally:
        if previous is sentinel:
            VALIDATORS.pop(name, None)
        else:
            VALIDATORS[name] = previous


def run_validator(
    name: str,
    matrix: RationalMatrix,
    fallback: bool = True,
    **options,
) -> ValidatorResult:
    """Run one registered validator and time it.

    ``fallback=True`` (the default) arms both degradation chains:
    kernel-backend fallback inside the exact validators, and validator
    escalation per :data:`VALIDATOR_ESCALATION` when the named
    validator fails entirely. ``fallback=False`` lets the original
    exception propagate instead.
    """
    if name not in VALIDATORS:
        raise KeyError(f"unknown validator {name!r}; known: {sorted(VALIDATORS)}")
    start = time.perf_counter()
    used = name
    try:
        valid, witness, extra = VALIDATORS[name](
            matrix, fallback=fallback, **options
        )
    except Exception as exc:
        escalation = VALIDATOR_ESCALATION.get(name) if fallback else None
        if escalation is None:
            raise
        valid, witness, extra = VALIDATORS[escalation](
            matrix, fallback=fallback, **options
        )
        extra = dict(extra)
        extra["escalated_from"] = name
        extra["escalation_error"] = f"{type(exc).__name__}: {exc}"
        used = escalation
    elapsed = time.perf_counter() - start
    return ValidatorResult(
        validator=used,
        valid=valid,
        time=elapsed,
        counterexample=witness,
        extra=extra,
    )
