"""The symbolic validator registry (paper Figure 3).

Each validator decides, with a *proof*, whether a symmetric rational
matrix is positive definite. The registry mirrors the solver families
the paper compares:

==============  ====================================================
``sylvester``   all leading principal minors streamed from a single
                Bareiss elimination pass (the paper's fastest
                validator; the single-pass rewrite put it back in the
                same league as ``gauss``/``ldl`` — see EXPERIMENTS.md)
``gauss``       fraction-free Gaussian elimination pivots (SymPy's
                ``is_positive_definite`` strategy, reimplemented)
``ldl``         exact LDL^T pivots (ablation variant)
``sympy``       the actual SymPy ``is_positive_definite`` on an exact
                Rational matrix
``icp``         the ICP/SMT refuter on unit-sphere faces (the
                Z3/CVC5/Mathematica stand-in; may return *unknown*)
``icp+det``     the "+ det" encoding: non-strict refutation plus an
                exact determinant test
==============  ====================================================

The three exact validators accept a ``backend`` option
(``"auto"|"fraction"|"int"|"modular"``, forwarded to
:mod:`repro.exact.kernels`): ``run_validator(name, matrix,
backend="int")`` decides the same verdict from integer kernels after a
single denominator clearing, while ``backend="fraction"`` pins the
historical Fraction oracle — the pair powers the differential tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..exact import (
    RationalMatrix,
    definiteness_counterexample,
    gauss_positive_definite,
    ldl_positive_definite,
    sylvester_positive_definite,
)
from ..smt import check_positive_definite_icp

__all__ = ["ValidatorResult", "VALIDATORS", "run_validator"]


@dataclass
class ValidatorResult:
    """Outcome of one definiteness check.

    ``valid`` is ``True``/``False`` for a proof either way and ``None``
    when the validator could not decide (ICP budget exhausted).
    """

    validator: str
    valid: bool | None
    time: float
    counterexample: list | None = None
    extra: dict = field(default_factory=dict)


def _with_witness(check: Callable[..., bool]):
    def run(
        matrix: RationalMatrix, backend: str = "auto", **_options
    ) -> tuple[bool, list | None, dict]:
        verdict = check(matrix, backend=backend)
        witness = None if verdict else definiteness_counterexample(matrix)
        extra = {} if backend == "auto" else {"backend": backend}
        return verdict, witness, extra

    return run


def _sympy_validator(matrix: RationalMatrix, **_options):
    import sympy

    sym = sympy.Matrix(
        [[sympy.Rational(x.numerator, x.denominator) for x in row]
         for row in matrix.tolist()]
    )
    verdict = bool(sym.is_positive_definite)
    witness = None if verdict else definiteness_counterexample(matrix)
    return verdict, witness, {}


def _icp_validator(plus_det: bool):
    def run(matrix: RationalMatrix, max_boxes: int = 200_000, delta: float = 1e-7):
        outcome = check_positive_definite_icp(
            matrix, plus_det=plus_det, delta=delta, max_boxes=max_boxes
        )
        witness = None
        if outcome.counterexample is not None:
            witness = [
                outcome.counterexample[f"w{i}"] for i in range(matrix.rows)
            ]
        return outcome.verdict, witness, {
            "faces": outcome.faces_checked,
            "boxes": outcome.boxes_explored,
        }

    return run


VALIDATORS: dict[str, Callable] = {
    "sylvester": _with_witness(sylvester_positive_definite),
    "gauss": _with_witness(gauss_positive_definite),
    "ldl": _with_witness(ldl_positive_definite),
    "sympy": _sympy_validator,
    "icp": _icp_validator(plus_det=False),
    "icp+det": _icp_validator(plus_det=True),
}


def run_validator(
    name: str, matrix: RationalMatrix, **options
) -> ValidatorResult:
    """Run one registered validator and time it."""
    if name not in VALIDATORS:
        raise KeyError(f"unknown validator {name!r}; known: {sorted(VALIDATORS)}")
    start = time.perf_counter()
    valid, witness, extra = VALIDATORS[name](matrix, **options)
    elapsed = time.perf_counter() - start
    return ValidatorResult(
        validator=name,
        valid=valid,
        time=elapsed,
        counterexample=witness,
        extra=extra,
    )
