"""Exact validation of piecewise-quadratic Lyapunov candidates.

Checks, with the mini-SMT layer, the three condition families a
piecewise-quadratic certificate for the switched system must satisfy
(paper Section VI-B.2):

1. *positivity*: ``V_i(w) > 0`` on region ``R_i`` away from the
   equilibrium;
2. *decrease*: ``dV_i/dt < 0`` along mode ``i``'s flow on ``R_i`` away
   from the equilibrium;
3. *surface non-increase*: ``V_j(w) <= V_i(w)`` on the switching
   surface for a switch from mode ``i`` to mode ``j``.

Each condition is refuted by searching for a counterexample with ICP
over a box around the operating envelope; a found witness is confirmed
with exact rational arithmetic. The paper reports that condition (3)
always failed on its candidates — the experiment harness reproduces
exactly that observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from ..exact import RationalMatrix
from ..lyapunov import PiecewiseCandidate
from ..smt import (
    Atom,
    Box,
    Const,
    IcpSolver,
    IcpStatus,
    Mul,
    Relation,
    Term,
    Var,
    affine_term,
    quadratic_form_term,
)
from ..systems import PwaSystem

__all__ = ["PiecewiseValidation", "validate_piecewise"]


@dataclass
class PiecewiseValidation:
    """Verdicts per condition; ``valid`` follows the same tri-state logic
    as single-mode validation."""

    conditions: dict = field(default_factory=dict)  # name -> True/False/None
    witnesses: dict = field(default_factory=dict)  # name -> rational point
    time: float = 0.0
    sigfigs: int | None = 10

    @property
    def valid(self) -> bool | None:
        """Tri-state verdict over all checked conditions."""
        verdicts = self.conditions.values()
        if False in verdicts:
            return False
        if None in verdicts:
            return None
        return True

    @property
    def failed_conditions(self) -> list[str]:
        """Names of the refuted conditions."""
        return [name for name, ok in self.conditions.items() if ok is False]


def _augmented_exact(
    candidate: PiecewiseCandidate, mode: int, sigfigs: int | None
) -> RationalMatrix:
    exact = RationalMatrix.from_numpy(candidate.p[mode]).symmetrize()
    if sigfigs is not None:
        exact = exact.round_sigfigs(sigfigs).symmetrize()
    return exact

def _value_term(p_bar: RationalMatrix, variables: list[Var]) -> Term:
    """``V(w) = w^T P w + 2 p^T w + c`` from the augmented matrix."""
    d = len(variables)
    p_sub = p_bar.submatrix(range(d), range(d))
    linear = [2 * p_bar[i, d] for i in range(d)]
    constant = p_bar[d, d]
    return quadratic_form_term(p_sub, variables) + affine_term(
        linear, variables, constant
    )


def _lie_term(
    p_bar: RationalMatrix, a_bar: RationalMatrix, variables: list[Var]
) -> Term:
    lie = (a_bar.T @ p_bar + p_bar @ a_bar).symmetrize()
    return _value_term(lie, variables)


def _distance_sq_term(center: np.ndarray, variables: list[Var]) -> Term:
    parts = []
    for var, c in zip(variables, center):
        shifted = var - Const(Fraction(float(c)))
        parts.append(Mul((shifted, shifted)))
    return sum(parts[1:], parts[0])


def validate_piecewise(
    candidate: PiecewiseCandidate,
    system: PwaSystem,
    sigfigs: int | None = 10,
    box_radius: float | None = None,
    exclusion_radius: float = 1e-2,
    max_boxes: int = 6_000,
    delta: float = 1e-6,
    conditions_scope: str = "all",
    icp_backend: str = "auto",
) -> PiecewiseValidation:
    """Refute or (boundedly) verify every piecewise Lyapunov condition.

    ``conditions_scope="surface"`` restricts the check to the two
    switching-surface conditions — the decisive (and fast-to-refute)
    ones; ``"all"`` additionally probes region positivity and decrease.
    ``icp_backend`` selects the refuter engine
    (``"auto"|"scalar"|"batched"``, see :mod:`repro.smt.icp`).
    """
    start = time.perf_counter()
    d = system.dimension
    variables = [Var(f"w{i}") for i in range(d)]
    solver = IcpSolver(delta=delta, max_boxes=max_boxes, backend=icp_backend)
    w_star = system.modes[0].flow.equilibrium()
    if box_radius is None:
        scale = max(float(np.abs(m.flow.equilibrium()).max()) for m in system.modes)
        box_radius = max(10.0, 2.0 * scale)
    box = Box.cube(
        [v.name for v in variables], -box_radius, box_radius
    )

    exact_p = [
        _augmented_exact(candidate, mode, sigfigs) for mode in (0, 1)
    ]
    a_bar_exact = []
    for mode in (0, 1):
        flow = system.modes[mode].flow
        top = RationalMatrix.from_numpy(flow.a).hstack(
            RationalMatrix.from_numpy(flow.b.reshape(-1, 1))
        )
        bottom = RationalMatrix.zeros(1, d + 1)
        a_bar_exact.append(top.vstack(bottom))

    away = Atom(
        Const(Fraction(float(exclusion_radius**2)))
        - _distance_sq_term(w_star, variables),
        Relation.LE,
    )

    conditions: dict[str, bool | None] = {}
    witnesses: dict[str, dict] = {}

    def refute(name: str, violation_atoms: list[Atom]) -> None:
        result = solver.check(violation_atoms, box)
        if result.status is IcpStatus.SAT:
            conditions[name] = False
            witnesses[name] = result.witness
        elif result.status is IcpStatus.UNSAT:
            conditions[name] = True
        else:
            conditions[name] = None

    for mode in (0, 1) if conditions_scope == "all" else ():
        region_atoms = system.modes[mode].region.to_atoms(variables)
        value = _value_term(exact_p[mode], variables)
        refute(
            f"positivity(mode{mode})",
            region_atoms + [away, Atom(value, Relation.LE)],
        )
        lie = _lie_term(exact_p[mode], a_bar_exact[mode], variables)
        refute(
            f"decrease(mode{mode})",
            region_atoms + [away, Atom(-lie, Relation.LE)],
        )

    # Surface non-increase, both switch directions. The surface equality
    # g.w + o = 0 is eliminated by substituting the pivot coordinate with
    # its affine expression in the others — ICP then faces a plain
    # quadratic-inequality query with easy exact witnesses.
    surface_halfspace = system.modes[0].region.halfspaces[0]
    g = list(surface_halfspace.normal)
    pivot = max(range(d), key=lambda i: abs(g[i]))
    others = [variables[i] for i in range(d) if i != pivot]
    pivot_expr = affine_term(
        [-g[i] / g[pivot] for i in range(d) if i != pivot],
        others,
        -surface_halfspace.offset / g[pivot],
    )
    on_surface_vars: list = list(variables)
    on_surface_vars[pivot] = pivot_expr
    surface_box = Box.cube(
        [v.name for v in others], -box_radius, box_radius
    )
    for source, target in ((0, 1), (1, 0)):
        diff = (
            _value_term(exact_p[target], on_surface_vars)
            - _value_term(exact_p[source], on_surface_vars)
        )
        name = f"surface-nonincrease({source}->{target})"
        result = solver.check([Atom(-diff, Relation.LT)], surface_box)
        if result.status is IcpStatus.SAT:
            conditions[name] = False
            witness = dict(result.witness)
            # Reconstruct the pivot coordinate of the surface witness.
            from ..smt import polynomial_of
            from ..smt.terms import poly_eval

            witness[variables[pivot].name] = poly_eval(
                polynomial_of(pivot_expr), witness
            )
            witnesses[name] = witness
        elif result.status is IcpStatus.UNSAT:
            conditions[name] = True
        else:
            conditions[name] = None

    return PiecewiseValidation(
        conditions=conditions,
        witnesses=witnesses,
        time=time.perf_counter() - start,
        sigfigs=sigfigs,
    )
