"""repro — SMT-based stability verification of switched PI control systems.

A from-scratch reproduction of Battista et al., *SMT-Based Stability
Verification of an Industrial Switched PI Control System* (DSN-W 2023):
exact rational linear algebra, a mini SMT layer (ICP + Fourier–Motzkin),
hand-written LMI/SDP solvers, balanced-truncation model reduction, a
synthetic 18-state turbofan case study with the paper's exact switched
PI gains, Lyapunov synthesis/validation pipelines, and robust-region
analysis — plus drivers regenerating every table and figure.

Quick tour::

    import repro

    plant = repro.build_engine_plant()             # 18-state turbofan
    controller = repro.paper_controller()          # the paper's gains
    r = repro.nominal_reference(plant)
    switched = repro.build_closed_loop(plant, controller, r)

    a0 = switched.modes[0].flow.a                  # closed-loop mode 0
    candidate = repro.synthesize("lmi-alpha", a0)  # numeric synthesis
    report = repro.validate_candidate(candidate, a0)  # exact proof
    assert report.valid

See ``examples/`` and ``python -m repro.experiments --help``.
"""

from .engine import (
    BenchmarkCase,
    benchmark_suite,
    build_engine_plant,
    case_by_name,
    mode_gains,
    nominal_reference,
    paper_controller,
)
from .exact import RationalMatrix, is_hurwitz_matrix
from .lyapunov import (
    LyapunovCandidate,
    PiecewiseCandidate,
    synthesize,
    synthesize_piecewise,
)
from .reduction import balanced_truncation
from .reach import Zonotope, compute_flowpipe, verify_invariance
from .robust import (
    StabilityCertificate,
    certify_mode,
    certify_region_stability,
    epsilon_radius,
    monte_carlo_epsilon_check,
    synthesize_robust_level,
    truncated_ellipsoid_volume,
)
from .systems import (
    AffineSystem,
    OutputGuard,
    PIGains,
    PwaSystem,
    StateSpace,
    SwitchedPIController,
    build_closed_loop,
    simulate_affine,
    simulate_pwa,
)
from .validate import validate_candidate, validate_piecewise

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "StateSpace",
    "AffineSystem",
    "PIGains",
    "OutputGuard",
    "SwitchedPIController",
    "PwaSystem",
    "build_closed_loop",
    "simulate_affine",
    "simulate_pwa",
    "RationalMatrix",
    "is_hurwitz_matrix",
    "balanced_truncation",
    "build_engine_plant",
    "paper_controller",
    "mode_gains",
    "nominal_reference",
    "BenchmarkCase",
    "benchmark_suite",
    "case_by_name",
    "LyapunovCandidate",
    "PiecewiseCandidate",
    "synthesize",
    "synthesize_piecewise",
    "validate_candidate",
    "validate_piecewise",
    "synthesize_robust_level",
    "truncated_ellipsoid_volume",
    "epsilon_radius",
    "StabilityCertificate",
    "certify_mode",
    "certify_region_stability",
    "monte_carlo_epsilon_check",
    "Zonotope",
    "compute_flowpipe",
    "verify_invariance",
]
