"""``python -m repro.fuzz`` — the ground-truth oracle fuzz campaign.

Generates seeded systems with *known* stability verdicts
(:mod:`repro.oracle.generate`), fans each through every
``method x validator x kernel-backend`` combination plus the
metamorphic invariants (:mod:`repro.oracle.differential`), and fails
on any disagreement. Campaigns run through the parallel runner —
process pool, crash-safe journal, retries — exactly like the
experiment sweeps:

* ``--quick`` (default) sweeps ~240 systems of sizes 1–5 in about a
  minute; ``--long`` is the nightly configuration (sizes 1–21, longer
  ``eq-smt`` deadlines);
* ``--seed`` makes the whole campaign a pure function of its flags:
  two same-seed runs produce byte-identical journals (``--jobs 1``)
  and always the same sorted-journal digest (any job count);
* failures are shrunk to the smallest failing dimension
  (``--no-shrink`` to skip) and persisted under ``--artifacts`` as
  replayable specs + ``.npz`` dumps; ``--replay kind:n:seed`` re-runs
  one spec under the same profile;
* ``--cegis N`` appends the ``cegis`` family: ground-truth *switched*
  scenarios (:mod:`repro.oracle.cegis`) run through the full
  counterexample-guided loop — ``cegis-shared`` must validate (and no
  sampled cut may exclude the constructed witness), ``cegis-bistable``
  must be proved infeasible; failures shrink and replay like every
  other kind (e.g. ``--replay cegis-shared:2:7``);
* ``--plant`` installs a deliberately sign-flipped ``sylvester``
  validator first — the campaign must then *fail*; this is the
  self-test proving the harness detects planted bugs (forces
  ``--jobs 1`` so the sabotage reaches the executing process);
* ``--shards N`` (or ``REPRO_SHARDS``) runs the campaign through the
  fault-tolerant shard supervisor (:mod:`repro.runner.shard`);
  ``--shard-chaos SPEC`` injects shard-level faults (e.g.
  ``kill:1@10`` hard-kills shard 1 on its 10th task — the campaign
  must still complete with the same journal digest), and ``--watch``
  renders a live per-shard dashboard to stderr;
* ``--shard-merge-selftest`` is the ``shard-merge`` fuzz family: the
  same seeded system set runs once unsharded and once across 4 shards
  with one shard killed mid-campaign, and the run fails unless both
  journal digests and both rendered record tables are byte-identical;
* unless ``--no-bench``, a ``"fuzz"`` section (systems/sec, check and
  disagreement counts) is merged into ``BENCH_experiments.json``.

Exit status: 0 for a clean campaign, 1 when any system failed, 2 for
usage errors.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import time

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential + metamorphic fuzzing against the "
        "ground-truth system generator.",
    )
    profile = parser.add_mutually_exclusive_group()
    profile.add_argument(
        "--quick", action="store_true",
        help="quick profile: sizes 1-5, short deadlines (default)",
    )
    profile.add_argument(
        "--long", action="store_true",
        help="long profile: sizes 1-21, nightly deadlines",
    )
    parser.add_argument(
        "--systems", type=int, default=240,
        help="number of systems to generate (default 240)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign master seed (default 0)",
    )
    parser.add_argument(
        "--cegis", type=int, default=0, metavar="N",
        help="append N cegis-family scenarios (ground-truth switched "
        "systems run through the full counterexample-guided loop; "
        "verdicts and the cut-admissibility invariant known by "
        "construction)",
    )
    parser.add_argument(
        "--max-n", type=int, default=None,
        help="cap the profile's size range (trims the plan, not the grid)",
    )
    parser.add_argument(
        "--icp-backends", default=None, metavar="ENGINES",
        help="comma list of ICP engines to cross-check per system "
        "(default 'scalar,batched'; a single engine disables the "
        "icp-engine differential)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: all cores; 1 = in-process)",
    )
    parser.add_argument(
        "--task-deadline", type=float, default=120.0,
        help="per-system wall-clock deadline in seconds (pooled mode)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="retry transiently failed tasks this many times (default 1)",
    )
    parser.add_argument(
        "--journal", type=pathlib.Path, default=None,
        help="append-only JSONL journal path (enables resume + digest)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay an existing journal instead of truncating it",
    )
    parser.add_argument(
        "--artifacts", type=pathlib.Path, default=pathlib.Path("fuzz-artifacts"),
        help="directory for failure artifacts (default ./fuzz-artifacts)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip the minimal-dimension shrinking pass on failures",
    )
    parser.add_argument(
        "--bench", type=pathlib.Path, default=pathlib.Path("BENCH_experiments.json"),
        help="bench artifact to merge the 'fuzz' section into",
    )
    parser.add_argument(
        "--no-bench", action="store_true",
        help="do not write the bench artifact",
    )
    parser.add_argument(
        "--plant", action="store_true",
        help="plant a sign-flipped sylvester validator (self-test: the "
        "campaign must fail; forces --jobs 1)",
    )
    parser.add_argument(
        "--replay", metavar="KIND:N:SEED", default=None,
        help="re-run one spec (e.g. 'stable:3:12345') and exit",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the campaign across N fault-tolerant shard processes "
        "(default: REPRO_SHARDS env, else unsharded)",
    )
    parser.add_argument(
        "--shard-chaos", metavar="SPEC", default=None,
        help="shard fault spec, e.g. 'kill:1@10' or "
        "'torn:0@3,freeze:2@5,straggle:3@0.05' (sharded mode only)",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="live per-shard dashboard on stderr (sharded mode only)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=10.0,
        help="shard lease expiry in seconds (sharded mode only)",
    )
    parser.add_argument(
        "--shard-merge-selftest", action="store_true",
        help="shard-merge family: assert the 1-shard and "
        "4-shards-with-one-kill runs agree byte for byte, then exit",
    )
    return parser


def _profile(args):
    from dataclasses import replace

    from ..oracle import LONG_PROFILE, QUICK_PROFILE
    from ..smt import ICP_BACKENDS

    profile = LONG_PROFILE if args.long else QUICK_PROFILE
    if args.max_n is not None:
        sizes = tuple(n for n in profile.sizes if n <= args.max_n)
        if not sizes:
            raise SystemExit(f"--max-n {args.max_n} empties the size range")
        profile = replace(profile, sizes=sizes)
    if getattr(args, "icp_backends", None):
        engines = tuple(
            name.strip() for name in args.icp_backends.split(",") if name.strip()
        )
        unknown = [name for name in engines if name not in ICP_BACKENDS]
        if unknown:
            raise SystemExit(
                f"unknown ICP engine(s) {unknown}; known: {ICP_BACKENDS}"
            )
        profile = replace(profile, icp_backends=engines)
    return profile


def _journal_digest(path: pathlib.Path) -> str:
    """SHA-256 over the *sorted* journal lines — invariant across job
    counts, shard counts and shard deaths (see
    :func:`repro.runner.journal_digest`, which this now delegates to)."""
    from ..runner import journal_digest

    return journal_digest(path)


def _render_records(records) -> str:
    """Deterministic plaintext table of fuzz outcomes.

    A pure function of the record *contents* (no wall clocks, no
    ordering dependence beyond the submission order the runner already
    guarantees), so two campaigns over the same seeded system set must
    render byte-identically however they were executed — the
    ``shard-merge`` family asserts exactly that.
    """
    lines = []
    for r in records:
        synth = ",".join(f"{k}={v}" for k, v in sorted(r.synth.items()))
        lines.append(
            f"{r.kind}:{r.n}:{r.seed} stable={r.stable} "
            f"checks={r.checks} failed={r.failed} "
            f"disagreements={len(r.disagreements)} "
            f"harness_errors={len(r.harness_errors)} synth[{synth}]"
        )
    return "\n".join(lines)


def _plant_sign_flip():
    """Shadow ``sylvester`` with a verdict-negating impostor."""
    from ..validate import VALIDATORS, temporary_validator

    genuine = VALIDATORS["sylvester"]

    def sabotaged(matrix, **options):
        verdict, _witness, extra = genuine(matrix, **options)
        return (not verdict), None, extra

    return temporary_validator("sylvester", sabotaged)


def _parse_spec(text: str) -> dict:
    try:
        kind, n, seed = text.split(":")
        return {"kind": kind, "n": int(n), "seed": int(seed)}
    except ValueError:
        raise SystemExit(f"bad --replay spec {text!r}; expected KIND:N:SEED")


def _replay(args) -> int:
    from ..oracle import replay_spec

    record = replay_spec(_parse_spec(args.replay), _profile(args))
    print(json.dumps({
        "spec": record.spec(),
        "failed": record.failed,
        "checks": record.checks,
        "synth": record.synth,
        "disagreements": record.disagreements,
        "harness_errors": record.harness_errors,
    }, indent=2, default=str))
    return 1 if record.failed else 0


def _shard_merge_selftest(args) -> int:
    """The ``shard-merge`` family: 1 shard clean vs 4 shards with one
    killed mid-campaign must agree byte for byte."""
    import tempfile

    from ..oracle import system_specs
    from ..runner import (
        FuzzTask, Journal, ShardChaosPolicy, journal_digest, run_sharded,
    )

    profile = _profile(args)
    profile_spec = profile.spec()
    specs = system_specs(args.systems, args.seed, profile.sizes)

    outcomes = {}
    with tempfile.TemporaryDirectory(prefix="repro-shard-merge-") as tmp:
        base = pathlib.Path(tmp)
        for label, shards, chaos in (
            ("clean-1shard", 1, None),
            ("chaos-4shard", 4,
             ShardChaosPolicy(kill_shard=1, kill_after=2)),
        ):
            tasks = [FuzzTask(profile=profile_spec, **s) for s in specs]
            path = base / f"{label}.jsonl"
            with Journal(path) as journal:
                records = run_sharded(
                    tasks, shards=shards, journal=journal,
                    heartbeat_s=0.1, lease_ttl=args.lease_ttl,
                )
            outcomes[label] = (
                journal_digest(path),
                _render_records([r for r in records if r is not None]),
            )
    (clean_digest, clean_table) = outcomes["clean-1shard"]
    (chaos_digest, chaos_table) = outcomes["chaos-4shard"]
    digests_match = clean_digest == chaos_digest
    tables_match = clean_table == chaos_table
    print(
        f"fuzz[shard-merge]: {args.systems} systems, "
        f"digest {'MATCH' if digests_match else 'MISMATCH'} "
        f"({clean_digest[:16]} vs {chaos_digest[:16]}), "
        f"rendered table {'MATCH' if tables_match else 'MISMATCH'}"
    )
    return 0 if digests_match and tables_match else 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.replay is not None:
        return _replay(args)
    if args.shard_merge_selftest:
        return _shard_merge_selftest(args)

    from ..oracle import shrink_failure, system_specs, write_failure
    from ..runner import (
        CampaignStats,
        FuzzTask,
        Journal,
        RetryPolicy,
        ShardChaosPolicy,
        TimingCollector,
        resolve_jobs,
        resolve_shards,
        run_sharded,
        run_tasks,
        write_section,
    )

    profile = _profile(args)
    if args.plant and args.jobs != 1:
        print("--plant forces --jobs 1 (the sabotage lives in-process)")
        args.jobs = 1
    jobs = resolve_jobs(args.jobs)
    shards = resolve_shards(args.shards)
    chaos = (
        ShardChaosPolicy.parse(args.shard_chaos)
        if args.shard_chaos else None
    )
    if args.plant and shards > 1:
        print("--plant forces unsharded mode (the sabotage lives "
              "in-process)")
        shards = 1

    specs = system_specs(args.systems, args.seed, profile.sizes)
    if args.cegis:
        from ..oracle import cegis_specs

        specs = specs + cegis_specs(args.cegis, args.seed)
    profile_spec = profile.spec()
    tasks = [FuzzTask(profile=profile_spec, **spec) for spec in specs]

    journal = (
        Journal(args.journal, resume=args.resume)
        if args.journal is not None else None
    )
    timing = TimingCollector()
    stats = CampaignStats()
    start = time.perf_counter()
    # The sabotage must stay armed through the shrinking pass too, or
    # the re-checks at smaller n all pass and nothing ever reduces.
    with contextlib.ExitStack() as stack:
        if args.plant:
            stack.enter_context(_plant_sign_flip())
        if journal is not None:
            stack.enter_context(journal)
        if shards > 1:
            records = run_sharded(
                tasks, shards=shards, journal=journal,
                task_deadline=args.task_deadline, collect=timing,
                retry=RetryPolicy(retries=args.retries), stats=stats,
                lease_ttl=args.lease_ttl, chaos=chaos,
                watch=True if args.watch else None,
            )
        else:
            records = run_tasks(
                tasks, jobs=jobs, task_deadline=args.task_deadline,
                collect=timing, journal=journal,
                retry=RetryPolicy(retries=args.retries), stats=stats,
            )
        wall = time.perf_counter() - start

        records = [r for r in records if r is not None]
        failures = [r for r in records if r.failed]

        for record in failures:
            minimal = None
            if not args.no_shrink and record.provenance != "aborted":
                result = shrink_failure(record, profile)
                minimal = result.minimal
                print(
                    f"FAIL {record.spec()} -> minimal {result.minimal} "
                    f"({len(result.record.disagreements)} disagreement(s), "
                    f"{len(result.record.harness_errors)} harness error(s))"
                )
            else:
                print(f"FAIL {record.spec()}")
            write_failure(args.artifacts, record, minimal=minimal)

    total_checks = sum(r.checks for r in records)
    synth_counts: dict[str, int] = {}
    for record in records:
        for status in record.synth.values():
            synth_counts[status] = synth_counts.get(status, 0) + 1

    rate = len(records) / wall if wall > 0 else float("inf")
    print(
        f"fuzz[{profile.name}]: {len(records)} systems, "
        f"{total_checks} checks, {len(failures)} failing, "
        f"{sum(len(r.disagreements) for r in records)} disagreement(s), "
        f"{sum(len(r.harness_errors) for r in records)} harness error(s) "
        f"in {wall:.1f}s ({rate:.1f} systems/s, jobs={jobs})"
    )
    if synth_counts:
        print("  synth: " + ", ".join(
            f"{status}={count}" for status, count in sorted(synth_counts.items())
        ))
    print(f"  {stats.summary()}")
    if journal is not None:
        print(f"  journal digest: {_journal_digest(args.journal)}")
    if failures:
        print(f"  artifacts: {args.artifacts}/failures.jsonl")

    if not args.no_bench:
        write_section(args.bench, "fuzz", {
            "profile": profile.name,
            "systems": len(records),
            "seed": args.seed,
            "jobs": jobs,
            "shards": shards,
            "campaign": stats.counters(),
            "checks": total_checks,
            "failing_systems": len(failures),
            "disagreements": sum(len(r.disagreements) for r in records),
            "harness_errors": sum(len(r.harness_errors) for r in records),
            "synth": synth_counts,
            "total_wall_s": wall,
            "systems_per_s": rate,
            "task_wall_s": timing.task_wall_s(),
        })
    return 1 if failures else 0
